"""Matching-engine shootout: Fig. 11 in miniature.

Times the five subgraph-matching engines — SymISO, SymISO-R, BoostISO,
TurboISO, QuickSI — on every mined metagraph of the Facebook-like
dataset, grouped by metagraph size, and verifies they all return the
same instance sets.

Run:  python examples/engine_shootout.py
"""

import time
from collections import defaultdict

from repro.datasets import load_dataset
from repro.matching import ALL_ENGINES
from repro.matching.base import deduplicate_instances
from repro.mining import MinerConfig, mine_catalog

ENGINES = ("SymISO", "SymISO-R", "BoostISO", "TurboISO", "QuickSI")


def main() -> None:
    dataset = load_dataset("facebook", scale="tiny")
    catalog = mine_catalog(dataset.graph, MinerConfig(max_nodes=4, min_support=3))
    print(f"{dataset.graph}\n{catalog}\n")

    totals: dict[tuple[int, str], float] = defaultdict(float)
    sizes: dict[int, int] = defaultdict(int)
    for metagraph in catalog:
        sizes[metagraph.size] += 1
        reference: set | None = None
        for engine_name in ENGINES:
            engine = ALL_ENGINES[engine_name]()
            start = time.perf_counter()
            found = {
                inst.nodes
                for inst in deduplicate_instances(
                    engine.find_embeddings(dataset.graph, metagraph)
                )
            }
            totals[(metagraph.size, engine_name)] += time.perf_counter() - start
            if reference is None:
                reference = found
            elif found != reference:
                raise AssertionError(
                    f"{engine_name} disagrees on {metagraph!r}"
                )

    header = "size  #mg   " + "  ".join(f"{e:>10}" for e in ENGINES)
    print(header)
    print("-" * len(header))
    for size in sorted(sizes):
        cells = "  ".join(
            f"{1000 * totals[(size, e)] / sizes[size]:>8.2f}ms" for e in ENGINES
        )
        print(f"{size:>4}  {sizes[size]:>3}   {cells}")
    print("\nAll engines returned identical instance sets.")


if __name__ == "__main__":
    main()
