"""Circle-based friend suggestion (the paper's first motivating scenario).

"Who were my classmates? Who share the same passion as I do?"  Each
circle is a semantic class.  This example runs the complete pipeline of
Fig. 3 on the LinkedIn-like dataset:

offline   1. mine the metagraph set M (GraMi-style miner),
          2. dual-stage training: match metapath seeds, learn seed
             weights, pick candidates by the heuristic H (Eq. 7), match
             only those, retrain (Alg. 1),
online    3. answer friend-suggestion queries for the learned circle.

Run:  python examples/friend_circles.py
"""

import time

from repro.datasets import load_dataset
from repro.eval.harness import evaluate_ranker, model_ranker
from repro.eval.splits import split_queries
from repro.learning.dual_stage import dual_stage_train
from repro.learning.examples import generate_triplets
from repro.learning.model import ProximityModel
from repro.learning.trainer import Trainer, TrainerConfig
from repro.mining import MinerConfig, mine_catalog


def main() -> None:
    dataset = load_dataset("linkedin", scale="tiny")
    print(f"Dataset: {dataset.graph}")
    circle = "college"
    labels = dataset.class_labels(circle)

    # ---- offline: mine the metagraph set -----------------------------
    start = time.perf_counter()
    catalog = mine_catalog(dataset.graph, MinerConfig(max_nodes=4, min_support=3))
    print(
        f"Mined {len(catalog)} metagraphs "
        f"({len(catalog.metapath_ids())} metapaths) "
        f"in {time.perf_counter() - start:.1f}s"
    )

    # ---- offline: dual-stage training for the 'college' circle -------
    split = split_queries(dataset.queries(circle), 0.2, num_splits=1, seed=0)[0]
    triplets = generate_triplets(
        split.train, labels, dataset.universe, num_examples=200, seed=0
    )
    trainer = Trainer(TrainerConfig(restarts=3, max_iterations=400, seed=0))
    result = dual_stage_train(
        dataset.graph, catalog, triplets, num_candidates=5, trainer=trainer
    )
    print(
        f"Dual stage matched {len(result.matched_ids)}/{len(catalog)} "
        f"metagraphs (seed {result.seed_match_seconds:.2f}s + candidate "
        f"{result.candidate_match_seconds:.2f}s matching)"
    )
    model = ProximityModel(result.weights, result.vectors, name=circle)
    print("Characteristic metagraphs of the circle:")
    from repro.metagraph.describe import describe_weights

    for line in describe_weights(catalog, result.weights, k=3):
        print(f"  {line}")

    # ---- online: suggest friends for the circle ----------------------
    print(f"\nSuggestions for circle {circle!r}:")
    for query in split.test[:5]:
        suggestions = model.rank(query, k=3)
        truth = labels.get(query, frozenset())
        shown = ", ".join(
            f"{node}{'*' if node in truth else ''}" for node, _s in suggestions
        )
        print(f"  {query}: {shown}   (* = labelled {circle})")

    quality = evaluate_ranker(
        model_ranker(model, dataset.universe), split.test, labels, k=10
    )
    print(
        f"\nTest quality over {quality.num_queries} queries: "
        f"NDCG@10={quality.ndcg:.3f}  MAP@10={quality.map:.3f}"
    )


if __name__ == "__main__":
    main()
