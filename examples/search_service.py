"""Offline/online separation as a deployable service (Fig. 3's two phases).

The paper's framework splits into an expensive offline phase (mine,
match, index, train — done once) and a millisecond online phase (rank
any query against the precomputed artefacts).  This example shows the
persistence workflow a production deployment would use:

1. *build job*: run the offline phase and save the artefacts
   (catalog JSON, vector-store JSON, per-class weight JSON);
2. *service*: load the artefacts, compile the counts into the CSR
   serving backend, and answer queries with explanations
   (Fig. 1(b)'s "result with explanation" column) — including a
   batched pass comparing the scalar and compiled scoring paths.

Run:  python examples/search_service.py
"""

import tempfile
import time
from pathlib import Path

from repro.datasets import load_dataset
from repro.eval.splits import split_queries
from repro.index.vectors import MetagraphVectors, build_vectors
from repro.learning.examples import generate_triplets
from repro.learning.model import ProximityModel, SortedUniverse
from repro.learning.trainer import Trainer, TrainerConfig
from repro.metagraph.catalog import MetagraphCatalog
from repro.mining import MinerConfig, mine_catalog


def build_job(artefact_dir: Path) -> None:
    """The offline phase: mine -> match -> train -> persist."""
    dataset = load_dataset("facebook", scale="tiny")
    print(f"[build] {dataset.graph}")
    catalog = mine_catalog(dataset.graph, MinerConfig(max_nodes=4, min_support=3))
    vectors, _index = build_vectors(dataset.graph, catalog)
    catalog.save(artefact_dir / "catalog.json")
    vectors.save(artefact_dir / "vectors.json")
    trainer = Trainer(TrainerConfig(restarts=3, max_iterations=400, seed=0))
    for class_name in dataset.classes:
        labels = dataset.class_labels(class_name)
        split = split_queries(dataset.queries(class_name), 0.2, 1, seed=0)[0]
        triplets = generate_triplets(
            split.train, labels, dataset.universe, num_examples=200, seed=0
        )
        weights = trainer.train(triplets, vectors)
        model = ProximityModel(weights, vectors, name=class_name)
        model.save_weights(artefact_dir / f"weights_{class_name}.json")
        print(f"[build] trained + saved class {class_name!r}")


def service(artefact_dir: Path) -> None:
    """The online phase: load artefacts, compile, answer queries."""
    catalog = MetagraphCatalog.load(artefact_dir / "catalog.json")
    vectors = MetagraphVectors.load(artefact_dir / "vectors.json")
    vectors.verify_catalog(catalog)
    compiled = vectors.compile()
    models = {
        path.stem.removeprefix("weights_"): ProximityModel.load_weights(
            path, vectors
        ).compile(compiled)
        for path in sorted(artefact_dir.glob("weights_*.json"))
    }
    print(
        f"[service] loaded {len(models)} classes over {len(catalog)} "
        f"metagraphs; serving backend {compiled!r}"
    )

    query = sorted(vectors.nodes_with_counts())[0]
    for class_name, model in models.items():
        start = time.perf_counter()
        results = model.rank(query, k=3)
        elapsed = (time.perf_counter() - start) * 1e3
        print(f"\n[service] {query} / {class_name!r} ({elapsed:.2f} ms):")
        for node, score in results:
            reasons = [
                f"{catalog[mg_id].name}:{contribution:.2f}"
                for mg_id, contribution in model.explain(query, node, k=2)
            ]
            print(f"  {node}  pi={score:.3f}  because {', '.join(reasons)}")

    batched_comparison(models)


def batched_comparison(models: dict[str, ProximityModel]) -> None:
    """Serve a whole query batch on both backends and compare latency."""
    class_name, model = next(iter(models.items()))
    scalar = ProximityModel(model.weights, model.vectors, name=model.name)
    universe = SortedUniverse(model.vectors.nodes_with_counts())
    queries = list(universe)[: min(32, len(universe))]

    # warm both paths (dense-vector caches on the scalar side) so the
    # printed ratio compares steady-state serving, not first-touch cost
    for query in queries:
        model.rank(query, universe=universe, k=5)
        scalar.rank(query, universe=universe, k=5)

    start = time.perf_counter()
    compiled_rankings = [model.rank(q, universe=universe, k=5) for q in queries]
    compiled_ms = (time.perf_counter() - start) * 1e3
    start = time.perf_counter()
    scalar_rankings = [scalar.rank(q, universe=universe, k=5) for q in queries]
    scalar_ms = (time.perf_counter() - start) * 1e3

    # compare rankings tolerantly: trained float weights may differ in
    # the last ulp between the two summation orders, which can swap
    # members of an exact tie at the k boundary — equal score profiles
    # is the contract here; bit-exact parity is proven by the test
    # suite under controlled weights
    for compiled_ranking, scalar_ranking in zip(compiled_rankings, scalar_rankings):
        compiled_profile = [round(score, 9) for _, score in compiled_ranking]
        scalar_profile = [round(score, 9) for _, score in scalar_ranking]
        assert compiled_profile == scalar_profile
    speedup = scalar_ms / compiled_ms if compiled_ms > 0 else float("inf")
    print(
        f"\n[service] batched {len(queries)} queries on {class_name!r}: "
        f"scalar {scalar_ms:.1f} ms, compiled {compiled_ms:.1f} ms "
        f"({speedup:.1f}x), matching rankings"
    )


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        artefact_dir = Path(tmp)
        build_job(artefact_dir)
        files = sorted(p.name for p in artefact_dir.iterdir())
        print(f"\n[build] artefacts: {files}\n")
        service(artefact_dir)


if __name__ == "__main__":
    main()
