"""Offline/online separation as a deployable service (Fig. 3's two phases).

The paper's framework splits into an expensive offline phase (mine,
match, index, train — done once) and a millisecond online phase (rank
any query against the precomputed artefacts).  This example shows the
persistence workflow a production deployment would use:

1. *build job*: run the offline phase on a worker pool, train every
   semantic class, and persist ONE versioned snapshot directory
   (``manifest.json`` + ``catalog.json`` + ``arrays.npz``) via
   ``engine.save_index()``;
2. *service*: cold-start with ``SemanticProximitySearch.from_index()``
   — no mining, no matching, and the format-v2 sidecar memory-mapped
   instead of decompressed — and answer queries with explanations
   (Fig. 1(b)'s "result with explanation" column), including a batched
   pass comparing the scalar and compiled scoring paths;
3. *sharded tier*: re-serve the same batch through a 4-shard, 2-worker
   query router (``repro.serving``) and check it returns bit-identical
   rankings, then show how an unknown or off-anchor query is rejected
   with ``QueryError`` instead of ranking as all zeros.

Run:  python examples/search_service.py [snapshot-dir]

With a directory argument the snapshot is left on disk (the CI
workflow uploads it as a build artifact); without one a temporary
directory is used.
"""

import sys
import tempfile
import time
from pathlib import Path

from repro.datasets import load_dataset
from repro.eval.splits import split_queries
from repro.index.parallel import IndexBuildConfig
from repro.learning.model import ProximityModel
from repro.learning.trainer import TrainerConfig
from repro.mining import MinerConfig
from repro.search import SemanticProximitySearch


def build_job(snapshot_dir: Path) -> None:
    """The offline phase: mine -> match (2 workers) -> train -> snapshot."""
    dataset = load_dataset("facebook", scale="tiny")
    print(f"[build] {dataset.graph}")
    engine = SemanticProximitySearch(
        dataset.graph,
        anchor_type=dataset.anchor_type,
        miner_config=MinerConfig(max_nodes=4, min_support=3),
        trainer_config=TrainerConfig(restarts=3, max_iterations=400, seed=0),
    )
    start = time.perf_counter()
    engine.prepare(build_config=IndexBuildConfig(workers=2))
    offline_s = time.perf_counter() - start
    print(
        f"[build] offline phase done in {offline_s:.1f}s "
        f"({len(engine.catalog)} metagraphs, 2 workers)"
    )
    for class_name in dataset.classes:
        labels = dataset.class_labels(class_name)
        split = split_queries(dataset.queries(class_name), 0.2, 1, seed=0)[0]
        engine.fit(
            class_name, labels, queries=split.train, num_examples=200, seed=0
        )
        print(f"[build] trained class {class_name!r}")
    engine.save_index(snapshot_dir)
    files = sorted(p.name for p in snapshot_dir.iterdir())
    total = sum(p.stat().st_size for p in snapshot_dir.iterdir())
    print(f"[build] snapshot: {files} ({total / 1024:.1f} KiB)\n")


def service(snapshot_dir: Path) -> None:
    """The online phase: cold-start from the snapshot, answer queries."""
    dataset = load_dataset("facebook", scale="tiny")  # deterministic graph
    start = time.perf_counter()
    engine = SemanticProximitySearch.from_index(snapshot_dir, dataset.graph)
    cold_start_s = time.perf_counter() - start
    backend = type(engine.vectors.compile().node_data).__name__
    print(
        f"[service] cold start in {cold_start_s * 1e3:.1f} ms: "
        f"{len(engine.classes)} classes over {len(engine.catalog)} "
        f"metagraphs, no mining or matching "
        f"(serving arrays: {backend})"
    )

    query = sorted(engine.vectors.nodes_with_counts())[0]
    for class_name in engine.classes:
        start = time.perf_counter()
        results = engine.query(class_name, query, k=3)
        elapsed = (time.perf_counter() - start) * 1e3
        print(f"\n[service] {query} / {class_name!r} ({elapsed:.2f} ms):")
        for node, score in results:
            reasons = [
                f"{metagraph.name}:{contribution:.2f}"
                for metagraph, contribution in engine.explain(
                    class_name, query, node, k=2
                )
            ]
            print(f"  {node}  pi={score:.3f}  because {', '.join(reasons)}")

    batched_comparison(engine)
    sharded_tier(snapshot_dir, dataset)


def batched_comparison(engine: SemanticProximitySearch) -> None:
    """Serve a whole query batch on both backends and compare latency."""
    class_name = engine.classes[0]
    model = engine.model(class_name)
    scalar = ProximityModel(model.weights, model.vectors, name=model.name)
    universe = engine.universe()
    queries = list(universe)[: min(32, len(universe))]

    # warm both paths (dense-vector caches on the scalar side) so the
    # printed ratio compares steady-state serving, not first-touch cost
    engine.query_many(class_name, queries, k=5)
    for query in queries:
        scalar.rank(query, universe=universe, k=5)

    start = time.perf_counter()
    compiled_rankings = engine.query_many(class_name, queries, k=5)
    compiled_ms = (time.perf_counter() - start) * 1e3
    start = time.perf_counter()
    scalar_rankings = [scalar.rank(q, universe=universe, k=5) for q in queries]
    scalar_ms = (time.perf_counter() - start) * 1e3

    # compare rankings tolerantly: trained float weights may differ in
    # the last ulp between the two summation orders, which can swap
    # members of an exact tie at the k boundary — equal score profiles
    # is the contract here; bit-exact parity is proven by the test
    # suite under controlled weights
    for compiled_ranking, scalar_ranking in zip(compiled_rankings, scalar_rankings):
        compiled_profile = [round(score, 9) for _, score in compiled_ranking]
        scalar_profile = [round(score, 9) for _, score in scalar_ranking]
        assert compiled_profile == scalar_profile
    speedup = scalar_ms / compiled_ms if compiled_ms > 0 else float("inf")
    print(
        f"\n[service] batched {len(queries)} queries on {class_name!r}: "
        f"scalar {scalar_ms:.1f} ms, compiled {compiled_ms:.1f} ms "
        f"({speedup:.1f}x), matching rankings"
    )


def sharded_tier(snapshot_dir: Path, dataset) -> None:
    """Serve through the shard router and demonstrate query validation."""
    from repro.exceptions import QueryError

    engine = SemanticProximitySearch.from_index(
        snapshot_dir, dataset.graph, shards=4, serving_workers=2
    )
    flat = SemanticProximitySearch.from_index(snapshot_dir, dataset.graph)
    class_name = engine.classes[0]
    queries = list(engine.universe())[:16]
    start = time.perf_counter()
    sharded = engine.query_many(class_name, queries, k=5)
    sharded_ms = (time.perf_counter() - start) * 1e3
    assert sharded == flat.query_many(class_name, queries, k=5)
    print(
        f"\n[sharded] {len(queries)} queries over 4 shards / 2 workers in "
        f"{sharded_ms:.1f} ms — rankings bit-identical to the unsharded tier"
    )

    # a production service must refuse what it cannot answer: unknown
    # nodes and non-anchor nodes raise QueryError instead of silently
    # ranking as all zeros
    off_anchor = next(
        node
        for node in dataset.graph.nodes()
        if dataset.graph.node_type(node) != dataset.anchor_type
    )
    for bad in ("no-such-user", off_anchor):
        try:
            engine.query(class_name, bad, k=5)
        except QueryError as exc:
            print(f"[sharded] rejected {bad!r}: {exc}")
        else:
            raise AssertionError(f"{bad!r} should have been rejected")


def main() -> None:
    if len(sys.argv) > 1:
        snapshot_dir = Path(sys.argv[1])
        snapshot_dir.mkdir(parents=True, exist_ok=True)
        build_job(snapshot_dir)
        service(snapshot_dir)
        print(f"\n[done] snapshot kept at {snapshot_dir}")
    else:
        with tempfile.TemporaryDirectory() as tmp:
            snapshot_dir = Path(tmp) / "snapshot"
            snapshot_dir.mkdir()
            build_job(snapshot_dir)
            service(snapshot_dir)


if __name__ == "__main__":
    main()
