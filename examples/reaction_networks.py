"""Semantic proximity on a labeled, directed reaction network.

The social datasets only need typed nodes; here the *edge roles* carry
the semantics: a molecule can be consumed by (``in``), produced by
(``out``), or catalyse (``cat``) a reaction.  This example runs the
full pipeline on the kinded schema and then patches the live index with
a named rewrite rule instead of a hand-written edit list:

1. generate the reaction network (mol/rxn types, three directed kinds),
2. mine kind-aware metagraphs and build the instance index,
3. answer "which molecules co-occur with q?" queries,
4. apply the ``add_catalyst`` rewrite rule via ``apply_updates`` and
   show the refreshed ranking.

Run:  python examples/reaction_networks.py
"""

from repro.datasets import load_dataset
from repro.datasets.reactions import CATALYZES, CONSUMES
from repro.index.parallel import IndexBuildConfig
from repro.index.rewrite import RewriteRule
from repro.metagraph.metagraph import Metagraph
from repro.mining import MinerConfig
from repro.search import SemanticProximitySearch


def main() -> None:
    dataset = load_dataset("reactions", scale="tiny")
    graph = dataset.graph
    print(f"Dataset: {graph}  (edge kinds on: {graph.has_kinds})")
    for a, b, kind in sorted(graph.observed_edge_rules()):
        arrow = "->" if kind.directed else "--"
        print(f"  rule: {a} {arrow} {b}  [{kind.label or '(plain)'}]")

    # ---- offline: mine kinded metagraphs, build the index ------------
    engine = SemanticProximitySearch(
        graph,
        anchor_type="mol",
        miner_config=MinerConfig(max_nodes=4, min_support=2),
    )
    engine.prepare(build_config=IndexBuildConfig(workers=1))
    print(f"\nCatalog: {len(engine.catalog)} kind-aware metagraphs, e.g.")
    for mg_id in sorted(engine.catalog.ids())[:3]:
        mg = engine.catalog[mg_id]
        print(f"  M{mg_id}: {mg.types} {sorted(mg.edges_with_kinds())}")

    # ---- online: co-substrate queries --------------------------------
    class_name = "co-substrate"
    engine.fit(class_name, dataset.class_labels(class_name))
    query = dataset.queries(class_name)[0]
    print(f"\nTop molecules near {query!r} ({class_name}):")
    for node, score in engine.query(class_name, query, k=5):
        print(f"  {node}: {score:.4f}")

    # ---- delta: patch the index with a rewrite rule ------------------
    # "any uncatalysed consumption m --in--> r gains a catalyst": the
    # LHS binds the (m, r) pair, the RHS adds a fresh catalyst molecule
    rule = RewriteRule(
        name="add_catalyst",
        lhs=Metagraph(["mol", "rxn"], [(0, 1, CONSUMES)]),
        added_nodes=(("enzyme", "mol"),),
        added_edges=(("enzyme", 1, CATALYZES),),
    )
    binding = next(iter(rule.bindings(graph)))
    delta = rule.compile(binding, new_nodes={"enzyme": "m_new_enzyme"})
    print(f"\nApplying rule {rule.name!r} at binding {binding}: {delta}")
    stats = engine.apply_updates(delta)
    print(f"Delta stats: {stats}")
    print(f"Refreshed ranking for {query!r}:")
    for node, score in engine.query(class_name, query, k=5):
        print(f"  {node}: {score:.4f}")


if __name__ == "__main__":
    main()
