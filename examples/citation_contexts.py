"""Context-aware citation search (the paper's second motivating scenario).

"Given a paper as the query, which citations addressed the same core
problem?  Which are simply background?"  Each context is a semantic
class between *paper* nodes — demonstrating that the framework is not
user-specific: here ``anchor_type="paper"``.

We synthesise a citation HIN (papers, authors, venues, keywords), plant
two classes —

- **same-problem**: papers sharing a keyword AND a venue
  (the same community attacking the same topic);
- **same-group**: papers sharing an author (lab lineage / background
  citations);

— then learn each class supervised and show that the learned
characteristic metagraphs differ accordingly.

Run:  python examples/citation_contexts.py
"""

import random

from repro.datasets.base import LabeledGraphDataset, symmetric_labels
from repro.datasets.synthetic import (
    attach_group_attribute,
    pairs_sharing,
    partition_into_groups,
)
from repro.eval.harness import evaluate_ranker, model_ranker
from repro.eval.splits import split_queries
from repro.graph.builder import GraphBuilder
from repro.index.vectors import build_vectors
from repro.learning.examples import generate_triplets
from repro.learning.model import ProximityModel
from repro.learning.trainer import Trainer, TrainerConfig
from repro.mining import MinerConfig, mine_catalog


def build_citation_dataset(num_papers: int = 80, seed: int = 42) -> LabeledGraphDataset:
    """A seeded citation heterogeneous information network."""
    rng = random.Random(seed)
    builder = GraphBuilder(name="citations")
    papers = [f"paper{i}" for i in range(num_papers)]
    for paper in papers:
        builder.node(paper, "paper")

    # research groups: shared authors across a lab's papers
    groups = partition_into_groups(papers, 3, 6, rng)
    attach_group_attribute(builder, groups, "author", "author", rng, 0.9)

    # topics: keyword communities, venue-correlated
    topics = partition_into_groups(papers, 4, 8, rng)
    attach_group_attribute(builder, topics, "keyword", "kw", rng, 0.9)
    venues = [f"venue{i}" for i in range(6)]
    for venue in venues:
        builder.node(venue, "venue")
    for topic_index, topic in enumerate(topics):
        home_venue = venues[topic_index % len(venues)]
        for paper in topic:
            venue = home_venue if rng.random() < 0.75 else rng.choice(venues)
            if not builder.graph.has_edge(paper, venue):
                builder.edge(paper, venue)

    graph = builder.build()
    labels = {
        "same-problem": symmetric_labels(
            pairs_sharing(graph, "paper", "keyword", ("venue",))
        ),
        "same-group": symmetric_labels(
            pairs_sharing(graph, "paper", "author", ("author",))
        ),
    }
    return LabeledGraphDataset(
        name="citations", graph=graph, anchor_type="paper", labels=labels
    )


def main() -> None:
    dataset = build_citation_dataset()
    print(f"Citation graph: {dataset.graph}")

    catalog = mine_catalog(
        dataset.graph,
        MinerConfig(max_nodes=4, min_support=3),
        anchor_type="paper",
    )
    print(f"Catalog: {catalog}")
    vectors, _index = build_vectors(dataset.graph, catalog)
    trainer = Trainer(TrainerConfig(restarts=3, max_iterations=400, seed=0))

    for context in dataset.classes:
        labels = dataset.class_labels(context)
        split = split_queries(dataset.queries(context), 0.2, 1, seed=1)[0]
        triplets = generate_triplets(
            split.train, labels, dataset.universe, num_examples=200, seed=1
        )
        weights = trainer.train(triplets, vectors)
        model = ProximityModel(weights, vectors, name=context)
        quality = evaluate_ranker(
            model_ranker(model, dataset.universe), split.test, labels, k=10
        )
        print(f"\n=== context: {context} ===")
        print(f"  NDCG@10={quality.ndcg:.3f}  MAP@10={quality.map:.3f}")
        print("  characteristic metagraphs:")
        for mg_id, weight in model.top_metagraphs(k=3):
            if weight > 0.05:
                print(f"    w={weight:.2f}  {catalog[mg_id]!r}")
        query = split.test[0]
        ranked = model.rank(query, k=3)
        print(f"  e.g. {query} -> {[node for node, _s in ranked]}")


if __name__ == "__main__":
    main()
