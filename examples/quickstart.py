"""Quickstart: the paper's toy example (Fig. 1-2) end to end.

Builds the Fig. 1 social network, defines the Fig. 2 metagraphs,
computes metagraph vectors (Eq. 1-2), and shows how different
characteristic weights w turn the *same* MGP family (Def. 3) into
different semantic classes of proximity: classmate, close friend,
family.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.datasets.toy import toy_graph, toy_metagraphs
from repro.index.vectors import build_vectors
from repro.learning.model import ProximityModel
from repro.metagraph.catalog import MetagraphCatalog

USERS = ["Alice", "Bob", "Kate", "Jay", "Tom"]


def main() -> None:
    graph = toy_graph()
    print(f"Toy graph: {graph}")

    # The Fig. 2 metagraphs: M1 classmate, M2/M3 close friend, M4 family.
    catalog = MetagraphCatalog(toy_metagraphs().values(), anchor_type="user")
    print(f"Catalog: {catalog}\n")

    # Offline phase: match every metagraph and index the vectors.
    vectors, index = build_vectors(graph, catalog)
    for mg_id in catalog.ids():
        print(
            f"  {catalog[mg_id].name}: {index.num_instances(mg_id)} instances"
        )

    # Sect. III-A's example weights: each class is one weight vector.
    class_weights = {
        "classmate": [0.9, 0.0, 0.0, 0.0],
        "close friend": [0.0, 0.6, 0.4, 0.0],
        "family": [0.0, 0.0, 0.0, 0.8],
    }
    for class_name, weights in class_weights.items():
        model = ProximityModel(np.array(weights), vectors, name=class_name)
        print(f"\n=== {class_name} ===")
        for query in ("Kate", "Bob"):
            ranking = model.rank(query, universe=USERS, k=3)
            shown = ", ".join(
                f"{node} ({score:.2f})" for node, score in ranking if score > 0
            )
            print(f"  {query} -> {shown or '(no one)'}")

    # Expected (Fig. 1b): Kate's classmates = Jay; Kate's close friends =
    # Alice and Jay; Bob's family = Alice.


if __name__ == "__main__":
    main()
