"""Cross-matcher parity: every engine returns the same instance sets.

The offline phase trusts whichever matcher it is handed, and the
parallel builder mixes engines (SymISO for whole-metagraph tasks, plain
backtracking for graph-partition shards), so engine disagreement would
silently corrupt the Eq. 1–2 counts.  This suite pins the contract on
randomized small typed graphs: for any pattern, ``backtracking`` (under
several node orders), ``QuickSI``, ``TurboISO``, ``BoostISO`` and
``SymISO``/``SymISO-R`` must produce identical deduplicated instance
sets — and the union of graph-partition shards must reproduce them too.

Generators are seeded (Hypothesis drives the seed, the graphs and
patterns come from deterministic ``random.Random`` streams), so every
failure is replayable from its seed alone.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.typed_graph import TypedGraph
from repro.matching import (
    ALL_ENGINES,
    backtrack_embeddings,
    deduplicate_instances,
    find_instances,
    shard_embeddings,
)
from repro.matching.ordering import random_connected_order, rarest_type_order
from repro.metagraph.metagraph import Metagraph
from tests.conftest import random_typed_graph

SEEDS = st.integers(min_value=0, max_value=10_000)


def random_pattern(rng: random.Random, max_nodes: int = 5) -> Metagraph:
    """A random connected typed pattern, biased toward symmetric shapes.

    ``user``-heavy type choices produce patterns with symmetric anchor
    pairs (the ones Eq. 1 cares about); the ``ghost`` type exercises
    type classes absent from the graph.
    """
    types_pool = ("user", "user", "school", "hobby", "employer", "ghost")
    n = rng.randint(1, max_nodes)
    types = [rng.choice(types_pool) for _ in range(n)]
    edges = set()
    for i in range(1, n):  # random spanning tree keeps it connected
        edges.add((rng.randrange(i), i))
    for _ in range(rng.randint(0, n + 2)):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            edges.add((min(u, v), max(u, v)))
    return Metagraph(types, edges)


def adversarial_id_graph(seed: int, num_users: int = 8) -> TypedGraph:
    """A graph whose node ids mix ints, tuples and separator-laden strings."""
    rng = random.Random(seed)
    graph = TypedGraph(name=f"adversarial{seed}")
    users = []
    for i in range(num_users):
        uid = [i, ("u", i), f"u|{i}", f"u,{i}"][i % 4]
        users.append(uid)
        graph.add_node(uid, "user")
    attrs = []
    for node_type in ("school", "hobby"):
        for j in range(3):
            aid = (node_type, j) if j % 2 else f"{node_type}:{j}"
            attrs.append(aid)
            graph.add_node(aid, node_type)
    for user in users:
        for aid in attrs:
            if rng.random() < 0.5:
                graph.add_edge(user, aid)
    for i, u in enumerate(users):
        for v in users[i + 1 :]:
            if rng.random() < 0.3:
                graph.add_edge(u, v)
    return graph


def backtracking_instances(graph, metagraph, order):
    return {
        inst.nodes
        for inst in deduplicate_instances(
            backtrack_embeddings(graph, metagraph, order)
        )
    }


def all_instance_sets(graph, metagraph, rng):
    """Instance node-sets per matching strategy, keyed by name."""
    result = {}
    result["backtracking/rarest"] = backtracking_instances(
        graph, metagraph, rarest_type_order(graph, metagraph)
    )
    result["backtracking/random"] = backtracking_instances(
        graph, metagraph, random_connected_order(metagraph, rng)
    )
    for name, factory in ALL_ENGINES.items():
        result[name] = {
            inst.nodes for inst in find_instances(factory(), graph, metagraph)
        }
    return result


def assert_parity(graph, metagraph, rng):
    by_engine = all_instance_sets(graph, metagraph, rng)
    reference_name = "backtracking/rarest"
    reference = by_engine[reference_name]
    def show(instance_sets):
        # node ids mix types, so ordering must go through repr
        return sorted(
            (sorted(nodes, key=repr) for nodes in instance_sets), key=repr
        )[:3]

    for name, instances in by_engine.items():
        assert instances == reference, (
            f"{name} diverges from {reference_name} on {metagraph!r}: "
            f"missing={show(reference - instances)}, "
            f"extra={show(instances - reference)}"
        )


class TestCrossMatcherParity:
    @given(SEEDS)
    @settings(max_examples=40, deadline=None)
    def test_engines_agree_on_random_graphs(self, seed):
        rng = random.Random(seed)
        graph = random_typed_graph(
            seed,
            num_users=8,
            num_attrs_per_type=3,
            edge_prob=0.4,
            user_edge_prob=0.2,
        )
        assert_parity(graph, random_pattern(rng), rng)

    @given(SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_engines_agree_on_adversarial_node_ids(self, seed):
        """Mixed-type node ids force the repr-ordering fallbacks."""
        rng = random.Random(seed)
        graph = adversarial_id_graph(seed)
        assert_parity(graph, random_pattern(rng), rng)

    @given(SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_shard_union_reproduces_full_instance_set(self, seed):
        """Graph-partition shards cover every instance, jointly exact.

        Individual shards may rediscover the same instance through
        different automorphic witnesses, so the check is on the union
        of per-shard *instance* sets — exactly the merge the parallel
        builder performs.
        """
        rng = random.Random(seed)
        graph = random_typed_graph(seed, num_users=8, num_attrs_per_type=3)
        metagraph = random_pattern(rng)
        reference = backtracking_instances(
            graph, metagraph, rarest_type_order(graph, metagraph)
        )
        for num_shards in (1, 2, 3):
            union = set()
            for shard in range(num_shards):
                union |= {
                    inst.nodes
                    for inst in deduplicate_instances(
                        shard_embeddings(graph, metagraph, shard, num_shards)
                    )
                }
            assert union == reference, f"{num_shards} shards lose instances"

    def test_engines_agree_on_toy_metagraphs(self, toy_graph, toy_metagraphs):
        rng = random.Random(0)
        for metagraph in toy_metagraphs.values():
            assert_parity(toy_graph, metagraph, rng)


class TestCompiledCountsParity:
    """The compiled kernel's counting fast path vs the streamed reference.

    ``CompiledMatcher`` is the engine the offline build now defaults to
    and :func:`match_and_count` routes it through the integer fast path,
    so this pins the acceptance contract directly: bit-identical
    :class:`MetagraphCounts` to ``SymISO`` across every metagraph of
    every dataset's mined catalog.
    """

    @pytest.mark.parametrize("dataset_name", ["linkedin", "facebook"])
    def test_compiled_counts_match_symiso_on_mined_catalogs(self, dataset_name):
        from repro.datasets import load_dataset
        from repro.index.instance_index import match_and_count
        from repro.matching import CompiledMatcher, SymISOMatcher
        from repro.mining import MinerConfig, mine_catalog

        dataset = load_dataset(dataset_name, scale="tiny")
        catalog = mine_catalog(
            dataset.graph,
            MinerConfig(max_nodes=4, min_support=3),
            anchor_type=dataset.anchor_type,
        )
        assert len(catalog) > 0
        for mg_id in catalog.ids():
            reference = match_and_count(
                dataset.graph,
                catalog[mg_id],
                anchor_type=catalog.anchor_type,
                matcher=SymISOMatcher(),
            )
            compiled = match_and_count(
                dataset.graph,
                catalog[mg_id],
                anchor_type=catalog.anchor_type,
                matcher=CompiledMatcher(),
            )
            assert compiled.num_instances == reference.num_instances, mg_id
            assert compiled.node_counts == reference.node_counts, mg_id
            assert compiled.pair_counts == reference.pair_counts, mg_id

    def test_compiled_counts_match_on_toy_catalog(self, toy_graph, toy_metagraphs):
        from repro.index.instance_index import match_and_count
        from repro.matching import CompiledMatcher, SymISOMatcher

        for metagraph in toy_metagraphs.values():
            reference = match_and_count(
                toy_graph, metagraph, matcher=SymISOMatcher()
            )
            compiled = match_and_count(
                toy_graph, metagraph, matcher=CompiledMatcher()
            )
            assert compiled == reference
