"""White-box tests for the shared backtracking skeleton."""

import pytest

from repro.exceptions import MatchingError
from repro.matching.backtracking import _prefix_structure, backtrack_embeddings
from repro.matching.base import is_valid_embedding
from repro.metagraph.metagraph import Metagraph, metapath


class TestPrefixStructure:
    def test_neighbors_and_nonneighbors(self):
        m = Metagraph(
            ["user", "school", "major", "user"],
            [(0, 1), (0, 2), (3, 1), (3, 2)],
        )
        order = [1, 0, 2, 3]
        neighbors, nonneighbors = _prefix_structure(m, order)
        assert neighbors[0] == []
        assert neighbors[1] == [0]  # node 0 adjacent to school at pos 0
        assert nonneighbors[2] == [0]  # major not adjacent to school
        assert sorted(neighbors[3]) == [0, 2]

    def test_invalid_order_rejected(self):
        m = metapath("user", "school")
        with pytest.raises(MatchingError):
            _prefix_structure(m, [0, 0])


class TestBacktrackOptions:
    def test_induced_vs_non_induced(self, toy_graph):
        # Kate-CollegeB-Jay plus Kate-Economics-Jay: the path
        # user-school-user has fewer NON-induced than induced exclusions
        path = metapath("user", "school", "user")
        order = [1, 0, 2]
        induced = list(backtrack_embeddings(toy_graph, path, order, induced=True))
        loose = list(backtrack_embeddings(toy_graph, path, order, induced=False))
        assert len(loose) >= len(induced)
        for emb in induced:
            assert is_valid_embedding(toy_graph, path, emb)

    def test_non_induced_includes_triangle_paths(self):
        from repro.graph.typed_graph import TypedGraph

        g = TypedGraph()
        for n in ("a", "b", "c"):
            g.add_node(n, "user")
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_edge("a", "c")
        path = metapath("user", "user", "user")
        assert list(backtrack_embeddings(g, path, [0, 1, 2], induced=True)) == []
        loose = list(backtrack_embeddings(g, path, [0, 1, 2], induced=False))
        assert len(loose) == 6  # 3 centre choices x 2 endpoint orders

    def test_candidate_pool_restricts(self, toy_graph):
        path = metapath("user", "school", "user")
        order = [1, 0, 2]
        pool = {
            0: {"Kate"},
            1: set(toy_graph.nodes_of_type("school")),
            2: set(toy_graph.nodes_of_type("user")),
        }
        found = list(
            backtrack_embeddings(toy_graph, path, order, candidate_pool=pool)
        )
        assert found
        assert all(emb[0] == "Kate" for emb in found)

    def test_empty_pool_yields_nothing(self, toy_graph):
        path = metapath("user", "school", "user")
        pool = {0: set(), 1: set(), 2: set()}
        assert (
            list(backtrack_embeddings(toy_graph, path, [1, 0, 2], candidate_pool=pool))
            == []
        )

    def test_memoized_same_results(self, toy_graph, toy_metagraphs):
        for mg in toy_metagraphs.values():
            order = list(range(mg.size))
            # reorder to keep prefixes connected: use a BFS order
            from repro.matching.ordering import rarest_type_order

            order = rarest_type_order(toy_graph, mg)
            plain = {
                frozenset(e.values())
                for e in backtrack_embeddings(toy_graph, mg, order)
            }
            memo = {
                frozenset(e.values())
                for e in backtrack_embeddings(toy_graph, mg, order, memoize=True)
            }
            assert plain == memo

    def test_embedding_count_is_instances_times_automorphisms(
        self, toy_graph, toy_metagraphs
    ):
        from repro.matching import QuickSIMatcher, find_instances
        from repro.metagraph.symmetry import automorphisms

        for mg in toy_metagraphs.values():
            engine = QuickSIMatcher()
            embeddings = sum(1 for _ in engine.find_embeddings(toy_graph, mg))
            instances = len(find_instances(engine, toy_graph, mg))
            assert embeddings == instances * len(automorphisms(mg))
