"""SymISO stress tests: handcrafted patterns that hit every code path.

- singleton twin families (the common anchor-pair case);
- multi-node wing components (M5-style);
- adjacent symmetric nodes (cross edges inside a family);
- TWO twin families under one involution (the unsafe-reuse path: after
  the first family binds, assigned nodes are moved by sigma, so the
  second family must compute its candidates directly);
- asymmetric patterns (graceful degeneration to plain backtracking).

Each case is verified against QuickSI on graphs rich enough to contain
multiple overlapping instances.
"""

import pytest

from repro.graph.typed_graph import TypedGraph
from repro.matching import QuickSIMatcher, SymISOMatcher, find_instances
from repro.metagraph.decomposition import decompose
from repro.metagraph.metagraph import Metagraph, metapath


def dense_graph() -> TypedGraph:
    """A graph with many overlapping attribute co-ownerships."""
    g = TypedGraph(name="dense")
    users = [f"u{i}" for i in range(8)]
    for u in users:
        g.add_node(u, "user")
    for j in range(3):
        g.add_node(f"s{j}", "school")
        g.add_node(f"m{j}", "major")
        g.add_node(f"h{j}", "hobby")
    # overlapping attribute memberships
    wiring = [
        ("u0", "s0"), ("u1", "s0"), ("u2", "s0"), ("u3", "s1"),
        ("u4", "s1"), ("u5", "s2"), ("u6", "s2"), ("u7", "s2"),
        ("u0", "m0"), ("u1", "m0"), ("u2", "m1"), ("u3", "m1"),
        ("u4", "m0"), ("u5", "m2"), ("u6", "m2"), ("u7", "m0"),
        ("u0", "h0"), ("u2", "h0"), ("u4", "h1"), ("u6", "h1"),
        ("u1", "h2"), ("u3", "h2"), ("u5", "h0"), ("u7", "h1"),
    ]
    for u, a in wiring:
        g.add_edge(u, a)
    # some direct user-user friendships
    for u, v in [("u0", "u1"), ("u1", "u2"), ("u4", "u6"), ("u5", "u7")]:
        g.add_edge(u, v)
    return g


def agree(graph, pattern) -> set:
    sym = {i.nodes for i in find_instances(SymISOMatcher(), graph, pattern)}
    ref = {i.nodes for i in find_instances(QuickSIMatcher(), graph, pattern)}
    assert sym == ref
    return ref


class TestSingleFamily:
    def test_anchor_pair_square(self):
        pattern = Metagraph(
            ["user", "school", "major", "user"],
            [(0, 1), (0, 2), (3, 1), (3, 2)],
        )
        found = agree(dense_graph(), pattern)
        # u5/u6 share s2+m2 and are NOT friends -> instance;
        # u0/u1 share s0+m0 but ARE friends -> excluded (induced, Def. 2)
        assert frozenset({"u5", "s2", "m2", "u6"}) in found
        assert frozenset({"u0", "s0", "m0", "u1"}) not in found

    def test_adjacent_symmetric_users_triangle(self):
        # users adjacent to each other AND to a shared school
        pattern = Metagraph(["user", "user", "school"], [(0, 1), (0, 2), (1, 2)])
        found = agree(dense_graph(), pattern)
        assert frozenset({"u0", "u1", "s0"}) in found

    def test_long_symmetric_path(self):
        pattern = metapath("user", "hobby", "user", "hobby", "user")
        agree(dense_graph(), pattern)


class TestMultiNodeWings:
    def test_m5_style_wings(self):
        # centre school with two user-major wings
        pattern = Metagraph(
            ["user", "major", "school", "user", "major"],
            [(0, 1), (0, 2), (3, 2), (3, 4)],
        )
        decomp = decompose(pattern)
        assert any(len(decomp.components[f.representative]) == 2 for f in decomp.families)
        agree(dense_graph(), pattern)

    def test_wing_with_cross_edges(self):
        # wings additionally joined by a user-user edge
        pattern = Metagraph(
            ["user", "major", "school", "user", "major"],
            [(0, 1), (0, 2), (3, 2), (3, 4), (0, 3)],
        )
        agree(dense_graph(), pattern)


class TestTwoFamilies:
    def test_double_square_two_families(self):
        """user pair + attribute pair both swapped by one involution."""
        pattern = Metagraph(
            ["user", "school", "school", "user"],
            [(0, 1), (0, 2), (3, 1), (3, 2)],
        )
        decomp = decompose(pattern)
        # the best involution swaps users AND schools -> two families
        if len(decomp.families) == 2:
            twins = {decomp.components[f.twin] for f in decomp.families}
            assert len(twins) == 2
        g = TypedGraph()
        for u in ("a", "b", "c"):
            g.add_node(u, "user")
        for s in ("s1", "s2", "s3"):
            g.add_node(s, "school")
        for u, s in [("a", "s1"), ("a", "s2"), ("b", "s1"), ("b", "s2"),
                     ("c", "s2"), ("c", "s3"), ("a", "s3")]:
            g.add_edge(u, s)
        found = agree(g, pattern)
        assert frozenset({"a", "b", "s1", "s2"}) in found

    def test_hobby_double_square_dense(self):
        pattern = Metagraph(
            ["user", "hobby", "hobby", "user"],
            [(0, 1), (0, 2), (3, 1), (3, 2)],
        )
        agree(dense_graph(), pattern)


class TestDegenerateCases:
    def test_asymmetric_pattern_plain_backtracking(self):
        pattern = metapath("user", "school", "major")
        decomp = decompose(pattern)
        assert not decomp.is_symmetric
        agree(dense_graph(), pattern)

    def test_fully_symmetric_user_pair(self):
        pattern = metapath("user", "user")
        found = agree(dense_graph(), pattern)
        assert frozenset({"u0", "u1"}) in found

    def test_star_of_identical_leaves(self):
        # three user leaves around a school: orbit of size 3 — only a
        # pair is exploited, the rest deduplicated downstream.  In the
        # dense graph every school with 3 users has friend edges among
        # them, so the induced star never occurs — both engines must
        # agree on exactly that.
        pattern = Metagraph(
            ["school", "user", "user", "user"],
            [(0, 1), (0, 2), (0, 3)],
        )
        assert agree(dense_graph(), pattern) == set()
        # hobby stars do exist (h1: u4, u6, u7 with only u4-u6 friends —
        # still excluded; h0: u0, u2, u5 with no friend edges -> instance)
        hobby_star = Metagraph(
            ["hobby", "user", "user", "user"],
            [(0, 1), (0, 2), (0, 3)],
        )
        found = agree(dense_graph(), hobby_star)
        assert frozenset({"h0", "u0", "u2", "u5"}) in found

    def test_no_matching_type(self):
        pattern = metapath("user", "planet", "user")
        assert agree(dense_graph(), pattern) == set()


@pytest.mark.parametrize("seed", range(6))
def test_symiso_r_agrees_across_seeds(seed):
    graph = dense_graph()
    pattern = Metagraph(
        ["user", "school", "major", "user"],
        [(0, 1), (0, 2), (3, 1), (3, 2)],
    )
    reference = {i.nodes for i in find_instances(QuickSIMatcher(), graph, pattern)}
    engine = SymISOMatcher(random_order=True, seed=seed)
    assert {i.nodes for i in find_instances(engine, graph, pattern)} == reference
