"""Kind-aware cross-matcher parity: labeled/directed graphs and patterns.

The edge-kind axis (label x direction) threads through candidate
generation, induced checks, symmetry breaking, and the compiled CSR
slices — so every engine must keep returning identical instance sets
when kinds are in play, exactly as the plain suite pins for unlabeled
graphs.  This suite extends the cross-matcher parity contract to:

- randomized graphs mixing plain, labeled-undirected, and directed
  edge kinds (Hypothesis-driven seeds, replayable);
- the reactions dataset's mined kind-aware catalog (SymISO vs
  Compiled counts, the acceptance gate);
- full index builds with workers in {1, 4} and both engines, which
  must produce bit-identical Eq. 1-2 count stores.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import load_dataset
from repro.graph.typed_graph import PLAIN, EdgeKind, TypedGraph
from repro.index.instance_index import match_and_count
from repro.index.parallel import IndexBuildConfig, build_index
from repro.matching import (
    ALL_ENGINES,
    backtrack_embeddings,
    deduplicate_instances,
    find_instances,
)
from repro.matching.ordering import rarest_type_order
from repro.metagraph.metagraph import Metagraph
from repro.mining import MinerConfig, mine_catalog

SEEDS = st.integers(min_value=0, max_value=10_000)

#: the kind pool mixes the three axes: plain, labeled-undirected,
#: labeled-directed (two labels so direction and label both matter)
KIND_POOL = (
    PLAIN,
    EdgeKind("likes", False),
    EdgeKind("cites", True),
    EdgeKind("follows", True),
)


def random_kinded_graph(seed: int, num_users: int = 8) -> TypedGraph:
    """A random typed graph whose edges mix all three kind axes."""
    rng = random.Random(seed)
    g = TypedGraph(name=f"kinded{seed}")
    users = [f"u{i}" for i in range(num_users)]
    for u in users:
        g.add_node(u, "user")
    attrs = []
    for t in ("school", "hobby"):
        for j in range(3):
            attrs.append(f"{t}{j}")
            g.add_node(f"{t}{j}", t)
    for u in users:
        for a in attrs:
            if rng.random() < 0.4:
                kind = rng.choice(KIND_POOL)
                # directed kinds get a random orientation
                if kind.directed and rng.random() < 0.5:
                    g.add_edge(a, u, kind)
                else:
                    g.add_edge(u, a, kind)
    for i, u in enumerate(users):
        for v in users[i + 1 :]:
            if rng.random() < 0.25:
                g.add_edge(u, v, rng.choice(KIND_POOL))
    return g


def random_kinded_pattern(rng: random.Random, max_nodes: int = 4) -> Metagraph:
    """A random connected pattern with kinds from the same pool."""
    types_pool = ("user", "user", "school", "hobby", "ghost")
    n = rng.randint(1, max_nodes)
    types = [rng.choice(types_pool) for _ in range(n)]
    edges: dict[tuple[int, int], tuple[int, int, EdgeKind]] = {}
    def add(u: int, v: int) -> None:
        kind = rng.choice(KIND_POOL)
        if kind.directed and rng.random() < 0.5:
            u, v = v, u
        edges[(min(u, v), max(u, v))] = (u, v, kind)
    for i in range(1, n):  # random spanning tree keeps it connected
        add(rng.randrange(i), i)
    for _ in range(rng.randint(0, n)):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            add(u, v)
    return Metagraph(types, edges.values())


def all_instance_sets(graph, metagraph):
    """Instance node-sets per matching strategy, keyed by name."""
    result = {
        "backtracking/rarest": {
            inst.nodes
            for inst in deduplicate_instances(
                backtrack_embeddings(
                    graph, metagraph, rarest_type_order(graph, metagraph)
                )
            )
        }
    }
    for name, factory in ALL_ENGINES.items():
        result[name] = {
            inst.nodes for inst in find_instances(factory(), graph, metagraph)
        }
    return result


class TestKindedEngineParity:
    @given(SEEDS)
    @settings(max_examples=40, deadline=None)
    def test_engines_agree_on_kinded_graphs(self, seed):
        rng = random.Random(seed)
        graph = random_kinded_graph(seed)
        metagraph = random_kinded_pattern(rng)
        by_engine = all_instance_sets(graph, metagraph)
        reference = by_engine["backtracking/rarest"]
        for name, instances in by_engine.items():
            assert instances == reference, (
                f"{name} diverges on {metagraph!r} (seed {seed}): "
                f"missing={len(reference - instances)}, "
                f"extra={len(instances - reference)}"
            )

    @given(SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_direction_flip_changes_no_engine_differently(self, seed):
        """Flipping a directed pattern edge moves every engine in lockstep."""
        rng = random.Random(seed)
        graph = random_kinded_graph(seed)
        kind = EdgeKind("cites", True)
        forward = Metagraph(["user", "school"], [(0, 1, kind)])
        backward = Metagraph(["user", "school"], [(1, 0, kind)])
        for pattern in (forward, backward):
            by_engine = all_instance_sets(graph, pattern)
            reference = by_engine["backtracking/rarest"]
            for name, instances in by_engine.items():
                assert instances == reference, (name, pattern, seed)


def reactions_catalog():
    dataset = load_dataset("reactions", scale="tiny")
    catalog = mine_catalog(
        dataset.graph,
        MinerConfig(max_nodes=4, min_support=2),
        anchor_type=dataset.anchor_type,
    )
    return dataset, catalog


class TestLabeledDatasetParity:
    """The acceptance gate: SymISO vs Compiled on the reactions catalog."""

    def test_symiso_compiled_counts_match_on_reactions(self):
        from repro.matching import CompiledMatcher, SymISOMatcher

        dataset, catalog = reactions_catalog()
        assert len(catalog) > 0, "reactions catalog must be non-empty"
        assert dataset.graph.has_kinds
        for mg_id in catalog.ids():
            reference = match_and_count(
                dataset.graph,
                catalog[mg_id],
                anchor_type=catalog.anchor_type,
                matcher=SymISOMatcher(),
            )
            compiled = match_and_count(
                dataset.graph,
                catalog[mg_id],
                anchor_type=catalog.anchor_type,
                matcher=CompiledMatcher(),
            )
            assert compiled.num_instances == reference.num_instances, mg_id
            assert compiled.node_counts == reference.node_counts, mg_id
            assert compiled.pair_counts == reference.pair_counts, mg_id

    @pytest.mark.parametrize("matcher", ["symiso", "compiled"])
    @pytest.mark.parametrize("workers", [1, 4])
    def test_index_builds_bit_identical_across_engines_and_workers(
        self, matcher, workers
    ):
        dataset, catalog = reactions_catalog()
        reference_vectors, reference_index = build_index(
            dataset.graph, catalog, config=IndexBuildConfig(workers=1)
        )
        vectors, index = build_index(
            dataset.graph,
            catalog,
            config=IndexBuildConfig(workers=workers, matcher=matcher),
        )
        assert vectors._node == reference_vectors._node
        assert vectors._pair == reference_vectors._pair
        assert index.matched_ids() == reference_index.matched_ids()
        for mg_id in index.matched_ids():
            assert index.counts_for(mg_id) == reference_index.counts_for(mg_id)
