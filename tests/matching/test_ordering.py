"""Tests for matching-order heuristics (Sect. IV-C ordering)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching.ordering import (
    GraphCardinalities,
    component_order_from_node_order,
    edge_type_pair_counts,
    estimated_cost_order,
    random_connected_order,
    rarest_type_order,
)
from repro.metagraph.decomposition import decompose
from repro.metagraph.metagraph import Metagraph, metapath
from tests.conftest import random_typed_graph
from tests.metagraph.test_canonical_symmetry import random_metagraph


def connected_prefixes(metagraph, order) -> bool:
    """Every prefix of the order must induce a connected sub-pattern."""
    placed = set()
    for i, u in enumerate(order):
        if i > 0 and not (metagraph.neighbors(u) & placed):
            return False
        placed.add(u)
    return True


class TestCardinalities:
    def test_edge_counts(self, toy_graph):
        counts = edge_type_pair_counts(toy_graph)
        assert counts[("school", "user")] == 4
        assert counts[("address", "user")] == 4
        assert sum(counts.values()) == toy_graph.num_edges

    def test_node_counts(self, toy_graph):
        stats = GraphCardinalities(toy_graph)
        assert stats.nodes_of("user") == 5
        assert stats.nodes_of("unknown") == 0
        assert stats.edges_of("user", "school") == 4
        assert stats.edges_of("school", "user") == 4


class TestEstimatedCostOrder:
    def test_permutation(self, toy_graph, toy_metagraphs):
        for mg in toy_metagraphs.values():
            order = estimated_cost_order(toy_graph, mg)
            assert sorted(order) == list(range(mg.size))

    def test_connected_prefixes(self, toy_graph, toy_metagraphs):
        for mg in toy_metagraphs.values():
            order = estimated_cost_order(toy_graph, mg)
            assert connected_prefixes(mg, order)

    def test_starts_with_cheapest_edge(self, toy_graph):
        # employer-user (2 edges) is rarer than school-user (4)
        mg = Metagraph(
            ["user", "school", "employer", "user"],
            [(0, 1), (0, 2), (3, 1), (3, 2)],
        )
        order = estimated_cost_order(toy_graph, mg)
        first_two = {order[0], order[1]}
        assert 2 in first_two  # the employer node is bound early

    def test_single_node(self, toy_graph):
        assert estimated_cost_order(toy_graph, metapath("user")) == [0]

    @given(st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_random_inputs_connected(self, seed):
        rng = random.Random(seed)
        graph = random_typed_graph(seed, num_users=6, num_attrs_per_type=2)
        mg = random_metagraph(rng, max_nodes=5)
        order = estimated_cost_order(graph, mg)
        assert sorted(order) == list(range(mg.size))
        assert connected_prefixes(mg, order)


class TestRarestTypeOrder:
    def test_permutation_and_connectivity(self, toy_graph, toy_metagraphs):
        for mg in toy_metagraphs.values():
            order = rarest_type_order(toy_graph, mg)
            assert sorted(order) == list(range(mg.size))
            assert connected_prefixes(mg, order)

    def test_rarest_first(self, toy_graph):
        # surname has 1 node, user has 5: surname bound first
        mg = metapath("user", "surname", "user")
        assert rarest_type_order(toy_graph, mg)[0] == 1


class TestRandomOrder:
    def test_seeded_determinism(self, toy_metagraphs):
        m1 = toy_metagraphs["M1"]
        a = random_connected_order(m1, random.Random(5))
        b = random_connected_order(m1, random.Random(5))
        assert a == b

    @given(st.integers(0, 300))
    @settings(max_examples=40, deadline=None)
    def test_connected_prefixes_random(self, seed):
        rng = random.Random(seed)
        mg = random_metagraph(rng, max_nodes=5)
        order = random_connected_order(mg, rng)
        assert sorted(order) == list(range(mg.size))
        assert connected_prefixes(mg, order)


class TestComponentOrder:
    def test_follows_first_node_appearance(self, toy_metagraphs):
        m3 = toy_metagraphs["M3"]  # user-address-user
        decomp = decompose(m3)
        node_order = [1, 0, 2]  # address first
        comp_order = component_order_from_node_order(node_order, decomp.components)
        first_comp = decomp.components[comp_order[0]]
        assert first_comp == (1,)

    def test_all_components_ordered(self, toy_metagraphs):
        for mg in toy_metagraphs.values():
            decomp = decompose(mg)
            order = component_order_from_node_order(
                list(range(mg.size)), decomp.components
            )
            assert sorted(order) == list(range(len(decomp.components)))
