"""Compiled-engine specifics the generic engine suites don't reach:
pinned/localized streams, shard partitioning, the symmetry cut, and the
embedding-matrix entry point."""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import MatchingError
from repro.graph.csr import csr_view
from repro.matching import (
    CompiledMatcher,
    MATCHERS,
    SymISOMatcher,
    compiled_pinned_embeddings,
    compiled_shard_embeddings,
    deduplicate_instances,
    find_instances,
    make_matcher,
)
from repro.matching.compiled import compiled_embedding_matrix, compiled_order
from repro.matching.partition import pinned_embeddings
from repro.metagraph.metagraph import Metagraph, metapath
from tests.conftest import random_typed_graph
from tests.matching.test_cross_matcher_parity import random_pattern

SEEDS = st.integers(min_value=0, max_value=10_000)


class TestMakeMatcher:
    def test_every_registered_name_instantiates(self):
        for name in MATCHERS:
            engine = make_matcher(name)
            assert hasattr(engine, "find_embeddings")

    def test_default_registry_contains_compiled(self):
        assert isinstance(make_matcher("compiled"), CompiledMatcher)
        assert make_matcher("COMPILED").name == "Compiled"  # case-insensitive

    def test_unknown_name_raises(self):
        with pytest.raises(MatchingError, match="unknown matcher"):
            make_matcher("vf17")


class TestPinnedParity:
    """Compiled pinned streams == pure-Python pinned streams, instance-wise."""

    @given(SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_pinned_instances_match_reference(self, seed):
        rng = random.Random(seed)
        graph = random_typed_graph(seed, num_users=7, num_attrs_per_type=3)
        metagraph = random_pattern(rng)
        users = sorted(graph.nodes_of_type("user"), key=repr)
        anchors = metagraph.nodes_of_type("user")
        if not users or not anchors:
            return
        pins = {anchors[0]: rng.choice(users)}
        reference = {
            inst.nodes
            for inst in deduplicate_instances(
                pinned_embeddings(graph, metagraph, pins)
            )
        }
        compiled = {
            inst.nodes
            for inst in deduplicate_instances(
                compiled_pinned_embeddings(graph, metagraph, pins)
            )
        }
        assert compiled == reference

    @given(SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_region_restricted_pins_match_reference(self, seed):
        from repro.index.delta import affected_region

        rng = random.Random(seed)
        graph = random_typed_graph(seed, num_users=7, num_attrs_per_type=3)
        metagraph = random_pattern(rng)
        users = sorted(graph.nodes_of_type("user"), key=repr)
        anchors = metagraph.nodes_of_type("user")
        if not users or not anchors:
            return
        pin_node = rng.choice(users)
        region = affected_region(graph, [pin_node], radius=2)
        pins = {anchors[0]: pin_node}
        reference = {
            inst.nodes
            for inst in deduplicate_instances(
                pinned_embeddings(graph, metagraph, pins, region=region)
            )
        }
        compiled = {
            inst.nodes
            for inst in deduplicate_instances(
                compiled_pinned_embeddings(graph, metagraph, pins, region=region)
            )
        }
        assert compiled == reference

    def test_empty_pins_raise_eagerly(self, toy_graph):
        with pytest.raises(MatchingError, match="at least one pin"):
            compiled_pinned_embeddings(toy_graph, metapath("user"), {})

    def test_wrong_type_pin_yields_nothing(self, toy_graph):
        m = metapath("user", "school", "user")
        assert list(compiled_pinned_embeddings(toy_graph, m, {0: "College A"})) == []

    def test_absent_pin_yields_nothing(self, toy_graph):
        m = metapath("user", "school", "user")
        assert list(compiled_pinned_embeddings(toy_graph, m, {0: "Nobody"})) == []


class TestShards:
    @given(SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_shard_union_covers_every_instance(self, seed):
        rng = random.Random(seed)
        graph = random_typed_graph(seed, num_users=8, num_attrs_per_type=3)
        metagraph = random_pattern(rng)
        reference = {
            inst.nodes
            for inst in find_instances(SymISOMatcher(), graph, metagraph)
        }
        csr = csr_view(graph)
        for num_shards in (1, 2, 3):
            union = set()
            for shard in range(num_shards):
                union |= {
                    inst.nodes
                    for inst in deduplicate_instances(
                        compiled_shard_embeddings(csr, metagraph, shard, num_shards)
                    )
                }
            assert union == reference, f"{num_shards} shards lose instances"

    def test_invalid_shard_raises(self, toy_graph):
        csr = csr_view(toy_graph)
        m = metapath("user", "school", "user")
        with pytest.raises(MatchingError):
            list(compiled_shard_embeddings(csr, m, 3, 3))
        with pytest.raises(MatchingError):
            list(compiled_shard_embeddings(csr, m, 0, 0))


class TestSymmetryCut:
    def test_square_enumerates_one_embedding_per_instance(self, toy_graph, toy_metagraphs):
        """The cut skips the sigma-image of every kept embedding."""
        m1 = toy_metagraphs["M1"]
        compiled = sum(1 for _ in CompiledMatcher().find_embeddings(toy_graph, m1))
        plain = sum(
            1 for _ in MATCHERS["quicksi"]().find_embeddings(toy_graph, m1)
        )
        assert compiled == 2  # one per instance
        assert plain == 4  # |Aut(M1)| = 2 embeddings per instance

    def test_asymmetric_pattern_has_no_cut(self, toy_graph):
        m = metapath("user", "school", "major")
        compiled = {
            inst.nodes for inst in find_instances(CompiledMatcher(), toy_graph, m)
        }
        reference = {
            inst.nodes for inst in find_instances(SymISOMatcher(), toy_graph, m)
        }
        assert compiled == reference


class TestEmbeddingMatrix:
    def test_matrix_columns_are_pattern_nodes(self, toy_graph, toy_metagraphs):
        m3 = toy_metagraphs["M3"]  # user-address-user metapath
        csr = csr_view(toy_graph)
        matrix = compiled_embedding_matrix(csr, m3)
        assert matrix.shape[1] == m3.size
        decoded = {
            frozenset(csr.node_ids[v] for v in row) for row in matrix.tolist()
        }
        assert decoded == {
            inst.nodes for inst in find_instances(SymISOMatcher(), toy_graph, m3)
        }
        # column 1 is the address position of every embedding
        for row in matrix.tolist():
            assert toy_graph.node_type(csr.node_ids[row[1]]) == "address"

    def test_no_match_returns_empty_matrix(self, toy_graph):
        csr = csr_view(toy_graph)
        m = metapath("user", "planet", "user")
        matrix = compiled_embedding_matrix(csr, m)
        assert matrix.shape == (0, 3)

    def test_single_node_pattern(self, toy_graph):
        csr = csr_view(toy_graph)
        matrix = compiled_embedding_matrix(csr, metapath("user"))
        assert matrix.shape == (5, 1)

    def test_order_is_connected(self, toy_graph, toy_metagraphs):
        csr = csr_view(toy_graph)
        for m in toy_metagraphs.values():
            order = compiled_order(csr, m)
            assert sorted(order) == list(range(m.size))
            bound: set[int] = set()
            for u in order:
                assert not bound or m.neighbors(u) & bound
                bound.add(u)


class TestWorkerStyleCSRBinding:
    def test_matcher_bound_to_shipped_csr_needs_no_graph(self, toy_graph, toy_metagraphs):
        import pickle

        shipped = pickle.loads(pickle.dumps(csr_view(toy_graph)))
        matcher = CompiledMatcher(csr=shipped)
        instances = {
            inst.nodes
            for inst in deduplicate_instances(
                matcher.find_embeddings(None, toy_metagraphs["M1"])
            )
        }
        reference = {
            inst.nodes
            for inst in find_instances(SymISOMatcher(), toy_graph, toy_metagraphs["M1"])
        }
        assert instances == reference
