"""Differential testing against networkx VF2 as an independent oracle.

networkx's ``GraphMatcher.subgraph_isomorphisms_iter`` enumerates
*induced* subgraph isomorphisms — exactly Def. 2's semantics — in a
completely independent implementation.  Agreement across random graphs
and patterns is the strongest correctness evidence we can get without
the authors' code.
"""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from networkx.algorithms.isomorphism import GraphMatcher, categorical_node_match

from repro.graph.io import to_networkx
from repro.matching import ALL_ENGINES, find_instances
from tests.conftest import random_typed_graph
from tests.metagraph.test_canonical_symmetry import random_metagraph


def vf2_instances(graph, metagraph) -> set[frozenset]:
    """Instance node-sets per networkx VF2 (induced, type-matched)."""
    host = to_networkx(graph)
    pattern = nx.Graph()
    for u in metagraph.nodes():
        pattern.add_node(u, type=metagraph.node_type(u))
    pattern.add_edges_from(metagraph.edges)
    matcher = GraphMatcher(
        host, pattern, node_match=categorical_node_match("type", None)
    )
    # VF2 maps host-subgraph -> pattern; instances are the host node sets
    return {
        frozenset(mapping) for mapping in matcher.subgraph_isomorphisms_iter()
    }


class TestVF2Agreement:
    @given(st.integers(0, 5000))
    @settings(max_examples=25, deadline=None)
    def test_all_engines_match_vf2(self, seed):
        rng = random.Random(seed)
        graph = random_typed_graph(seed, num_users=8, num_attrs_per_type=3)
        metagraph = random_metagraph(rng, max_nodes=4)
        oracle = vf2_instances(graph, metagraph)
        for name, factory in ALL_ENGINES.items():
            found = {
                inst.nodes
                for inst in find_instances(factory(), graph, metagraph)
            }
            assert found == oracle, f"{name} disagrees with networkx VF2"

    def test_toy_graph_vf2(self, toy_graph, toy_metagraphs):
        for mg in toy_metagraphs.values():
            oracle = vf2_instances(toy_graph, mg)
            found = {
                inst.nodes
                for inst in find_instances(ALL_ENGINES["SymISO"](), toy_graph, mg)
            }
            assert found == oracle

    @pytest.mark.parametrize("seed", [11, 42, 99])
    def test_five_node_patterns_vf2(self, seed):
        rng = random.Random(seed)
        graph = random_typed_graph(seed, num_users=7, num_attrs_per_type=2)
        metagraph = random_metagraph(rng, max_nodes=5)
        oracle = vf2_instances(graph, metagraph)
        found = {
            inst.nodes
            for inst in find_instances(ALL_ENGINES["SymISO"](), graph, metagraph)
        }
        assert found == oracle
