"""Matching-engine tests: correctness on the toy graph and engine agreement."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching import (
    ALL_ENGINES,
    BoostISOMatcher,
    QuickSIMatcher,
    SymISOMatcher,
    TurboISOMatcher,
    count_instances,
    find_instances,
    is_valid_embedding,
)
from repro.metagraph.metagraph import Metagraph, metapath
from tests.conftest import random_typed_graph
from tests.metagraph.test_canonical_symmetry import random_metagraph

ENGINE_FACTORIES = list(ALL_ENGINES.items())


def instance_sets(graph, metagraph):
    """Instance node-sets per engine, for agreement checks."""
    result = {}
    for name, factory in ENGINE_FACTORIES:
        engine = factory()
        result[name] = {inst.nodes for inst in find_instances(engine, graph, metagraph)}
    return result


class TestToyGraphInstances:
    """Ground-truth instance counts hand-derived from Fig. 1."""

    def test_m3_user_address_user(self, toy_graph, toy_metagraphs):
        # Alice-123GreenSt-Bob and Kate-456WhiteSt-Jay
        instances = find_instances(SymISOMatcher(), toy_graph, toy_metagraphs["M3"])
        nodes = {inst.nodes for inst in instances}
        assert nodes == {
            frozenset({"Alice", "123 Green St", "Bob"}),
            frozenset({"Kate", "456 White St", "Jay"}),
        }

    def test_m1_school_major_square(self, toy_graph, toy_metagraphs):
        # Kate/Jay share College B + Economics; Bob/Tom share College A + Physics
        instances = find_instances(SymISOMatcher(), toy_graph, toy_metagraphs["M1"])
        nodes = {inst.nodes for inst in instances}
        assert nodes == {
            frozenset({"Kate", "College B", "Economics", "Jay"}),
            frozenset({"Bob", "College A", "Physics", "Tom"}),
        }

    def test_m2_employer_hobby_square(self, toy_graph, toy_metagraphs):
        instances = find_instances(SymISOMatcher(), toy_graph, toy_metagraphs["M2"])
        nodes = {inst.nodes for inst in instances}
        assert nodes == {frozenset({"Kate", "Company X", "Music", "Alice"})}

    def test_m4_family_square(self, toy_graph, toy_metagraphs):
        instances = find_instances(SymISOMatcher(), toy_graph, toy_metagraphs["M4"])
        nodes = {inst.nodes for inst in instances}
        assert nodes == {frozenset({"Alice", "Clinton", "123 Green St", "Bob"})}

    @pytest.mark.parametrize("engine_name", [n for n, _ in ENGINE_FACTORIES])
    def test_all_engines_match_toy_ground_truth(
        self, toy_graph, toy_metagraphs, engine_name
    ):
        engine = ALL_ENGINES[engine_name]()
        instances = find_instances(engine, toy_graph, toy_metagraphs["M1"])
        assert len(instances) == 2

    def test_no_instances_for_absent_pattern(self, toy_graph):
        # nobody shares a hobby AND an address in the toy graph
        m = Metagraph(
            ["user", "hobby", "address", "user"],
            [(0, 1), (0, 2), (3, 1), (3, 2)],
        )
        assert count_instances(SymISOMatcher(), toy_graph, m) == 0

    def test_unknown_type_yields_nothing(self, toy_graph):
        m = metapath("user", "planet", "user")
        for name, factory in ENGINE_FACTORIES:
            assert count_instances(factory(), toy_graph, m) == 0, name


class TestEmbeddingValidity:
    @pytest.mark.parametrize("engine_name", [n for n, _ in ENGINE_FACTORIES])
    def test_embeddings_satisfy_def2(self, toy_graph, toy_metagraphs, engine_name):
        engine = ALL_ENGINES[engine_name]()
        for mg in toy_metagraphs.values():
            for emb in engine.find_embeddings(toy_graph, mg):
                assert is_valid_embedding(toy_graph, mg, emb)

    def test_induced_semantics_excludes_extra_edges(self):
        # pattern: path user-user-user; graph: triangle of users.
        # Induced semantics -> triangle contains NO instance of the path.
        from repro.graph.typed_graph import TypedGraph

        g = TypedGraph()
        for n in ("a", "b", "c"):
            g.add_node(n, "user")
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_edge("a", "c")
        path = metapath("user", "user", "user")
        for name, factory in ENGINE_FACTORIES:
            assert count_instances(factory(), g, path) == 0, name

    def test_triangle_pattern_matches_triangle(self):
        from repro.graph.typed_graph import TypedGraph

        g = TypedGraph()
        for n in ("a", "b", "c"):
            g.add_node(n, "user")
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_edge("a", "c")
        triangle = Metagraph(["user"] * 3, [(0, 1), (1, 2), (0, 2)])
        for name, factory in ENGINE_FACTORIES:
            assert count_instances(factory(), g, triangle) == 1, name


class TestEngineAgreement:
    """All five engines must produce identical instance sets."""

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_engines_agree_on_random_inputs(self, seed):
        rng = random.Random(seed)
        graph = random_typed_graph(seed, num_users=8, num_attrs_per_type=3)
        metagraph = random_metagraph(rng, max_nodes=4)
        if not graph.types >= set(metagraph.types):
            # pattern references types absent from the graph: all engines
            # must simply return nothing
            for name, factory in ENGINE_FACTORIES:
                assert count_instances(factory(), graph, metagraph) == 0, name
            return
        sets = instance_sets(graph, metagraph)
        reference = sets["QuickSI"]
        for name, found in sets.items():
            assert found == reference, f"{name} disagrees with QuickSI"

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_engines_agree_on_five_node_patterns(self, seed):
        rng = random.Random(seed + 31337)
        graph = random_typed_graph(seed, num_users=7, num_attrs_per_type=3)
        metagraph = random_metagraph(rng, max_nodes=5)
        sets = instance_sets(graph, metagraph)
        reference = sets["QuickSI"]
        for name, found in sets.items():
            assert found == reference, f"{name} disagrees with QuickSI"

    def test_symiso_r_seed_changes_order_not_result(self, toy_graph, toy_metagraphs):
        m1 = toy_metagraphs["M1"]
        base = {
            i.nodes for i in find_instances(SymISOMatcher(), toy_graph, m1)
        }
        for seed in range(5):
            engine = SymISOMatcher(random_order=True, seed=seed)
            found = {i.nodes for i in find_instances(engine, toy_graph, m1)}
            assert found == base


class TestSymISOInternals:
    def test_fewer_embeddings_than_plain_backtracking(self, toy_graph, toy_metagraphs):
        """SymISO prunes automorphic duplicates at the source."""
        m1 = toy_metagraphs["M1"]
        plain = sum(1 for _ in QuickSIMatcher().find_embeddings(toy_graph, m1))
        sym = sum(1 for _ in SymISOMatcher().find_embeddings(toy_graph, m1))
        assert sym < plain
        assert sym == 2  # one embedding per instance here
        assert plain == 4  # |Aut(M1)| = 2 embeddings per instance

    def test_engine_names(self):
        assert SymISOMatcher().name == "SymISO"
        assert SymISOMatcher(random_order=True).name == "SymISO-R"
        assert QuickSIMatcher().name == "QuickSI"
        assert TurboISOMatcher().name == "TurboISO"
        assert BoostISOMatcher().name == "BoostISO"

    def test_single_node_pattern(self, toy_graph):
        m = metapath("user")
        instances = find_instances(SymISOMatcher(), toy_graph, m)
        assert len(instances) == 5

    def test_user_user_edge_pattern(self, toy_graph):
        # no direct user-user edges in the toy graph
        m = metapath("user", "user")
        assert count_instances(SymISOMatcher(), toy_graph, m) == 0
