"""Tests for the generator building blocks added for conjunctive classes."""

import random

import pytest

from repro.datasets.synthetic import (
    attach_pooled_attribute,
    correlated_groups,
    pairs_sharing,
)
from repro.graph.builder import GraphBuilder


class TestCorrelatedGroups:
    def _setup(self, seed=0, n=60, cities=4):
        rng = random.Random(seed)
        members = [f"u{i}" for i in range(n)]
        home_of = {u: f"city{i % cities}" for i, u in enumerate(members)}
        return members, home_of, rng

    def test_partition_property(self):
        members, home_of, rng = self._setup()
        groups = correlated_groups(members, home_of, 3, 6, rng)
        flat = sorted(m for g in groups for m in g)
        assert flat == sorted(members)

    def test_size_bounds_mostly_respected(self):
        members, home_of, rng = self._setup()
        groups = correlated_groups(members, home_of, 3, 6, rng)
        # all groups but possibly the last leftover respect the max
        assert all(len(g) <= 6 for g in groups)

    def test_locality_bias(self):
        members, home_of, rng = self._setup(seed=3, n=120, cities=6)
        groups = correlated_groups(members, home_of, 4, 8, rng, locality=0.9)
        same_home_fraction = []
        for group in groups:
            if len(group) < 2:
                continue
            seed_home = home_of[group[0]]
            local = sum(1 for u in group if home_of[u] == seed_home)
            same_home_fraction.append(local / len(group))
        mean = sum(same_home_fraction) / len(same_home_fraction)
        assert mean > 0.6  # strongly correlated with the seed's home

    def test_zero_locality_less_correlated(self):
        members, home_of, rng1 = self._setup(seed=4, n=120, cities=6)
        high = correlated_groups(members, home_of, 4, 8, rng1, locality=0.95)
        _m, _h, rng2 = self._setup(seed=4, n=120, cities=6)
        low = correlated_groups(members, home_of, 4, 8, rng2, locality=0.0)

        def mean_locality(groups):
            values = []
            for group in groups:
                if len(group) < 2:
                    continue
                home = home_of[group[0]]
                values.append(
                    sum(1 for u in group if home_of[u] == home) / len(group)
                )
            return sum(values) / len(values)

        assert mean_locality(high) > mean_locality(low)

    def test_deterministic(self):
        members, home_of, _ = self._setup()
        a = correlated_groups(members, home_of, 3, 6, random.Random(7))
        b = correlated_groups(members, home_of, 3, 6, random.Random(7))
        assert a == b


class TestAttachPooledAttribute:
    def _builder(self, n=20):
        builder = GraphBuilder()
        users = [f"u{i}" for i in range(n)]
        for u in users:
            builder.node(u, "user")
        return builder, users

    def test_groups_can_collide(self):
        builder, users = self._builder()
        groups = [users[:5], users[5:10], users[10:15], users[15:]]
        pool = ["smith", "jones"]  # 4 groups, 2 surnames -> collision
        drawn = attach_pooled_attribute(
            builder, groups, "surname", pool, random.Random(0)
        )
        assert len(drawn) == 4
        assert len(set(drawn)) <= 2

    def test_pool_nodes_created(self):
        builder, users = self._builder()
        attach_pooled_attribute(
            builder, [users[:3]], "surname", ["a", "b", "c"], random.Random(0)
        )
        assert builder.graph.count_type("surname") == 3

    def test_attach_probability_zero(self):
        builder, users = self._builder()
        attach_pooled_attribute(
            builder, [users], "surname", ["x"], random.Random(0),
            attach_probability=0.0,
        )
        assert builder.graph.degree("x") == 0

    def test_no_duplicate_edges_on_collision(self):
        builder, users = self._builder(6)
        # same group attached twice via two colliding groups sharing users
        groups = [users[:4], users[2:6]]
        attach_pooled_attribute(
            builder, groups, "surname", ["only"], random.Random(0)
        )
        assert builder.graph.degree("only") == 6  # each user once


class TestPairsSharing:
    def test_conjunction_rule(self, toy_graph):
        # family rule on the toy graph: surname AND address
        pairs = pairs_sharing(toy_graph, "user", "surname", ("address",))
        assert pairs == {("Alice", "Bob")}

    def test_disjunction_in_second_position(self, toy_graph):
        # school AND (major OR hobby): Kate/Jay (major), Bob/Tom (major)
        pairs = pairs_sharing(toy_graph, "user", "school", ("major", "hobby"))
        assert pairs == {("Jay", "Kate"), ("Bob", "Tom")}

    def test_no_pairs_without_second_attribute(self, toy_graph):
        # employer AND surname: Kate/Alice share employer but not surname
        pairs = pairs_sharing(toy_graph, "user", "employer", ("surname",))
        assert pairs == set()

    def test_anchor_type_respected(self, toy_graph):
        pairs = pairs_sharing(toy_graph, "school", "user", ("user",))
        # two schools sharing a user would be required; none share users
        assert pairs == set()
