"""Tests for the dataset substrate and the two synthetic generators."""

import random

import pytest

from repro.datasets.base import (
    LabeledGraphDataset,
    labels_as_pairs,
    symmetric_labels,
)
from repro.datasets.facebook import FACEBOOK_SCHEMA, FacebookConfig, generate_facebook
from repro.datasets.linkedin import LINKEDIN_SCHEMA, LinkedInConfig, generate_linkedin
from repro.datasets.synthetic import (
    group_pairs,
    partition_into_groups,
    perturb_pairs,
)
from repro.datasets.toy import toy_dataset
from repro.datasets import load_dataset
from repro.exceptions import DatasetError
from repro.graph.typed_graph import TypedGraph


class TestBase:
    def test_symmetric_labels(self):
        labels = symmetric_labels([("a", "b"), ("b", "c")])
        assert labels["a"] == frozenset({"b"})
        assert labels["b"] == frozenset({"a", "c"})

    def test_self_pair_rejected(self):
        with pytest.raises(DatasetError):
            symmetric_labels([("a", "a")])

    def test_labels_round_trip(self):
        pairs = {("a", "b"), ("b", "c")}
        assert labels_as_pairs(symmetric_labels(pairs)) == pairs

    def test_queries_require_positives(self):
        g = TypedGraph()
        for n in ("a", "b", "c"):
            g.add_node(n, "user")
        ds = LabeledGraphDataset(
            name="x",
            graph=g,
            anchor_type="user",
            labels={"c1": symmetric_labels([("a", "b")])},
        )
        assert ds.queries("c1") == ("a", "b")

    def test_unknown_class_raises(self):
        ds = toy_dataset()
        with pytest.raises(DatasetError):
            ds.class_labels("nope")

    def test_non_anchor_label_rejected(self):
        g = TypedGraph()
        g.add_node("a", "user")
        g.add_node("s", "school")
        with pytest.raises(DatasetError):
            LabeledGraphDataset(
                name="bad",
                graph=g,
                anchor_type="user",
                labels={"c": {"s": frozenset({"a"})}},
            )

    def test_missing_anchor_type_rejected(self):
        g = TypedGraph()
        g.add_node("s", "school")
        with pytest.raises(DatasetError):
            LabeledGraphDataset(name="bad", graph=g, anchor_type="user")

    def test_describe_row(self):
        row = toy_dataset().describe()
        assert row["#Nodes"] == 14
        assert "#Queries (family)" in row


class TestSyntheticHelpers:
    def test_partition_covers_everyone(self):
        rng = random.Random(0)
        members = [f"u{i}" for i in range(50)]
        groups = partition_into_groups(members, 3, 7, rng)
        flat = [m for g in groups for m in g]
        assert sorted(flat) == sorted(members)
        assert all(len(g) <= 7 for g in groups)

    def test_bad_sizes_rejected(self):
        with pytest.raises(DatasetError):
            partition_into_groups(["a"], 3, 2, random.Random(0))

    def test_group_pairs(self):
        pairs = group_pairs([["a", "b", "c"], ["d"]])
        assert pairs == {("a", "b"), ("a", "c"), ("b", "c")}

    def test_perturb_preserves_size_roughly(self):
        rng = random.Random(1)
        base = {(f"a{i}", f"b{i}") for i in range(100)}
        universe = [f"a{i}" for i in range(100)] + [f"b{i}" for i in range(100)]
        out = perturb_pairs(base, universe, 0.05, rng)
        # ~5% dropped, ~5% random added
        assert 90 <= len(out) <= 110
        assert len(base - out) > 0 or len(out - base) > 0

    def test_perturb_zero_probability_is_identity(self):
        base = {("a", "b")}
        out = perturb_pairs(base, ["a", "b", "c"], 0.0, random.Random(0))
        assert out == base


class TestLinkedIn:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_linkedin(LinkedInConfig(num_users=80, seed=3))

    def test_schema_conformance(self, dataset):
        LINKEDIN_SCHEMA.validate_graph(dataset.graph)

    def test_types_match_paper(self, dataset):
        assert dataset.graph.types == {"user", "employer", "location", "college"}

    def test_classes(self, dataset):
        assert dataset.classes == ("college", "coworker")

    def test_queries_nonempty(self, dataset):
        assert len(dataset.queries("college")) > 10
        assert len(dataset.queries("coworker")) > 10

    def test_deterministic(self):
        a = generate_linkedin(LinkedInConfig(num_users=40, seed=5))
        b = generate_linkedin(LinkedInConfig(num_users=40, seed=5))
        assert a.graph == b.graph
        assert a.labels == b.labels

    def test_seed_changes_graph(self):
        a = generate_linkedin(LinkedInConfig(num_users=40, seed=5))
        b = generate_linkedin(LinkedInConfig(num_users=40, seed=6))
        assert a.graph != b.graph

    def test_college_signal_planted(self, dataset):
        """Most college pairs share a college node."""
        graph = dataset.graph
        pairs = labels_as_pairs(dataset.class_labels("college"))
        sharing = sum(
            1
            for x, y in pairs
            if graph.neighbors_of_type(x, "college")
            & graph.neighbors_of_type(y, "college")
        )
        assert sharing / len(pairs) > 0.6


class TestFacebook:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_facebook(FacebookConfig(num_users=60, seed=4))

    def test_schema_conformance(self, dataset):
        FACEBOOK_SCHEMA.validate_graph(dataset.graph)

    def test_ten_types(self, dataset):
        assert len(dataset.graph.types) == 10

    def test_classes(self, dataset):
        assert dataset.classes == ("classmate", "family")

    def test_family_rule_mostly_holds(self, dataset):
        """>= 90% of family pairs satisfy the paper's rule (5% flip)."""
        graph = dataset.graph
        pairs = labels_as_pairs(dataset.class_labels("family"))
        assert pairs
        holds = 0
        for x, y in pairs:
            same_surname = bool(
                graph.neighbors_of_type(x, "surname")
                & graph.neighbors_of_type(y, "surname")
            )
            same_home = bool(
                graph.neighbors_of_type(x, "location")
                & graph.neighbors_of_type(y, "location")
            ) or bool(
                graph.neighbors_of_type(x, "hometown")
                & graph.neighbors_of_type(y, "hometown")
            )
            if same_surname and same_home:
                holds += 1
        assert holds / len(pairs) > 0.8

    def test_classmate_rule_mostly_holds(self, dataset):
        graph = dataset.graph
        pairs = labels_as_pairs(dataset.class_labels("classmate"))
        assert pairs
        holds = 0
        for x, y in pairs:
            same_school = bool(
                graph.neighbors_of_type(x, "school")
                & graph.neighbors_of_type(y, "school")
            )
            same_course = bool(
                graph.neighbors_of_type(x, "degree")
                & graph.neighbors_of_type(y, "degree")
            ) or bool(
                graph.neighbors_of_type(x, "major")
                & graph.neighbors_of_type(y, "major")
            )
            if same_school and same_course:
                holds += 1
        assert holds / len(pairs) > 0.8

    def test_deterministic(self):
        a = generate_facebook(FacebookConfig(num_users=30, seed=9))
        b = generate_facebook(FacebookConfig(num_users=30, seed=9))
        assert a.graph == b.graph
        assert a.labels == b.labels


class TestLoadDataset:
    def test_toy(self):
        assert load_dataset("toy").name == "toy"

    def test_tiny_scales(self):
        li = load_dataset("linkedin", scale="tiny")
        assert li.graph.count_type("user") == 60
        fb = load_dataset("facebook", scale="tiny")
        assert fb.graph.count_type("user") == 50

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            load_dataset("myspace")
