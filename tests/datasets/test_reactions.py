"""The reaction-network dataset: schema, determinism, minability."""

import pytest

from repro.datasets import load_dataset
from repro.datasets.reactions import (
    CATALYZES,
    CONSUMES,
    PRODUCES,
    REACTIONS_SCALES,
    REACTIONS_SCHEMA,
    generate_reactions,
)
from repro.graph.typed_graph import PLAIN


class TestGeneration:
    def test_scales_and_determinism(self):
        for scale in REACTIONS_SCALES:
            a = generate_reactions(scale=scale)
            b = generate_reactions(scale=scale)
            assert a.graph == b.graph, scale
            assert a.labels == b.labels, scale

    def test_graph_is_kinded_and_schema_valid(self):
        ds = load_dataset("reactions", scale="tiny")
        assert ds.graph.has_kinds
        assert ds.anchor_type == "mol"
        REACTIONS_SCHEMA.validate_graph(ds.graph)
        assert REACTIONS_SCHEMA.edge_kinds
        rules = ds.graph.observed_edge_rules()
        assert ("mol", "rxn", CONSUMES) in rules
        assert ("rxn", "mol", PRODUCES) in rules
        assert all(kind != PLAIN for _, _, kind in rules)

    def test_every_reaction_has_two_substrates(self):
        """Two substrates keep the symmetric in-pattern past the filters."""
        ds = load_dataset("reactions", scale="tiny")
        g = ds.graph
        for rxn in g.nodes_of_type("rxn"):
            substrates = [
                m
                for m in g.neighbors_of_type(rxn, "mol")
                if g.edge_kind(rxn, m) == CONSUMES
            ]
            assert len(substrates) >= 2, rxn

    def test_labels_follow_shared_reactions(self):
        ds = load_dataset("reactions", scale="tiny")
        g = ds.graph
        for cls, kind, flip in (
            ("co-substrate", CONSUMES, False),
            ("co-product", PRODUCES, False),
        ):
            labels = ds.class_labels(cls)
            assert labels, cls
            for q, members in labels.items():
                for m in members:
                    shared = {
                        r
                        for r in g.neighbors_of_type(q, "rxn")
                        if g.edge_kind(q, r) == kind
                    } & {
                        r
                        for r in g.neighbors_of_type(m, "rxn")
                        if g.edge_kind(m, r) == kind
                    }
                    assert shared, (cls, q, m)

    def test_catalysts_never_consumed_by_their_reaction(self):
        ds = load_dataset("reactions", scale="small")
        g = ds.graph
        for u, v, kind in g.edges_with_kinds():
            if kind == CATALYZES:
                # one pair, one kind: the catalyst edge proves the
                # molecule is neither substrate nor product there
                assert g.edge_kind(u, v) == CATALYZES


class TestMinability:
    def test_symmetric_kind_patterns_survive_paper_filters(self):
        from repro.mining import MinerConfig, mine_catalog

        ds = load_dataset("reactions", scale="tiny")
        catalog = mine_catalog(
            ds.graph,
            MinerConfig(max_nodes=4, min_support=2),
            anchor_type=ds.anchor_type,
        )
        assert len(catalog) > 0
        kinds_seen = set()
        for mg in catalog:
            assert mg.has_kinds
            kinds_seen |= {kind for _, _, kind in mg.edges_with_kinds()}
        # both semantic classes have a witnessing metagraph family
        assert CONSUMES in kinds_seen
        assert PRODUCES in kinds_seen

    def test_registered_in_load_dataset(self):
        with pytest.raises(KeyError, match="reactions"):
            load_dataset("nope")
