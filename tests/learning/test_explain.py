"""Tests for proximity explanations (Fig. 1(b)'s explanation column)."""

import numpy as np
import pytest

from repro.index.vectors import build_vectors
from repro.learning.model import ProximityModel
from repro.metagraph.catalog import MetagraphCatalog


@pytest.fixture
def model(toy_graph, toy_metagraphs):
    catalog = MetagraphCatalog(toy_metagraphs.values(), anchor_type="user")
    vectors, _ = build_vectors(toy_graph, catalog)
    return catalog, ProximityModel(np.ones(4), vectors)


class TestExplain:
    def test_contributions_sum_to_proximity(self, model):
        _catalog, m = model
        for x, y in [("Kate", "Alice"), ("Bob", "Alice"), ("Kate", "Jay")]:
            contributions = m.explain(x, y, k=10)
            total = sum(c for _i, c in contributions)
            assert total == pytest.approx(m.proximity(x, y))

    def test_family_pair_explained_by_family_metagraphs(self, model):
        catalog, m = model
        contributions = m.explain("Bob", "Alice", k=10)
        explained_types = {
            t for mg_id, _c in contributions for t in catalog[mg_id].types
        }
        # Bob-Alice share surname+address (M4) and address (M3)
        assert "surname" in explained_types
        assert "address" in explained_types

    def test_sorted_descending(self, model):
        _catalog, m = model
        contributions = m.explain("Kate", "Alice", k=10)
        values = [c for _i, c in contributions]
        assert values == sorted(values, reverse=True)

    def test_self_pair_empty(self, model):
        _catalog, m = model
        assert m.explain("Kate", "Kate") == []

    def test_unrelated_pair_empty_or_zero(self, model):
        _catalog, m = model
        assert m.explain("Alice", "Tom") == []

    def test_k_truncates(self, model):
        _catalog, m = model
        assert len(m.explain("Bob", "Alice", k=1)) == 1

    def test_zero_weight_excluded(self, toy_graph, toy_metagraphs):
        catalog = MetagraphCatalog(toy_metagraphs.values(), anchor_type="user")
        vectors, _ = build_vectors(toy_graph, catalog)
        m4_only = np.zeros(4)
        m4_only[catalog.id_of(toy_metagraphs["M4"])] = 1.0
        model = ProximityModel(m4_only, vectors)
        contributions = model.explain("Bob", "Alice", k=10)
        assert len(contributions) == 1  # only M4 contributes
