"""Compiled-vs-scalar ranking parity, and the universe-restriction fix.

The compiled CSR path must be bit-for-bit rank-identical to the scalar
reference path: same nodes, same tie-break order, scores within 1e-12.
Parity is exercised on randomized synthetic graphs across weight
regimes, including tie-heavy weight vectors where many candidates share
the exact same proximity.
"""

import numpy as np
import pytest

from repro.index.vectors import build_vectors
from repro.learning.model import ProximityModel, SortedUniverse, uniform_model
from repro.metagraph.catalog import MetagraphCatalog
from repro.metagraph.metagraph import metapath
from tests.conftest import random_typed_graph


def _random_setup(seed: int):
    graph = random_typed_graph(seed, num_users=15)
    catalog = MetagraphCatalog(
        [
            metapath("user", t, "user", name=f"P-{t}")
            for t in ("school", "hobby", "employer")
        ],
        anchor_type="user",
    )
    vectors, _ = build_vectors(graph, catalog)
    users = sorted(graph.nodes_of_type("user"), key=repr)
    return vectors, users


# dyadic-rational weights keep both paths' float arithmetic exact, so
# even equal-score ties agree bit for bit; "tie-heavy" regimes (uniform
# and one-hot weights) force large groups of identical scores
WEIGHT_REGIMES = {
    "uniform-ties": np.array([1.0, 1.0, 1.0]),
    "one-hot-ties": np.array([0.0, 1.0, 0.0]),
    "dyadic": np.array([0.25, 0.5, 0.125]),
    "sparse-dyadic": np.array([0.0, 0.75, 0.5]),
}


def assert_rank_parity(scalar_model, compiled_model, query, universe, k):
    scalar = scalar_model.rank(query, universe=universe, k=k)
    compiled = compiled_model.rank(query, universe=universe, k=k)
    assert [node for node, _ in scalar] == [node for node, _ in compiled], (
        f"rank order diverged for query={query!r} k={k}"
    )
    for (_, a), (_, b) in zip(scalar, compiled):
        assert a == pytest.approx(b, abs=1e-12)


class TestParity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("regime", sorted(WEIGHT_REGIMES))
    def test_randomized_graphs(self, seed, regime):
        vectors, users = _random_setup(seed)
        weights = WEIGHT_REGIMES[regime]
        scalar_model = ProximityModel(weights, vectors)
        compiled_model = ProximityModel(weights, vectors).compile()
        universes = [None, users, users[::2], SortedUniverse(users)]
        for query in users[:5]:
            for universe in universes:
                for k in (None, 0, 1, 3, 10, 10_000):
                    assert_rank_parity(
                        scalar_model, compiled_model, query, universe, k
                    )

    def test_random_float_weights(self):
        vectors, users = _random_setup(7)
        rng = np.random.default_rng(7)
        weights = rng.uniform(0.0, 1.0, 3)
        scalar_model = ProximityModel(weights, vectors)
        compiled_model = ProximityModel(weights, vectors).compile()
        for query in users[:6]:
            assert_rank_parity(scalar_model, compiled_model, query, users, 10)

    def test_toy_graph_all_classes(self, toy_graph, toy_metagraphs):
        catalog = MetagraphCatalog(toy_metagraphs.values(), anchor_type="user")
        vectors, _ = build_vectors(toy_graph, catalog)
        users = ["Alice", "Bob", "Jay", "Kate", "Tom"]
        for weights in ([0.9, 0, 0, 0], [0, 0.6, 0.4, 0], [0, 0, 0, 0.8]):
            scalar_model = ProximityModel(np.array(weights, float), vectors)
            compiled_model = ProximityModel(np.array(weights, float), vectors)
            compiled_model.compile()
            for query in users:
                for k in (None, 2, 5):
                    assert_rank_parity(
                        scalar_model, compiled_model, query, users, k
                    )

    def test_query_without_counts(self, toy_graph, toy_metagraphs):
        catalog = MetagraphCatalog(toy_metagraphs.values(), anchor_type="user")
        vectors, _ = build_vectors(toy_graph, catalog)
        model = uniform_model(vectors)
        compiled_model = uniform_model(vectors).compile()
        # "Zoe" has no metagraph counts at all
        universe = ["Alice", "Bob", "Zoe"]
        assert_rank_parity(model, compiled_model, "Zoe", universe, None)
        assert model.rank("Zoe", universe=universe) == [
            ("Alice", 0.0),
            ("Bob", 0.0),
        ]

    def test_k_edge_cases_agree_on_both_paths(self, toy_graph, toy_metagraphs):
        # k=0 is a legitimately empty request; a negative k is a caller
        # bug and must raise instead of silently returning [] (both
        # backends, same behaviour)
        catalog = MetagraphCatalog(toy_metagraphs.values(), anchor_type="user")
        vectors, _ = build_vectors(toy_graph, catalog)
        scalar_model = uniform_model(vectors)
        compiled_model = uniform_model(vectors).compile()
        users = ["Alice", "Bob", "Kate"]
        assert scalar_model.rank("Kate", universe=users, k=0) == []
        assert compiled_model.rank("Kate", universe=users, k=0) == []
        for k in (-1, -5):
            with pytest.raises(ValueError):
                scalar_model.rank("Kate", universe=users, k=k)
            with pytest.raises(ValueError):
                compiled_model.rank("Kate", universe=users, k=k)

    def test_stale_snapshot_recompiled_after_new_counts(
        self, toy_graph, toy_metagraphs
    ):
        from repro.index.instance_index import match_and_count
        from repro.index.vectors import MetagraphVectors

        mgs = list(toy_metagraphs.values())
        catalog = MetagraphCatalog(mgs, anchor_type="user")
        vectors = MetagraphVectors(len(catalog), anchor_type="user")
        vectors.add_counts(0, match_and_count(toy_graph, mgs[0]))
        model = uniform_model(vectors).compile()
        before = model.rank("Kate")
        # folding in more metagraphs must invalidate the model's snapshot:
        # ranking, proximity and the scalar reference stay consistent
        for mg_id in (1, 2, 3):
            vectors.add_counts(mg_id, match_and_count(toy_graph, mgs[mg_id]))
        after = model.rank("Kate")
        scalar_after = ProximityModel(model.weights, vectors).rank("Kate")
        assert after == scalar_after
        assert after != before
        assert dict(after)["Alice"] == pytest.approx(
            model.proximity("Kate", "Alice")
        )

    def test_stale_explicit_snapshot_rejected(self, toy_graph, toy_metagraphs):
        from repro.exceptions import LearningError
        from repro.index.instance_index import match_and_count
        from repro.index.vectors import MetagraphVectors

        mgs = list(toy_metagraphs.values())
        store = MetagraphVectors(len(mgs), anchor_type="user")
        store.add_counts(0, match_and_count(toy_graph, mgs[0]))
        stale = store.compile()
        store.add_counts(1, match_and_count(toy_graph, mgs[1]))
        with pytest.raises(LearningError):
            uniform_model(store).compile(stale)
        # the store's current snapshot is accepted
        assert uniform_model(store).compile(store.compile()).compiled is not None

    def test_all_zero_weights(self, toy_graph, toy_metagraphs):
        catalog = MetagraphCatalog(toy_metagraphs.values(), anchor_type="user")
        vectors, _ = build_vectors(toy_graph, catalog)
        weights = np.zeros(4)
        scalar_model = ProximityModel(weights, vectors)
        compiled_model = ProximityModel(weights, vectors).compile()
        users = ["Alice", "Bob", "Jay", "Kate", "Tom"]
        for query in users:
            assert_rank_parity(scalar_model, compiled_model, query, users, None)


class TestUniverseRestriction:
    """Regression: rank(universe=...) must not leak out-of-universe nodes."""

    @pytest.fixture
    def toy_model(self, toy_graph, toy_metagraphs):
        catalog = MetagraphCatalog(toy_metagraphs.values(), anchor_type="user")
        vectors, _ = build_vectors(toy_graph, catalog)
        return uniform_model(vectors)

    def test_scalar_path_filters(self, toy_model):
        # Kate's partners include Alice and Jay; restrict them away
        universe = ["Kate", "Bob", "Tom"]
        result = toy_model.rank("Kate", universe=universe)
        assert {node for node, _ in result} == {"Bob", "Tom"}

    def test_compiled_path_filters(self, toy_model):
        toy_model.compile()
        universe = ["Kate", "Bob", "Tom"]
        result = toy_model.rank("Kate", universe=universe)
        assert {node for node, _ in result} == {"Bob", "Tom"}

    def test_partner_inside_universe_still_scored(self, toy_model):
        universe = ["Kate", "Jay", "Tom"]
        result = toy_model.rank("Kate", universe=universe)
        assert result[0][0] == "Jay" and result[0][1] > 0.0
        assert ("Tom", 0.0) in result

    def test_no_universe_returns_partners_only(self, toy_model):
        result = toy_model.rank("Kate")
        assert {node for node, _ in result} <= set(
            toy_model.vectors.partners("Kate")
        )


class TestSortedUniverse:
    def test_constructor_dedupes_and_sorts(self):
        universe = SortedUniverse(["b", "a", "b", "c"])
        assert universe == ("a", "b", "c")
        assert universe.members() == {"a", "b", "c"}
        assert SortedUniverse() == ()

    def test_mask_cache_does_not_pin_snapshots(self, toy_graph, toy_metagraphs):
        import gc

        catalog = MetagraphCatalog(toy_metagraphs.values(), anchor_type="user")
        vectors, _ = build_vectors(toy_graph, catalog)
        universe = SortedUniverse(["Alice", "Bob", "Kate"])
        snapshot = vectors.compile()
        universe.mask_over(snapshot)
        assert len(universe._masks) == 1
        # retire the snapshot (store mutation clears the cache ref)
        vectors._compiled = None
        del snapshot
        gc.collect()
        assert len(universe._masks) == 0

    def test_model_weights_frozen_after_init(self, toy_graph, toy_metagraphs):
        catalog = MetagraphCatalog(toy_metagraphs.values(), anchor_type="user")
        vectors, _ = build_vectors(toy_graph, catalog)
        source = np.ones(4)
        model = ProximityModel(source, vectors).compile()
        with pytest.raises(ValueError):
            model.weights[0] = 0.5  # would desync the compiled dots
        source[0] = 0.5  # the model holds its own copy
        assert model.weights[0] == 1.0

    def test_members_cached(self):
        universe = SortedUniverse(["x", "y"])
        assert universe.members() is universe.members()

    def test_equivalent_to_raw_iterable(self, toy_graph, toy_metagraphs):
        catalog = MetagraphCatalog(toy_metagraphs.values(), anchor_type="user")
        vectors, _ = build_vectors(toy_graph, catalog)
        model = uniform_model(vectors).compile()
        users = ["Alice", "Bob", "Jay", "Kate", "Tom"]
        assert model.rank("Kate", universe=users, k=4) == model.rank(
            "Kate", universe=SortedUniverse(users), k=4
        )
