"""Tests for the objective, trainer, examples, and ProximityModel."""

import numpy as np
import pytest

from repro.exceptions import LearningError, TrainingDataError
from repro.index.vectors import build_vectors
from repro.learning.examples import generate_triplets
from repro.learning.model import (
    ProximityModel,
    restrict_weights,
    single_metagraph_model,
    uniform_model,
)
from repro.learning.objective import (
    TripletMatrices,
    example_probabilities,
    log_likelihood,
    log_likelihood_gradient,
)
from repro.learning.trainer import Trainer, TrainerConfig
from repro.metagraph.catalog import MetagraphCatalog

USERS = ["Alice", "Bob", "Kate", "Jay", "Tom"]


@pytest.fixture
def toy_setup(toy_graph, toy_metagraphs):
    catalog = MetagraphCatalog(toy_metagraphs.values(), anchor_type="user")
    vectors, _ = build_vectors(toy_graph, catalog)
    return catalog, vectors


# family class: Bob<->Alice
FAMILY_TRIPLETS = [
    ("Bob", "Alice", "Tom"),
    ("Bob", "Alice", "Kate"),
    ("Bob", "Alice", "Jay"),
    ("Alice", "Bob", "Tom"),
    ("Alice", "Bob", "Jay"),
]

# classmate class: Bob<->Tom, Kate<->Jay
CLASSMATE_TRIPLETS = [
    ("Bob", "Tom", "Alice"),
    ("Bob", "Tom", "Kate"),
    ("Kate", "Jay", "Alice"),
    ("Kate", "Jay", "Tom"),
    ("Jay", "Kate", "Bob"),
]


class TestTripletMatrices:
    def test_shapes(self, toy_setup):
        _catalog, vectors = toy_setup
        matrices = TripletMatrices(FAMILY_TRIPLETS, vectors, [0, 1, 2, 3])
        assert matrices.m_qx.shape == (5, 4)
        assert matrices.num_triplets == 5
        assert matrices.dim == 4

    def test_active_subset(self, toy_setup):
        _catalog, vectors = toy_setup
        matrices = TripletMatrices(FAMILY_TRIPLETS, vectors, [1, 3])
        assert matrices.dim == 2

    def test_empty_triplets_rejected(self, toy_setup):
        _catalog, vectors = toy_setup
        with pytest.raises(TrainingDataError):
            TripletMatrices([], vectors, [0])

    def test_empty_active_rejected(self, toy_setup):
        _catalog, vectors = toy_setup
        with pytest.raises(TrainingDataError):
            TripletMatrices(FAMILY_TRIPLETS, vectors, [])

    def test_degenerate_triplet_rejected(self, toy_setup):
        _catalog, vectors = toy_setup
        with pytest.raises(TrainingDataError):
            TripletMatrices([("Bob", "Bob", "Tom")], vectors, [0])

    def test_duplicate_active_ids_rejected(self, toy_setup):
        _catalog, vectors = toy_setup
        with pytest.raises(TrainingDataError):
            TripletMatrices(FAMILY_TRIPLETS, vectors, [0, 0])

    def test_expand(self, toy_setup):
        _catalog, vectors = toy_setup
        matrices = TripletMatrices(FAMILY_TRIPLETS, vectors, [1, 3])
        full = matrices.expand(np.array([0.5, 0.9]), 4)
        assert list(full) == [0.0, 0.5, 0.0, 0.9]


class TestObjective:
    def test_probabilities_in_unit_interval(self, toy_setup):
        _catalog, vectors = toy_setup
        matrices = TripletMatrices(FAMILY_TRIPLETS, vectors, range(4))
        probs = example_probabilities(matrices, np.ones(4), mu=5.0)
        assert np.all(probs > 0) and np.all(probs < 1)

    def test_likelihood_increases_along_gradient(self, toy_setup):
        _catalog, vectors = toy_setup
        matrices = TripletMatrices(FAMILY_TRIPLETS, vectors, range(4))
        w = np.full(4, 0.5)
        base = log_likelihood(matrices, w, mu=5.0)
        grad = log_likelihood_gradient(matrices, w, mu=5.0)
        stepped = log_likelihood(matrices, np.clip(w + 1e-3 * grad, 0, 1), mu=5.0)
        assert stepped >= base

    def test_gradient_finite_difference(self, toy_setup):
        _catalog, vectors = toy_setup
        matrices = TripletMatrices(FAMILY_TRIPLETS, vectors, range(4))
        w = np.array([0.3, 0.6, 0.4, 0.8])
        grad = log_likelihood_gradient(matrices, w, mu=5.0)
        eps = 1e-6
        for i in range(4):
            hi, lo = w.copy(), w.copy()
            hi[i] += eps
            lo[i] -= eps
            numeric = (
                log_likelihood(matrices, hi, 5.0)
                - log_likelihood(matrices, lo, 5.0)
            ) / (2 * eps)
            assert grad[i] == pytest.approx(numeric, abs=1e-4)


class TestTrainer:
    def test_family_training_upweights_m4(self, toy_setup, toy_metagraphs):
        catalog, vectors = toy_setup
        trainer = Trainer(TrainerConfig(restarts=3, max_iterations=400, seed=1))
        weights = trainer.train(FAMILY_TRIPLETS, vectors)
        m4_id = catalog.id_of(toy_metagraphs["M4"])
        m1_id = catalog.id_of(toy_metagraphs["M1"])
        # the family-characteristic metagraphs must dominate classmate ones
        assert weights[m4_id] > weights[m1_id]

    def test_classmate_training_upweights_m1(self, toy_setup, toy_metagraphs):
        catalog, vectors = toy_setup
        trainer = Trainer(TrainerConfig(restarts=3, max_iterations=400, seed=1))
        weights = trainer.train(CLASSMATE_TRIPLETS, vectors)
        m1_id = catalog.id_of(toy_metagraphs["M1"])
        m4_id = catalog.id_of(toy_metagraphs["M4"])
        assert weights[m1_id] > weights[m4_id]

    def test_weights_in_unit_box(self, toy_setup):
        _catalog, vectors = toy_setup
        weights = Trainer(TrainerConfig(restarts=2, max_iterations=200)).train(
            FAMILY_TRIPLETS, vectors
        )
        assert np.all(weights >= 0) and np.all(weights <= 1)

    def test_active_subset_zeroes_inactive(self, toy_setup):
        _catalog, vectors = toy_setup
        trainer = Trainer(TrainerConfig(restarts=1, max_iterations=100))
        weights = trainer.train(FAMILY_TRIPLETS, vectors, active_ids=[0, 2])
        assert weights[1] == 0.0 and weights[3] == 0.0

    def test_deterministic_given_seed(self, toy_setup):
        _catalog, vectors = toy_setup
        cfg = TrainerConfig(restarts=2, max_iterations=150, seed=42)
        w1 = Trainer(cfg).train(FAMILY_TRIPLETS, vectors)
        w2 = Trainer(cfg).train(FAMILY_TRIPLETS, vectors)
        assert np.array_equal(w1, w2)

    def test_last_run_diagnostics(self, toy_setup):
        _catalog, vectors = toy_setup
        trainer = Trainer(TrainerConfig(restarts=1, max_iterations=100))
        trainer.train(FAMILY_TRIPLETS, vectors)
        run = trainer.last_run
        assert run is not None
        assert run.iterations >= 1
        assert run.history  # log-likelihood trace kept
        assert run.history[-1] >= run.history[0]

    def test_empty_store_raises(self, toy_setup):
        from repro.index.vectors import MetagraphVectors

        empty = MetagraphVectors(4)
        with pytest.raises(TrainingDataError):
            Trainer().train(FAMILY_TRIPLETS, empty)


class TestExamples:
    def test_generate_shapes(self):
        labels = {"q1": frozenset({"a"}), "q2": frozenset({"b"})}
        triplets = generate_triplets(
            ["q1", "q2"], labels, ["a", "b", "c", "d"], num_examples=20, seed=0
        )
        assert len(triplets) == 20
        for q, x, y in triplets:
            assert x in labels[q]
            assert y not in labels[q] and y != q

    def test_deterministic(self):
        labels = {"q": frozenset({"a"})}
        args = (["q"], labels, ["a", "b", "c"], 10)
        assert generate_triplets(*args, seed=3) == generate_triplets(*args, seed=3)
        assert generate_triplets(*args, seed=3) != generate_triplets(*args, seed=4)

    def test_query_without_positives_skipped(self):
        labels = {"q1": frozenset(), "q2": frozenset({"a"})}
        triplets = generate_triplets(
            ["q1", "q2"], labels, ["a", "b"], num_examples=5, seed=0
        )
        assert all(q == "q2" for q, _x, _y in triplets)

    def test_no_usable_queries_raises(self):
        with pytest.raises(TrainingDataError):
            generate_triplets(["q"], {"q": frozenset()}, ["a"], 5)

    def test_nonpositive_count_raises(self):
        with pytest.raises(TrainingDataError):
            generate_triplets(["q"], {"q": frozenset({"a"})}, ["a", "b"], 0)


class TestProximityModel:
    def test_rank_family_query(self, toy_setup, toy_metagraphs):
        catalog, vectors = toy_setup
        m4_id = catalog.id_of(toy_metagraphs["M4"])
        w = np.zeros(4)
        w[m4_id] = 1.0
        model = ProximityModel(w, vectors, name="family")
        ranking = model.rank("Bob", universe=USERS)
        assert ranking[0][0] == "Alice"
        assert len(ranking) == 4  # everyone but the query

    def test_rank_without_universe_only_partners(self, toy_setup):
        _catalog, vectors = toy_setup
        model = uniform_model(vectors)
        ranking = model.rank("Tom")
        assert all(score > 0 for _n, score in ranking)

    def test_rank_top_k(self, toy_setup):
        _catalog, vectors = toy_setup
        model = uniform_model(vectors)
        assert len(model.rank("Bob", universe=USERS, k=2)) == 2

    def test_negative_weights_rejected(self, toy_setup):
        _catalog, vectors = toy_setup
        with pytest.raises(LearningError):
            ProximityModel(np.array([-1.0, 0, 0, 0]), vectors)

    def test_wrong_length_rejected(self, toy_setup):
        _catalog, vectors = toy_setup
        with pytest.raises(LearningError):
            ProximityModel(np.ones(3), vectors)

    def test_top_metagraphs(self, toy_setup):
        _catalog, vectors = toy_setup
        model = ProximityModel(np.array([0.1, 0.9, 0.5, 0.0]), vectors)
        top = model.top_metagraphs(k=2)
        assert top[0] == (1, 0.9)
        assert top[1] == (2, 0.5)

    def test_weight_persistence(self, toy_setup, tmp_path):
        _catalog, vectors = toy_setup
        model = ProximityModel(np.array([0.1, 0.9, 0.5, 0.0]), vectors, name="c")
        path = tmp_path / "w.json"
        model.save_weights(path)
        restored = ProximityModel.load_weights(path, vectors)
        assert np.array_equal(restored.weights, model.weights)
        assert restored.name == "c"

    def test_uniform_model(self, toy_setup):
        _catalog, vectors = toy_setup
        model = uniform_model(vectors)
        assert np.array_equal(model.weights, np.ones(4))

    def test_single_metagraph_model(self, toy_setup):
        _catalog, vectors = toy_setup
        model = single_metagraph_model(vectors, 2)
        assert model.weights[2] == 1.0
        assert model.weights.sum() == 1.0

    def test_restrict_weights(self):
        w = np.array([0.5, 0.6, 0.7])
        restricted = restrict_weights(w, [1])
        assert list(restricted) == [0.0, 0.6, 0.0]
        assert list(w) == [0.5, 0.6, 0.7]  # original untouched
