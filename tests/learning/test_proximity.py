"""Tests for MGP (Def. 3) and Theorem 1's properties, incl. property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.vectors import build_vectors
from repro.learning.proximity import (
    batch_mgp,
    batch_mgp_gradient,
    mgp,
    mgp_from_vectors,
    mgp_gradient_from_vectors,
)
from repro.metagraph.catalog import MetagraphCatalog


@pytest.fixture
def toy_vectors(toy_graph, toy_metagraphs):
    catalog = MetagraphCatalog(toy_metagraphs.values(), anchor_type="user")
    vectors, _ = build_vectors(toy_graph, catalog)
    return catalog, vectors


# strategy: consistent (m_xy, m_x, m_y, w) quadruples with m_xy <= min(m_x, m_y)
@st.composite
def vector_quadruple(draw, dim=4):
    m_x = np.array(draw(st.lists(st.integers(0, 10), min_size=dim, max_size=dim)), float)
    m_y = np.array(draw(st.lists(st.integers(0, 10), min_size=dim, max_size=dim)), float)
    caps = np.minimum(m_x, m_y).astype(int)
    m_xy = np.array(
        [draw(st.integers(0, int(c))) for c in caps], dtype=float
    )
    w = np.array(
        draw(
            st.lists(
                # subnormal weights underflow to exactly 0.0 under the
                # scale-invariance test's c*w, which breaks Theorem 1 at
                # the float boundary rather than in the implementation
                st.floats(0.0, 1.0, allow_nan=False, allow_subnormal=False),
                min_size=dim,
                max_size=dim,
            )
        )
    )
    return m_xy, m_x, m_y, w


class TestTheorem1:
    @given(vector_quadruple())
    @settings(max_examples=100, deadline=None)
    def test_range(self, quad):
        m_xy, m_x, m_y, w = quad
        pi = mgp_from_vectors(m_xy, m_x, m_y, w)
        assert 0.0 <= pi <= 1.0 + 1e-12

    @given(vector_quadruple())
    @settings(max_examples=100, deadline=None)
    def test_symmetry(self, quad):
        m_xy, m_x, m_y, w = quad
        assert mgp_from_vectors(m_xy, m_x, m_y, w) == pytest.approx(
            mgp_from_vectors(m_xy, m_y, m_x, w)
        )

    @given(vector_quadruple(), st.floats(0.1, 100.0, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_scale_invariance(self, quad, c):
        m_xy, m_x, m_y, w = quad
        assert mgp_from_vectors(m_xy, m_x, m_y, w) == pytest.approx(
            mgp_from_vectors(m_xy, m_x, m_y, c * w)
        )

    @given(vector_quadruple())
    @settings(max_examples=60, deadline=None)
    def test_self_maximum(self, quad):
        # pi(x, x) with m_xx == m_x is exactly 1 when m_x . w > 0
        _m_xy, m_x, _m_y, w = quad
        if m_x @ w > 0:
            assert mgp_from_vectors(m_x, m_x, m_x, w) == pytest.approx(1.0)

    def test_zero_denominator_defined_as_zero(self):
        z = np.zeros(3)
        assert mgp_from_vectors(z, z, z, np.ones(3)) == 0.0

    def test_self_proximity_via_store(self, toy_vectors):
        _catalog, vectors = toy_vectors
        assert mgp(vectors, "Alice", "Alice", np.ones(4)) == 1.0

    def test_partial_transitivity_constructed(self):
        # classic witness: x close to y and z via the same structure
        m = np.array([4.0])
        m_pair_high = np.array([3.9])
        w = np.ones(1)
        pi_xy = mgp_from_vectors(m_pair_high, m, m, w)
        pi_xz = mgp_from_vectors(m_pair_high, m, m, w)
        assert pi_xy > 0.9 and pi_xz > 0.9


class TestToyGraphProximities:
    def test_family_weights_rank_family_first(self, toy_vectors):
        catalog, vectors = toy_vectors
        # weight only M4 (family square)
        from tests.conftest import fig2_metagraphs

        m4_id = catalog.id_of(fig2_metagraphs()["M4"])
        w = np.zeros(4)
        w[m4_id] = 1.0
        assert mgp(vectors, "Bob", "Alice", w) > 0
        assert mgp(vectors, "Bob", "Tom", w) == 0.0

    def test_classmate_weights(self, toy_vectors):
        catalog, vectors = toy_vectors
        from tests.conftest import fig2_metagraphs

        m1_id = catalog.id_of(fig2_metagraphs()["M1"])
        w = np.zeros(4)
        w[m1_id] = 1.0
        assert mgp(vectors, "Bob", "Tom", w) > 0
        assert mgp(vectors, "Kate", "Jay", w) > 0
        assert mgp(vectors, "Bob", "Alice", w) == 0.0


class TestGradients:
    @given(vector_quadruple())
    @settings(max_examples=60, deadline=None)
    def test_gradient_matches_finite_difference(self, quad):
        m_xy, m_x, m_y, w = quad
        w = w + 0.05  # keep away from the boundary / zero denominator
        if (m_x + m_y) @ w <= 0:
            return
        grad = mgp_gradient_from_vectors(m_xy, m_x, m_y, w)
        eps = 1e-6
        for i in range(len(w)):
            w_hi, w_lo = w.copy(), w.copy()
            w_hi[i] += eps
            w_lo[i] -= eps
            numeric = (
                mgp_from_vectors(m_xy, m_x, m_y, w_hi)
                - mgp_from_vectors(m_xy, m_x, m_y, w_lo)
            ) / (2 * eps)
            assert grad[i] == pytest.approx(numeric, abs=1e-4)

    def test_zero_denominator_gradient_is_zero(self):
        z = np.zeros(3)
        grad = mgp_gradient_from_vectors(z, z, z, np.ones(3))
        assert np.array_equal(grad, np.zeros(3))

    def test_batch_consistency(self):
        rng = np.random.default_rng(0)
        n, d = 8, 5
        m_x = rng.integers(0, 6, (n, d)).astype(float)
        m_y = rng.integers(0, 6, (n, d)).astype(float)
        m_xy = np.minimum(m_x, m_y) * rng.uniform(0, 1, (n, d))
        w = rng.uniform(0.1, 1.0, d)
        batch = batch_mgp(m_xy, m_x, m_y, w)
        grads = batch_mgp_gradient(m_xy, m_x, m_y, w)
        for row in range(n):
            assert batch[row] == pytest.approx(
                mgp_from_vectors(m_xy[row], m_x[row], m_y[row], w)
            )
            assert grads[row] == pytest.approx(
                mgp_gradient_from_vectors(m_xy[row], m_x[row], m_y[row], w)
            )
