"""Tests for dual-stage training (Alg. 1) and the candidate heuristic."""

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.exceptions import LearningError
from repro.learning.dual_stage import (
    candidate_heuristic_scores,
    dual_stage_train,
    multi_stage_train,
    select_candidates,
)
from repro.learning.examples import generate_triplets
from repro.learning.trainer import Trainer, TrainerConfig
from repro.metagraph.catalog import MetagraphCatalog
from repro.metagraph.metagraph import Metagraph, metapath
from repro.mining import MinerConfig, mine_catalog


@pytest.fixture(scope="module")
def linkedin_setup():
    ds = load_dataset("linkedin", scale="tiny")
    catalog = mine_catalog(ds.graph, MinerConfig(max_nodes=4, min_support=3))
    labels = ds.class_labels("college")
    queries = ds.queries("college")[:12]
    triplets = generate_triplets(
        queries, labels, ds.universe, num_examples=80, seed=0
    )
    return ds, catalog, triplets


FAST_TRAINER = Trainer(TrainerConfig(restarts=2, max_iterations=200, seed=0))


class TestCandidateHeuristic:
    def test_scores_cover_non_seeds(self):
        catalog = MetagraphCatalog(
            [
                metapath("user", "school", "user"),
                Metagraph(
                    ["user", "school", "major", "user"],
                    [(0, 1), (0, 2), (3, 1), (3, 2)],
                ),
                Metagraph(
                    ["user", "employer", "hobby", "user"],
                    [(0, 1), (0, 2), (3, 1), (3, 2)],
                ),
            ],
            anchor_type="user",
        )
        seeds = catalog.metapath_ids()
        w0 = np.array([0.9, 0.0, 0.0])
        scores = candidate_heuristic_scores(catalog, seeds, w0)
        assert set(scores) == {1, 2}
        # the school square shares more structure with the school path
        assert scores[1] > scores[2]

    def test_zero_seed_weight_means_zero_scores(self):
        catalog = MetagraphCatalog(
            [
                metapath("user", "school", "user"),
                Metagraph(
                    ["user", "school", "major", "user"],
                    [(0, 1), (0, 2), (3, 1), (3, 2)],
                ),
            ],
            anchor_type="user",
        )
        scores = candidate_heuristic_scores(
            catalog, catalog.metapath_ids(), np.zeros(2)
        )
        assert scores[1] == 0.0

    def test_select_top(self):
        scores = {1: 0.9, 2: 0.5, 3: 0.7}
        assert select_candidates(scores, 2) == [1, 3]

    def test_select_reverse(self):
        scores = {1: 0.9, 2: 0.5, 3: 0.7}
        assert select_candidates(scores, 2, reverse=True) == [2, 3]

    def test_select_more_than_available(self):
        assert select_candidates({1: 0.5}, 10) == [1]


class TestDualStage:
    def test_alg1_end_to_end(self, linkedin_setup):
        ds, catalog, triplets = linkedin_setup
        result = dual_stage_train(
            ds.graph, catalog, triplets, num_candidates=5, trainer=FAST_TRAINER
        )
        assert set(result.seed_ids) == set(catalog.metapath_ids())
        assert len(result.candidate_ids) == min(
            5, len(catalog) - len(result.seed_ids)
        )
        # only matched metagraphs may carry weight
        unmatched = set(catalog.ids()) - set(result.matched_ids)
        assert all(result.weights[i] == 0.0 for i in unmatched)
        assert result.total_match_seconds > 0

    def test_matches_far_fewer_than_catalog(self, linkedin_setup):
        ds, catalog, triplets = linkedin_setup
        result = dual_stage_train(
            ds.graph, catalog, triplets, num_candidates=3, trainer=FAST_TRAINER
        )
        assert len(result.matched_ids) < len(catalog)

    def test_college_metapath_gets_high_seed_weight(self, linkedin_setup):
        ds, catalog, triplets = linkedin_setup
        result = dual_stage_train(
            ds.graph, catalog, triplets, num_candidates=3, trainer=FAST_TRAINER
        )
        ucu = metapath("user", "college", "user")
        ueu = metapath("user", "location", "user")
        ucu_id = catalog.id_of(ucu)
        ueu_id = catalog.id_of(ueu)
        assert result.seed_weights[ucu_id] > result.seed_weights[ueu_id]

    def test_reverse_heuristic_selects_different_candidates(self, linkedin_setup):
        ds, catalog, triplets = linkedin_setup
        ch = dual_stage_train(
            ds.graph, catalog, triplets, num_candidates=3, trainer=FAST_TRAINER
        )
        rch = dual_stage_train(
            ds.graph, catalog, triplets, num_candidates=3,
            trainer=FAST_TRAINER, reverse_heuristic=True,
        )
        assert set(ch.candidate_ids) != set(rch.candidate_ids)

    def test_zero_candidates_seeds_only(self, linkedin_setup):
        ds, catalog, triplets = linkedin_setup
        result = dual_stage_train(
            ds.graph, catalog, triplets, num_candidates=0, trainer=FAST_TRAINER
        )
        assert result.candidate_ids == ()
        assert set(result.matched_ids) == set(catalog.metapath_ids())

    def test_no_metapaths_raises(self, linkedin_setup):
        ds, _catalog, triplets = linkedin_setup
        square_only = MetagraphCatalog(
            [
                Metagraph(
                    ["user", "college", "employer", "user"],
                    [(0, 1), (0, 2), (3, 1), (3, 2)],
                )
            ],
            anchor_type="user",
        )
        with pytest.raises(LearningError):
            dual_stage_train(ds.graph, square_only, triplets, 1)


class TestMultiStage:
    def test_stops_on_callback(self, linkedin_setup):
        ds, catalog, triplets = linkedin_setup
        stages_seen = []

        def stop(_weights, stage):
            stages_seen.append(stage)
            return stage >= 2

        result = multi_stage_train(
            ds.graph, catalog, triplets, batch_size=2, max_stages=5,
            stop=stop, trainer=FAST_TRAINER,
        )
        assert max(stages_seen) == 2
        assert len(result.candidate_ids) == 4  # two stages of two
        assert len(set(result.candidate_ids)) == 4

    def test_exhausts_catalog_gracefully(self, linkedin_setup):
        ds, catalog, triplets = linkedin_setup
        result = multi_stage_train(
            ds.graph, catalog, triplets, batch_size=1000, max_stages=3,
            stop=lambda _w, _s: False, trainer=FAST_TRAINER,
        )
        assert set(result.matched_ids) == set(catalog.ids())
