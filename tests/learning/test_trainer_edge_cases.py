"""Edge-case tests for the gradient-ascent trainer."""

import numpy as np
import pytest

from repro.index.vectors import build_vectors
from repro.learning.trainer import Trainer, TrainerConfig
from repro.metagraph.catalog import MetagraphCatalog


@pytest.fixture
def vectors(toy_graph, toy_metagraphs):
    catalog = MetagraphCatalog(toy_metagraphs.values(), anchor_type="user")
    store, _ = build_vectors(toy_graph, catalog)
    return store

TRIPLETS = [("Bob", "Alice", "Tom"), ("Alice", "Bob", "Kate")]


class TestOvershootHandling:
    def test_huge_learning_rate_still_converges(self, vectors):
        """The halving-on-overshoot loop must tame absurd learning rates."""
        trainer = Trainer(
            TrainerConfig(learning_rate=1e6, restarts=1, max_iterations=300)
        )
        weights = trainer.train(TRIPLETS, vectors)
        run = trainer.last_run
        assert run is not None
        # likelihood never decreased along the accepted steps
        assert all(
            b >= a - 1e-12 for a, b in zip(run.history, run.history[1:])
        )
        assert np.all((0 <= weights) & (weights <= 1))

    def test_tiny_learning_rate_flags_convergence(self, vectors):
        trainer = Trainer(
            TrainerConfig(learning_rate=1e-12, restarts=1, max_iterations=50)
        )
        trainer.train(TRIPLETS, vectors)
        assert trainer.last_run is not None
        # with a vanishing step the relative-change criterion fires fast
        assert trainer.last_run.converged

    def test_zero_max_iterations_returns_initial(self, vectors):
        trainer = Trainer(TrainerConfig(restarts=1, max_iterations=0))
        weights = trainer.train(TRIPLETS, vectors)
        assert np.all((0 <= weights) & (weights <= 1))


class TestRestarts:
    def test_best_restart_kept(self, vectors):
        single = Trainer(TrainerConfig(restarts=1, max_iterations=200, seed=0))
        multi = Trainer(TrainerConfig(restarts=5, max_iterations=200, seed=0))
        single.train(TRIPLETS, vectors)
        multi.train(TRIPLETS, vectors)
        assert (
            multi.last_run.log_likelihood >= single.last_run.log_likelihood - 1e-9
        )

    def test_restart_count_reported(self, vectors):
        trainer = Trainer(TrainerConfig(restarts=3, max_iterations=50))
        trainer.train(TRIPLETS, vectors)
        assert trainer.last_run.restarts_run == 3


class TestDecaySchedule:
    def test_decay_changes_trajectory_not_correctness(self, vectors):
        fast_decay = Trainer(
            TrainerConfig(restarts=1, max_iterations=300, decay=0.5, decay_every=10)
        )
        no_decay = Trainer(
            TrainerConfig(restarts=1, max_iterations=300, decay=1.0, decay_every=10)
        )
        w1 = fast_decay.train(TRIPLETS, vectors)
        w2 = no_decay.train(TRIPLETS, vectors)
        for w in (w1, w2):
            assert np.all((0 <= w) & (w <= 1))
