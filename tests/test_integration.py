"""Cross-module integration tests: the full Fig. 3 pipeline.

These tests run mine -> match -> index -> learn -> rank end to end on
the tiny datasets and assert semantic outcomes (the planted structure is
recovered), not just types and shapes.
"""

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.eval.harness import evaluate_ranker, model_ranker
from repro.eval.splits import split_queries
from repro.index.vectors import MetagraphVectors, build_vectors
from repro.learning.dual_stage import dual_stage_train
from repro.learning.examples import generate_triplets
from repro.learning.model import ProximityModel
from repro.learning.trainer import Trainer, TrainerConfig
from repro.metagraph.metagraph import Metagraph, metapath
from repro.mining import MinerConfig, mine_catalog

TRAINER = Trainer(TrainerConfig(restarts=3, max_iterations=400, seed=0))


@pytest.fixture(scope="module")
def linkedin():
    dataset = load_dataset("linkedin", scale="tiny")
    catalog = mine_catalog(dataset.graph, MinerConfig(max_nodes=4, min_support=3))
    vectors, index = build_vectors(dataset.graph, catalog)
    return dataset, catalog, vectors, index


@pytest.fixture(scope="module")
def facebook():
    dataset = load_dataset("facebook", scale="tiny")
    catalog = mine_catalog(dataset.graph, MinerConfig(max_nodes=4, min_support=3))
    vectors, index = build_vectors(dataset.graph, catalog)
    return dataset, catalog, vectors, index


def train_class(dataset, vectors, class_name, seed=0, num_examples=150):
    labels = dataset.class_labels(class_name)
    split = split_queries(dataset.queries(class_name), 0.2, 1, seed=seed)[0]
    triplets = generate_triplets(
        split.train, labels, dataset.universe, num_examples, seed=seed
    )
    weights = TRAINER.train(triplets, vectors)
    return weights, split, labels


class TestLinkedInPipeline:
    def test_learned_model_beats_uniform(self, linkedin):
        dataset, _catalog, vectors, _index = linkedin
        weights, split, labels = train_class(dataset, vectors, "college")
        learned = ProximityModel(weights, vectors)
        uniform = ProximityModel(
            np.ones(vectors.catalog_size), vectors
        )
        learned_eval = evaluate_ranker(
            model_ranker(learned, dataset.universe), split.test, labels
        )
        uniform_eval = evaluate_ranker(
            model_ranker(uniform, dataset.universe), split.test, labels
        )
        assert learned_eval.ndcg > uniform_eval.ndcg

    def test_college_class_weights_involve_college_type(self, linkedin):
        dataset, catalog, vectors, _index = linkedin
        weights, _split, _labels = train_class(dataset, vectors, "college")
        top_ids = np.argsort(-weights)[:3]
        assert any("college" in catalog[int(i)].types for i in top_ids)

    def test_different_classes_learn_different_weights(self, linkedin):
        dataset, catalog, vectors, _index = linkedin
        w_college, _s, _l = train_class(dataset, vectors, "college")
        w_coworker, _s, _l = train_class(dataset, vectors, "coworker")
        # The college+employer square legitimately characterises BOTH
        # classes (it satisfies both conjunctive rules), so the argmax
        # may coincide; the class difference shows in how the weight
        # mass distributes over college-only vs employer-only shapes.
        def mass(weights, required_type: str) -> float:
            return sum(
                float(weights[i])
                for i in catalog.ids()
                if required_type in catalog[i].types
            )

        assert mass(w_college, "college") > 0
        assert mass(w_coworker, "employer") > 0
        # and the full vectors must not be (near-)identical
        assert not np.allclose(w_college, w_coworker, atol=0.05)

    def test_reasonable_absolute_accuracy(self, linkedin):
        dataset, _catalog, vectors, _index = linkedin
        weights, split, labels = train_class(dataset, vectors, "coworker")
        model = ProximityModel(weights, vectors)
        result = evaluate_ranker(
            model_ranker(model, dataset.universe), split.test, labels
        )
        assert result.ndcg > 0.5  # far above chance on planted data


class TestFacebookPipeline:
    def test_family_class_uses_surname(self, facebook):
        dataset, catalog, vectors, _index = facebook
        weights, _split, _labels = train_class(dataset, vectors, "family")
        top_ids = np.argsort(-weights)[:5]
        assert any("surname" in catalog[int(i)].types for i in top_ids)

    def test_classmate_class_uses_school(self, facebook):
        dataset, catalog, vectors, _index = facebook
        weights, _split, _labels = train_class(dataset, vectors, "classmate")
        top_ids = np.argsort(-weights)[:5]
        top_types = {t for i in top_ids for t in catalog[int(i)].types}
        assert top_types & {"school", "degree", "major"}


class TestDualStageMatchesFullTraining:
    def test_dual_stage_accuracy_close_to_full(self, linkedin):
        """Fig. 8's headline at test scale: small |K|, near-full accuracy."""
        dataset, catalog, vectors, _index = linkedin
        class_name = "college"
        labels = dataset.class_labels(class_name)
        split = split_queries(dataset.queries(class_name), 0.2, 1, seed=0)[0]
        triplets = generate_triplets(
            split.train, labels, dataset.universe, 150, seed=0
        )
        full_weights = TRAINER.train(triplets, vectors)
        full_eval = evaluate_ranker(
            model_ranker(ProximityModel(full_weights, vectors), dataset.universe),
            split.test, labels,
        )
        result = dual_stage_train(
            dataset.graph, catalog, triplets,
            num_candidates=max(2, len(catalog) // 3), trainer=TRAINER,
        )
        dual_eval = evaluate_ranker(
            model_ranker(
                ProximityModel(result.weights, result.vectors), dataset.universe
            ),
            split.test, labels,
        )
        assert dual_eval.ndcg >= full_eval.ndcg - 0.1
        assert len(result.matched_ids) < len(catalog)


class TestArtefactRoundTrip:
    def test_save_load_preserves_ranking(self, linkedin, tmp_path):
        dataset, _catalog, vectors, _index = linkedin
        weights, split, _labels = train_class(dataset, vectors, "college")
        model = ProximityModel(weights, vectors, name="college")
        model.save_weights(tmp_path / "w.json")
        vectors.save(tmp_path / "v.json")
        restored_vectors = MetagraphVectors.load(tmp_path / "v.json")
        restored = ProximityModel.load_weights(tmp_path / "w.json", restored_vectors)
        query = split.test[0]
        assert restored.rank(query, k=10) == model.rank(query, k=10)


class TestMinedCatalogContainsExpectedShapes:
    def test_squares_present(self, linkedin):
        _dataset, catalog, _vectors, _index = linkedin
        square = Metagraph(
            ["user", "college", "location", "user"],
            [(0, 1), (0, 2), (3, 1), (3, 2)],
        )
        assert square in catalog

    def test_metapaths_present(self, linkedin):
        _dataset, catalog, _vectors, _index = linkedin
        assert metapath("user", "college", "user") in catalog
        assert metapath("user", "employer", "user") in catalog
