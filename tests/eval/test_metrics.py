"""Tests for ranking metrics, incl. property tests on metric invariants."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.metrics import (
    average_precision_at_k,
    dcg_at_k,
    ideal_dcg_at_k,
    mean,
    ndcg_at_k,
    precision_at_k,
    reciprocal_rank,
)


class TestNDCG:
    def test_perfect_ranking(self):
        assert ndcg_at_k(["a", "b", "c"], {"a", "b"}, k=10) == pytest.approx(1.0)

    def test_worst_ranking(self):
        ranked = ["x1", "x2", "x3", "x4", "x5", "x6", "x7", "x8", "x9", "x10", "a"]
        assert ndcg_at_k(ranked, {"a"}, k=10) == 0.0

    def test_single_relevant_at_position_two(self):
        value = ndcg_at_k(["x", "a"], {"a"}, k=10)
        assert value == pytest.approx((1 / math.log2(3)) / 1.0)

    def test_empty_relevant(self):
        assert ndcg_at_k(["a"], set(), k=10) == 0.0

    def test_ideal_dcg(self):
        assert ideal_dcg_at_k(3, 10) == pytest.approx(
            1 + 1 / math.log2(3) + 1 / math.log2(4)
        )
        assert ideal_dcg_at_k(20, 10) == ideal_dcg_at_k(10, 10)

    @given(st.integers(0, 1000))
    @settings(max_examples=50, deadline=None)
    def test_range_and_monotone_under_improvement(self, seed):
        rng = random.Random(seed)
        items = [f"i{j}" for j in range(20)]
        relevant = set(rng.sample(items, rng.randint(1, 10)))
        ranked = items[:]
        rng.shuffle(ranked)
        base = ndcg_at_k(ranked, relevant, k=10)
        assert 0.0 <= base <= 1.0
        # moving a relevant item to the front never hurts
        for item in ranked:
            if item in relevant:
                promoted = [item] + [x for x in ranked if x != item]
                assert ndcg_at_k(promoted, relevant, k=10) >= base - 1e-12
                break


class TestMAP:
    def test_perfect(self):
        assert average_precision_at_k(["a", "b"], {"a", "b"}, k=10) == 1.0

    def test_half(self):
        # relevant at positions 1 and 3 of 3 -> (1 + 2/3)/2
        value = average_precision_at_k(["a", "x", "b"], {"a", "b"}, k=10)
        assert value == pytest.approx((1.0 + 2.0 / 3.0) / 2.0)

    def test_no_relevant(self):
        assert average_precision_at_k(["a"], set(), k=10) == 0.0

    def test_truncation_at_k(self):
        ranked = ["x"] * 10 + ["a"]
        assert average_precision_at_k(ranked, {"a"}, k=10) == 0.0

    @given(st.integers(0, 1000))
    @settings(max_examples=50, deadline=None)
    def test_range(self, seed):
        rng = random.Random(seed)
        items = [f"i{j}" for j in range(15)]
        relevant = set(rng.sample(items, rng.randint(1, 5)))
        rng.shuffle(items)
        value = average_precision_at_k(items, relevant, k=10)
        assert 0.0 <= value <= 1.0


class TestEdgeCases:
    """k=0, empty relevant sets, and k beyond the ranking length."""

    def test_k_zero_everywhere(self):
        ranked, relevant = ["a", "b"], {"a"}
        assert ndcg_at_k(ranked, relevant, k=0) == 0.0
        assert average_precision_at_k(ranked, relevant, k=0) == 0.0
        assert precision_at_k(ranked, relevant, k=0) == 0.0
        assert dcg_at_k(ranked, relevant, k=0) == 0.0
        assert ideal_dcg_at_k(3, 0) == 0.0

    def test_empty_relevant_everywhere(self):
        ranked = ["a", "b", "c"]
        assert ndcg_at_k(ranked, set(), k=5) == 0.0
        assert average_precision_at_k(ranked, set(), k=5) == 0.0
        assert precision_at_k(ranked, set(), k=2) == 0.0
        assert reciprocal_rank(ranked, set()) == 0.0

    def test_k_beyond_ranking_length(self):
        # the prefix is just the whole ranking; nothing is double-counted
        assert ndcg_at_k(["a"], {"a"}, k=100) == pytest.approx(1.0)
        assert average_precision_at_k(["a"], {"a"}, k=100) == pytest.approx(1.0)
        # idcg still normalises by min(R, k), not the ranking length
        value = ndcg_at_k(["a"], {"a", "b", "c"}, k=100)
        assert value == pytest.approx(1.0 / ideal_dcg_at_k(3, 100))

    def test_empty_ranking(self):
        assert ndcg_at_k([], {"a"}, k=10) == 0.0
        assert average_precision_at_k([], {"a"}, k=10) == 0.0
        assert reciprocal_rank([], {"a"}) == 0.0

    def test_negative_k_is_zero(self):
        assert average_precision_at_k(["a"], {"a"}, k=-1) == 0.0
        assert precision_at_k(["a"], {"a"}, k=-1) == 0.0
        assert dcg_at_k(["a", "b"], {"a"}, k=-1) == 0.0
        assert ndcg_at_k(["a", "b"], {"a"}, k=-1) == 0.0


class TestOtherMetrics:
    def test_precision(self):
        assert precision_at_k(["a", "x"], {"a"}, k=2) == 0.5
        assert precision_at_k([], {"a"}, k=0) == 0.0

    def test_reciprocal_rank(self):
        assert reciprocal_rank(["x", "a"], {"a"}) == 0.5
        assert reciprocal_rank(["x"], {"a"}) == 0.0

    def test_dcg_positions(self):
        assert dcg_at_k(["a", "b"], {"a", "b"}, k=2) == pytest.approx(
            1.0 + 1 / math.log2(3)
        )

    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0
