"""Tests for query splits and the evaluation harness."""

import pytest

from repro.exceptions import DatasetError
from repro.eval.harness import (
    EvalResult,
    average_results,
    evaluate_ranker,
    model_ranker,
)
from repro.eval.splits import split_queries


class TestSplits:
    QUERIES = [f"q{i}" for i in range(20)]

    def test_paper_protocol_shape(self):
        splits = split_queries(self.QUERIES, 0.2, num_splits=10, seed=0)
        assert len(splits) == 10
        for split in splits:
            assert len(split.train) == 4
            assert len(split.test) == 16
            assert not set(split.train) & set(split.test)
            assert set(split.train) | set(split.test) == set(self.QUERIES)

    def test_deterministic(self):
        a = split_queries(self.QUERIES, 0.2, 5, seed=1)
        b = split_queries(self.QUERIES, 0.2, 5, seed=1)
        assert a == b

    def test_different_seeds_differ(self):
        a = split_queries(self.QUERIES, 0.2, 5, seed=1)
        b = split_queries(self.QUERIES, 0.2, 5, seed=2)
        assert a != b

    def test_minimum_one_train(self):
        splits = split_queries(["a", "b"], 0.2, 1, seed=0)
        assert len(splits[0].train) == 1
        assert len(splits[0].test) == 1

    def test_empty_rejected(self):
        with pytest.raises(DatasetError):
            split_queries([], 0.2, 1)

    def test_bad_fraction_rejected(self):
        with pytest.raises(DatasetError):
            split_queries(["a"], 1.5, 1)

    def test_bad_count_rejected(self):
        with pytest.raises(DatasetError):
            split_queries(["a"], 0.2, 0)


class TestHarness:
    LABELS = {
        "q1": frozenset({"a", "b"}),
        "q2": frozenset({"c"}),
        "q3": frozenset(),  # no positives -> skipped
    }

    def test_perfect_ranker(self):
        def ranker(q):
            return sorted(self.LABELS[q]) + ["z1", "z2"]

        result = evaluate_ranker(ranker, ["q1", "q2", "q3"], self.LABELS)
        assert result.ndcg == pytest.approx(1.0)
        assert result.map == pytest.approx(1.0)
        assert result.num_queries == 2  # q3 skipped

    def test_awful_ranker(self):
        def ranker(_q):
            return [f"z{i}" for i in range(10)]

        result = evaluate_ranker(ranker, ["q1", "q2"], self.LABELS)
        assert result.ndcg == 0.0
        assert result.map == 0.0

    def test_query_not_counted_as_relevant_to_itself(self):
        labels = {"q": frozenset({"q", "a"})}

        def ranker(_q):
            return ["a"]

        result = evaluate_ranker(ranker, ["q"], labels)
        assert result.ndcg == pytest.approx(1.0)

    def test_average_results(self):
        pooled = average_results(
            [EvalResult(0.5, 0.4, 10), EvalResult(0.7, 0.6, 10)]
        )
        assert pooled.ndcg == pytest.approx(0.6)
        assert pooled.map == pytest.approx(0.5)
        assert pooled.num_queries == 20

    def test_average_results_empty(self):
        assert average_results([]) == EvalResult(0.0, 0.0, 0)

    def test_add_weighted(self):
        combined = EvalResult(1.0, 1.0, 1) + EvalResult(0.0, 0.0, 3)
        assert combined.ndcg == pytest.approx(0.25)
        assert combined.num_queries == 4


class TestModelRanker:
    def test_adapts_proximity_model(self, toy_graph, toy_metagraphs):
        import numpy as np

        from repro.index.vectors import build_vectors
        from repro.learning.model import ProximityModel
        from repro.metagraph.catalog import MetagraphCatalog

        catalog = MetagraphCatalog(toy_metagraphs.values(), anchor_type="user")
        vectors, _ = build_vectors(toy_graph, catalog)
        model = ProximityModel(np.ones(4), vectors)
        users = ["Alice", "Bob", "Kate", "Jay", "Tom"]
        ranker = model_ranker(model, users)
        ranked = ranker("Bob")
        assert "Bob" not in ranked
        assert set(ranked) == set(users) - {"Bob"}
