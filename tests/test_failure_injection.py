"""Failure-injection tests: every subsystem must fail loudly and early.

The library's error contract: malformed inputs raise a typed exception
from :mod:`repro.exceptions` (never a bare KeyError/IndexError from deep
inside, never silent wrong answers).
"""

import numpy as np
import pytest

from repro.exceptions import (
    CatalogMismatchError,
    DatasetError,
    InvalidMetagraphError,
    LearningError,
    MetagraphError,
    ReproError,
    TrainingDataError,
)
from repro.index.vectors import MetagraphVectors, build_vectors
from repro.learning.model import ProximityModel
from repro.learning.trainer import Trainer
from repro.metagraph.catalog import MetagraphCatalog
from repro.metagraph.metagraph import Metagraph, metapath


class TestExceptionHierarchy:
    def test_all_library_errors_are_repro_errors(self):
        for exc_type in (
            CatalogMismatchError,
            DatasetError,
            InvalidMetagraphError,
            LearningError,
            MetagraphError,
            TrainingDataError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_dual_inheritance_for_value_errors(self):
        # callers catching stdlib ValueError still see our failures
        assert issubclass(InvalidMetagraphError, ValueError)
        assert issubclass(CatalogMismatchError, ValueError)


class TestCatalogMismatches:
    def test_vectors_reject_foreign_catalog(self, toy_graph, toy_metagraphs):
        catalog = MetagraphCatalog(toy_metagraphs.values(), anchor_type="user")
        vectors, _ = build_vectors(toy_graph, catalog)
        smaller = catalog.subset([0, 1])
        with pytest.raises(CatalogMismatchError):
            vectors.verify_catalog(smaller)

    def test_build_vectors_rejects_stale_store(self, toy_graph, toy_metagraphs):
        catalog = MetagraphCatalog(toy_metagraphs.values(), anchor_type="user")
        stale = MetagraphVectors(catalog_size=2)
        with pytest.raises(CatalogMismatchError):
            build_vectors(toy_graph, catalog, vectors=stale)

    def test_model_rejects_mismatched_weights(self, toy_graph, toy_metagraphs):
        catalog = MetagraphCatalog(toy_metagraphs.values(), anchor_type="user")
        vectors, _ = build_vectors(toy_graph, catalog)
        with pytest.raises(LearningError):
            ProximityModel(np.ones(99), vectors)


class TestCatalogAbuse:
    def test_duplicate_member_rejected(self, toy_metagraphs):
        catalog = MetagraphCatalog([toy_metagraphs["M1"]])
        relabelled = toy_metagraphs["M1"].relabeled([3, 1, 2, 0])
        with pytest.raises(MetagraphError):
            catalog.add(relabelled)  # isomorphic duplicate

    def test_lookup_of_absent_member(self, toy_metagraphs):
        catalog = MetagraphCatalog([toy_metagraphs["M1"]])
        with pytest.raises(MetagraphError):
            catalog.id_of(toy_metagraphs["M2"])


class TestTrainingAbuse:
    def test_triplet_with_unknown_nodes_yields_zero_vectors(
        self, toy_graph, toy_metagraphs
    ):
        # unknown nodes are not an error (vectors are simply zero), but
        # training on only-unknown nodes must still converge harmlessly
        catalog = MetagraphCatalog(toy_metagraphs.values(), anchor_type="user")
        vectors, _ = build_vectors(toy_graph, catalog)
        ghost_triplets = [("ghost1", "ghost2", "ghost3")] * 4
        weights = Trainer().train(ghost_triplets, vectors)
        assert np.all(weights >= 0)

    def test_empty_triplets(self, toy_graph, toy_metagraphs):
        catalog = MetagraphCatalog(toy_metagraphs.values(), anchor_type="user")
        vectors, _ = build_vectors(toy_graph, catalog)
        with pytest.raises(TrainingDataError):
            Trainer().train([], vectors)


class TestMetagraphValidation:
    @pytest.mark.parametrize(
        "types,edges",
        [
            ([], []),
            (["user"], [(0, 0)]),
            (["user", "user"], [(0, 5)]),
            (["user", "user", "user"], [(0, 1)]),  # disconnected
            ([""], []),
        ],
    )
    def test_invalid_constructions(self, types, edges):
        with pytest.raises(InvalidMetagraphError):
            Metagraph(types, edges)

    def test_metapath_of_nothing(self):
        with pytest.raises(InvalidMetagraphError):
            metapath()
