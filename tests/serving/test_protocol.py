"""The shard wire protocol: framing, codecs, digests, remote errors.

The process serving tier's bit-identical claim rests on this layer:
JSON's shortest-repr float round trip must preserve score/weight bits
exactly, the error envelope must carry a worker-side ``ReproError``
across the boundary type- and message-intact, and the executor must
serve from content-addressed caches so any replica answers any
request identically.
"""

from __future__ import annotations

import socket

import numpy as np
import pytest

from repro.exceptions import QueryError, ServingError
from repro.index.vectors import build_vectors
from repro.learning.model import SortedUniverse, uniform_model
from repro.serving import ShardExecutor, partition_compiled, recv_frame, send_frame
from repro.serving.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ScoreRequest,
    decode_rankings,
    encode_error,
    encode_rankings,
    raise_remote_error,
    score_group_on_shard,
    universe_digest,
    weights_digest,
)
from tests.conftest import random_typed_graph
from tests.serving.test_shards import synthetic_catalog


@pytest.fixture(scope="module")
def compiled_setup():
    graph = random_typed_graph(seed=7, num_users=40)
    vectors, _ = build_vectors(graph, synthetic_catalog())
    model = uniform_model(vectors).compile()
    universe = SortedUniverse(graph.nodes_of_type("user"))
    return vectors.compile(), model, universe


class TestFraming:
    def test_round_trip(self):
        a, b = socket.socketpair()
        try:
            doc = {"op": "ping", "floats": [0.1, 1 / 3, 2.0**-52], "nest": {"x": [1, None]}}
            send_frame(a, doc)
            assert recv_frame(b) == doc
        finally:
            a.close()
            b.close()

    def test_clean_eof_is_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_mid_frame_eof_raises(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"\x00\x00\x00\x10abc")  # announces 16, sends 3
            a.close()
            with pytest.raises(ServingError, match="mid-frame"):
                recv_frame(b)
        finally:
            b.close()

    def test_oversized_announcement_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
            with pytest.raises(ServingError, match="corrupt stream|limit"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_non_object_frame_rejected(self):
        a, b = socket.socketpair()
        try:
            payload = b"[1,2,3]"
            a.sendall(len(payload).to_bytes(4, "big") + payload)
            with pytest.raises(ServingError, match="JSON object"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_float_bits_survive_the_wire(self):
        # shortest-repr JSON round trip is exact for float64 — the fact
        # the bit-identical-over-the-wire guarantee rests on
        rng = np.random.default_rng(3)
        values = list(rng.random(100)) + [2.0 / 3.0, 1e-300, 1.5e300]
        a, b = socket.socketpair()
        try:
            send_frame(a, {"v": values})
            echoed = recv_frame(b)["v"]
        finally:
            a.close()
            b.close()
        assert [f.hex() for f in echoed] == [f.hex() for f in values]


class TestDigests:
    def test_weights_digest_is_content_addressed(self):
        w = np.array([0.25, 0.5, 0.125])
        assert weights_digest(w) == weights_digest(w.copy())
        assert weights_digest(w) != weights_digest(np.array([0.25, 0.5, 0.126]))

    def test_universe_digest_cached_on_instance(self):
        u = SortedUniverse(["b", "a", "c"])
        first = universe_digest(u)
        assert universe_digest(u) is u._wire_digest
        assert first == universe_digest(SortedUniverse(["c", "a", "b"]))
        assert first != universe_digest(SortedUniverse(["a", "b"]))


class TestErrorEnvelope:
    def test_repro_error_round_trips_type_and_message(self):
        doc = encode_error(QueryError("node 'ghost' is not in the graph"))
        assert doc["ok"] is False
        with pytest.raises(QueryError, match="node 'ghost' is not in the graph"):
            raise_remote_error(doc["error"])

    def test_foreign_exception_degrades_to_serving_error(self):
        doc = encode_error(ZeroDivisionError("boom"))
        with pytest.raises(ServingError, match="ZeroDivisionError: boom"):
            raise_remote_error(doc["error"])

    def test_unknown_type_name_degrades_to_serving_error(self):
        with pytest.raises(ServingError, match="weird"):
            raise_remote_error({"type": "NoSuchError", "message": "weird"})

    def test_non_exception_type_name_cannot_be_smuggled(self):
        # a name that exists in repro.exceptions but is not a ReproError
        # subclass must not be instantiated off the wire
        with pytest.raises(ServingError):
            raise_remote_error({"type": "annotations", "message": "x"})


class TestRankingsCodec:
    def test_round_trip_with_tuple_node_ids(self):
        results = {3: [("u1", 0.5), (("pair", 2), 1 / 3)], 0: []}
        assert decode_rankings(encode_rankings(results)) == results


class TestScoreRequestWire:
    def test_universe_rides_only_when_asked(self):
        universe = SortedUniverse(["u1", "u2"])
        request = ScoreRequest(
            queries=[(0, "u1", 4)], weights=np.array([1.0, 2.0]), k=3,
            universe=universe,
        )
        lean = request.to_wire()
        assert "universe" not in lean
        assert lean["universe_digest"] == universe_digest(universe)
        assert lean["v"] == PROTOCOL_VERSION
        request.include_universe = True
        assert request.to_wire()["universe"] == ["u1", "u2"]

    def test_no_universe_means_null_digest(self):
        request = ScoreRequest(
            queries=[(0, "u1", 4)], weights=np.array([1.0]), k=None
        )
        doc = request.to_wire()
        assert doc["universe_digest"] is None
        assert doc["k"] is None


class TestShardExecutor:
    def _executor_and_inputs(self, compiled_setup, num_shards=3):
        compiled, model, universe = compiled_setup
        shards = partition_compiled(compiled, num_shards)
        shard = shards[1]
        pos = shard.lo  # first owned row
        node = compiled.nodes[pos]
        return ShardExecutor(shard), shard, model, universe, node, pos

    def test_hello_describes_the_shard(self, compiled_setup):
        executor, shard, *_ = self._executor_and_inputs(compiled_setup)
        hello = executor.hello()
        assert hello["ok"] and hello["shard"] == shard.shard_id
        assert (hello["lo"], hello["hi"]) == (shard.lo, shard.hi)
        assert hello["protocol"] == PROTOCOL_VERSION

    def test_cold_universe_yields_need_frame_then_serves(self, compiled_setup):
        executor, shard, model, universe, node, pos = self._executor_and_inputs(
            compiled_setup
        )
        request = ScoreRequest(
            queries=[(0, node, pos)], weights=model.weights, k=5,
            universe=universe,
        )
        first = executor.execute(request.to_wire())
        assert first == {
            "ok": False,
            "need": "universe",
            "universe_digest": universe_digest(universe),
        }
        request.include_universe = True
        warm = executor.execute(request.to_wire())
        assert warm["ok"]
        # steady state: digest-only requests now serve from the cache
        request.include_universe = False
        assert executor.execute(request.to_wire()) == warm

    def test_wire_results_match_direct_scoring_bit_for_bit(self, compiled_setup):
        executor, shard, model, universe, node, pos = self._executor_and_inputs(
            compiled_setup
        )
        node_dots = shard.node_dot_products(model.weights)
        pair_dots = shard.pair_dot_products(model.weights)
        direct = score_group_on_shard(
            shard, node_dots, pair_dots, [(0, node, pos)], universe, 7
        )
        request = ScoreRequest(
            queries=[(0, node, pos)], weights=model.weights, k=7,
            universe=universe, include_universe=True,
        )
        response = executor.execute(request.to_wire())
        assert decode_rankings(response["results"]) == direct

    def test_remote_query_error_envelope(self, compiled_setup):
        executor, shard, model, universe, node, pos = self._executor_and_inputs(
            compiled_setup
        )
        bad_pos = shard.hi  # first row the shard does NOT own
        request = ScoreRequest(
            queries=[(0, node, bad_pos)], weights=model.weights, k=5,
            universe=universe, include_universe=True,
        )
        response = executor.execute(request.to_wire())
        assert response["ok"] is False
        assert response["error"]["type"] == "QueryError"
        with pytest.raises(QueryError, match="outside shard"):
            raise_remote_error(response["error"])

    def test_version_mismatch_refused(self, compiled_setup):
        executor, *_ = self._executor_and_inputs(compiled_setup)
        response = executor.execute({"op": "score", "v": PROTOCOL_VERSION + 1})
        assert not response["ok"]
        assert "version mismatch" in response["error"]["message"]

    def test_unknown_op_refused(self, compiled_setup):
        executor, *_ = self._executor_and_inputs(compiled_setup)
        response = executor.execute({"op": "explode"})
        assert not response["ok"] and "unknown protocol op" in response["error"]["message"]

    def test_dot_products_cached_by_digest(self, compiled_setup):
        executor, _shard, model, *_ = self._executor_and_inputs(compiled_setup)
        first = executor.dot_products(model.weights)
        again = executor.dot_products(np.array(model.weights, copy=True))
        assert first[0] is again[0] and first[1] is again[1]
