"""Query frontend: coalesced batching parity, caching, hot reload, HTTP.

The frontend's one hard promise: a query that rode a dynamic batch
returns *bit-identical* results to calling ``query_many`` directly —
for every k, every backend transport, and on both sides of a live
snapshot reload.  Everything else here (cache coherence across swaps,
eager validation keeping bad queries out of shared batches, the HTTP
status mapping) defends that promise's edges.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.exceptions import QueryError, ServingError
from repro.index.delta import GraphDelta
from repro.serving import (
    BatchCoalescer,
    FrontendConfig,
    FrontendServer,
    QueryFrontend,
    ResultCache,
)
from repro.serving.frontend import parse_listen
from tests.serving.test_facade_sharded import toy_engine

K_VALUES = (1, 5, 16)


@pytest.fixture
def thread_engine():
    engine, ds = toy_engine(shards=2, serving_workers=2)
    engine.fit("family", labels=ds.class_labels("family"), num_examples=40)
    yield engine, ds
    engine.close()


@pytest.fixture(scope="module")
def process_engine():
    engine, ds = toy_engine(
        shards=2, serving_workers=2, serving_backend="process", replicas=1
    )
    engine.fit("family", labels=ds.class_labels("family"), num_examples=40)
    yield engine, ds
    engine.close()


def frontend_for(engine, **overrides) -> QueryFrontend:
    defaults = dict(max_batch=4, max_delay_ms=5.0, cache_size=64)
    defaults.update(overrides)
    return QueryFrontend(engine, config=FrontendConfig(**defaults))


def query_all_concurrently(frontend, queries, k):
    """Every query from its own thread — the coalescer's real workload."""
    results: dict = {}
    errors: list[BaseException] = []

    def one(query) -> None:
        try:
            results[query] = frontend.query("family", query, k=k)
        except BaseException as exc:  # noqa: BLE001 — surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=one, args=(q,)) for q in queries]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors
    return results


class TestCoalescer:
    def test_full_batch_flushes_without_waiting(self):
        batches: list[list] = []

        def dispatch(_cls, queries, _k):
            batches.append(list(queries))
            return [[(q, 1.0)] for q in queries]

        co = BatchCoalescer(dispatch, max_batch=3, max_delay=30.0)
        try:
            futures = [co.submit("c", f"q{i}", 5) for i in range(3)]
            # max_delay is 30s: only the size trigger can flush this
            assert [f.result(timeout=5) for f in futures] == [
                [("q0", 1.0)], [("q1", 1.0)], [("q2", 1.0)],
            ]
            assert batches == [["q0", "q1", "q2"]]
        finally:
            co.close()

    def test_delay_flushes_partial_batch(self):
        def dispatch(_cls, queries, _k):
            return [[(q, 1.0)] for q in queries]

        co = BatchCoalescer(dispatch, max_batch=1000, max_delay=0.02)
        try:
            future = co.submit("c", "lonely", 5)
            assert future.result(timeout=5) == [("lonely", 1.0)]
        finally:
            co.close()

    def test_distinct_class_and_k_never_share_a_batch(self):
        batches: list[tuple] = []

        def dispatch(cls, queries, k):
            batches.append((cls, list(queries), k))
            return [[(q, 1.0)] for q in queries]

        co = BatchCoalescer(dispatch, max_batch=10, max_delay=0.02)
        try:
            futures = [
                co.submit("a", "q1", 5),
                co.submit("a", "q2", 7),
                co.submit("b", "q3", 5),
            ]
            for future in futures:
                future.result(timeout=5)
            assert sorted(b[:1] + b[2:] for b in batches) == [
                ("a", 5), ("a", 7), ("b", 5),
            ]
        finally:
            co.close()

    def test_dispatch_error_fails_every_future_in_the_batch(self):
        def dispatch(_cls, _queries, _k):
            raise ServingError("fleet on fire")

        co = BatchCoalescer(dispatch, max_batch=2, max_delay=30.0)
        try:
            futures = [co.submit("c", f"q{i}", 5) for i in range(2)]
            for future in futures:
                with pytest.raises(ServingError, match="fleet on fire"):
                    future.result(timeout=5)
        finally:
            co.close()

    def test_wrong_cardinality_is_a_serving_error(self):
        co = BatchCoalescer(lambda *_: [], max_batch=1, max_delay=30.0)
        try:
            with pytest.raises(ServingError, match="0 rankings"):
                co.submit("c", "q", 5).result(timeout=5)
        finally:
            co.close()

    def test_close_flushes_pending_then_rejects(self):
        def dispatch(_cls, queries, _k):
            return [[(q, 1.0)] for q in queries]

        co = BatchCoalescer(dispatch, max_batch=1000, max_delay=30.0)
        future = co.submit("c", "pending", 5)
        co.close()
        assert future.result(timeout=5) == [("pending", 1.0)]
        with pytest.raises(ServingError, match="closed"):
            co.submit("c", "late", 5)


class TestBatchingParity:
    @pytest.mark.parametrize("k", K_VALUES)
    def test_thread_backend_parity(self, thread_engine, k):
        engine, _ds = thread_engine
        queries = list(engine.universe())
        expected = {
            q: r for q, r in zip(queries, engine.query_many("family", queries, k=k))
        }
        with frontend_for(engine, cache_size=0) as frontend:
            assert query_all_concurrently(frontend, queries, k) == expected

    @pytest.mark.parametrize("k", K_VALUES)
    def test_process_backend_parity(self, process_engine, k):
        engine, _ds = process_engine
        queries = list(engine.universe())
        expected = {
            q: r for q, r in zip(queries, engine.query_many("family", queries, k=k))
        }
        with frontend_for(engine, cache_size=0) as frontend:
            assert query_all_concurrently(frontend, queries, k) == expected

    def test_batches_actually_coalesce(self, thread_engine):
        engine, _ds = thread_engine
        queries = list(engine.universe())
        with frontend_for(
            engine, cache_size=0, max_batch=len(queries), max_delay_ms=50.0
        ) as frontend:
            query_all_concurrently(frontend, queries, 3)
            stats = frontend.stats()["batching"]
            assert stats["submitted"] == len(queries)
            # 5 concurrent queries into a 50ms window: strictly fewer
            # dispatches than queries, or the coalescer does nothing
            assert stats["batches"] < len(queries)
            assert stats["largest_batch"] > 1

    def test_bad_query_rejected_before_joining_a_batch(self, thread_engine):
        engine, _ds = thread_engine
        with frontend_for(engine) as frontend:
            with pytest.raises(QueryError):
                frontend.query("family", "NotANode", k=3)
            with pytest.raises(QueryError):
                frontend.query("family", "Music", k=3)  # off-anchor
            with pytest.raises(ValueError):
                frontend.query("family", "Kate", k=-1)
            # nothing was enqueued, so nothing was dispatched
            assert frontend.stats()["batching"]["submitted"] == 0
            # and a good neighbour still serves
            assert frontend.query("family", "Kate", k=3) == engine.query(
                "family", "Kate", k=3
            )


class TestCaching:
    def test_repeat_query_hits_the_cache(self, thread_engine):
        engine, _ds = thread_engine
        with frontend_for(engine) as frontend:
            first = frontend.query("family", "Kate", k=3)
            again = frontend.query("family", "Kate", k=3)
            assert again == first
            stats = frontend.stats()
            assert stats["cache"]["hits"] == 1
            assert stats["batching"]["submitted"] == 1  # second never dispatched

    def test_distinct_k_distinct_entries(self, thread_engine):
        engine, _ds = thread_engine
        with frontend_for(engine) as frontend:
            assert frontend.query("family", "Kate", k=1) != frontend.query(
                "family", "Kate", k=3
            )
            assert frontend.stats()["cache"]["hits"] == 0

    def test_ttl_expiry_recomputes(self, thread_engine):
        engine, _ds = thread_engine
        clock = [0.0]
        cache = ResultCache(max_size=64, ttl=10.0, clock=lambda: clock[0])
        with QueryFrontend(
            engine,
            config=FrontendConfig(max_batch=4, max_delay_ms=1.0),
            cache=cache,
        ) as frontend:
            first = frontend.query("family", "Kate", k=3)
            clock[0] = 11.0
            assert frontend.query("family", "Kate", k=3) == first
            assert cache.stats.expirations == 1
            assert frontend.stats()["batching"]["submitted"] == 2

    def test_disabled_cache_always_dispatches(self, thread_engine):
        engine, _ds = thread_engine
        with frontend_for(engine, cache_size=0) as frontend:
            frontend.query("family", "Kate", k=3)
            frontend.query("family", "Kate", k=3)
            assert frontend.stats()["batching"]["submitted"] == 2


class TestHotReload:
    def _publish_updated_snapshot(self, tmp_path: Path, labels):
        """A second engine applies a delta and publishes snapshot v2."""
        publisher, _ds = toy_engine(shards=2, serving_workers=2)
        publisher.fit("family", labels=labels, num_examples=40)
        delta = (
            GraphDelta()
            .add_node("Mia", "user")
            .add_edge("Mia", "College A")
            .add_edge("Mia", "Physics")
        )
        publisher.apply_updates(delta)
        snapshot = publisher.save_index(tmp_path / "v2")
        return publisher, snapshot

    @pytest.mark.parametrize("k", K_VALUES)
    def test_parity_before_and_after_reload(self, thread_engine, tmp_path, k):
        engine, ds = thread_engine
        labels = ds.class_labels("family")
        publisher, snapshot = self._publish_updated_snapshot(tmp_path, labels)
        with frontend_for(engine, cache_size=0) as frontend:
            before = list(engine.universe())
            expected = {
                q: r
                for q, r in zip(
                    before, publisher.query_many("family", before, k=k)
                )
            }
            outcome = frontend.reload(snapshot)
            after = list(engine.universe())
            assert "Mia" in after  # update-log suffix replayed onto the graph
            expected["Mia"] = publisher.query_many("family", ["Mia"], k=k)[0]
            assert query_all_concurrently(frontend, after, k) == expected
            assert outcome["digest"] == frontend.digest
        publisher.close()

    def test_reload_advances_digest_and_invalidates(
        self, thread_engine, tmp_path
    ):
        engine, ds = thread_engine
        labels = ds.class_labels("family")
        publisher, snapshot = self._publish_updated_snapshot(tmp_path, labels)
        with frontend_for(engine) as frontend:
            stale = frontend.query("family", "Kate", k=3)
            old_digest = frontend.digest
            outcome = frontend.reload(snapshot)
            assert outcome["digest"] != old_digest
            assert outcome["invalidated"] == 1
            # post-swap answers come from the new snapshot, not the cache
            fresh = frontend.query("family", "Kate", k=3)
            assert fresh == publisher.query_many("family", ["Kate"], k=3)[0]
            assert frontend.stats()["cache"]["hits"] == 0
            assert stale == stale  # the pre-swap object is orphaned, not served
        publisher.close()

    def test_reload_during_inflight_batch_never_caches_cross_digest(
        self, thread_engine, tmp_path
    ):
        # a reload landing between key capture and batch completion must
        # not memoise the (new-snapshot) result under the old digest
        engine, ds = thread_engine
        labels = ds.class_labels("family")
        publisher, snapshot = self._publish_updated_snapshot(tmp_path, labels)
        cache = ResultCache(max_size=64)
        gate = threading.Event()
        release = threading.Event()
        real_query_many = engine.query_many

        def gated_query_many(*args, **kwargs):
            gate.set()
            release.wait(timeout=10)
            return real_query_many(*args, **kwargs)

        engine.query_many = gated_query_many
        try:
            with QueryFrontend(
                engine,
                config=FrontendConfig(max_batch=1, max_delay_ms=0.0),
                cache=cache,
            ) as frontend:
                result: list = []
                thread = threading.Thread(
                    target=lambda: result.append(
                        frontend.query("family", "Kate", k=3)
                    )
                )
                thread.start()
                assert gate.wait(timeout=10)
                engine.query_many = real_query_many
                frontend.reload(snapshot)
                release.set()
                thread.join(timeout=10)
                assert result
                assert len(cache) == 0  # the in-flight result was not cached
        finally:
            engine.query_many = real_query_many
            release.set()
            publisher.close()

    def test_process_backend_reload_parity(self, tmp_path):
        engine, ds = toy_engine(
            shards=2, serving_workers=2, serving_backend="process", replicas=1
        )
        labels = ds.class_labels("family")
        engine.fit("family", labels=labels, num_examples=40)
        publisher, snapshot = self._publish_updated_snapshot(tmp_path, labels)
        try:
            with frontend_for(engine, cache_size=0) as frontend:
                assert frontend.query("family", "Kate", k=5)
                frontend.reload(snapshot)
                queries = list(engine.universe())
                expected = {
                    q: r
                    for q, r in zip(
                        queries, publisher.query_many("family", queries, k=5)
                    )
                }
                assert query_all_concurrently(frontend, queries, 5) == expected
        finally:
            publisher.close()
            engine.close()

    def test_watch_picks_up_published_snapshot(self, thread_engine, tmp_path):
        engine, ds = thread_engine
        labels = ds.class_labels("family")
        with frontend_for(engine) as frontend:
            old_digest = frontend.digest
            frontend.watch(tmp_path / "live", poll_interval=0.05)
            publisher, snapshot = self._publish_updated_snapshot(
                tmp_path, labels
            )
            snapshot.rename(tmp_path / "live")
            deadline = time.monotonic() + 10.0
            while frontend.digest == old_digest:
                assert time.monotonic() < deadline, "watcher never reloaded"
                time.sleep(0.05)
            assert frontend.query("family", "Mia", k=3) == (
                publisher.query_many("family", ["Mia"], k=3)[0]
            )
            publisher.close()


class TestConfig:
    def test_env_defaults_and_flag_precedence(self, monkeypatch):
        monkeypatch.setenv("REPRO_FRONTEND_MAX_BATCH", "7")
        monkeypatch.setenv("REPRO_FRONTEND_MAX_DELAY_MS", "1.5")
        monkeypatch.setenv("REPRO_FRONTEND_CACHE_SIZE", "99")
        monkeypatch.setenv("REPRO_FRONTEND_CACHE_TTL", "60")
        config = FrontendConfig.from_env()
        assert (config.max_batch, config.max_delay_ms) == (7, 1.5)
        assert (config.cache_size, config.cache_ttl) == (99, 60.0)
        override = FrontendConfig.from_env(max_batch=3, cache_ttl=5.0)
        assert (override.max_batch, override.cache_ttl) == (3, 5.0)
        assert override.cache_size == 99  # env still fills the gaps

    def test_unset_env_falls_back_to_defaults(self, monkeypatch):
        for name in (
            "REPRO_FRONTEND_MAX_BATCH",
            "REPRO_FRONTEND_MAX_DELAY_MS",
            "REPRO_FRONTEND_CACHE_SIZE",
            "REPRO_FRONTEND_CACHE_TTL",
        ):
            monkeypatch.delenv(name, raising=False)
        config = FrontendConfig.from_env()
        assert (config.max_batch, config.max_delay_ms) == (32, 2.0)
        assert (config.cache_size, config.cache_ttl) == (4096, None)

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            FrontendConfig(max_batch=0)
        with pytest.raises(ValueError):
            FrontendConfig(max_delay_ms=-1.0)

    def test_parse_listen(self):
        assert parse_listen("127.0.0.1:8766") == ("127.0.0.1", 8766)
        assert parse_listen("[::1]:80") == ("[::1]", 80)
        for bad in ("8766", "host:", ":80", "host:abc"):
            with pytest.raises(ValueError):
                parse_listen(bad)


class TestHTTP:
    @pytest.fixture
    def served(self, thread_engine):
        engine, _ds = thread_engine
        with frontend_for(engine) as frontend:
            with FrontendServer(frontend, port=0).start() as server:
                host, port = server.address
                yield engine, frontend, f"http://{host}:{port}"

    def _get(self, base: str, path: str):
        try:
            with urllib.request.urlopen(base + path, timeout=10) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def _post(self, base: str, path: str, doc: dict):
        request = urllib.request.Request(
            base + path,
            data=json.dumps(doc).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=10) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def test_health_and_stats(self, served):
        _engine, frontend, base = served
        status, doc = self._get(base, "/health")
        assert status == 200
        assert doc == {"status": "ok", "digest": frontend.digest}
        status, doc = self._get(base, "/stats")
        assert status == 200
        assert doc["digest"] == frontend.digest
        assert "cache" in doc and "batching" in doc

    def test_get_query_matches_engine(self, served):
        engine, _frontend, base = served
        status, doc = self._get(base, "/query?class=family&query=Kate&k=3")
        assert status == 200
        assert [tuple(r) for r in doc["results"]] == engine.query(
            "family", "Kate", k=3
        )
        status, full = self._get(base, "/query?class=family&query=Kate&k=none")
        assert status == 200 and full["k"] is None
        assert len(full["results"]) == len(engine.universe()) - 1

    def test_post_query_matches_engine(self, served):
        engine, _frontend, base = served
        status, doc = self._post(
            base, "/query", {"class": "family", "query": "Kate", "k": 3}
        )
        assert status == 200
        assert [tuple(r) for r in doc["results"]] == engine.query(
            "family", "Kate", k=3
        )

    def test_error_statuses(self, served):
        _engine, _frontend, base = served
        assert self._get(base, "/query?class=family&query=Ghost")[0] == 400
        assert self._get(base, "/query?class=nope&query=Kate")[0] == 404
        assert self._get(base, "/query?class=family")[0] == 400
        assert self._get(base, "/query?class=family&query=Kate&k=x")[0] == 400
        assert self._get(base, "/nowhere")[0] == 404
        assert self._post(base, "/reload", {"snapshot": "/no/such/dir"})[0] == 400

    def test_reload_endpoint_refreshes(self, served):
        _engine, frontend, base = served
        status, doc = self._post(base, "/reload", {})
        assert status == 200
        assert doc["digest"] == frontend.digest
