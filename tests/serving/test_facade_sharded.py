"""Sharded serving through the SemanticProximitySearch facade.

Covers the facade wiring the shard suite cannot see: trained (not
uniform) weights, router invalidation across ``apply_updates``, the
re-``prepare()`` lifecycle, and snapshot restores with
``shards``/``serving_workers``.
"""

from __future__ import annotations

import pytest

from repro import SemanticProximitySearch
from repro.datasets.toy import toy_dataset, toy_metagraphs
from repro.index.delta import GraphDelta
from repro.learning.trainer import TrainerConfig
from repro.metagraph.catalog import MetagraphCatalog
from repro.mining import MinerConfig
from tests.conftest import random_typed_graph
from tests.serving.test_shards import synthetic_catalog

SHARD_COUNTS = (1, 2, 3, 5, 16)


def toy_engine(**kwargs) -> tuple[SemanticProximitySearch, object]:
    ds = toy_dataset()
    spx = SemanticProximitySearch(
        ds.graph,
        miner_config=MinerConfig(max_nodes=4, min_support=1),
        trainer_config=TrainerConfig(restarts=2, max_iterations=300, seed=0),
        **kwargs,
    )
    catalog = MetagraphCatalog(toy_metagraphs().values(), anchor_type="user")
    spx.prepare(catalog=catalog)
    return spx, ds


class TestFacadeSharding:
    def test_constructor_validation(self):
        ds = toy_dataset()
        with pytest.raises(ValueError):
            SemanticProximitySearch(ds.graph, shards=0)
        with pytest.raises(ValueError):
            SemanticProximitySearch(ds.graph, serving_workers=0)
        with pytest.raises(ValueError):
            SemanticProximitySearch(ds.graph, shards=2, compile_serving=False)

    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_trained_model_parity_on_toy(self, num_shards):
        baseline, ds = toy_engine()
        sharded, _ds = toy_engine(shards=num_shards, serving_workers=2)
        labels = ds.class_labels("family")
        baseline.fit("family", labels=labels, num_examples=40)
        sharded.fit("family", labels=labels, num_examples=40)
        queries = list(baseline.universe())
        for k in (None, 0, 3):
            assert sharded.query_many("family", queries, k=k) == (
                baseline.query_many("family", queries, k=k)
            )
        for query in queries:
            assert sharded.query("family", query, k=3) == baseline.query(
                "family", query, k=3
            )

    @pytest.mark.parametrize("num_shards", (2, 5))
    def test_parity_after_apply_updates(self, num_shards):
        baseline, ds = toy_engine()
        sharded, _ds = toy_engine(shards=num_shards, serving_workers=2)
        labels = ds.class_labels("classmates")
        baseline.fit("classmates", labels=labels, num_examples=40)
        sharded.fit("classmates", labels=labels, num_examples=40)
        delta = (
            GraphDelta()
            .add_node("Mia", "user")
            .add_edge("Mia", "College A")
            .add_edge("Mia", "Physics")
            .remove_edge("Kate", "Music")
        )
        baseline.apply_updates(delta)
        sharded.apply_updates(delta)
        queries = list(baseline.universe())
        assert "Mia" in queries
        assert sharded.query_many("classmates", queries, k=4) == (
            baseline.query_many("classmates", queries, k=4)
        )

    def test_router_rebuilt_after_updates(self):
        sharded, ds = toy_engine(shards=3)
        sharded.fit("family", labels=ds.class_labels("family"), num_examples=40)
        sharded.query_many("family", ["Bob"], k=2)
        first = sharded._router
        first_backend = first.backend
        sharded.apply_updates(GraphDelta().remove_edge("Kate", "Music"))
        sharded.query_many("family", ["Bob"], k=2)
        # zero-downtime swap: the router object survives, its backend is
        # rebuilt over (and serves) the *current* snapshot
        assert sharded._router is first
        assert sharded._router.backend is not first_backend
        assert sharded._router.sharded.source is sharded.vectors.compile()

    def test_reprepare_closes_previous_router(self):
        # re-preparing replaces the snapshot: the old router (and its
        # thread pool / worker processes) must be closed, not leaked
        sharded, ds = toy_engine(shards=3)
        sharded.fit("family", labels=ds.class_labels("family"), num_examples=40)
        sharded.query_many("family", ["Bob"], k=2)
        old = sharded._router
        assert old is not None and old.backend is not None
        catalog = MetagraphCatalog(toy_metagraphs().values(), anchor_type="user")
        sharded.prepare(catalog=catalog)
        assert sharded._router is None
        assert old.backend is None  # closed

    def test_engine_close_is_idempotent_and_recoverable(self):
        sharded, ds = toy_engine(shards=2)
        sharded.fit("family", labels=ds.class_labels("family"), num_examples=40)
        sharded.query_many("family", ["Bob"], k=2)
        router = sharded._router
        sharded.close()
        assert sharded._router is None and router.backend is None
        sharded.close()
        # serving recovers: the router rebuilds lazily on the next query
        assert sharded.query_many("family", ["Bob"], k=2)
        sharded.close()

    def test_engine_context_manager_closes_router(self):
        with toy_engine(shards=2)[0] as engine:
            engine.fit("family", labels=toy_dataset().class_labels("family"),
                       num_examples=40)
            engine.query_many("family", ["Bob"], k=2)
            router = engine._router
        assert engine._router is None and router.backend is None

    def test_router_survives_noop_updates(self):
        sharded, ds = toy_engine(shards=3)
        sharded.fit("family", labels=ds.class_labels("family"), num_examples=40)
        sharded.query_many("family", ["Bob"], k=2)
        first = sharded._router
        sharded.apply_updates(GraphDelta().add_edge("Kate", "Music"))  # no-op
        sharded.query_many("family", ["Bob"], k=2)
        assert sharded._router is first

    @pytest.mark.parametrize("num_shards", (2, 4))
    def test_synthetic_parity_via_snapshot_restore(self, tmp_path, num_shards):
        graph = random_typed_graph(seed=11, num_users=25)
        spx = SemanticProximitySearch(graph)
        spx.prepare(catalog=synthetic_catalog())
        spx.fit(
            "circle",
            triplets=[("u0", "u1", "u2"), ("u3", "u4", "u5")],
        )
        target = tmp_path / "snap"
        spx.save_index(target)
        flat = SemanticProximitySearch.from_index(target, graph)
        sharded = SemanticProximitySearch.from_index(
            target, graph, shards=num_shards, serving_workers=3
        )
        queries = list(flat.universe())
        assert sharded.query_many("circle", queries, k=5) == flat.query_many(
            "circle", queries, k=5
        )
