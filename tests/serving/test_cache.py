"""ResultCache semantics: LRU order, TTL expiry, atomic invalidation.

The cache sits in front of every frontend ranking, so its contract is
load-bearing for correctness: a hit must be the exact object cached
under the exact five-part key, expiry must count as a miss, and
invalidation must be total.  The clock is injected so TTL tests are
deterministic — no sleeps.
"""

from __future__ import annotations

import threading

import pytest

from repro.serving import ResultCache, result_key


def key(i: int, digest: str = "snap") -> tuple:
    return result_key(digest, "family", f"q{i}", 5, "univ")


class TestResultKey:
    def test_every_component_distinguishes(self):
        base = result_key("d", "c", "q", 5, "u")
        assert result_key("D", "c", "q", 5, "u") != base
        assert result_key("d", "C", "q", 5, "u") != base
        assert result_key("d", "c", "Q", 5, "u") != base
        assert result_key("d", "c", "q", 6, "u") != base
        assert result_key("d", "c", "q", None, "u") != base
        assert result_key("d", "c", "q", 5, "U") != base
        assert result_key("d", "c", "q", 5, "u") == base

    def test_tuple_node_ids_stay_hashable(self):
        assert hash(result_key("d", "c", ("user", 7), 5, "u"))


class TestLRU:
    def test_hit_returns_cached_value(self):
        cache = ResultCache(max_size=4)
        cache.put(key(1), [("a", 1.0)])
        assert cache.get(key(1)) == [("a", 1.0)]
        assert cache.get(key(2)) is None

    def test_eviction_drops_least_recently_used(self):
        cache = ResultCache(max_size=2)
        cache.put(key(1), "one")
        cache.put(key(2), "two")
        assert cache.get(key(1)) == "one"  # 1 is now MRU
        cache.put(key(3), "three")  # evicts 2, not 1
        assert cache.get(key(2)) is None
        assert cache.get(key(1)) == "one"
        assert cache.get(key(3)) == "three"
        assert cache.stats.evictions == 1

    def test_put_refreshes_recency_and_value(self):
        cache = ResultCache(max_size=2)
        cache.put(key(1), "one")
        cache.put(key(2), "two")
        cache.put(key(1), "uno")  # refresh, no growth
        cache.put(key(3), "three")  # evicts 2
        assert cache.get(key(1)) == "uno"
        assert cache.get(key(2)) is None
        assert len(cache) == 2

    def test_zero_size_disables_caching(self):
        cache = ResultCache(max_size=0)
        cache.put(key(1), "one")
        assert cache.get(key(1)) is None
        assert len(cache) == 0


class TestTTL:
    def test_entry_expires_exactly_at_ttl(self):
        now = [0.0]
        cache = ResultCache(max_size=8, ttl=10.0, clock=lambda: now[0])
        cache.put(key(1), "one")
        now[0] = 9.999
        assert cache.get(key(1)) == "one"
        now[0] = 10.0
        assert cache.get(key(1)) is None
        assert cache.stats.expirations == 1
        assert len(cache) == 0  # removed in place, not just masked

    def test_refresh_restarts_the_clock(self):
        now = [0.0]
        cache = ResultCache(max_size=8, ttl=10.0, clock=lambda: now[0])
        cache.put(key(1), "one")
        now[0] = 8.0
        cache.put(key(1), "one")
        now[0] = 12.0
        assert cache.get(key(1)) == "one"

    def test_no_ttl_means_no_expiry(self):
        now = [0.0]
        cache = ResultCache(max_size=8, ttl=None, clock=lambda: now[0])
        cache.put(key(1), "one")
        now[0] = 1e12
        assert cache.get(key(1)) == "one"

    def test_nonpositive_ttl_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(ttl=0.0)
        with pytest.raises(ValueError):
            ResultCache(ttl=-1.0)


class TestInvalidation:
    def test_invalidate_drops_everything_and_counts(self):
        cache = ResultCache(max_size=8)
        for i in range(5):
            cache.put(key(i), i)
        assert cache.invalidate() == 5
        assert len(cache) == 0
        for i in range(5):
            assert cache.get(key(i)) is None
        assert cache.stats.invalidations == 1

    def test_new_digest_misses_without_invalidation(self):
        # the correctness half of swap coherence: even an
        # un-invalidated pre-swap entry cannot answer a post-swap key
        cache = ResultCache(max_size=8)
        cache.put(key(1, digest="before"), "stale")
        assert cache.get(key(1, digest="after")) is None
        assert cache.get(key(1, digest="before")) == "stale"


class TestConcurrency:
    def test_hammering_keeps_invariants(self):
        cache = ResultCache(max_size=32, ttl=None)
        errors: list[BaseException] = []

        def worker(seed: int) -> None:
            try:
                for i in range(500):
                    j = (seed * 31 + i) % 64
                    cache.put(key(j), j)
                    got = cache.get(key(j))
                    assert got is None or got == j
                    if i % 100 == 0:
                        cache.invalidate()
            except BaseException as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(s,)) for s in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 32
        stats = cache.stats
        assert stats.hits + stats.misses == 8 * 500
