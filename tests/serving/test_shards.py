"""Shard partitioning invariants and sharded-vs-unsharded parity.

The serving tier's contract is *bit-identical* rankings: for every
shard count K, every query, every k, the sharded router must return
exactly the lists the single-process compiled path returns — same
nodes, same float bits, same tie order.  The suites below prove it on
the paper's toy graph, on random synthetic graphs, and across dynamic
updates.
"""

from __future__ import annotations

import pytest

from repro.datasets.toy import toy_dataset, toy_metagraphs
from repro.index.vectors import build_vectors
from repro.learning.model import SortedUniverse, uniform_model
from repro.metagraph.catalog import MetagraphCatalog
from repro.metagraph.metagraph import metapath
from repro.serving import (
    QueryRouter,
    ShardedVectors,
    partition_compiled,
    shard_ranges,
)
from tests.conftest import random_typed_graph

SHARD_COUNTS = (1, 2, 3, 5, 16)


def synthetic_catalog() -> MetagraphCatalog:
    return MetagraphCatalog(
        [
            metapath("user", t, "user", name=f"P-{t}")
            for t in ("school", "hobby", "employer")
        ],
        anchor_type="user",
    )


@pytest.fixture(scope="module")
def toy_setup():
    ds = toy_dataset()
    catalog = MetagraphCatalog(toy_metagraphs().values(), anchor_type="user")
    vectors, _ = build_vectors(ds.graph, catalog)
    model = uniform_model(vectors).compile()
    universe = SortedUniverse(ds.graph.nodes_of_type("user"))
    return vectors.compile(), model, universe


@pytest.fixture(scope="module")
def synthetic_setup():
    graph = random_typed_graph(seed=7, num_users=40)
    vectors, _ = build_vectors(graph, synthetic_catalog())
    model = uniform_model(vectors).compile()
    universe = SortedUniverse(graph.nodes_of_type("user"))
    return vectors.compile(), model, universe


class TestShardRanges:
    def test_ranges_cover_and_balance(self):
        for n in (0, 1, 5, 17, 100):
            for k in (1, 2, 3, 7, 150):
                ranges = shard_ranges(n, k)
                assert len(ranges) == k
                assert ranges[0][0] == 0 and ranges[-1][1] == n
                sizes = [hi - lo for lo, hi in ranges]
                assert sum(sizes) == n
                assert max(sizes) - min(sizes) <= 1
                for (_, a), (b, _) in zip(ranges, ranges[1:]):
                    assert a == b

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            shard_ranges(10, 0)


class TestPartitionInvariants:
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_shards_reconstruct_the_universe(self, toy_setup, num_shards):
        compiled, _model, _universe = toy_setup
        shards = partition_compiled(compiled, num_shards)
        owned = [
            compiled.nodes[pos]
            for shard in shards
            for pos in range(shard.lo, shard.hi)
        ]
        assert owned == list(compiled.nodes)

    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_per_row_dots_match_unsharded(self, synthetic_setup, num_shards):
        compiled, model, _universe = synthetic_setup
        full_node = compiled.node_dot_products(model.weights)
        shards = partition_compiled(compiled, num_shards)
        for shard in shards:
            local = shard.node_dot_products(model.weights)
            for own in range(shard.num_owned):
                global_pos = shard.lo + own
                local_row = shard.local_row(global_pos)
                # bit-identical, not approximately equal: rows are
                # sliced intact so the summation order is unchanged
                assert local[local_row] == full_node[global_pos]

    def test_shard_arrays_are_read_only(self, toy_setup):
        compiled, _model, _universe = toy_setup
        shard = partition_compiled(compiled, 2)[0]
        with pytest.raises(ValueError):
            shard.node_data[0] = 99.0

    def test_local_row_rejects_foreign_positions(self, toy_setup):
        compiled, _model, _universe = toy_setup
        shards = partition_compiled(compiled, 2)
        with pytest.raises(IndexError):
            shards[0].local_row(shards[1].lo)


def assert_bit_identical(sharded, unsharded):
    assert len(sharded) == len(unsharded)
    for a, b in zip(sharded, unsharded):
        assert [n for n, _ in a] == [n for n, _ in b]
        # float bits, not tolerances
        assert [s for _, s in a] == [s for _, s in b]


class TestParity:
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_toy_full_parity(self, toy_setup, num_shards):
        compiled, model, universe = toy_setup
        with QueryRouter(
            ShardedVectors.partition(compiled, num_shards), workers=2
        ) as router:
            for k in (None, 0, 1, 3, 100):
                queries = list(universe)
                sharded = router.rank_many(model, queries, universe=universe, k=k)
                unsharded = [
                    model.rank(q, universe=universe, k=k) for q in queries
                ]
                assert_bit_identical(sharded, unsharded)

    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    @pytest.mark.parametrize("seed", [0, 3])
    def test_synthetic_full_parity(self, num_shards, seed):
        graph = random_typed_graph(seed=seed, num_users=30)
        vectors, _ = build_vectors(graph, synthetic_catalog())
        model = uniform_model(vectors).compile()
        compiled = vectors.compile()
        universe = SortedUniverse(graph.nodes_of_type("user"))
        queries = list(universe)
        with QueryRouter(
            ShardedVectors.partition(compiled, num_shards), workers=3
        ) as router:
            sharded = router.rank_many(model, queries, universe=universe, k=5)
        unsharded = [model.rank(q, universe=universe, k=5) for q in queries]
        assert_bit_identical(sharded, unsharded)

    def test_parity_without_universe(self, synthetic_setup):
        compiled, model, _universe = synthetic_setup
        queries = list(compiled.nodes)
        with QueryRouter(ShardedVectors.partition(compiled, 4)) as router:
            sharded = router.rank_many(model, queries, k=None)
        unsharded = [model.rank(q, k=None) for q in queries]
        assert_bit_identical(sharded, unsharded)

    def test_single_query_rank_matches(self, toy_setup):
        compiled, model, universe = toy_setup
        with QueryRouter(ShardedVectors.partition(compiled, 3)) as router:
            for query in universe:
                assert router.rank(
                    model, query, universe=universe, k=4
                ) == model.rank(query, universe=universe, k=4)

    def test_node_absent_from_counts_pads_like_unsharded(self, toy_setup):
        # an anchor node with no instances is not a compiled row; both
        # tiers must answer with the zero-padded universe, not an error
        compiled, model, universe = toy_setup
        ghost_universe = SortedUniverse(list(universe) + ["Zz-new-user"])
        with QueryRouter(ShardedVectors.partition(compiled, 2)) as router:
            sharded = router.rank_many(
                model, ["Zz-new-user"], universe=ghost_universe, k=4
            )
        assert sharded == [
            model.rank("Zz-new-user", universe=ghost_universe, k=4)
        ]


class TestRouterBehaviour:
    def test_negative_k_raises(self, toy_setup):
        compiled, model, universe = toy_setup
        with QueryRouter(ShardedVectors.partition(compiled, 2)) as router:
            with pytest.raises(ValueError):
                router.rank_many(model, ["Bob"], universe=universe, k=-1)

    def test_invalid_workers(self, toy_setup):
        compiled, _model, _universe = toy_setup
        with pytest.raises(ValueError):
            QueryRouter(ShardedVectors.partition(compiled, 2), workers=0)

    def test_uncompiled_model_rejected(self, toy_setup):
        from repro.exceptions import LearningError

        compiled, model, universe = toy_setup
        scalar = uniform_model(model.vectors)
        with QueryRouter(ShardedVectors.partition(compiled, 2)) as router:
            with pytest.raises(LearningError):
                router.rank_many(scalar, ["Bob"], universe=universe, k=3)

    def test_empty_batch(self, toy_setup):
        compiled, model, universe = toy_setup
        with QueryRouter(ShardedVectors.partition(compiled, 2)) as router:
            assert router.rank_many(model, [], universe=universe, k=3) == []

    def test_close_is_idempotent(self, toy_setup):
        compiled, model, universe = toy_setup
        router = QueryRouter(ShardedVectors.partition(compiled, 4), workers=2)
        router.rank_many(model, list(universe), universe=universe, k=2)
        router.close()
        router.close()

    def test_model_dots_cached_per_snapshot(self, toy_setup):
        compiled, model, universe = toy_setup
        router = QueryRouter(ShardedVectors.partition(compiled, 2))
        first = router._model_dots(model)
        assert router._model_dots(model) is first
        router.close()

    def test_model_dots_die_with_the_model(self, toy_setup):
        # weak keys: a replaced model's cached dots must not linger (a
        # recycled id() once served another model's stale weights here)
        import gc

        compiled, model, universe = toy_setup
        router = QueryRouter(ShardedVectors.partition(compiled, 2))
        throwaway = uniform_model(model.vectors).compile()
        router.rank_many(throwaway, ["Bob"], universe=universe, k=2)
        assert len(router._dots) == 1
        del throwaway
        gc.collect()
        assert len(router._dots) == 0
        router.close()


class TestMoreShardsThanNodes:
    def test_oversized_shard_count_still_parity(self, toy_setup):
        compiled, model, universe = toy_setup
        num_shards = compiled.num_nodes + 5
        with QueryRouter(
            ShardedVectors.partition(compiled, num_shards), workers=2
        ) as router:
            queries = list(universe)
            sharded = router.rank_many(model, queries, universe=universe, k=3)
            unsharded = [model.rank(q, universe=universe, k=3) for q in queries]
            assert_bit_identical(sharded, unsharded)
