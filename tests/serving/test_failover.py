"""Replica failover determinism and shard-worker process lifecycle.

Killing any single worker must lose no queries and change no bits:
workers are stateless apart from content-addressed caches, so the
replica that picks a request up computes exactly the bytes the dead
worker would have.  The worker process itself must start with a
machine-parseable ready line, drain in-flight work on SIGTERM, and
honour the protocol's ``shutdown`` op.
"""

from __future__ import annotations

import json
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.exceptions import ServingError
from repro.index.persist import save_index
from repro.index.vectors import build_vectors
from repro.learning.model import SortedUniverse, uniform_model
from repro.serving import (
    QueryRouter,
    ShardedVectors,
    SubprocessBackend,
    recv_frame,
    send_frame,
)
from tests.conftest import random_typed_graph
from tests.serving.test_shards import synthetic_catalog

SHARD_COUNTS = (1, 2, 3, 5, 16)


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    graph = random_typed_graph(seed=7, num_users=40)
    catalog = synthetic_catalog()
    vectors, _ = build_vectors(graph, catalog)
    model = uniform_model(vectors).compile()
    universe = SortedUniverse(graph.nodes_of_type("user"))
    snapshot = tmp_path_factory.mktemp("failover") / "snapshot"
    save_index(snapshot, vectors, catalog, graph=graph)
    return vectors.compile(), model, universe, snapshot


class TestFailoverDeterminism:
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_killed_worker_changes_no_bits(self, served, num_shards):
        # satellite: kill one shard worker, serve the batch from the
        # replica, and the rankings are byte-identical to a healthy run
        compiled, model, universe, snapshot = served
        queries = list(universe)
        with QueryRouter(
            ShardedVectors.partition(compiled, num_shards), workers=2
        ) as flat:
            healthy = {
                k: flat.rank_many(model, queries, universe=universe, k=k)
                for k in (1, 2, 3, 5, 16)
            }
        backend = SubprocessBackend(snapshot, num_shards, replicas=2)
        with QueryRouter(backend, workers=2) as router:
            # warm every worker, then murder one replica outright
            assert router.rank_many(model, queries, universe=universe, k=3)
            victim = backend._workers[num_shards // 2][0]
            victim.proc.kill()
            victim.proc.wait()
            for k, expected in healthy.items():
                assert router.rank_many(
                    model, queries, universe=universe, k=k
                ) == expected

    def test_kill_mid_batch_loses_no_queries(self, served):
        compiled, model, universe, snapshot = served
        queries = list(universe) * 5  # long enough to straddle the kill
        with QueryRouter(
            ShardedVectors.partition(compiled, 3), workers=2
        ) as flat:
            healthy = flat.rank_many(model, queries, universe=universe, k=5)
        backend = SubprocessBackend(snapshot, 3, replicas=2)
        with QueryRouter(backend, workers=2) as router:
            assert router.rank_many(model, queries[:3], universe=universe, k=5)
            stop = threading.Event()

            def killer():
                # keep killing replica 0 of shard 1 while the batch runs
                while not stop.is_set():
                    victim = backend._workers[1][0]
                    if victim.proc is not None and victim.alive():
                        victim.proc.kill()
                    time.sleep(0.01)

            thread = threading.Thread(target=killer, daemon=True)
            thread.start()
            try:
                for _ in range(3):
                    assert router.rank_many(
                        model, queries, universe=universe, k=5
                    ) == healthy
            finally:
                stop.set()
                thread.join()

    def test_dead_worker_is_respawned(self, served):
        compiled, model, universe, snapshot = served
        backend = SubprocessBackend(snapshot, 2, replicas=2)
        with QueryRouter(backend, workers=1) as router:
            queries = list(universe)
            assert router.rank_many(model, queries, universe=universe, k=2)
            victim = backend._workers[0][0]
            victim.proc.kill()
            victim.proc.wait()
            assert router.rank_many(model, queries, universe=universe, k=2)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if all(backend.poll().values()):
                    break
                time.sleep(0.05)
            assert all(backend.poll().values())

    def test_unservable_shard_raises_within_deadline(self, served, tmp_path):
        compiled, model, universe, snapshot = served
        backend = SubprocessBackend(
            snapshot, 2, replicas=1, deadline=1.0, start_timeout=30.0
        )
        backend.start()
        try:
            queries = [(0, compiled.nodes[0], 0)]
            assert backend.score_group(model, 0, queries, universe, 3)
            victim = backend._workers[0][0]
            # respawns will bind into a directory that does not exist,
            # so every incarnation dies before serving
            victim.socket_path = tmp_path / "void" / "w.sock"
            victim.proc.kill()
            victim.proc.wait()
            victim.drop_connection()
            with pytest.raises(ServingError, match="no replica answered"):
                backend.score_group(model, 0, queries, universe, 3)
        finally:
            backend.close()


def _spawn_worker(snapshot: Path, socket_path: Path, *extra: str):
    env_root = Path(__file__).resolve().parents[2] / "src"
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "shard-worker",
            "--snapshot", str(snapshot),
            "--shard", "0",
            "--num-shards", "2",
            "--socket", str(socket_path),
            *extra,
        ],
        env={"PYTHONPATH": str(env_root), "PATH": "/usr/bin:/bin"},
        stdout=subprocess.PIPE,
        text=True,
    )


def _connect(socket_path: Path, timeout: float = 10.0) -> socket.socket:
    deadline = time.monotonic() + timeout
    while True:
        conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            conn.connect(str(socket_path))
            return conn
        except OSError:
            conn.close()
            if time.monotonic() > deadline:
                raise
            time.sleep(0.02)


class TestWorkerProcess:
    def test_ready_line_and_sigterm_drain(self, served, tmp_path):
        *_rest, snapshot = served
        sock = tmp_path / "w.sock"
        proc = _spawn_worker(snapshot, sock)
        try:
            ready = json.loads(proc.stdout.readline())
            assert ready["ready"] and ready["shard"] == 0
            assert ready["endpoint"] == f"unix:{sock}"
            assert ready["pid"] == proc.pid
            conn = _connect(sock)
            send_frame(conn, {"op": "ping"})
            assert recv_frame(conn) == {"ok": True}
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=10) == 0
            conn.close()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    def test_shutdown_op_drains_and_exits_zero(self, served, tmp_path):
        *_rest, snapshot = served
        sock = tmp_path / "w.sock"
        proc = _spawn_worker(snapshot, sock)
        try:
            proc.stdout.readline()
            conn = _connect(sock)
            send_frame(conn, {"op": "shutdown"})
            assert recv_frame(conn) == {"ok": True, "draining": True}
            assert proc.wait(timeout=10) == 0
            conn.close()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    def test_hello_over_the_cli_entry(self, served, tmp_path):
        *_rest, snapshot = served
        sock = tmp_path / "w.sock"
        proc = _spawn_worker(snapshot, sock)
        try:
            proc.stdout.readline()
            conn = _connect(sock)
            send_frame(conn, {"op": "hello"})
            hello = recv_frame(conn)
            assert hello["ok"] and hello["role"] == "shard-worker"
            assert hello["shard"] == 0
            conn.close()
        finally:
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=10)

    def test_corrupt_frame_drops_connection_not_worker(self, served, tmp_path):
        *_rest, snapshot = served
        sock = tmp_path / "w.sock"
        proc = _spawn_worker(snapshot, sock)
        try:
            proc.stdout.readline()
            bad = _connect(sock)
            bad.sendall(b"\xff\xff\xff\xffgarbage")
            bad.close()
            good = _connect(sock)
            send_frame(good, {"op": "ping"})
            assert recv_frame(good) == {"ok": True}
            good.close()
        finally:
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=10)

    def test_bad_arguments_exit_nonzero(self, served, tmp_path):
        *_rest, snapshot = served
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", "shard-worker",
                "--snapshot", str(snapshot),
                "--shard", "7",
                "--num-shards", "2",
                "--socket", str(tmp_path / "w.sock"),
            ],
            env={
                "PYTHONPATH": str(Path(__file__).resolve().parents[2] / "src"),
                "PATH": "/usr/bin:/bin",
            },
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 1
        assert "cannot start" in proc.stderr

    def test_transport_flags_are_exclusive(self, served, tmp_path):
        *_rest, snapshot = served
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", "shard-worker",
                "--snapshot", str(snapshot),
                "--shard", "0",
                "--num-shards", "2",
            ],
            env={
                "PYTHONPATH": str(Path(__file__).resolve().parents[2] / "src"),
                "PATH": "/usr/bin:/bin",
            },
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 1
        assert "exactly one transport" in proc.stderr
