"""Serving-tier lifecycle races: drain-on-close, swap-under-load,
sibling-error ordering, and failover against live-but-wrong workers.

Each test here is a regression pin for a specific teardown/failover
race:

- ``close()``/``swap()`` must wait for in-flight batches before the
  old backend is closed — otherwise a concurrent ``rank_many`` scores
  against freed shards / dead worker sockets;
- ``_rank_on`` must wait for *every* sibling shard group before
  surfacing an error — raising early releases the backend while
  stragglers still score on it;
- a live worker answering the *wrong* handshake (rogue process or
  stale spawn parked on the socket) must be killed so failover can
  respawn a correct one, instead of being retried until the request
  deadline burns;
- a worker restarting between the two legs of the need-universe
  re-send dance is a retriable transport failure, not a protocol
  error — and a replica killed after the universe was cached must
  fail over bit-identically.
"""

from __future__ import annotations

import json
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.exceptions import ServingError
from repro.index.persist import save_index
from repro.index.vectors import build_vectors
from repro.learning.model import SortedUniverse, uniform_model
from repro.serving import (
    InProcessBackend,
    QueryRouter,
    ShardedVectors,
    SubprocessBackend,
)
from repro.serving.backend import _TransportFailure, _WorkerHandle
from repro.serving.protocol import (
    ScoreRequest,
    recv_frame,
    send_frame,
    universe_digest,
)
from tests.conftest import random_typed_graph
from tests.serving.test_shards import synthetic_catalog


@pytest.fixture(scope="module")
def corpus():
    graph = random_typed_graph(seed=13, num_users=30)
    catalog = synthetic_catalog()
    vectors, _ = build_vectors(graph, catalog)
    model = uniform_model(vectors).compile()
    universe = SortedUniverse(graph.nodes_of_type("user"))
    return vectors.compile(), model, universe


@pytest.fixture(scope="module")
def served(tmp_path_factory, corpus):
    compiled, _model, _universe = corpus
    graph = random_typed_graph(seed=13, num_users=30)
    catalog = synthetic_catalog()
    vectors, _ = build_vectors(graph, catalog)
    snapshot = tmp_path_factory.mktemp("races") / "snapshot"
    save_index(snapshot, vectors, catalog, graph=graph)
    return snapshot


class _SlowBackend(InProcessBackend):
    """In-process backend whose scoring dawdles and logs the teardown race."""

    def __init__(self, sharded, delay: float = 0.25):
        super().__init__(sharded)
        self.delay = delay
        self.entered = threading.Event()
        self.close_started = threading.Event()
        self.scored_after_close = False

    def score_group(self, model, shard_id, group, universe, k):
        self.entered.set()
        time.sleep(self.delay)
        if self.close_started.is_set():
            self.scored_after_close = True
        return super().score_group(model, shard_id, group, universe, k)

    def close(self):
        self.close_started.set()
        super().close()


class _SplitBackend(InProcessBackend):
    """Shard 0 explodes instantly; every other shard scores slowly."""

    def __init__(self, sharded, delay: float = 0.25):
        super().__init__(sharded)
        self.delay = delay
        self.slow_done = threading.Event()

    def score_group(self, model, shard_id, group, universe, k):
        if shard_id == 0:
            raise ServingError("shard 0 exploded")
        time.sleep(self.delay)
        self.slow_done.set()
        return super().score_group(model, shard_id, group, universe, k)


def _rank_in_thread(router, model, queries, universe, k):
    out: list = []
    errors: list[BaseException] = []

    def run() -> None:
        try:
            out.append(router.rank_many(model, queries, universe=universe, k=k))
        except BaseException as exc:  # noqa: BLE001 — surfaced by caller
            errors.append(exc)

    thread = threading.Thread(target=run)
    thread.start()
    return thread, out, errors


class TestDrainOnTeardown:
    def test_close_waits_for_inflight_batches(self, corpus):
        # regression: close() only waited on the dispatch pool, so a
        # batch scoring on the *calling* thread (single shard group —
        # the pool is not involved) raced backend.close()
        compiled, model, universe = corpus
        with QueryRouter(
            ShardedVectors.partition(compiled, 1), workers=2
        ) as flat:
            expected = flat.rank_many(
                model, list(universe), universe=universe, k=5
            )
        backend = _SlowBackend(ShardedVectors.partition(compiled, 1))
        router = QueryRouter(backend, workers=2)
        thread, out, errors = _rank_in_thread(
            router, model, list(universe), universe, 5
        )
        assert backend.entered.wait(timeout=5)
        router.close()
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert not errors, errors
        assert not backend.scored_after_close, (
            "backend.close() ran while a batch was still scoring"
        )
        assert out == [expected]  # the straddling batch lost nothing

    def test_close_rejects_new_batches_while_draining(self, corpus):
        compiled, model, universe = corpus
        backend = _SlowBackend(ShardedVectors.partition(compiled, 2))
        router = QueryRouter(backend, workers=2)
        thread, _out, errors = _rank_in_thread(
            router, model, list(universe), universe, 3
        )
        assert backend.entered.wait(timeout=5)
        router.close()
        with pytest.raises(ServingError, match="closed"):
            router.rank_many(model, list(universe), universe=universe, k=3)
        thread.join(timeout=10)
        assert not errors, errors

    def test_swap_waits_for_inflight_batches(self, corpus):
        compiled, model, universe = corpus
        old = _SlowBackend(ShardedVectors.partition(compiled, 2))
        router = QueryRouter(old, workers=2)
        try:
            thread, out, errors = _rank_in_thread(
                router, model, list(universe), universe, 5
            )
            assert old.entered.wait(timeout=5)
            router.swap(ShardedVectors.partition(compiled, 3))
            thread.join(timeout=10)
            assert not errors, errors
            assert not old.scored_after_close, (
                "old backend closed under an in-flight batch during swap"
            )
            # and the swapped-in backend serves bit-identically
            assert router.rank_many(
                model, list(universe), universe=universe, k=5
            ) == out[0]
        finally:
            router.close()

    def test_error_waits_for_sibling_shard_groups(self, corpus):
        # regression: _rank_on raised the first shard error while
        # sibling groups were still scoring, releasing the backend
        # under them
        compiled, model, universe = corpus
        backend = _SplitBackend(ShardedVectors.partition(compiled, 2))
        with QueryRouter(backend, workers=2) as router:
            # position order puts shard 0 (the fast failure) first
            queries = list(compiled.nodes)
            with pytest.raises(ServingError, match="shard 0 exploded"):
                router.rank_many(model, queries, universe=universe, k=3)
            assert backend.slow_done.is_set(), (
                "rank_many raised while a sibling group was still scoring"
            )


def _spawn_shard_worker(snapshot: Path, socket_path: Path, shard: int):
    env_root = Path(__file__).resolve().parents[2] / "src"
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "shard-worker",
            "--snapshot", str(snapshot),
            "--shard", str(shard),
            "--num-shards", "2",
            "--socket", str(socket_path),
        ],
        env={"PYTHONPATH": str(env_root), "PATH": "/usr/bin:/bin"},
        stdout=subprocess.PIPE,
        text=True,
    )


class TestFailoverRaces:
    def test_rogue_worker_on_socket_is_killed_and_replaced(
        self, corpus, served
    ):
        # regression: a live worker answering the wrong handshake was
        # retried (it is alive, so failover never respawned it) until
        # the request deadline burned to ServingError
        compiled, model, universe, snapshot = (*corpus, served)
        backend = SubprocessBackend(snapshot, 2, replicas=1, deadline=15.0)
        backend.start()
        rogue = None
        try:
            group = [(0, compiled.nodes[0], 0)]
            expected = backend.score_group(model, 0, group, universe, 3)
            victim = backend._workers[0][0]
            victim.kill()
            victim.socket_path.unlink(missing_ok=True)
            # park a live worker serving the WRONG shard on the socket
            rogue = _spawn_shard_worker(snapshot, victim.socket_path, shard=1)
            assert json.loads(rogue.stdout.readline())["ready"]
            victim.proc = rogue
            start = time.monotonic()
            assert backend.score_group(model, 0, group, universe, 3) == expected
            assert time.monotonic() - start < backend.deadline, (
                "recovery burned the whole request deadline"
            )
            assert rogue.poll() is not None, "rogue worker was left alive"
        finally:
            if rogue is not None and rogue.poll() is None:
                rogue.kill()
                rogue.wait()
            backend.close()

    def test_repeated_universe_miss_is_retriable(self, corpus, served):
        # regression: a worker restarting between the two legs of the
        # need-universe dance surfaced as a protocol violation instead
        # of a retriable transport failure
        compiled, model, universe = corpus
        backend = SubprocessBackend(served, 2, replicas=1)
        handle = _WorkerHandle(0, 0, Path("/nonexistent.sock"))
        ours, theirs = socket.socketpair()
        handle.conn = ours
        digest = universe_digest(universe)
        handle.known_universes.add(digest)  # stale bookkeeping
        frames: list[dict] = []

        def stubborn_worker() -> None:
            for _ in range(2):
                frames.append(recv_frame(theirs))
                send_frame(
                    theirs,
                    {"ok": False, "need": "universe", "universe_digest": digest},
                )

        thread = threading.Thread(target=stubborn_worker, daemon=True)
        thread.start()
        request = ScoreRequest(
            queries=[(0, compiled.nodes[0], 0)],
            weights=model.weights,
            k=3,
            universe=universe,
        )
        try:
            with pytest.raises(_TransportFailure, match="cache miss persisted"):
                backend._score_on_worker(
                    handle, request, deadline=time.monotonic() + 5.0
                )
            thread.join(timeout=5)
            # the dance itself: digest-only first, inline on the retry
            assert "universe" not in frames[0]
            assert frames[1]["universe"]
            # and the failure resets the bookkeeping for the next replica
            assert digest not in handle.known_universes
            assert handle.conn is None
        finally:
            theirs.close()
            if handle.conn is not None:
                handle.conn.close()

    def test_kill_replica_after_universe_cached_stays_bit_identical(
        self, corpus, served
    ):
        # the batch's universe is cached on every primary replica (the
        # steady state sends only its digest); killing primaries then
        # forces failover onto replicas that must replay the inline
        # re-send dance — results may not change by a bit
        compiled, model, universe = corpus
        queries = list(universe)
        with QueryRouter(
            ShardedVectors.partition(compiled, 2), workers=2
        ) as flat:
            expected = flat.rank_many(model, queries, universe=universe, k=5)
        backend = SubprocessBackend(served, 2, replicas=2)
        with QueryRouter(backend, workers=2) as router:
            assert router.rank_many(
                model, queries, universe=universe, k=5
            ) == expected
            for shard in range(2):
                backend._workers[shard][0].kill()
            assert router.rank_many(
                model, queries, universe=universe, k=5
            ) == expected
