"""Process-worker serving parity: same bits as the in-process router.

The tentpole contract of the transport-abstracted shard boundary: for
every shard count, replica count and k, rankings served by supervised
worker processes over the wire protocol are byte-identical to the
in-process thread backend — including remote ``QueryError``s, which
must surface at the router with the exact message the shard raised.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import SemanticProximitySearch
from repro.exceptions import QueryError, ServingError
from repro.index.persist import save_index
from repro.index.vectors import build_vectors
from repro.learning.model import ProximityModel, SortedUniverse, uniform_model
from repro.serving import (
    InProcessBackend,
    QueryRouter,
    ShardedVectors,
    SubprocessBackend,
)
from tests.conftest import random_typed_graph
from tests.serving.test_facade_sharded import toy_engine
from tests.serving.test_shards import synthetic_catalog

SHARD_COUNTS = (1, 2, 3, 5, 16)
K_VALUES = (None, 0, 1, 2, 3, 5, 16)


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    graph = random_typed_graph(seed=7, num_users=40)
    catalog = synthetic_catalog()
    vectors, _ = build_vectors(graph, catalog)
    model = uniform_model(vectors).compile()
    universe = SortedUniverse(graph.nodes_of_type("user"))
    snapshot = tmp_path_factory.mktemp("process-backend") / "snapshot"
    save_index(snapshot, vectors, catalog, graph=graph)
    return vectors.compile(), model, universe, snapshot


class TestRouterParity:
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_process_rankings_bit_identical(self, served, num_shards):
        compiled, model, universe, snapshot = served
        queries = list(universe)
        with QueryRouter(
            ShardedVectors.partition(compiled, num_shards), workers=2
        ) as flat, QueryRouter(
            SubprocessBackend(snapshot, num_shards), workers=2
        ) as proc:
            for k in K_VALUES:
                assert proc.rank_many(
                    model, queries, universe=universe, k=k
                ) == flat.rank_many(model, queries, universe=universe, k=k)

    def test_parity_without_universe_filter(self, served):
        compiled, model, universe, snapshot = served
        queries = list(universe)
        with QueryRouter(
            ShardedVectors.partition(compiled, 3), workers=2
        ) as flat, QueryRouter(SubprocessBackend(snapshot, 3), workers=2) as proc:
            for k in (None, 4):
                assert proc.rank_many(model, queries, k=k) == flat.rank_many(
                    model, queries, k=k
                )

    def test_second_model_weights_cached_separately(self, served):
        compiled, model, universe, snapshot = served
        rng = np.random.default_rng(5)
        other = ProximityModel(
            rng.random(compiled.catalog_size), model.vectors, name="other"
        ).compile()
        queries = list(universe)[:10]
        with QueryRouter(
            ShardedVectors.partition(compiled, 2), workers=1
        ) as flat, QueryRouter(SubprocessBackend(snapshot, 2), workers=1) as proc:
            for m in (model, other, model):  # interleave: caches must not mix
                assert proc.rank_many(
                    m, queries, universe=universe, k=5
                ) == flat.rank_many(m, queries, universe=universe, k=5)

    @pytest.mark.parametrize("replicas", (2, 3))
    def test_replicas_serve_identically(self, served, replicas):
        compiled, model, universe, snapshot = served
        queries = list(universe)
        with QueryRouter(
            ShardedVectors.partition(compiled, 2), workers=2
        ) as flat, QueryRouter(
            SubprocessBackend(snapshot, 2, replicas=replicas), workers=2
        ) as proc:
            assert proc.rank_many(
                model, queries, universe=universe, k=5
            ) == flat.rank_many(model, queries, universe=universe, k=5)


class TestRemoteQueryErrors:
    def _bad_groups(self, compiled, num_shards=3):
        """(group, shard_id) pairs that must raise QueryError on a shard."""
        sharded = ShardedVectors.partition(compiled, num_shards)
        shard = sharded.shards[1]
        off_range = [(0, compiled.nodes[shard.lo], shard.hi)]
        wrong_node = [(0, compiled.nodes[shard.lo], shard.lo + 1)]
        return [(off_range, 1), (wrong_node, 1)]

    def test_remote_query_error_matches_in_process_exactly(self, served):
        # satellite: a QueryError raised on a remote shard surfaces at
        # the router as the same type with the same message — never as
        # a transport failure, never triggering failover
        compiled, model, universe, snapshot = served
        in_proc = InProcessBackend(ShardedVectors.partition(compiled, 3))
        in_proc.start()
        sub = SubprocessBackend(snapshot, 3, replicas=2)
        sub.start()
        try:
            for group, shard_id in self._bad_groups(compiled):
                with pytest.raises(QueryError) as local:
                    in_proc.score_group(model, shard_id, group, universe, 5)
                with pytest.raises(QueryError) as remote:
                    sub.score_group(model, shard_id, group, universe, 5)
                assert str(remote.value) == str(local.value)
        finally:
            sub.close()
            in_proc.close()

    def test_remote_query_error_does_not_kill_the_worker(self, served):
        compiled, model, universe, snapshot = served
        sub = SubprocessBackend(snapshot, 3)
        sub.start()
        try:
            group, shard_id = self._bad_groups(compiled)[0]
            with pytest.raises(QueryError):
                sub.score_group(model, shard_id, group, universe, 5)
            # the worker survived the bad request and still serves
            good = [(0, compiled.nodes[0], 0)]
            assert sub.score_group(model, 0, good, universe, 3)
            assert all(sub.poll().values())
        finally:
            sub.close()

    @pytest.mark.parametrize("backend_kind", ("thread", "process"))
    def test_facade_unknown_query_same_error(self, backend_kind):
        engine, _ds = toy_engine(
            shards=2, serving_backend=backend_kind, serving_workers=2
        )
        try:
            engine.fit("family", labels=_ds.class_labels("family"), num_examples=40)
            with pytest.raises(QueryError) as excinfo:
                engine.query_many("family", ["Bob", "Nobody"], k=3)
            assert "Nobody" in str(excinfo.value)
        finally:
            engine.close()


class TestBackendLifecycle:
    def test_missing_snapshot_fails_loudly(self, tmp_path):
        backend = SubprocessBackend(tmp_path / "nope", 2)
        with pytest.raises(Exception):
            backend.start()

    def test_close_terminates_all_workers(self, served):
        *_rest, snapshot = served
        backend = SubprocessBackend(snapshot, 2, replicas=2)
        backend.start()
        procs = [
            handle.proc for handles in backend._workers for handle in handles
        ]
        assert len(procs) == 4 and all(p.poll() is None for p in procs)
        backend.close()
        assert all(p.poll() is not None for p in procs)
        backend.close()  # idempotent

    def test_closed_backend_refuses_restart(self, served):
        *_rest, snapshot = served
        backend = SubprocessBackend(snapshot, 1)
        backend.start()
        backend.close()
        with pytest.raises(ServingError, match="closed"):
            backend.start()

    def test_invalid_settings_rejected(self, served):
        *_rest, snapshot = served
        with pytest.raises(ValueError):
            SubprocessBackend(snapshot, 0)
        with pytest.raises(ValueError):
            SubprocessBackend(snapshot, 2, replicas=0)


class TestFacadeProcessServing:
    @pytest.mark.parametrize("num_shards", (1, 3))
    def test_facade_parity(self, num_shards):
        baseline, ds = toy_engine()
        proc, _ = toy_engine(
            shards=num_shards, serving_workers=2,
            serving_backend="process", replicas=2,
        )
        try:
            labels = ds.class_labels("family")
            baseline.fit("family", labels=labels, num_examples=40)
            proc.fit("family", labels=labels, num_examples=40)
            queries = list(baseline.universe())
            for k in (None, 0, 3):
                assert proc.query_many("family", queries, k=k) == (
                    baseline.query_many("family", queries, k=k)
                )
            assert proc.query("family", queries[0], k=2) == baseline.query(
                "family", queries[0], k=2
            )
        finally:
            proc.close()
            baseline.close()

    def test_facade_parity_after_updates_and_swap(self):
        from repro.index.delta import GraphDelta

        baseline, ds = toy_engine()
        proc, _ = toy_engine(
            shards=2, serving_workers=2, serving_backend="process"
        )
        try:
            labels = ds.class_labels("classmates")
            baseline.fit("classmates", labels=labels, num_examples=40)
            proc.fit("classmates", labels=labels, num_examples=40)
            queries = list(baseline.universe())
            assert proc.query_many("classmates", queries, k=4) == (
                baseline.query_many("classmates", queries, k=4)
            )
            router = proc._router
            old_backend = router.backend
            delta = (
                GraphDelta()
                .add_node("Mia", "user")
                .add_edge("Mia", "College A")
                .add_edge("Mia", "Physics")
                .remove_edge("Kate", "Music")
            )
            baseline.apply_updates(delta)
            proc.apply_updates(delta)
            queries = list(baseline.universe())
            # first post-update query triggers the zero-downtime swap:
            # same router object, fresh worker fleet, current snapshot
            assert proc.query_many("classmates", queries, k=4) == (
                baseline.query_many("classmates", queries, k=4)
            )
            assert proc._router is router
            assert router.backend is not old_backend
            # the explicit swap hook serves identically again
            swapped = router.backend
            proc.refresh_serving()
            assert router.backend is not swapped
            assert proc.query_many("classmates", queries, k=4) == (
                baseline.query_many("classmates", queries, k=4)
            )
        finally:
            proc.close()
            baseline.close()

    def test_from_index_serves_the_user_snapshot_in_place(self, tmp_path):
        engine, ds = toy_engine()
        engine.fit("family", labels=ds.class_labels("family"), num_examples=40)
        target = engine.save_index(tmp_path / "snap")
        flat = SemanticProximitySearch.from_index(target, engine.graph)
        proc = SemanticProximitySearch.from_index(
            target, engine.graph, shards=2, serving_backend="process"
        )
        try:
            queries = list(engine.universe())
            assert proc.query_many("family", queries, k=3) == (
                flat.query_many("family", queries, k=3)
            )
            # workers mmap the user's snapshot where it lies: no copy
            # was saved into an engine-owned temp directory
            assert proc._snapshot_path == target
            assert proc._snapshots_tmp is None
        finally:
            proc.close()
            flat.close()
            engine.close()

    def test_process_backend_requires_compiled_serving(self):
        from repro.datasets.toy import toy_dataset

        ds = toy_dataset()
        with pytest.raises(ValueError, match="process"):
            SemanticProximitySearch(
                ds.graph, serving_backend="process", compile_serving=False
            )
        with pytest.raises(ValueError, match="serving_backend"):
            SemanticProximitySearch(ds.graph, serving_backend="socket")
