"""Unit tests for the Metagraph value object."""

import pytest

from repro.exceptions import InvalidMetagraphError
from repro.metagraph.metagraph import Metagraph, metapath


class TestConstruction:
    def test_basic(self):
        m = Metagraph(["user", "school", "user"], [(0, 1), (1, 2)])
        assert m.size == 3
        assert m.num_edges == 2

    def test_empty_rejected(self):
        with pytest.raises(InvalidMetagraphError):
            Metagraph([], [])

    def test_self_loop_rejected(self):
        with pytest.raises(InvalidMetagraphError):
            Metagraph(["user"], [(0, 0)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(InvalidMetagraphError):
            Metagraph(["user", "user"], [(0, 2)])

    def test_disconnected_rejected(self):
        with pytest.raises(InvalidMetagraphError):
            Metagraph(["user", "user", "school"], [(0, 1)])

    def test_invalid_type_rejected(self):
        with pytest.raises(InvalidMetagraphError):
            Metagraph([""], [])

    def test_single_node_allowed(self):
        m = Metagraph(["user"], [])
        assert m.size == 1
        assert m.is_path

    def test_duplicate_edges_collapse(self):
        m = Metagraph(["user", "school"], [(0, 1), (1, 0)])
        assert m.num_edges == 1


class TestAccessors:
    @pytest.fixture
    def m1(self):
        # Fig. 2a: two users sharing school and major
        return Metagraph(
            ["user", "school", "major", "user"],
            [(0, 1), (0, 2), (3, 1), (3, 2)],
            name="M1",
        )

    def test_node_type(self, m1):
        assert m1.node_type(1) == "school"

    def test_neighbors(self, m1):
        assert m1.neighbors(0) == frozenset({1, 2})

    def test_degree(self, m1):
        assert m1.degree(0) == 2

    def test_has_edge(self, m1):
        assert m1.has_edge(0, 1)
        assert m1.has_edge(1, 0)
        assert not m1.has_edge(0, 3)
        assert not m1.has_edge(0, 0)

    def test_nodes_of_type(self, m1):
        assert m1.nodes_of_type("user") == (0, 3)

    def test_count_type(self, m1):
        assert m1.count_type("user") == 2
        assert m1.count_type("hobby") == 0

    def test_type_multiset(self, m1):
        assert m1.type_multiset == (("major", 1), ("school", 1), ("user", 2))

    def test_not_path(self, m1):
        assert not m1.is_path


class TestMetapath:
    def test_factory(self):
        m = metapath("user", "address", "user")
        assert m.is_path
        assert m.types == ("user", "address", "user")

    def test_longer_path(self):
        m = metapath("user", "hobby", "user", "hobby", "user")
        assert m.is_path
        assert m.size == 5

    def test_cycle_not_path(self):
        m = Metagraph(["user", "school", "user"], [(0, 1), (1, 2), (0, 2)])
        assert not m.is_path

    def test_star_not_path(self):
        m = Metagraph(
            ["school", "user", "user", "user"], [(0, 1), (0, 2), (0, 3)]
        )
        assert not m.is_path


class TestDerived:
    def test_induced_on(self):
        m = Metagraph(
            ["user", "school", "major", "user"],
            [(0, 1), (0, 2), (3, 1), (3, 2)],
        )
        sub = m.induced_on([0, 1, 3])
        assert sub.size == 3
        assert sub.types == ("user", "school", "user")
        assert sub.num_edges == 2

    def test_induced_disconnected_raises(self):
        m = metapath("user", "school", "user")
        with pytest.raises(InvalidMetagraphError):
            m.induced_on([0, 2])

    def test_relabeled_identity(self):
        m = metapath("user", "school", "user")
        assert m.relabeled([0, 1, 2]) == m

    def test_relabeled_swap(self):
        m = metapath("user", "school")
        swapped = m.relabeled([1, 0])
        assert swapped.types == ("school", "user")
        assert swapped.edges == frozenset({(0, 1)})

    def test_relabeled_invalid_permutation(self):
        m = metapath("user", "school")
        with pytest.raises(InvalidMetagraphError):
            m.relabeled([0, 0])

    def test_with_name(self):
        m = metapath("user", "school", "user").with_name("seed")
        assert m.name == "seed"


class TestValueSemantics:
    def test_equality_and_hash(self):
        a = metapath("user", "school", "user")
        b = metapath("user", "school", "user")
        assert a == b
        assert hash(a) == hash(b)

    def test_name_does_not_affect_equality(self):
        a = metapath("user", "school", "user", name="x")
        b = metapath("user", "school", "user", name="y")
        assert a == b

    def test_labelled_inequality(self):
        a = metapath("user", "school", "user")
        b = Metagraph(["school", "user", "user"], [(0, 1), (0, 2)])
        assert a != b  # isomorphic but differently labelled

    def test_repr(self):
        m = metapath("user", "school", name="P")
        assert "P" in repr(m)
