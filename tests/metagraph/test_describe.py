"""Tests for human-readable metagraph descriptions."""

import numpy as np

from repro.metagraph.catalog import MetagraphCatalog
from repro.metagraph.describe import describe, describe_weights
from repro.metagraph.metagraph import Metagraph, metapath


class TestDescribe:
    def test_shared_single_attribute(self):
        assert describe(metapath("user", "address", "user")) == (
            "two users sharing an address"
        )

    def test_shared_two_attributes(self):
        m = Metagraph(
            ["user", "school", "major", "user"],
            [(0, 1), (0, 2), (3, 1), (3, 2)],
        )
        assert describe(m) == "two users sharing a major and a school"

    def test_connected_users(self):
        m = Metagraph(["user", "user", "school"], [(0, 1), (0, 2), (1, 2)])
        assert describe(m) == "two connected users sharing school"

    def test_plain_path(self):
        m = metapath("user", "school", "hobby")
        assert describe(m).startswith("path ")
        assert "school" in describe(m)

    def test_fallback_listing(self):
        m = Metagraph(
            ["school", "user", "user", "user"], [(0, 1), (0, 2), (0, 3)]
        )
        text = describe(m)
        assert "3x user" in text and "school" in text

    def test_anchor_type_parameter(self):
        m = metapath("paper", "author", "paper")
        assert describe(m, anchor_type="paper") == (
            "two papers sharing an author"
        )

    def test_single_node(self):
        assert describe(metapath("user")) == "path user"


class TestDescribeWeights:
    def test_top_weights_rendered(self, toy_metagraphs):
        catalog = MetagraphCatalog(toy_metagraphs.values(), anchor_type="user")
        weights = np.array([0.9, 0.0, 0.4, 0.02])
        lines = describe_weights(catalog, weights, k=5)
        assert len(lines) == 2  # 0.02 falls below min_weight
        assert lines[0].startswith("w=0.90")
        assert "sharing" in lines[0]

    def test_empty_when_all_below_threshold(self, toy_metagraphs):
        catalog = MetagraphCatalog(toy_metagraphs.values(), anchor_type="user")
        lines = describe_weights(catalog, np.zeros(4))
        assert lines == []
