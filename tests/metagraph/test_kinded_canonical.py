"""Kind-aware canonical forms, symmetry, and catalog round-trips.

Before the edge-kind axis, two patterns over the same type multiset and
edge *positions* collapsed into one canonical class even when their
edge roles differed — a consume star and a produce star looked
identical to the catalog.  These tests pin the refactor's contract:
kinds participate in canonicalisation, isomorphism, automorphisms, and
catalog identity, while plain patterns keep their historical 2-tuple
canonical forms byte-for-byte.
"""

from repro.graph.typed_graph import PLAIN, EdgeKind
from repro.metagraph.canonical import (
    are_isomorphic,
    canonical_form,
    canonicalize,
    form_edge_entry,
)
from repro.metagraph.catalog import MetagraphCatalog
from repro.metagraph.metagraph import Metagraph
from repro.metagraph.symmetry import (
    automorphisms,
    is_symmetric,
    symmetric_pairs,
)

IN = EdgeKind("in", True)
OUT = EdgeKind("out", True)
TAG = EdgeKind("tag", False)


class TestCanonicalForms:
    def test_plain_form_keeps_two_tuples(self):
        m = Metagraph(["user", "school"], [(0, 1)])
        _, edges = canonical_form(m)
        assert edges == ((0, 1),)

    def test_kinded_form_uses_four_tuples(self):
        m = Metagraph(["mol", "rxn"], [(0, 1, IN)])
        _, edges = canonical_form(m)
        assert edges == ((0, 1, "in", 1),)
        assert form_edge_entry(edges[0]) == (0, 1, IN)

    def test_distinct_roles_no_longer_collide(self):
        consume = Metagraph(["mol", "mol", "rxn"], [(0, 2, IN), (1, 2, IN)])
        produce = Metagraph(["mol", "mol", "rxn"], [(2, 0, OUT), (2, 1, OUT)])
        plain = Metagraph(["mol", "mol", "rxn"], [(0, 2), (1, 2)])
        forms = {canonical_form(m) for m in (consume, produce, plain)}
        assert len(forms) == 3
        assert not are_isomorphic(consume, produce)
        assert not are_isomorphic(consume, plain)

    def test_orientation_is_canonical_not_positional(self):
        # the same directed edge written from either endpoint
        a = Metagraph(["mol", "rxn"], [(0, 1, IN)])
        b = Metagraph(["rxn", "mol"], [(1, 0, IN)])
        assert canonical_form(a) == canonical_form(b)
        assert are_isomorphic(a, b)
        # but the *reversed* edge is a different pattern
        c = Metagraph(["mol", "rxn"], [(1, 0, IN)])
        assert canonical_form(a) != canonical_form(c)

    def test_labels_distinguish_undirected_edges(self):
        a = Metagraph(["user", "user"], [(0, 1, TAG)])
        b = Metagraph(["user", "user"], [(0, 1, EdgeKind("other", False))])
        assert canonical_form(a) != canonical_form(b)

    def test_canonicalize_round_trips_kinds(self):
        m = Metagraph(
            ["rxn", "mol", "mol"], [(1, 0, IN), (0, 2, OUT), (1, 2, TAG)]
        )
        canon = canonicalize(m)
        assert are_isomorphic(m, canon)
        assert sorted(
            kind for _, _, kind in canon.edges_with_kinds()
        ) == sorted(kind for _, _, kind in m.edges_with_kinds())

    def test_signature_flips_under_argument_swap(self):
        m = Metagraph(["mol", "rxn"], [(0, 1, IN)])
        assert m.edge_signature(0, 1) == ("in", 1)
        assert m.edge_signature(1, 0) == ("in", -1)
        assert m.edge_kind(0, 1) == IN
        assert m.edge_kind(1, 0) == IN


class TestKindedSymmetry:
    def test_automorphisms_respect_kinds(self):
        # both mols consume: swapping them is an automorphism
        both_in = Metagraph(["mol", "mol", "rxn"], [(0, 2, IN), (1, 2, IN)])
        assert len(automorphisms(both_in)) == 2
        assert is_symmetric(both_in)
        assert (0, 1) in symmetric_pairs(both_in)
        # one consumes, one is produced: the swap dies
        mixed = Metagraph(["mol", "mol", "rxn"], [(0, 2, IN), (2, 1, OUT)])
        assert len(automorphisms(mixed)) == 1
        assert not is_symmetric(mixed)

    def test_plain_symmetry_unchanged(self):
        m = Metagraph(["user", "user", "school"], [(0, 2), (1, 2)])
        assert is_symmetric(m)
        assert (0, 1) in symmetric_pairs(m)


class TestCatalog:
    def test_catalog_separates_kinded_classes(self):
        catalog = MetagraphCatalog(anchor_type="mol")
        consume = Metagraph(["mol", "mol", "rxn"], [(0, 2, IN), (1, 2, IN)])
        produce = Metagraph(["mol", "mol", "rxn"], [(2, 0, OUT), (2, 1, OUT)])
        assert catalog.add_if_new(consume) == (0, True)
        assert catalog.add_if_new(produce) == (1, True)
        assert catalog.add_if_new(consume.relabeled([1, 0, 2])) == (0, False)
        assert len(catalog) == 2

    def test_catalog_json_round_trips_kinds(self):
        catalog = MetagraphCatalog(anchor_type="mol")
        catalog.add_if_new(
            Metagraph(["mol", "mol", "rxn"], [(0, 2, IN), (1, 2, IN)])
        )
        catalog.add_if_new(
            Metagraph(["mol", "rxn"], [(0, 1, TAG)])
        )
        restored = MetagraphCatalog.from_json(catalog.to_json())
        assert len(restored) == len(catalog)
        for mg_id in catalog.ids():
            assert canonical_form(restored[mg_id]) == canonical_form(
                catalog[mg_id]
            )
            assert restored[mg_id].has_kinds == catalog[mg_id].has_kinds

    def test_plain_catalog_json_has_no_kind_fields(self):
        catalog = MetagraphCatalog(anchor_type="user")
        catalog.add_if_new(Metagraph(["user", "school"], [(0, 1)]))
        text = catalog.to_json()
        assert "label" not in text and "directed" not in text
        restored = MetagraphCatalog.from_json(text)
        assert not restored[0].has_kinds
        assert restored[0].edge_kind(0, 1) == PLAIN
