"""Dedicated tests for MetagraphCatalog."""

import pytest

from repro.exceptions import CatalogMismatchError, MetagraphError
from repro.metagraph.catalog import MetagraphCatalog
from repro.metagraph.metagraph import Metagraph, metapath


@pytest.fixture
def catalog(toy_metagraphs) -> MetagraphCatalog:
    return MetagraphCatalog(toy_metagraphs.values(), anchor_type="user")


class TestMembership:
    def test_len_iter_getitem(self, catalog):
        assert len(catalog) == 4
        assert len(list(catalog)) == 4
        assert catalog[0].size >= 3

    def test_contains_up_to_isomorphism(self, catalog, toy_metagraphs):
        relabelled = toy_metagraphs["M1"].relabeled([3, 2, 1, 0])
        assert relabelled in catalog

    def test_id_of_isomorphic(self, catalog, toy_metagraphs):
        relabelled = toy_metagraphs["M3"].relabeled([2, 1, 0])
        assert catalog.id_of(relabelled) == catalog.id_of(toy_metagraphs["M3"])

    def test_add_if_new(self, catalog, toy_metagraphs):
        mg_id, added = catalog.add_if_new(toy_metagraphs["M1"])
        assert not added
        assert mg_id == catalog.id_of(toy_metagraphs["M1"])
        new = metapath("user", "hobby", "user")
        mg_id, added = catalog.add_if_new(new)
        assert added and mg_id == 4

    def test_members_stored_canonically(self, catalog):
        from repro.metagraph.canonical import canonicalize

        for member in catalog:
            assert member == canonicalize(member)

    def test_auto_naming(self):
        catalog = MetagraphCatalog()
        catalog.add(metapath("user", "school", "user"))
        assert catalog[0].name == "M0"

    def test_explicit_name_preserved(self):
        catalog = MetagraphCatalog()
        catalog.add(metapath("user", "school", "user", name="seed"))
        assert catalog[0].name == "seed"


class TestStructuralQueries:
    def test_metapath_split(self, catalog):
        paths = set(catalog.metapath_ids())
        non_paths = set(catalog.non_metapath_ids())
        assert paths | non_paths == set(catalog.ids())
        assert not paths & non_paths
        assert len(paths) == 1  # only M3 is a path

    def test_symmetric_ids(self, catalog):
        assert set(catalog.symmetric_ids()) == set(catalog.ids())

    def test_anchor_pair_ids(self, catalog):
        assert set(catalog.anchor_pair_ids()) == set(catalog.ids())

    def test_anchor_pair_ids_respect_anchor_type(self, toy_metagraphs):
        catalog = MetagraphCatalog(
            toy_metagraphs.values(), anchor_type="school"
        )
        assert catalog.anchor_pair_ids() == ()

    def test_subset_reindexes(self, catalog):
        sub = catalog.subset([2, 3])
        assert len(sub) == 2
        assert sub.anchor_type == "user"
        assert sub.id_of(catalog[2]) == 0

    def test_verify_compatible(self, catalog):
        catalog.verify_compatible(4)
        with pytest.raises(CatalogMismatchError):
            catalog.verify_compatible(5)


class TestSerialisation:
    def test_json_round_trip(self, catalog, tmp_path):
        path = tmp_path / "catalog.json"
        catalog.save(path)
        restored = MetagraphCatalog.load(path)
        assert len(restored) == len(catalog)
        assert restored.anchor_type == catalog.anchor_type
        for mg_id in catalog.ids():
            assert restored[mg_id] == catalog[mg_id]
            assert restored[mg_id].name == catalog[mg_id].name

    def test_duplicate_in_json_rejected(self):
        catalog = MetagraphCatalog([metapath("user", "school", "user")])
        text = catalog.to_json()
        import json

        doc = json.loads(text)
        doc["metagraphs"].append(doc["metagraphs"][0])
        with pytest.raises(MetagraphError):
            MetagraphCatalog.from_json(json.dumps(doc))

    def test_repr(self, catalog):
        assert "4 metagraphs" in repr(catalog)
