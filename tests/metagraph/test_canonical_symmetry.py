"""Tests for canonical forms and symmetry (Def. 1), incl. property tests."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metagraph.canonical import are_isomorphic, canonical_form, canonicalize
from repro.metagraph.metagraph import Metagraph, metapath
from repro.metagraph.symmetry import (
    anchor_symmetric_pairs,
    automorphisms,
    is_involution,
    is_symmetric,
    orbits,
    symmetric_pairs,
    symmetric_partners,
)

TYPES = ["user", "school", "hobby"]


def random_metagraph(rng: random.Random, max_nodes: int = 5) -> Metagraph:
    """A random connected typed pattern."""
    n = rng.randint(1, max_nodes)
    types = [rng.choice(TYPES) for _ in range(n)]
    edges = set()
    for i in range(1, n):  # random spanning tree keeps it connected
        edges.add((rng.randrange(i), i))
    extra = rng.randint(0, n)
    for _ in range(extra):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            edges.add((min(u, v), max(u, v)))
    return Metagraph(types, edges)


def random_permutation(rng: random.Random, n: int) -> list[int]:
    perm = list(range(n))
    rng.shuffle(perm)
    return perm


class TestCanonicalForm:
    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=60, deadline=None)
    def test_invariant_under_relabelling(self, seed):
        rng = random.Random(seed)
        m = random_metagraph(rng)
        perm = random_permutation(rng, m.size)
        assert canonical_form(m) == canonical_form(m.relabeled(perm))

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=40, deadline=None)
    def test_canonicalize_idempotent(self, seed):
        m = random_metagraph(random.Random(seed))
        c = canonicalize(m)
        assert canonicalize(c) == c
        assert canonical_form(c) == canonical_form(m)

    def test_isomorphic_relabellings_detected(self):
        a = metapath("user", "school", "user")
        b = Metagraph(["school", "user", "user"], [(0, 1), (0, 2)])
        assert are_isomorphic(a, b)

    def test_non_isomorphic_same_types(self):
        path = metapath("user", "user", "user")
        triangle = Metagraph(
            ["user", "user", "user"], [(0, 1), (1, 2), (0, 2)]
        )
        assert not are_isomorphic(path, triangle)

    def test_different_type_multisets(self):
        a = metapath("user", "school", "user")
        b = metapath("user", "hobby", "user")
        assert not are_isomorphic(a, b)

    def test_different_sizes(self):
        assert not are_isomorphic(metapath("user"), metapath("user", "user"))


class TestAutomorphisms:
    def test_identity_always_present(self):
        m = metapath("user", "school", "hobby")
        assert tuple(range(3)) in automorphisms(m)

    def test_symmetric_path(self):
        m = metapath("user", "school", "user")
        autos = set(automorphisms(m))
        assert autos == {(0, 1, 2), (2, 1, 0)}

    def test_asymmetric_path(self):
        m = metapath("user", "school", "hobby")
        assert automorphisms(m) == ((0, 1, 2),)

    def test_group_closure(self):
        # composition of automorphisms is an automorphism
        m = Metagraph(
            ["user", "school", "major", "user"],
            [(0, 1), (0, 2), (3, 1), (3, 2)],
        )
        autos = set(automorphisms(m))
        for a in autos:
            for b in autos:
                composed = tuple(a[b[i]] for i in range(m.size))
                assert composed in autos

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=40, deadline=None)
    def test_group_closure_random(self, seed):
        m = random_metagraph(random.Random(seed), max_nodes=5)
        autos = set(automorphisms(m))
        assert tuple(range(m.size)) in autos
        for a in autos:
            inverse = [0] * m.size
            for i, img in enumerate(a):
                inverse[img] = i
            assert tuple(inverse) in autos

    def test_automorphisms_preserve_types(self):
        m = Metagraph(
            ["user", "user", "school"], [(0, 2), (1, 2), (0, 1)]
        )
        for sigma in automorphisms(m):
            for u in range(m.size):
                assert m.node_type(sigma[u]) == m.node_type(u)


class TestSymmetry:
    def test_m3_symmetric_pair(self):
        m3 = metapath("user", "address", "user")
        assert symmetric_pairs(m3) == frozenset({(0, 2)})
        assert is_symmetric(m3)

    def test_m1_symmetric(self, toy_metagraphs):
        pairs = symmetric_pairs(toy_metagraphs["M1"])
        assert (0, 3) in pairs

    def test_asymmetric_metagraph(self):
        m = metapath("user", "school", "hobby")
        assert not is_symmetric(m)
        assert symmetric_pairs(m) == frozenset()

    def test_is_involution(self):
        assert is_involution((1, 0, 2))
        assert not is_involution((1, 2, 0))

    def test_partners(self):
        m = metapath("user", "address", "user")
        partners = symmetric_partners(m)
        assert partners[0] == frozenset({2})
        assert partners[1] == frozenset()

    def test_five_node_path_symmetry(self):
        m = metapath("user", "hobby", "user", "hobby", "user")
        pairs = symmetric_pairs(m)
        assert (0, 4) in pairs
        assert (1, 3) in pairs

    def test_anchor_pairs_filter_type(self):
        m = metapath("hobby", "user", "hobby")
        assert symmetric_pairs(m) == frozenset({(0, 2)})
        assert anchor_symmetric_pairs(m, "user") == frozenset()
        assert anchor_symmetric_pairs(m, "hobby") == frozenset({(0, 2)})


class TestOrbits:
    def test_orbits_partition_nodes(self):
        m = Metagraph(
            ["user", "school", "major", "user"],
            [(0, 1), (0, 2), (3, 1), (3, 2)],
        )
        obs = orbits(m)
        all_nodes = sorted(n for orbit in obs for n in orbit)
        assert all_nodes == list(range(m.size))

    def test_symmetric_users_share_orbit(self):
        m = metapath("user", "address", "user")
        obs = orbits(m)
        assert frozenset({0, 2}) in obs
        assert frozenset({1}) in obs

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=30, deadline=None)
    def test_orbit_members_same_type_and_degree(self, seed):
        m = random_metagraph(random.Random(seed))
        for orbit in orbits(m):
            types = {m.node_type(u) for u in orbit}
            degrees = {m.degree(u) for u in orbit}
            assert len(types) == 1
            assert len(degrees) == 1
