"""Tests for symmetric-component decomposition and structural similarity."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metagraph.decomposition import decompose
from repro.metagraph.metagraph import Metagraph, metapath
from repro.metagraph.similarity import (
    functional_similarity,
    mcs_size,
    structural_similarity,
)
from tests.metagraph.test_canonical_symmetry import random_metagraph


class TestDecompose:
    def test_m3_decomposition(self):
        m3 = metapath("user", "address", "user")
        d = decompose(m3)
        assert d.is_symmetric
        # address fixed; the two users are singleton twins
        assert (1,) in d.components
        assert len(d.families) == 1
        family = d.families[0]
        assert d.components[family.representative] == (0,)
        assert d.components[family.twin] == (2,)

    def test_m1_decomposition(self, toy_metagraphs):
        d = decompose(toy_metagraphs["M1"])
        assert d.is_symmetric
        assert len(d.families) == 1
        rep = d.components[d.families[0].representative]
        twin = d.components[d.families[0].twin]
        assert {rep, twin} == {(0,), (3,)}

    def test_asymmetric_all_singletons(self):
        m = metapath("user", "school", "hobby")
        d = decompose(m)
        assert not d.is_symmetric
        assert d.families == ()
        assert len(d.components) == 3

    def test_m5_style_two_node_components(self):
        # user-major wings around a shared school:
        # 0:user-1:major, 4:user-5:major, school 2 adjacent to users,
        # centre user 3 adjacent to school and both majors
        m = Metagraph(
            ["user", "major", "school", "user", "user", "major"],
            [(0, 1), (0, 2), (3, 2), (3, 1), (3, 5), (4, 5), (4, 2)],
        )
        d = decompose(m)
        assert d.is_symmetric
        assert len(d.families) == 1
        rep = d.components[d.families[0].representative]
        twin = d.components[d.families[0].twin]
        assert {rep, twin} == {(0, 1), (4, 5)}
        # school and centre user are fixed singletons
        assert (2,) in d.components
        assert (3,) in d.components

    def test_adjacent_symmetric_users_split(self):
        # triangle user-user-school: users adjacent AND symmetric
        m = Metagraph(["user", "user", "school"], [(0, 1), (0, 2), (1, 2)])
        d = decompose(m)
        assert len(d.families) == 1
        rep = d.components[d.families[0].representative]
        twin = d.components[d.families[0].twin]
        assert {rep, twin} == {(0,), (1,)}

    def test_simplified_nodes_drop_twins(self):
        m3 = metapath("user", "address", "user")
        d = decompose(m3)
        assert d.simplified_nodes() == (0, 1)

    def test_component_of(self):
        m3 = metapath("user", "address", "user")
        d = decompose(m3)
        for node in range(3):
            comp = d.components[d.component_of(node)]
            assert node in comp

    def test_component_of_unknown_raises(self):
        d = decompose(metapath("user"))
        with pytest.raises(ValueError):
            d.component_of(99)

    def test_explicit_sigma(self):
        m3 = metapath("user", "address", "user")
        d = decompose(m3, sigma=(2, 1, 0))
        assert d.sigma == (2, 1, 0)

    def test_invalid_sigma_rejected(self):
        m3 = metapath("user", "address", "user")
        with pytest.raises(ValueError):
            decompose(m3, sigma=(1, 0, 2))  # not an automorphism

    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=50, deadline=None)
    def test_components_partition_nodes(self, seed):
        m = random_metagraph(random.Random(seed))
        d = decompose(m)
        all_nodes = sorted(n for comp in d.components for n in comp)
        assert all_nodes == list(range(m.size))

    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=50, deadline=None)
    def test_twins_are_sigma_images(self, seed):
        m = random_metagraph(random.Random(seed))
        d = decompose(m)
        for family in d.families:
            rep = d.components[family.representative]
            twin = d.components[family.twin]
            assert {d.sigma[u] for u in rep} == set(twin)
            assert not set(rep) & set(twin)


class TestStructuralSimilarity:
    def test_identity(self, toy_metagraphs):
        for m in toy_metagraphs.values():
            assert structural_similarity(m, m) == pytest.approx(1.0)

    def test_symmetric_arguments(self, toy_metagraphs):
        m1, m2 = toy_metagraphs["M1"], toy_metagraphs["M2"]
        assert structural_similarity(m1, m2) == pytest.approx(
            structural_similarity(m2, m1)
        )

    def test_range(self, toy_metagraphs):
        graphs = list(toy_metagraphs.values())
        for a in graphs:
            for b in graphs:
                s = structural_similarity(a, b)
                assert 0.0 <= s <= 1.0

    def test_path_inside_larger(self):
        # M3 (user-address-user) is an induced subgraph of M4
        m3 = metapath("user", "address", "user")
        m4 = Metagraph(
            ["user", "surname", "address", "user"],
            [(0, 1), (0, 2), (3, 1), (3, 2)],
        )
        v, e = mcs_size(m3, m4)
        assert (v, e) == (3, 2)
        expected = (3 + 2) ** 2 / ((3 + 2) * (4 + 4))
        assert structural_similarity(m3, m4) == pytest.approx(expected)

    def test_disjoint_types_small_overlap(self):
        a = metapath("user", "school", "user")
        b = metapath("hobby", "employer", "hobby")
        v, e = mcs_size(a, b)
        assert v == 0 and e == 0
        assert structural_similarity(a, b) == 0.0

    def test_shared_single_node(self):
        a = metapath("user", "school", "user")
        b = metapath("user", "hobby", "user")
        v, e = mcs_size(a, b)
        assert (v, e) == (1, 0)  # only a lone user node in common

    def test_similar_shapes_higher_than_dissimilar(self, toy_metagraphs):
        m1 = toy_metagraphs["M1"]  # user(school,major)user square
        m2 = toy_metagraphs["M2"]  # user(employer,hobby)user square
        m3 = toy_metagraphs["M3"]  # user-address-user path
        # m1/m2 share a bigger common shape (user-x-user with 2 users) than
        # either shares with the short path? They share user-user via one
        # attribute? No common attribute type, so the MCS is a single user.
        assert structural_similarity(m1, m2) < structural_similarity(m1, m1)
        assert structural_similarity(m1, m3) < 1.0

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=30, deadline=None)
    def test_random_symmetry_and_range(self, seed):
        rng = random.Random(seed)
        a = random_metagraph(rng, max_nodes=4)
        b = random_metagraph(rng, max_nodes=4)
        s_ab = structural_similarity(a, b)
        s_ba = structural_similarity(b, a)
        assert s_ab == pytest.approx(s_ba)
        assert 0.0 <= s_ab <= 1.0


class TestFunctionalSimilarity:
    def test_equal_weights(self):
        assert functional_similarity(0.7, 0.7) == 1.0

    def test_extreme_difference(self):
        assert functional_similarity(1.0, 0.0) == 0.0

    def test_clipped(self):
        assert functional_similarity(1.5, 0.0) == 0.0
        assert 0.0 <= functional_similarity(-0.2, 0.9) <= 1.0
