"""Shared fixtures: the paper's toy graph (Fig. 1) and metagraphs (Fig. 2)."""

from __future__ import annotations

import os
import random
import sys

import pytest

from repro.graph.typed_graph import TypedGraph
from repro.metagraph.metagraph import Metagraph, metapath


def subprocess_env(**overrides: str) -> dict[str, str]:
    """The parent's environment plus its import path.

    Subprocess-based tests (examples, determinism) must let the child
    ``import repro`` however the parent found it — pytest ``pythonpath``
    config, editable install, or a PYTHONPATH hack — so the full
    ``sys.path`` is propagated, with optional overrides applied on top.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    env.update(overrides)
    return env


def build_toy_graph() -> TypedGraph:
    """The Fig. 1 toy social network, transcribed from the paper.

    Five users and their attribute nodes.  Edges follow the figure's
    explanations: Kate/Alice share employer and hobby, Kate/Jay share
    address and school+major, Bob/Alice share surname and address,
    Bob/Tom share school and major.
    """
    g = TypedGraph(name="toy")
    users = ["Alice", "Bob", "Kate", "Jay", "Tom"]
    for u in users:
        g.add_node(u, "user")
    attributes = [
        ("Clinton", "surname"),
        ("123 Green St", "address"),
        ("456 White St", "address"),
        ("College A", "school"),
        ("College B", "school"),
        ("Economics", "major"),
        ("Physics", "major"),
        ("Company X", "employer"),
        ("Music", "hobby"),
    ]
    for value, node_type in attributes:
        g.add_node(value, node_type)
    edges = [
        # family: Bob & Alice share surname and address
        ("Alice", "Clinton"),
        ("Bob", "Clinton"),
        ("Alice", "123 Green St"),
        ("Bob", "123 Green St"),
        # close friends: Kate & Alice share employer and hobby
        ("Kate", "Company X"),
        ("Alice", "Company X"),
        ("Kate", "Music"),
        ("Alice", "Music"),
        # close friends: Kate & Jay share address
        ("Kate", "456 White St"),
        ("Jay", "456 White St"),
        # classmates: Kate & Jay share school and major
        ("Kate", "College B"),
        ("Jay", "College B"),
        ("Kate", "Economics"),
        ("Jay", "Economics"),
        # classmates: Bob & Tom share school and major
        ("Bob", "College A"),
        ("Tom", "College A"),
        ("Bob", "Physics"),
        ("Tom", "Physics"),
    ]
    for u, v in edges:
        g.add_edge(u, v)
    return g


def fig2_metagraphs() -> dict[str, Metagraph]:
    """The paper's Fig. 2 metagraphs M1–M4."""
    m1 = Metagraph(
        ["user", "school", "major", "user"],
        [(0, 1), (0, 2), (3, 1), (3, 2)],
        name="M1",
    )
    m2 = Metagraph(
        ["user", "employer", "hobby", "user"],
        [(0, 1), (0, 2), (3, 1), (3, 2)],
        name="M2",
    )
    m3 = metapath("user", "address", "user", name="M3")
    m4 = Metagraph(
        ["user", "surname", "address", "user"],
        [(0, 1), (0, 2), (3, 1), (3, 2)],
        name="M4",
    )
    return {"M1": m1, "M2": m2, "M3": m3, "M4": m4}


@pytest.fixture
def toy_graph() -> TypedGraph:
    return build_toy_graph()


@pytest.fixture
def toy_metagraphs() -> dict[str, Metagraph]:
    return fig2_metagraphs()


def random_typed_graph(
    seed: int,
    num_users: int = 12,
    num_attrs_per_type: int = 4,
    attr_types: tuple[str, ...] = ("school", "hobby", "employer"),
    edge_prob: float = 0.35,
    user_edge_prob: float = 0.15,
) -> TypedGraph:
    """A random small heterogeneous graph for property-based tests."""
    rng = random.Random(seed)
    g = TypedGraph(name=f"rand{seed}")
    users = [f"u{i}" for i in range(num_users)]
    for u in users:
        g.add_node(u, "user")
    for t in attr_types:
        for j in range(num_attrs_per_type):
            g.add_node(f"{t}{j}", t)
    for u in users:
        for t in attr_types:
            for j in range(num_attrs_per_type):
                if rng.random() < edge_prob:
                    g.add_edge(u, f"{t}{j}")
    for i, u in enumerate(users):
        for v in users[i + 1 :]:
            if rng.random() < user_edge_prob:
                g.add_edge(u, v)
    return g
