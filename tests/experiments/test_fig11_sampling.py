"""Tests for Fig. 11's per-size metagraph sampling and engine timing."""

from repro.experiments.fig11 import _sample_by_size, time_engine
from repro.metagraph.catalog import MetagraphCatalog
from repro.metagraph.metagraph import Metagraph, metapath


def _catalog() -> MetagraphCatalog:
    return MetagraphCatalog(
        [
            metapath("user", "school", "user"),
            metapath("user", "hobby", "user"),
            metapath("user", "employer", "user"),
            Metagraph(
                ["user", "school", "major", "user"],
                [(0, 1), (0, 2), (3, 1), (3, 2)],
            ),
            metapath("user", "hobby", "user", "hobby", "user"),
        ],
        anchor_type="user",
    )


class TestSampleBySize:
    def test_buckets_by_node_count(self):
        samples = _sample_by_size(_catalog(), per_size=8)
        assert set(samples) == {3, 4, 5}
        assert len(samples[3]) == 3
        assert len(samples[4]) == 1
        assert len(samples[5]) == 1

    def test_per_size_cap(self):
        samples = _sample_by_size(_catalog(), per_size=2)
        assert len(samples[3]) == 2

    def test_sizes_below_three_excluded(self):
        catalog = MetagraphCatalog(
            [metapath("user", "user"), metapath("user", "school", "user")],
            anchor_type="user",
        )
        samples = _sample_by_size(catalog, per_size=5)
        assert 2 not in samples


class TestTimeEngine:
    def test_returns_time_and_count(self, toy_graph, toy_metagraphs):
        seconds, count = time_engine("SymISO", toy_graph, toy_metagraphs["M1"])
        assert seconds >= 0.0
        assert count == 2

    def test_engines_counts_agree(self, toy_graph, toy_metagraphs):
        counts = {
            name: time_engine(name, toy_graph, toy_metagraphs["M3"])[1]
            for name in ("SymISO", "SymISO-R", "BoostISO", "TurboISO", "QuickSI")
        }
        assert len(set(counts.values())) == 1
