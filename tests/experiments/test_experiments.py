"""Tests for the experiment harness (quick scale).

Each experiment must regenerate its table/figure rows with the paper's
qualitative shape.  The heavy offline phase is shared module-wide.
"""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    QUICK_CONFIG,
    OfflineRunner,
    fig4,
    fig6_7,
    fig8,
    fig9,
    fig10,
    fig11,
    table2,
    table3,
)


@pytest.fixture(scope="module")
def runner():
    shared = OfflineRunner(QUICK_CONFIG)
    shared.offline("linkedin")
    shared.offline("facebook")
    return shared


class TestRunnerCaching:
    def test_offline_cached(self, runner):
        a = runner.offline("linkedin")
        b = runner.offline("linkedin")
        assert a is b

    def test_offline_artifacts_consistent(self, runner):
        phase = runner.offline("linkedin")
        assert phase.vectors.matched_ids == frozenset(phase.catalog.ids())
        assert set(phase.per_metagraph_seconds) == set(phase.catalog.ids())

    def test_trainer_config_applied(self, runner):
        trainer = runner.trainer()
        assert trainer.config.restarts == QUICK_CONFIG.trainer_restarts


class TestTable2:
    def test_rows(self, runner):
        rows = table2.run(QUICK_CONFIG, runner)
        assert [row["dataset"] for row in rows] == ["linkedin", "facebook"]
        li, fb = rows
        assert fb["#Types"] == 10 and li["#Types"] == 4
        # Table II shape: Facebook's richer schema yields more metagraphs
        assert fb["#Metagraphs"] > li["#Metagraphs"]

    def test_render(self, runner):
        text = table2.main(QUICK_CONFIG, runner)
        assert "Table II" in text and "linkedin" in text


class TestTable3:
    def test_shape(self, runner):
        rows = table3.run(QUICK_CONFIG, runner)
        for row in rows:
            # online testing is orders of magnitude below offline work
            assert float(row["Testing per query (s)"]) < row["Matching (s)"]


class TestFig4:
    def test_long_tail(self, runner):
        rows = fig4.run(QUICK_CONFIG, runner)
        assert len(rows) == 4
        for row in rows:
            assert row["#w<0.1"] > row["|M|"] // 2  # majority insignificant

    def test_series_lengths(self, runner):
        series = fig4.ranked_weight_series(QUICK_CONFIG, runner)
        assert len(series) == 4
        for points in series.values():
            ranks = [r for r, _w in points]
            assert ranks == sorted(ranks)
            weights = [w for _r, w in points]
            assert weights == sorted(weights, reverse=True)


class TestFig6_7:
    def test_panel_shape(self, runner):
        ndcg, map_ = fig6_7.run_panel(runner, "linkedin", "college")
        assert set(ndcg) == set(fig6_7.ALGORITHMS)
        for series in (ndcg, map_):
            for algorithm, points in series.items():
                assert [x for x, _ in points] == list(QUICK_CONFIG.omega_sizes)
                assert all(0.0 <= y <= 1.0 for _x, y in points)

    def test_mgp_beats_uniform(self, runner):
        ndcg, _map = fig6_7.run_panel(runner, "linkedin", "college")
        top = dict(ndcg["MGP"])[max(QUICK_CONFIG.omega_sizes)]
        uniform = dict(ndcg["MGP-U"])[max(QUICK_CONFIG.omega_sizes)]
        assert top > uniform


class TestFig8:
    def test_anchors_present(self, runner):
        rows = fig8.run(QUICK_CONFIG, runner)
        k_values = {row["|K|"] for row in rows}
        assert 0 in k_values and "all" in k_values

    def test_time_increases_with_k(self, runner):
        rows = [r for r in fig8.run(QUICK_CONFIG, runner)
                if r["dataset"] == "facebook" and r["class"] == "family"]
        numeric = [
            float(r["Time incr"].rstrip("%"))
            for r in rows
            if isinstance(r["|K|"], int)
        ]
        assert numeric == sorted(numeric)


class TestFig9:
    def test_bins_in_range(self, runner):
        rows = fig9.run(QUICK_CONFIG, runner)
        for row in rows:
            values = [v for k, v in row.items() if k.startswith("SS ")]
            for value in values:
                if value != "n/a":
                    assert 0.0 <= value <= 1.0


class TestFig10:
    def test_ch_at_least_rch_on_average(self, runner):
        rows = fig10.run(QUICK_CONFIG, runner)
        ch = sum(row["CH NDCG"] for row in rows)
        rch = sum(row["RCH NDCG"] for row in rows)
        assert ch >= rch - 1e-9


class TestFig11:
    @pytest.fixture(scope="class")
    def rows(self, runner):
        import dataclasses

        # these tests check counts and sizes, never wall-clock
        # stability, so a single timing repeat is enough (and one
        # shared run covers both assertions)
        config = dataclasses.replace(QUICK_CONFIG, fig11_repeats=1)
        return fig11.run(config, runner)

    def test_engines_agree_column(self, rows):
        assert rows
        assert all(row["engines agree"] for row in rows)

    def test_sizes_in_catalog_range(self, rows):
        assert all(3 <= row["|V_M|"] <= QUICK_CONFIG.max_nodes for row in rows)


class TestRegistry:
    def test_all_registered(self):
        expected = {
            "table2", "table3", "fig4", "fig6", "fig7", "fig6_7",
            "fig8", "fig9", "fig10", "fig11",
        }
        assert expected == set(EXPERIMENTS)

    @pytest.mark.parametrize("name", ["table2", "fig9"])
    def test_renderers_return_text(self, runner, name):
        text = EXPERIMENTS[name](QUICK_CONFIG, runner)
        assert isinstance(text, str) and text
