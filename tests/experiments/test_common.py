"""Tests for the shared accuracy-experiment helpers."""

import numpy as np
import pytest

from repro.datasets.toy import toy_dataset, toy_metagraphs
from repro.experiments.common import (
    evaluate_weights,
    splits_for,
    triplets_for_split,
)
from repro.index.vectors import build_vectors
from repro.metagraph.catalog import MetagraphCatalog


@pytest.fixture(scope="module")
def setup():
    ds = toy_dataset()
    catalog = MetagraphCatalog(toy_metagraphs().values(), anchor_type="user")
    vectors, _ = build_vectors(ds.graph, catalog)
    return ds, catalog, vectors


class TestSplitsFor:
    def test_paper_fraction(self, setup):
        ds, _catalog, _vectors = setup
        splits = splits_for(ds, "classmates", num_splits=3, seed=0)
        assert len(splits) == 3
        for split in splits:
            assert set(split.train) | set(split.test) == set(
                ds.queries("classmates")
            )

    def test_seeded(self, setup):
        ds, _c, _v = setup
        a = splits_for(ds, "classmates", 2, seed=5)
        b = splits_for(ds, "classmates", 2, seed=5)
        assert a == b


class TestTripletsForSplit:
    def test_triplets_use_train_queries_only(self, setup):
        ds, _c, _v = setup
        split = splits_for(ds, "classmates", 1, seed=0)[0]
        triplets = triplets_for_split(ds, "classmates", split, 20, seed=0)
        assert len(triplets) == 20
        train = set(split.train)
        assert all(q in train for q, _x, _y in triplets)

    def test_positives_are_class_members(self, setup):
        ds, _c, _v = setup
        labels = ds.class_labels("classmates")
        split = splits_for(ds, "classmates", 1, seed=0)[0]
        for q, x, y in triplets_for_split(ds, "classmates", split, 20, seed=0):
            assert x in labels[q]
            assert y not in labels[q]


class TestEvaluateWeights:
    def test_perfect_weights_score_high(self, setup):
        ds, catalog, vectors = setup
        m1_id = catalog.id_of(toy_metagraphs()["M1"])
        weights = np.zeros(len(catalog))
        weights[m1_id] = 1.0
        result = evaluate_weights(
            weights, vectors, ds, "classmates",
            test_queries=ds.queries("classmates"),
        )
        assert result.ndcg == pytest.approx(1.0)
        assert result.num_queries == 4

    def test_wrong_weights_score_low(self, setup):
        ds, catalog, vectors = setup
        m4_id = catalog.id_of(toy_metagraphs()["M4"])
        weights = np.zeros(len(catalog))
        weights[m4_id] = 1.0  # family metagraph, classmate queries
        result = evaluate_weights(
            weights, vectors, ds, "classmates",
            test_queries=ds.queries("classmates"),
        )
        # clearly below the perfect-weights score (ties at proximity 0
        # still land inside the top-10 on a 5-user graph, so the floor
        # is well above zero)
        assert result.ndcg < 0.8
        assert result.map < 0.6
