"""Tests for report formatting and the CLI argument layer."""

import pytest

from repro.cli import build_parser, config_from_args
from repro.experiments.config import QUICK_CONFIG, ExperimentConfig
from repro.experiments.reporting import format_series, format_table, percent


class TestFormatTable:
    def test_basic(self):
        text = format_table(
            [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert "22" in lines[4]  # title, header, separator, row1, row2

    def test_missing_cells(self):
        text = format_table([{"a": 1}, {"b": 2}])
        assert "a" in text and "b" in text

    def test_empty(self):
        assert "(no rows)" in format_table([], title="x")

    def test_float_formatting(self):
        text = format_table([{"v": 0.123456}, {"v": 12345.6}, {"v": 0.0}])
        assert "0.1235" in text
        assert "1.23e+04" in text or "12345" in text.replace(",", "")

    def test_column_order_preserved(self):
        text = format_table([{"z": 1, "a": 2}])
        header = text.splitlines()[0]
        assert header.index("z") < header.index("a")


class TestFormatSeries:
    def test_layout(self):
        text = format_series(
            {"MGP": [(10, 0.5), (100, 0.6)], "MPP": [(10, 0.4)]},
            x_label="|Omega|",
            y_label="NDCG",
            title="Fig",
        )
        assert "|Omega|" in text
        assert "MGP" in text and "MPP" in text
        assert "NDCG" in text

    def test_percent(self):
        assert percent(0.153) == "+15.3%"
        assert percent(-0.5) == "-50.0%"


class TestCli:
    def test_default_config(self):
        args = build_parser().parse_args(["table2"])
        config = config_from_args(args)
        assert config == ExperimentConfig()

    def test_quick_flag(self):
        args = build_parser().parse_args(["table2", "--quick"])
        assert config_from_args(args) == QUICK_CONFIG

    def test_overrides(self):
        args = build_parser().parse_args(
            ["fig8", "--quick", "--scale", "medium", "--splits", "7", "--seed", "9"]
        )
        config = config_from_args(args)
        assert config.scale == "medium"
        assert config.num_splits == 7
        assert config.seed == 9
        # non-overridden quick fields survive
        assert config.max_nodes == QUICK_CONFIG.max_nodes

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_main_runs_table2_quick(self, capsys):
        from repro.cli import main

        assert main(["table2", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "completed in" in out


class TestServe:
    def test_serve_quick_compiled(self, capsys):
        from repro.cli import main

        assert main(["serve", "--quick", "--num-queries", "2", "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert "compiled backend" in out
        assert "ms/query" in out

    def test_serve_scalar_flag(self, capsys):
        from repro.cli import main

        code = main(
            ["serve", "--quick", "--scalar", "--num-queries", "1", "--k", "2"]
        )
        assert code == 0
        assert "scalar backend" in capsys.readouterr().out

    def test_serve_unknown_class(self, capsys):
        from repro.cli import main

        assert main(["serve", "--quick", "--class", "nope"]) == 2
        assert "unknown class" in capsys.readouterr().err

    def test_serve_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--dataset", "facebook", "--queries", "u1,u2", "--k", "7"]
        )
        assert args.dataset == "facebook"
        assert args.queries == "u1,u2"
        assert args.k == 7

    def test_serve_empty_queries_rejected(self, capsys):
        from repro.cli import main

        assert main(["serve", "--quick", "--queries", " , ,"]) == 2
        assert "contains no query ids" in capsys.readouterr().err
        # an explicitly empty value must error too, not silently fall
        # back to the sampled default batch
        assert main(["serve", "--quick", "--queries", ""]) == 2
        assert "contains no query ids" in capsys.readouterr().err

    def test_serve_flags_rejected_on_experiments(self, capsys):
        from repro.cli import main

        assert main(["table2", "--quick", "--k", "3", "--scalar"]) == 2
        err = capsys.readouterr().err
        assert "--k" in err and "--scalar" in err and "'table2'" in err

    def test_serve_negative_num_queries_rejected(self, capsys):
        from repro.cli import main

        assert main(["serve", "--quick", "--num-queries", "-2"]) == 2
        assert "--num-queries must be >= 0" in capsys.readouterr().err

    def test_serve_nonpositive_k_rejected(self, capsys):
        from repro.cli import main

        for bad_k in ("0", "-3"):
            assert main(["serve", "--quick", "--k", bad_k]) == 2
            assert "--k must be >= 1" in capsys.readouterr().err

    def test_serve_unknown_query_rejected(self, capsys):
        from repro.cli import main

        assert main(["serve", "--quick", "--queries", "ghost"]) == 2
        err = capsys.readouterr().err
        assert "cannot serve this batch" in err
        assert "'ghost' is not in graph" in err

    def test_serve_off_anchor_query_rejected(self, capsys):
        from repro.cli import main

        # college0 is a college node on the linkedin graph, not a 'user'
        assert main(["serve", "--quick", "--queries", "college0"]) == 2
        err = capsys.readouterr().err
        assert "cannot serve this batch" in err
        assert "anchored on 'user'" in err

    def test_serve_sharded_matches_unsharded_output(self, capsys):
        from repro.cli import main

        argv = ["serve", "--quick", "--num-queries", "3", "--k", "3"]
        assert main(argv) == 0
        unsharded = capsys.readouterr().out
        assert main(argv + ["--shards", "3", "--workers", "2"]) == 0
        sharded = capsys.readouterr().out
        assert "sharded (3 shards, 2 workers)" in sharded
        # every ranking line must be identical to the unsharded run
        assert [l for l in unsharded.splitlines() if l.startswith("  ")] == [
            l for l in sharded.splitlines() if l.startswith("  ")
        ]

    def test_serve_sharded_flag_validation(self, capsys):
        from repro.cli import main

        assert main(["serve", "--quick", "--shards", "0"]) == 2
        assert "--shards must be >= 1" in capsys.readouterr().err
        assert main(["serve", "--quick", "--shards", "2", "--workers", "0"]) == 2
        assert "--workers must be >= 1" in capsys.readouterr().err
        assert main(["serve", "--quick", "--scalar", "--shards", "2"]) == 2
        assert "cannot be combined" in capsys.readouterr().err

    def test_serve_queries_stripped(self, capsys):
        from repro.cli import main

        # whitespace around commas must not produce phantom query ids
        assert main(["serve", "--quick", "--queries", " u0 , u1 ", "--k", "2"]) == 0
        out = capsys.readouterr().out
        assert "  u0 ->" in out and "  u1 ->" in out
        assert " u0  ->" not in out


class TestIndexUpdate:
    @pytest.fixture(scope="class")
    def snapshot(self, tmp_path_factory):
        from repro.cli import main

        target = tmp_path_factory.mktemp("cli") / "snapshot"
        assert (
            main(["index", "build", "--dataset", "linkedin", "--out", str(target)])
            == 0
        )
        return target

    def test_toggle_edges_round_trip(self, snapshot, capsys):
        from repro.cli import main

        assert (
            main(["index", "update", str(snapshot), "--toggle-edges", "2"]) == 0
        )
        out = capsys.readouterr().out
        assert "applied 4 edit(s)" in out
        # a second update replays the first one's log onto the base graph
        assert (
            main(
                [
                    "index", "update", str(snapshot),
                    "--toggle-edges", "1", "--seed", "5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "replayed 4 logged edit(s)" in out
        assert main(["index", "info", str(snapshot)]) == 0

    def test_toggle_edges_preserves_edge_kinds(self, tmp_path, capsys):
        # a toggled kinded edge must come back with its label and
        # orientation, so the retired instances all return (+N == -N)
        import re

        from repro.cli import main

        target = tmp_path / "reactions-snapshot"
        assert (
            main(
                [
                    "index", "build", "--dataset", "reactions",
                    "--min-support", "2", "--out", str(target),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            main(["index", "update", str(target), "--toggle-edges", "3"]) == 0
        )
        out = capsys.readouterr().out
        match = re.search(r"-(\d+)/\+(\d+) instances", out)
        assert match is not None, out
        retired, restored = match.groups()
        assert retired == restored and int(retired) > 0
        assert main(["index", "info", str(target)]) == 0

    def test_edits_file(self, snapshot, tmp_path, capsys):
        import json

        from repro.cli import main
        from repro.datasets import load_dataset

        graph = load_dataset("linkedin", scale="tiny").graph
        u, v = next(iter(graph.edges()))
        edits = [
            {"op": "remove_edge", "u": u, "v": v},
            {"op": "add_edge", "u": u, "v": v},
        ]
        edits_file = tmp_path / "edits.json"
        edits_file.write_text(json.dumps(edits), encoding="utf-8")
        assert (
            main(["index", "update", str(snapshot), "--edits", str(edits_file)])
            == 0
        )
        out = capsys.readouterr().out
        assert "applied 2 edit(s)" in out

    def test_toggle_edges_out_of_range_rejected(self, snapshot, capsys):
        from repro.cli import main

        assert (
            main(["index", "update", str(snapshot), "--toggle-edges", "0"]) == 2
        )
        assert "--toggle-edges must be between" in capsys.readouterr().err
        assert (
            main(
                ["index", "update", str(snapshot), "--toggle-edges", "999999"]
            )
            == 2
        )

    def test_update_leaves_no_staging_dirs(self, snapshot):
        from repro.cli import main

        assert (
            main(["index", "update", str(snapshot), "--toggle-edges", "1"]) == 0
        )
        assert not snapshot.with_name(snapshot.name + ".updating").exists()
        assert not snapshot.with_name(snapshot.name + ".bak").exists()

    def test_unreadable_edits_file_rejected(self, snapshot, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text("not json", encoding="utf-8")
        assert (
            main(["index", "update", str(snapshot), "--edits", str(bad)]) == 2
        )
        assert "unreadable edits file" in capsys.readouterr().err

    def test_update_snapshot_without_instance_totals(self, tmp_path, capsys):
        # a snapshot saved with index=None has no |I(M)| totals; the
        # update must patch the vectors and keep the snapshot totals-free
        # instead of driving reconstructed zero totals negative
        from repro.cli import main
        from repro.datasets import load_dataset
        from repro.index import save_index
        from repro.index.vectors import build_vectors
        from repro.mining import MinerConfig, mine_catalog

        ds = load_dataset("linkedin", scale="tiny")
        catalog = mine_catalog(
            ds.graph,
            MinerConfig(max_nodes=3, min_support=3),
            anchor_type=ds.anchor_type,
        )
        vectors, _index = build_vectors(ds.graph, catalog)
        target = tmp_path / "no-totals"
        save_index(target, vectors, catalog, graph=ds.graph)
        assert (
            main(["index", "update", str(target), "--toggle-edges", "1"]) == 0
        )
        assert "applied 2 edit(s)" in capsys.readouterr().out

    def test_update_missing_snapshot_fails(self, tmp_path, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "index", "update", str(tmp_path / "nope"),
                    "--toggle-edges", "1",
                ]
            )
            == 1
        )
        assert "cannot update" in capsys.readouterr().err
