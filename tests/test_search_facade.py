"""Tests for the SemanticProximitySearch facade."""

import pytest

from repro import SemanticProximitySearch
from repro.datasets.toy import toy_dataset, toy_metagraphs
from repro.exceptions import LearningError
from repro.learning.trainer import TrainerConfig
from repro.metagraph.catalog import MetagraphCatalog
from repro.mining import MinerConfig


@pytest.fixture(scope="module")
def engine():
    ds = toy_dataset()
    spx = SemanticProximitySearch(
        ds.graph,
        miner_config=MinerConfig(max_nodes=4, min_support=1),
        trainer_config=TrainerConfig(restarts=2, max_iterations=300, seed=0),
    )
    # use the known Fig. 2 catalog rather than mining (deterministic)
    catalog = MetagraphCatalog(toy_metagraphs().values(), anchor_type="user")
    spx.prepare(catalog=catalog)
    return spx, ds


class TestLifecycle:
    def test_unprepared_fit_raises(self):
        ds = toy_dataset()
        spx = SemanticProximitySearch(ds.graph)
        with pytest.raises(LearningError):
            spx.fit("family", labels=ds.class_labels("family"))

    def test_unknown_class_raises(self, engine):
        spx, _ds = engine
        with pytest.raises(LearningError):
            spx.model("ghost-class")

    def test_fit_requires_labels_or_triplets(self, engine):
        spx, _ds = engine
        with pytest.raises(LearningError):
            spx.fit("broken")

    def test_prepare_mines_when_no_catalog(self):
        ds = toy_dataset()
        spx = SemanticProximitySearch(
            ds.graph, miner_config=MinerConfig(max_nodes=3, min_support=2)
        )
        spx.prepare()
        assert spx.catalog is not None and len(spx.catalog) > 0


class TestQueries:
    def test_fit_and_query_family(self, engine):
        spx, ds = engine
        spx.fit("family", labels=ds.class_labels("family"), num_examples=40)
        ranking = spx.query("family", "Bob", k=3)
        assert ranking[0][0] == "Alice"

    def test_fit_from_triplets(self, engine):
        spx, _ds = engine
        triplets = [("Kate", "Jay", "Alice"), ("Bob", "Tom", "Alice")]
        model = spx.fit("classmates", triplets=triplets)
        assert spx.proximity("classmates", "Kate", "Jay") > 0
        assert model.name == "classmates"

    def test_classes_listing(self, engine):
        spx, ds = engine
        spx.fit("family", labels=ds.class_labels("family"), num_examples=40)
        assert "family" in spx.classes

    def test_explain_returns_metagraphs(self, engine):
        spx, ds = engine
        spx.fit("family", labels=ds.class_labels("family"), num_examples=40)
        explanation = spx.explain("family", "Bob", "Alice", k=3)
        assert explanation
        types_seen = {t for mg, _c in explanation for t in mg.types}
        assert "surname" in types_seen or "address" in types_seen

    def test_proximity_symmetry(self, engine):
        spx, ds = engine
        spx.fit("family", labels=ds.class_labels("family"), num_examples=40)
        assert spx.proximity("family", "Bob", "Alice") == spx.proximity(
            "family", "Alice", "Bob"
        )

    def test_repr(self, engine):
        spx, _ds = engine
        assert "prepared=True" in repr(spx)
