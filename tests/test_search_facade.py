"""Tests for the SemanticProximitySearch facade."""

import pytest

from repro import SemanticProximitySearch
from repro.datasets.toy import toy_dataset, toy_metagraphs
from repro.exceptions import LearningError, StaleIndexError
from repro.index.delta import GraphDelta
from repro.index.vectors import build_vectors
from repro.learning.trainer import TrainerConfig
from repro.metagraph.catalog import MetagraphCatalog
from repro.mining import MinerConfig


@pytest.fixture(scope="module")
def engine():
    ds = toy_dataset()
    spx = SemanticProximitySearch(
        ds.graph,
        miner_config=MinerConfig(max_nodes=4, min_support=1),
        trainer_config=TrainerConfig(restarts=2, max_iterations=300, seed=0),
    )
    # use the known Fig. 2 catalog rather than mining (deterministic)
    catalog = MetagraphCatalog(toy_metagraphs().values(), anchor_type="user")
    spx.prepare(catalog=catalog)
    return spx, ds


class TestLifecycle:
    def test_unprepared_fit_raises(self):
        ds = toy_dataset()
        spx = SemanticProximitySearch(ds.graph)
        with pytest.raises(LearningError):
            spx.fit("family", labels=ds.class_labels("family"))

    def test_unknown_class_raises(self, engine):
        spx, _ds = engine
        with pytest.raises(LearningError):
            spx.model("ghost-class")

    def test_fit_requires_labels_or_triplets(self, engine):
        spx, _ds = engine
        with pytest.raises(LearningError):
            spx.fit("broken")

    def test_prepare_mines_when_no_catalog(self):
        ds = toy_dataset()
        spx = SemanticProximitySearch(
            ds.graph, miner_config=MinerConfig(max_nodes=3, min_support=2)
        )
        spx.prepare()
        assert spx.catalog is not None and len(spx.catalog) > 0


class TestQueries:
    def test_fit_and_query_family(self, engine):
        spx, ds = engine
        spx.fit("family", labels=ds.class_labels("family"), num_examples=40)
        ranking = spx.query("family", "Bob", k=3)
        assert ranking[0][0] == "Alice"

    def test_fit_from_triplets(self, engine):
        spx, _ds = engine
        triplets = [("Kate", "Jay", "Alice"), ("Bob", "Tom", "Alice")]
        model = spx.fit("classmates", triplets=triplets)
        assert spx.proximity("classmates", "Kate", "Jay") > 0
        assert model.name == "classmates"

    def test_classes_listing(self, engine):
        spx, ds = engine
        spx.fit("family", labels=ds.class_labels("family"), num_examples=40)
        assert "family" in spx.classes

    def test_explain_returns_metagraphs(self, engine):
        spx, ds = engine
        spx.fit("family", labels=ds.class_labels("family"), num_examples=40)
        explanation = spx.explain("family", "Bob", "Alice", k=3)
        assert explanation
        types_seen = {t for mg, _c in explanation for t in mg.types}
        assert "surname" in types_seen or "address" in types_seen

    def test_proximity_symmetry(self, engine):
        spx, ds = engine
        spx.fit("family", labels=ds.class_labels("family"), num_examples=40)
        assert spx.proximity("family", "Bob", "Alice") == spx.proximity(
            "family", "Alice", "Bob"
        )

    def test_repr(self, engine):
        spx, _ds = engine
        assert "prepared=True" in repr(spx)


class TestCompiledServing:
    def test_prepare_compiles_vectors(self, engine):
        spx, _ds = engine
        assert spx.vectors.compile() is spx.vectors.compile()

    def test_fitted_models_use_compiled_backend(self, engine):
        spx, ds = engine
        model = spx.fit("family", labels=ds.class_labels("family"), num_examples=40)
        assert model.compiled is spx.vectors.compile()

    def test_universe_cached(self, engine):
        spx, _ds = engine
        assert spx.universe() is spx.universe()
        assert list(spx.universe()) == sorted(
            spx.graph.nodes_of_type("user"), key=repr
        )

    def test_query_many_matches_single_queries(self, engine):
        spx, ds = engine
        spx.fit("family", labels=ds.class_labels("family"), num_examples=40)
        queries = ["Bob", "Kate", "Alice"]
        batched = spx.query_many("family", queries, k=3)
        assert batched == [spx.query("family", q, k=3) for q in queries]

    def test_query_many_unknown_class_raises(self, engine):
        spx, _ds = engine
        with pytest.raises(LearningError):
            spx.query_many("ghost-class", ["Bob"])

    def test_reprepare_drops_fitted_models(self):
        ds = toy_dataset()
        spx = SemanticProximitySearch(
            ds.graph, trainer_config=TrainerConfig(restarts=2, max_iterations=200)
        )
        catalog = MetagraphCatalog(toy_metagraphs().values(), anchor_type="user")
        spx.prepare(catalog=catalog)
        spx.fit("family", labels=ds.class_labels("family"), num_examples=40)
        # models trained on the replaced store must not survive
        spx.prepare(catalog=catalog)
        assert spx.classes == ()
        with pytest.raises(LearningError):
            spx.query("family", "Bob")

    def test_scalar_engine_opt_out(self):
        ds = toy_dataset()
        spx = SemanticProximitySearch(ds.graph, compile_serving=False)
        catalog = MetagraphCatalog(toy_metagraphs().values(), anchor_type="user")
        spx.prepare(catalog=catalog)
        model = spx.fit(
            "family",
            labels=ds.class_labels("family"),
            num_examples=40,
        )
        assert model.compiled is None
        assert spx.query("family", "Bob", k=3)  # scalar path still serves


@pytest.fixture
def fresh_engine():
    """A function-scoped engine whose graph the test may mutate."""
    ds = toy_dataset()
    spx = SemanticProximitySearch(
        ds.graph,
        trainer_config=TrainerConfig(restarts=2, max_iterations=300, seed=0),
    )
    catalog = MetagraphCatalog(toy_metagraphs().values(), anchor_type="user")
    spx.prepare(catalog=catalog)
    return spx, ds


class TestDynamicUpdates:
    def test_apply_updates_matches_rebuild(self, fresh_engine):
        spx, _ds = fresh_engine
        delta = (
            GraphDelta()
            .add_node("Mia", "user")
            .add_edge("Mia", "College A")
            .add_edge("Mia", "Physics")
            .remove_edge("Kate", "Music")
        )
        stats = spx.apply_updates(delta)
        assert stats.edits_applied == 4
        fresh, _idx = build_vectors(spx.graph, spx.catalog)
        assert spx.vectors._node == fresh._node
        assert spx.vectors._pair == fresh._pair

    def test_updates_change_rankings(self, fresh_engine):
        spx, ds = fresh_engine
        spx.fit("classmates", labels=ds.class_labels("classmates"), num_examples=40)
        before = dict(spx.query("classmates", "Bob", k=None))
        # Mia joins Bob's school and major: she must start scoring > 0
        spx.apply_updates(
            GraphDelta()
            .add_node("Mia", "user")
            .add_edge("Mia", "College A")
            .add_edge("Mia", "Physics")
        )
        after = dict(spx.query("classmates", "Bob", k=None))
        assert "Mia" not in before
        assert after["Mia"] > 0

    def test_compiled_and_scalar_agree_after_updates(self, fresh_engine):
        spx, ds = fresh_engine
        spx.fit("family", labels=ds.class_labels("family"), num_examples=40)
        spx.apply_updates(GraphDelta().remove_edge("Kate", "Music"))
        model = spx.model("family")
        compiled = model.rank("Bob", universe=spx.universe(), k=5)
        scalar = model._rank_scalar("Bob", spx.universe(), 5)
        assert compiled == scalar

    def test_universe_tracks_anchor_mutations(self, fresh_engine):
        spx, _ds = fresh_engine
        assert "Mia" not in spx.universe()
        spx.apply_updates(GraphDelta().add_node("Mia", "user"))
        assert "Mia" in spx.universe()
        spx.apply_updates(GraphDelta().remove_node("Mia"))
        assert "Mia" not in spx.universe()

    def test_universe_invalidated_by_direct_mutation(self, fresh_engine):
        # the universe is correctness-critical even without an index: it
        # re-sorts itself off the graph version, no prepare() needed
        spx, _ds = fresh_engine
        spx.universe()
        spx.graph.add_node("Zoe", "user")
        assert "Zoe" in spx.universe()

    def test_direct_mutation_makes_query_raise(self, fresh_engine):
        spx, ds = fresh_engine
        spx.fit("family", labels=ds.class_labels("family"), num_examples=40)
        spx.graph.remove_edge("Kate", "Music")
        with pytest.raises(StaleIndexError):
            spx.query("family", "Bob")
        with pytest.raises(StaleIndexError):
            spx.query_many("family", ["Bob"])
        with pytest.raises(StaleIndexError):
            spx.proximity("family", "Bob", "Alice")

    def test_prepare_clears_staleness(self, fresh_engine):
        spx, ds = fresh_engine
        spx.graph.remove_edge("Kate", "Music")
        catalog = MetagraphCatalog(toy_metagraphs().values(), anchor_type="user")
        spx.prepare(catalog=catalog)
        spx.fit("family", labels=ds.class_labels("family"), num_examples=40)
        assert spx.query("family", "Bob", k=3)

    def test_apply_updates_after_direct_mutation_rejected(self, fresh_engine):
        spx, _ds = fresh_engine
        spx.graph.remove_edge("Kate", "Music")
        with pytest.raises(StaleIndexError):
            spx.apply_updates(GraphDelta().add_node("Mia", "user"))

    def test_save_index_refuses_stale_engine(self, fresh_engine, tmp_path):
        # saving would stamp the mutated graph's fingerprint onto
        # pre-mutation counts, laundering staleness past from_index
        spx, _ds = fresh_engine
        spx.graph.remove_edge("Kate", "Music")
        with pytest.raises(StaleIndexError):
            spx.save_index(tmp_path / "stale-snap")

    def test_apply_updates_requires_prepare(self):
        ds = toy_dataset()
        spx = SemanticProximitySearch(ds.graph)
        with pytest.raises(LearningError):
            spx.apply_updates(GraphDelta().add_node("Mia", "user"))

    def test_noop_delta_keeps_compiled_snapshot(self, fresh_engine):
        spx, _ds = fresh_engine
        compiled = spx.vectors.compile()
        stats = spx.apply_updates(GraphDelta().add_edge("Kate", "Music"))
        assert stats.edits_noop == 1
        assert spx.vectors.compile() is compiled

    def test_failed_edit_mid_batch_keeps_engine_consistent(self, fresh_engine):
        spx, _ds = fresh_engine
        from repro.exceptions import NodeNotFoundError

        delta = (
            GraphDelta()
            .remove_edge("Kate", "Music")  # applies
            .remove_node("ghost")  # raises
            .remove_edge("Alice", "Music")  # never reached
        )
        with pytest.raises(NodeNotFoundError):
            spx.apply_updates(delta)
        # the applied prefix is versioned and logged; serving still works
        assert not spx.graph.has_edge("Kate", "Music")
        assert spx.graph.has_edge("Alice", "Music")
        assert len(spx._update_log) == 1
        fresh, _idx = build_vectors(spx.graph, spx.catalog)
        assert spx.vectors._pair == fresh._pair

    def test_updates_on_totals_free_snapshot(self, fresh_engine, tmp_path):
        # a manually-saved snapshot without |I(M)| totals must restore to
        # an engine whose updates patch the vectors, not a zero-totals
        # index that the first retirement would drive negative
        from repro.index import save_index

        spx, _ds = fresh_engine
        target = tmp_path / "no-totals"
        save_index(target, spx.vectors, spx.catalog, graph=spx.graph)
        # a structural copy fingerprints identically but mutates
        # independently of spx's graph
        twin = spx.graph.copy()
        restored = SemanticProximitySearch.from_index(target, twin)
        assert restored.index is None
        restored.apply_updates(GraphDelta().remove_edge("Kate", "Music"))
        spx.apply_updates(GraphDelta().remove_edge("Kate", "Music"))
        assert restored.vectors._pair == spx.vectors._pair
        # re-saving keeps the snapshot totals-free rather than stamping
        # deltas as authoritative totals
        restored.save_index(target)
        assert SemanticProximitySearch.from_index(target, twin).index is None

    def test_update_log_survives_snapshot_roundtrip(self, fresh_engine, tmp_path):
        spx, ds = fresh_engine
        spx.fit("family", labels=ds.class_labels("family"), num_examples=40)
        spx.apply_updates(
            GraphDelta().add_node("Mia", "user").add_edge("Mia", "College A")
        )
        target = tmp_path / "snapshot"
        spx.save_index(target)
        restored = SemanticProximitySearch.from_index(target, spx.graph)
        assert restored._update_log == spx._update_log
        assert restored.query("family", "Bob", k=3) == spx.query(
            "family", "Bob", k=3
        )
