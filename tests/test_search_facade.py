"""Tests for the SemanticProximitySearch facade."""

import pytest

from repro import SemanticProximitySearch
from repro.datasets.toy import toy_dataset, toy_metagraphs
from repro.exceptions import LearningError
from repro.learning.trainer import TrainerConfig
from repro.metagraph.catalog import MetagraphCatalog
from repro.mining import MinerConfig


@pytest.fixture(scope="module")
def engine():
    ds = toy_dataset()
    spx = SemanticProximitySearch(
        ds.graph,
        miner_config=MinerConfig(max_nodes=4, min_support=1),
        trainer_config=TrainerConfig(restarts=2, max_iterations=300, seed=0),
    )
    # use the known Fig. 2 catalog rather than mining (deterministic)
    catalog = MetagraphCatalog(toy_metagraphs().values(), anchor_type="user")
    spx.prepare(catalog=catalog)
    return spx, ds


class TestLifecycle:
    def test_unprepared_fit_raises(self):
        ds = toy_dataset()
        spx = SemanticProximitySearch(ds.graph)
        with pytest.raises(LearningError):
            spx.fit("family", labels=ds.class_labels("family"))

    def test_unknown_class_raises(self, engine):
        spx, _ds = engine
        with pytest.raises(LearningError):
            spx.model("ghost-class")

    def test_fit_requires_labels_or_triplets(self, engine):
        spx, _ds = engine
        with pytest.raises(LearningError):
            spx.fit("broken")

    def test_prepare_mines_when_no_catalog(self):
        ds = toy_dataset()
        spx = SemanticProximitySearch(
            ds.graph, miner_config=MinerConfig(max_nodes=3, min_support=2)
        )
        spx.prepare()
        assert spx.catalog is not None and len(spx.catalog) > 0


class TestQueries:
    def test_fit_and_query_family(self, engine):
        spx, ds = engine
        spx.fit("family", labels=ds.class_labels("family"), num_examples=40)
        ranking = spx.query("family", "Bob", k=3)
        assert ranking[0][0] == "Alice"

    def test_fit_from_triplets(self, engine):
        spx, _ds = engine
        triplets = [("Kate", "Jay", "Alice"), ("Bob", "Tom", "Alice")]
        model = spx.fit("classmates", triplets=triplets)
        assert spx.proximity("classmates", "Kate", "Jay") > 0
        assert model.name == "classmates"

    def test_classes_listing(self, engine):
        spx, ds = engine
        spx.fit("family", labels=ds.class_labels("family"), num_examples=40)
        assert "family" in spx.classes

    def test_explain_returns_metagraphs(self, engine):
        spx, ds = engine
        spx.fit("family", labels=ds.class_labels("family"), num_examples=40)
        explanation = spx.explain("family", "Bob", "Alice", k=3)
        assert explanation
        types_seen = {t for mg, _c in explanation for t in mg.types}
        assert "surname" in types_seen or "address" in types_seen

    def test_proximity_symmetry(self, engine):
        spx, ds = engine
        spx.fit("family", labels=ds.class_labels("family"), num_examples=40)
        assert spx.proximity("family", "Bob", "Alice") == spx.proximity(
            "family", "Alice", "Bob"
        )

    def test_repr(self, engine):
        spx, _ds = engine
        assert "prepared=True" in repr(spx)


class TestCompiledServing:
    def test_prepare_compiles_vectors(self, engine):
        spx, _ds = engine
        assert spx.vectors.compile() is spx.vectors.compile()

    def test_fitted_models_use_compiled_backend(self, engine):
        spx, ds = engine
        model = spx.fit("family", labels=ds.class_labels("family"), num_examples=40)
        assert model.compiled is spx.vectors.compile()

    def test_universe_cached(self, engine):
        spx, _ds = engine
        assert spx.universe() is spx.universe()
        assert list(spx.universe()) == sorted(
            spx.graph.nodes_of_type("user"), key=repr
        )

    def test_query_many_matches_single_queries(self, engine):
        spx, ds = engine
        spx.fit("family", labels=ds.class_labels("family"), num_examples=40)
        queries = ["Bob", "Kate", "Alice"]
        batched = spx.query_many("family", queries, k=3)
        assert batched == [spx.query("family", q, k=3) for q in queries]

    def test_query_many_unknown_class_raises(self, engine):
        spx, _ds = engine
        with pytest.raises(LearningError):
            spx.query_many("ghost-class", ["Bob"])

    def test_reprepare_drops_fitted_models(self):
        ds = toy_dataset()
        spx = SemanticProximitySearch(
            ds.graph, trainer_config=TrainerConfig(restarts=2, max_iterations=200)
        )
        catalog = MetagraphCatalog(toy_metagraphs().values(), anchor_type="user")
        spx.prepare(catalog=catalog)
        spx.fit("family", labels=ds.class_labels("family"), num_examples=40)
        # models trained on the replaced store must not survive
        spx.prepare(catalog=catalog)
        assert spx.classes == ()
        with pytest.raises(LearningError):
            spx.query("family", "Bob")

    def test_scalar_engine_opt_out(self):
        ds = toy_dataset()
        spx = SemanticProximitySearch(ds.graph, compile_serving=False)
        catalog = MetagraphCatalog(toy_metagraphs().values(), anchor_type="user")
        spx.prepare(catalog=catalog)
        model = spx.fit(
            "family",
            labels=ds.class_labels("family"),
            num_examples=40,
        )
        assert model.compiled is None
        assert spx.query("family", "Bob", k=3)  # scalar path still serves
