"""Tier-1 gate: the shipped tree passes its own invariant suite.

This is the test CI leans on: any change that breaks a determinism,
locking, lifecycle, wire-taxonomy or API invariant — or adds an
unjustified/unused suppression — fails here before review.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

from repro.analysis import run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


def test_shipped_tree_is_lint_clean():
    report = run_lint([SRC], root=REPO_ROOT)
    assert report.files_checked > 50
    assert report.clean, "\n".join(
        [str(f) for f in report.findings] + report.errors
    )


def test_seeded_violation_is_caught(tmp_path):
    """The gate actually gates: re-lint a copy with a seeded race."""
    victim = SRC / "repro" / "serving" / "cache.py"
    text = victim.read_text(encoding="utf-8")
    seeded = text + (
        "\n\ndef _seeded_backdoor(cache: ResultCache) -> None:\n"
        "    cache._entries.clear()\n"
    )
    target = tmp_path / "src" / "repro" / "serving" / "cache.py"
    target.parent.mkdir(parents=True)
    target.write_text(seeded, encoding="utf-8")
    report = run_lint([tmp_path / "src"], root=tmp_path)
    assert any(f.rule == "guarded-by" for f in report.findings)


def test_every_suppression_carries_a_justification():
    """Belt and braces over the meta-finding: grep the real tree."""
    for path in sorted(SRC.rglob("*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if "repro-lint: ignore[" in line and not line.lstrip().startswith(
                ('"', "'")
            ):
                assert " -- " in line, f"{path}:{lineno} lacks justification"


def test_cli_lint_exits_zero_on_shipped_tree():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "src"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout
