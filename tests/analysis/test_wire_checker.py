"""Self-tests for the wire-error taxonomy checker."""

from __future__ import annotations


def test_bare_except_flagged_everywhere(tree):
    tree.write(
        "eval/report.py",
        "try:\n    pass\nexcept:\n    pass\n",
    )
    report = tree.lint(["wire-errors"])
    assert [f.rule for f in report.findings] == ["wire-errors"]
    assert "bare" in report.findings[0].message


def test_non_repro_error_raise_on_wire_flagged(tree):
    tree.write(
        "serving/protocol.py",
        """\
        def execute(doc):
            raise ValueError("not a wire type")
        """,
    )
    report = tree.lint(["wire-errors"])
    assert any("ValueError" in f.message for f in report.findings)


def test_repro_error_subclasses_allowed_on_wire(tree):
    tree.write(
        "serving/worker.py",
        """\
        from repro.exceptions import ServingError, QueryError

        def execute(doc):
            if not doc:
                raise ServingError("empty frame")
            raise QueryError("unrankable")
        """,
    )
    assert tree.lint(["wire-errors"]).clean


def test_reraise_of_caught_binding_allowed(tree):
    tree.write(
        "serving/protocol.py",
        """\
        def passthrough(doc):
            try:
                return doc["op"]
            except KeyError as exc:
                raise
        """,
    )
    assert tree.lint(["wire-errors"]).clean


def test_raises_off_the_wire_not_checked(tree):
    tree.write(
        "index/build.py",
        "def guard(x):\n    raise ValueError(x)\n",
    )
    assert tree.lint(["wire-errors"]).clean


def test_base_exception_without_shutdown_arm_flagged(tree):
    tree.write(
        "serving/protocol.py",
        """\
        def execute(doc):
            try:
                return doc
            except BaseException as exc:
                return {"error": str(exc)}
        """,
    )
    report = tree.lint(["wire-errors"])
    assert any("smuggles" in f.message for f in report.findings)


def test_base_exception_behind_shutdown_reraise_allowed(tree):
    tree.write(
        "serving/protocol.py",
        """\
        def execute(doc):
            try:
                return doc
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as exc:
                return {"error": str(exc)}
        """,
    )
    assert tree.lint(["wire-errors"]).clean


def test_shipped_wire_modules_stay_sound():
    """The real protocol/worker modules must satisfy their own taxonomy."""
    from pathlib import Path

    from repro.analysis import run_lint
    import repro.serving.protocol as protocol
    import repro.serving.worker as worker

    report = run_lint(
        [Path(protocol.__file__), Path(worker.__file__)],
        rules=["wire-errors"],
    )
    assert report.clean, [str(f) for f in report.findings]
