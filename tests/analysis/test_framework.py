"""Framework-level behavior: registry, suppressions, report formats."""

from __future__ import annotations

import json

import pytest

from repro.analysis import all_checkers, format_json, format_text, run_lint
from repro.analysis.core import SUPPRESSION_RULE, Checker, register


EXPECTED_RULES = {
    "api-hygiene",
    "guarded-by",
    "hot-path-entropy",
    "resource-lifecycle",
    "unordered-iter",
    "wire-errors",
}


def test_all_five_checker_families_registered():
    assert EXPECTED_RULES <= set(all_checkers())


def test_every_checker_has_rule_and_description():
    for rule, cls in all_checkers().items():
        assert cls.rule == rule
        assert cls.description


def test_register_rejects_duplicate_and_reserved_ids():
    class Dup(Checker):
        rule = "unordered-iter"

    with pytest.raises(ValueError, match="duplicate"):
        register(Dup)

    class Reserved(Checker):
        rule = SUPPRESSION_RULE

    with pytest.raises(ValueError, match="reserved"):
        register(Reserved)

    class Anonymous(Checker):
        rule = ""

    with pytest.raises(ValueError, match="rule id"):
        register(Anonymous)


def test_unknown_rule_subset_raises(tree):
    tree.write("empty.py", "")
    with pytest.raises(ValueError, match="no-such-rule"):
        tree.lint(rules=["no-such-rule"])


def test_unparseable_file_is_an_error_not_a_crash(tree):
    tree.write("broken.py", "def broken(:\n")
    report = tree.lint()
    assert not report.clean
    assert any("broken.py" in error for error in report.errors)


def test_clean_file_clean_report(tree):
    tree.write("fine.py", "X = 1\n")
    report = tree.lint()
    assert report.clean
    assert report.files_checked == 1


# ----------------------------------------------------------------------
# suppression mechanics
# ----------------------------------------------------------------------
def test_same_line_suppression_drops_the_finding(tree):
    tree.write(
        "anywhere.py",
        """\
        try:
            pass
        except:  # repro-lint: ignore[wire-errors] -- exercising the suppressor
            pass
        """,
    )
    assert "wire-errors" not in tree.rules_fired()


def test_standalone_suppression_covers_next_line(tree):
    tree.write(
        "anywhere.py",
        """\
        try:
            pass
        # repro-lint: ignore[wire-errors] -- exercising the standalone form
        except:
            pass
        """,
    )
    assert "wire-errors" not in tree.rules_fired()


def test_suppression_without_justification_is_a_finding(tree):
    tree.write(
        "anywhere.py",
        """\
        try:
            pass
        except:  # repro-lint: ignore[wire-errors]
            pass
        """,
    )
    report = tree.lint()
    rules = {finding.rule for finding in report.findings}
    assert SUPPRESSION_RULE in rules
    assert any("justification" in f.message for f in report.findings)


def test_unused_suppression_is_a_finding(tree):
    tree.write(
        "anywhere.py",
        "X = 1  # repro-lint: ignore[wire-errors] -- nothing here at all\n",
    )
    report = tree.lint()
    assert any(
        f.rule == SUPPRESSION_RULE and "unused" in f.message
        for f in report.findings
    )


def test_suppression_naming_no_rules_is_a_finding(tree):
    tree.write(
        "anywhere.py",
        "X = 1  # repro-lint: ignore[] -- empty brackets\n",
    )
    report = tree.lint()
    assert any(
        f.rule == SUPPRESSION_RULE and "names no rules" in f.message
        for f in report.findings
    )


def test_suppression_example_in_docstring_is_inert(tree):
    tree.write(
        "documented.py",
        '''\
        """Docs showing `# repro-lint: ignore[wire-errors] -- example`."""
        X = 1
        ''',
    )
    assert tree.lint().clean


def test_suppression_only_covers_named_rules(tree):
    tree.write(
        "anywhere.py",
        """\
        try:
            pass
        except:  # repro-lint: ignore[api-hygiene] -- wrong rule on purpose
            pass
        """,
    )
    fired = tree.rules_fired()
    # the bare-except finding survives AND the suppression reports unused
    assert "wire-errors" in fired
    assert SUPPRESSION_RULE in fired


# ----------------------------------------------------------------------
# output formats
# ----------------------------------------------------------------------
def test_json_report_shape(tree):
    tree.write(
        "anywhere.py",
        "try:\n    pass\nexcept:\n    pass\n",
    )
    report = tree.lint()
    doc = json.loads(format_json(report))
    assert doc["clean"] is False
    assert doc["files_checked"] == 1
    (finding,) = [f for f in doc["findings"] if f["rule"] == "wire-errors"]
    assert finding["path"].endswith("anywhere.py")
    assert finding["line"] == 3


def test_text_report_mentions_every_finding_and_a_summary(tree):
    tree.write("anywhere.py", "try:\n    pass\nexcept:\n    pass\n")
    text = format_text(tree.lint())
    assert "wire-errors" in text
    assert "[repro lint]" in text


def test_findings_sorted_and_stable(tree):
    tree.write("b.py", "try:\n    pass\nexcept:\n    pass\n")
    tree.write("a.py", "try:\n    pass\nexcept:\n    pass\n")
    report = tree.lint()
    paths = [finding.path for finding in report.findings]
    assert paths == sorted(paths)
