"""The `repro lint` CLI verb: flags, formats, exit codes."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.cli import main, run_lint_cli


@pytest.fixture
def dirty_tree(tmp_path):
    bad = tmp_path / "src" / "repro" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        textwrap.dedent(
            """\
            try:
                pass
            except:
                pass
            """
        ),
        encoding="utf-8",
    )
    return tmp_path


def test_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in (
        "api-hygiene", "guarded-by", "hot-path-entropy",
        "resource-lifecycle", "unordered-iter", "wire-errors",
    ):
        assert rule in out


def test_findings_exit_one_text(dirty_tree, capsys):
    code = run_lint_cli([str(dirty_tree / "src")])
    out = capsys.readouterr().out
    assert code == 1
    assert "wire-errors" in out
    assert "[repro lint]" in out


def test_json_format_and_output_file(dirty_tree, capsys, tmp_path):
    report_path = tmp_path / "report.json"
    code = run_lint_cli(
        [str(dirty_tree / "src"), "--format", "json", "--output", str(report_path)]
    )
    assert code == 1
    doc = json.loads(report_path.read_text(encoding="utf-8"))
    assert doc["clean"] is False
    assert doc == json.loads(capsys.readouterr().out)


def test_rules_subset(dirty_tree, capsys):
    # the only violation is wire-errors; restricting to another rule
    # (and with no suppressions in play) must come back clean
    code = run_lint_cli([str(dirty_tree / "src"), "--rules", "api-hygiene"])
    assert code == 0
    assert "clean" in capsys.readouterr().out


def test_unknown_rule_is_usage_error(dirty_tree, capsys):
    code = run_lint_cli([str(dirty_tree / "src"), "--rules", "nope"])
    assert code == 2
    assert "unknown rule" in capsys.readouterr().err


def test_lint_with_flags_before_verb_is_rejected(capsys):
    assert main(["--quick", "lint"]) == 2
    assert "repro lint" in capsys.readouterr().err


def test_clean_tree_exits_zero(tmp_path, capsys):
    good = tmp_path / "src" / "repro" / "fine.py"
    good.parent.mkdir(parents=True)
    good.write_text("X = 1\n", encoding="utf-8")
    assert run_lint_cli([str(tmp_path / "src")]) == 0
