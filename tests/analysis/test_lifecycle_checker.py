"""Self-tests for the resource-lifecycle checker."""

from __future__ import annotations


def test_dropped_executor_flagged(tree):
    tree.write(
        "pools.py",
        """\
        from concurrent.futures import ThreadPoolExecutor

        def leak():
            pool = ThreadPoolExecutor(max_workers=2)
            return 1
        """,
    )
    report = tree.lint(["resource-lifecycle"])
    assert [f.rule for f in report.findings] == ["resource-lifecycle"]
    assert "ThreadPoolExecutor" in report.findings[0].message


def test_bare_expression_construction_flagged(tree):
    tree.write(
        "pools.py",
        """\
        import socket

        def poke():
            socket.socket()
        """,
    )
    assert "resource-lifecycle" in tree.rules_fired(["resource-lifecycle"])


def test_immediate_method_call_on_open_flagged(tree):
    tree.write(
        "io_util.py",
        'def slurp(path):\n    return open(path).read()\n',
    )
    assert "resource-lifecycle" in tree.rules_fired(["resource-lifecycle"])


def test_with_block_is_clean(tree):
    tree.write(
        "io_util.py",
        """\
        def slurp(path):
            with open(path) as fh:
                return fh.read()
        """,
    )
    assert tree.lint(["resource-lifecycle"]).clean


def test_close_in_same_function_is_clean(tree):
    tree.write(
        "pools.py",
        """\
        from concurrent.futures import ThreadPoolExecutor

        def run(tasks):
            pool = ThreadPoolExecutor(max_workers=2)
            try:
                return [pool.submit(t) for t in tasks]
            finally:
                pool.shutdown(wait=True)
        """,
    )
    assert tree.lint(["resource-lifecycle"]).clean


def test_returned_resource_is_ownership_transfer(tree):
    tree.write(
        "pools.py",
        """\
        import socket

        def make_conn():
            return socket.socket()
        """,
    )
    assert tree.lint(["resource-lifecycle"]).clean


def test_self_attribute_with_class_close_is_clean(tree):
    tree.write(
        "pools.py",
        """\
        from concurrent.futures import ThreadPoolExecutor

        class Runner:
            def start(self):
                self._pool = ThreadPoolExecutor(max_workers=2)

            def close(self):
                self._pool.shutdown(wait=True)
        """,
    )
    assert tree.lint(["resource-lifecycle"]).clean


def test_write_only_self_attribute_flagged(tree):
    tree.write(
        "pools.py",
        """\
        from concurrent.futures import ThreadPoolExecutor

        class Runner:
            def start(self):
                self._pool = ThreadPoolExecutor(max_workers=2)
        """,
    )
    assert "resource-lifecycle" in tree.rules_fired(["resource-lifecycle"])


def test_handle_attribute_released_via_owner_is_clean(tree):
    tree.write(
        "pools.py",
        """\
        import subprocess

        def respawn(handle, cmd):
            handle.proc = subprocess.Popen(cmd)
            handle.register()
        """,
    )
    # `handle` escapes into a call — its owner manages the process
    assert tree.lint(["resource-lifecycle"]).clean


def test_justified_suppression_accepted(tree):
    tree.write(
        "pools.py",
        """\
        import socket

        def probe():
            # repro-lint: ignore[resource-lifecycle] -- probe socket lives until process exit by design
            conn = socket.socket()
            conn.bind(("", 0))
        """,
    )
    assert tree.lint(["resource-lifecycle"]).clean
