"""Self-tests for the api-hygiene checker."""

from __future__ import annotations


def test_unsorted_all_flagged(tree):
    tree.write(
        "pkg.py",
        '__all__ = ["beta", "alpha"]\nalpha = 1\nbeta = 2\n',
    )
    report = tree.lint(["api-hygiene"])
    assert any("not sorted" in f.message for f in report.findings)


def test_non_literal_all_flagged(tree):
    tree.write(
        "pkg.py",
        'NAMES = ["a"]\n__all__ = NAMES\na = 1\n',
    )
    report = tree.lint(["api-hygiene"])
    assert any("literal" in f.message for f in report.findings)


def test_phantom_export_flagged(tree):
    tree.write(
        "pkg.py",
        '__all__ = ["ghost"]\n',
    )
    report = tree.lint(["api-hygiene"])
    assert any("never binds" in f.message for f in report.findings)


def test_duplicate_export_flagged(tree):
    tree.write(
        "pkg.py",
        '__all__ = ["a", "a"]\na = 1\n',
    )
    report = tree.lint(["api-hygiene"])
    assert any("duplicates" in f.message for f in report.findings)


def test_underscored_export_flagged_but_dunder_allowed(tree):
    tree.write(
        "pkg.py",
        '__version__ = "1"\n_hidden = 2\n__all__ = ["__version__", "_hidden"]\n',
    )
    report = tree.lint(["api-hygiene"])
    messages = [f.message for f in report.findings]
    assert any("_hidden" in m for m in messages)
    assert not any("__version__" in m for m in messages)


def test_unannotated_exported_function_flagged(tree):
    tree.write(
        "pkg.py",
        """\
        __all__ = ["run"]

        def run(x):
            return x
        """,
    )
    report = tree.lint(["api-hygiene"])
    assert any("unannotated parameter" in f.message for f in report.findings)
    assert any("return annotation" in f.message for f in report.findings)


def test_annotated_export_clean(tree):
    tree.write(
        "pkg.py",
        """\
        __all__ = ["Runner", "run"]

        def run(x: int) -> int:
            return x

        class Runner:
            def __init__(self, depth: int = 1):
                self.depth = depth
        """,
    )
    assert tree.lint(["api-hygiene"]).clean


def test_imported_and_conditional_names_count_as_bound(tree):
    tree.write(
        "pkg.py",
        """\
        from os.path import join
        from typing import TYPE_CHECKING

        if TYPE_CHECKING:
            from os.path import split

        __all__ = ["join", "split"]
        """,
    )
    assert tree.lint(["api-hygiene"]).clean


def test_module_without_all_not_checked(tree):
    tree.write(
        "pkg.py",
        "def run(x):\n    return x\n",
    )
    assert tree.lint(["api-hygiene"]).clean
