"""Self-tests for the unordered-iter and hot-path-entropy checkers."""

from __future__ import annotations


# ----------------------------------------------------------------------
# unordered-iter
# ----------------------------------------------------------------------
def test_for_loop_over_set_literal_flagged(tree):
    tree.write(
        "serving/merge.py",
        """\
        def merge(results):
            out = []
            for item in {1, 2, 3}:
                out.append(item)
            return out
        """,
    )
    assert "unordered-iter" in tree.rules_fired(["unordered-iter"])


def test_for_loop_over_set_call_flagged(tree):
    tree.write(
        "index/build.py",
        """\
        def fold(pairs):
            out = []
            for node in set(pairs):
                out.append(node)
            return out
        """,
    )
    assert "unordered-iter" in tree.rules_fired(["unordered-iter"])


def test_set_typed_name_tracked_through_assignment(tree):
    tree.write(
        "matching/engine.py",
        """\
        def candidates(xs):
            seen = set(xs)
            return [x for x in seen]
        """,
    )
    assert "unordered-iter" in tree.rules_fired(["unordered-iter"])


def test_list_of_set_flagged(tree):
    tree.write(
        "serving/merge.py",
        "def snapshot(s):\n    return list({1, 2})\n",
    )
    assert "unordered-iter" in tree.rules_fired(["unordered-iter"])


def test_set_algebra_propagates_setness(tree):
    tree.write(
        "serving/merge.py",
        """\
        def overlap(a, b):
            left = set(a)
            right = set(b)
            return [x for x in left & right]
        """,
    )
    assert "unordered-iter" in tree.rules_fired(["unordered-iter"])


def test_sorted_over_set_is_clean(tree):
    tree.write(
        "serving/merge.py",
        """\
        def merge(results):
            return sorted({r for r in results})
        """,
    )
    assert tree.lint(["unordered-iter"]).clean


def test_order_insensitive_folds_are_clean(tree):
    tree.write(
        "index/build.py",
        """\
        def fold(pairs):
            total = sum(x for x in set(pairs))
            largest = max({p for p in pairs})
            return total, largest, len(set(pairs))
        """,
    )
    assert tree.lint(["unordered-iter"]).clean


def test_dict_iteration_is_exempt_by_design(tree):
    tree.write(
        "serving/merge.py",
        """\
        def merge(groups):
            out = []
            for key in groups:
                out.append(key)
            return [v for v in groups.values()]
        """,
    )
    assert tree.lint(["unordered-iter"]).clean


def test_out_of_scope_modules_not_checked(tree):
    tree.write(
        "eval/report.py",
        "def fold(xs):\n    return [x for x in set(xs)]\n",
    )
    assert tree.lint(["unordered-iter"]).clean


def test_metagraph_package_is_in_scope(tree):
    # kind-aware canonicalisation must not depend on set order, so the
    # checker's scope covers repro.metagraph too
    tree.write(
        "metagraph/forms.py",
        """\
        def collect(edges):
            out = []
            for entry in set(edges):
                out.append(entry)
            return out
        """,
    )
    assert "unordered-iter" in tree.rules_fired(["unordered-iter"])


def test_nested_function_set_names_stay_scoped(tree):
    # outer's `items` is a list; inner's `items` is a set — the walk
    # must not leak one scope's inference into the other
    tree.write(
        "serving/merge.py",
        """\
        def outer(xs):
            items = list(xs)
            def inner(ys):
                items = set(ys)
                return [y for y in items]
            return [x for x in items], inner
        """,
    )
    findings = tree.lint(["unordered-iter"]).findings
    assert len(findings) == 1
    assert findings[0].line == 5


# ----------------------------------------------------------------------
# hot-path-entropy
# ----------------------------------------------------------------------
def test_clock_read_in_hot_path_flagged(tree):
    tree.write(
        "serving/router.py",
        """\
        import time

        def merge(parts):
            started = time.monotonic()
            return parts, started
        """,
    )
    assert "hot-path-entropy" in tree.rules_fired(["hot-path-entropy"])


def test_random_import_in_hot_path_flagged(tree):
    tree.write(
        "learning/model.py",
        "import random\n",
    )
    assert "hot-path-entropy" in tree.rules_fired(["hot-path-entropy"])


def test_numpy_random_attribute_flagged(tree):
    tree.write(
        "index/compiled.py",
        """\
        import numpy as np

        def jitter(x):
            return x + np.random.random()
        """,
    )
    assert "hot-path-entropy" in tree.rules_fired(["hot-path-entropy"])


def test_clock_outside_hot_path_is_fine(tree):
    tree.write(
        "serving/frontend.py",
        """\
        import time

        def deadline(timeout):
            return time.monotonic() + timeout
        """,
    )
    assert tree.lint(["hot-path-entropy"]).clean


def test_justified_suppression_is_the_whitelist(tree):
    tree.write(
        "serving/router.py",
        """\
        import time

        def drain(timeout):
            # repro-lint: ignore[hot-path-entropy] -- drain deadline; never feeds a score
            deadline = time.monotonic() + timeout
            return deadline
        """,
    )
    assert tree.lint(["hot-path-entropy"]).clean
