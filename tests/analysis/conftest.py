"""Fixture helpers for the invariant-analysis suite's self-tests.

Each checker test writes a tiny synthetic tree that mimics the real
package layout (the determinism and wire checkers scope themselves by
dotted module path, so the files must land under ``src/repro/...``)
and asserts which rule ids fire where.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis import run_lint
from repro.analysis.core import LintReport


class LintTree:
    """A scratch ``src/repro`` tree plus a one-call lint runner."""

    def __init__(self, root: Path):
        self.root = root

    def write(self, rel: str, source: str) -> Path:
        """Write dedented ``source`` at ``src/repro/<rel>``."""
        path = self.root / "src" / "repro" / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        return path

    def lint(self, rules: list[str] | None = None) -> LintReport:
        return run_lint([self.root / "src"], rules=rules, root=self.root)

    def rules_fired(self, rules: list[str] | None = None) -> set[str]:
        return {finding.rule for finding in self.lint(rules).findings}


@pytest.fixture
def tree(tmp_path: Path) -> LintTree:
    return LintTree(tmp_path)
