"""Self-tests for the guarded-by lock-discipline checker."""

from __future__ import annotations


GUARDED_CLASS = """\
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            self._entries = {{}}  # guarded-by: _lock

        def touch(self):
            {body}
"""


def test_unlocked_access_flagged(tree):
    tree.write(
        "store.py",
        GUARDED_CLASS.format(body='self._entries["k"] = 1'),
    )
    report = tree.lint(["guarded-by"])
    assert [f.rule for f in report.findings] == ["guarded-by"]
    assert "_entries" in report.findings[0].message


def test_locked_access_clean(tree):
    tree.write(
        "store.py",
        GUARDED_CLASS.format(
            body='with self._lock:\n                self._entries["k"] = 1'
        ),
    )
    assert tree.lint(["guarded-by"]).clean


def test_init_and_repr_exempt(tree):
    tree.write(
        "store.py",
        """\
        import threading

        class Store:
            def __init__(self):
                self._lock = threading.Lock()
                self._entries = {}  # guarded-by: _lock
                self._entries["seed"] = 1

            def __repr__(self):
                return f"<Store {len(self._entries)}>"
        """,
    )
    assert tree.lint(["guarded-by"]).clean


def test_condition_alias_counts_as_the_lock(tree):
    tree.write(
        "store.py",
        """\
        import threading

        class Store:
            def __init__(self):
                self._lock = threading.Lock()
                self._cv = threading.Condition(self._lock)
                self._groups = {}  # guarded-by: _cv

            def touch(self):
                with self._lock:
                    self._groups["k"] = 1
        """,
    )
    assert tree.lint(["guarded-by"]).clean


def test_wrong_lock_still_flagged(tree):
    tree.write(
        "store.py",
        """\
        import threading

        class Store:
            def __init__(self):
                self._lock = threading.Lock()
                self._other = threading.Lock()
                self._entries = {}  # guarded-by: _lock

            def touch(self):
                with self._other:
                    self._entries["k"] = 1
        """,
    )
    assert "guarded-by" in tree.rules_fired(["guarded-by"])


def test_writes_only_mode_allows_unlocked_reads(tree):
    tree.write(
        "store.py",
        """\
        import threading

        class Store:
            def __init__(self):
                self._lock = threading.Lock()
                self._backend = object()  # guarded-by: _lock (writes)

            def snapshot(self):
                return self._backend

            def swap(self, new):
                with self._lock:
                    self._backend = new
        """,
    )
    assert tree.lint(["guarded-by"]).clean


def test_writes_only_mode_still_flags_unlocked_writes(tree):
    tree.write(
        "store.py",
        """\
        import threading

        class Store:
            def __init__(self):
                self._lock = threading.Lock()
                self._backend = object()  # guarded-by: _lock (writes)

            def swap(self, new):
                self._backend = new
        """,
    )
    report = tree.lint(["guarded-by"])
    assert [f.rule for f in report.findings] == ["guarded-by"]
    assert "write to" in report.findings[0].message


def test_guarded_by_caller_annotation_trusts_the_method(tree):
    tree.write(
        "store.py",
        """\
        import threading

        class Store:
            def __init__(self):
                self._lock = threading.Lock()
                self._entries = {}  # guarded-by: _lock

            def _drain_locked(self):  # guarded-by-caller: _lock
                self._entries.clear()
        """,
    )
    assert tree.lint(["guarded-by"]).clean


def test_closure_does_not_inherit_the_with_block(tree):
    # a closure defined under `with` runs later, lock-free
    tree.write(
        "store.py",
        """\
        import threading

        class Store:
            def __init__(self):
                self._lock = threading.Lock()
                self._entries = {}  # guarded-by: _lock

            def schedule(self, pool):
                with self._lock:
                    def later():
                        self._entries.clear()
                    pool.submit(later)
        """,
    )
    assert "guarded-by" in tree.rules_fired(["guarded-by"])


def test_foreign_receiver_checked_against_owning_class(tree):
    # handle.conn manipulated by another class in the file must hold
    # handle.lock — the merged, non-self pass
    tree.write(
        "backendish.py",
        """\
        import threading

        class Handle:
            def __init__(self):
                self.lock = threading.Lock()
                self.conn = None  # guarded-by: lock

        class Supervisor:
            def good(self, handle):
                with handle.lock:
                    handle.conn = object()

            def bad(self, handle):
                handle.conn = object()
        """,
    )
    report = tree.lint(["guarded-by"])
    assert len(report.findings) == 1
    assert "handle.conn" in report.findings[0].message


def test_caller_holds_foreign_lock_form(tree):
    tree.write(
        "backendish.py",
        """\
        import threading

        class Handle:
            def __init__(self):
                self.lock = threading.Lock()
                self.conn = None  # guarded-by: lock

        class Supervisor:
            def _connect(self, handle):  # guarded-by-caller: handle.lock
                handle.conn = object()
        """,
    )
    assert tree.lint(["guarded-by"]).clean


def test_multiline_assignment_declaration_registers(tree):
    tree.write(
        "store.py",
        """\
        import threading
        from collections import OrderedDict

        class Store:
            def __init__(self):
                self._lock = threading.Lock()
                self._entries = (
                    OrderedDict()  # guarded-by: _lock
                )

            def touch(self):
                self._entries["k"] = 1
        """,
    )
    assert "guarded-by" in tree.rules_fired(["guarded-by"])
