"""Determinism regression tests.

Everything stochastic in the library is seeded; nothing may depend on
Python's per-process hash randomisation (set/dict iteration order).
These tests run pipeline stages in fresh subprocesses with different
PYTHONHASHSEED values and require bit-identical artefacts.

Regression context: label perturbation once iterated a raw set while
consuming the RNG, so generated *labels* differed between processes —
experiments were reproducible within a session but not across runs.
"""

import json
import subprocess
import sys

import pytest

from tests.conftest import subprocess_env

SNIPPET = """
import hashlib, json
import numpy as np
from repro.datasets import load_dataset
from repro.mining import MinerConfig, mine_catalog
from repro.index.vectors import build_vectors
from repro.learning.examples import generate_triplets
from repro.learning.trainer import Trainer, TrainerConfig

ds = load_dataset("linkedin", scale="tiny")
labels = ds.class_labels("college")
label_digest = hashlib.md5(repr(sorted(
    (q, tuple(sorted(v))) for q, v in labels.items()
)).encode()).hexdigest()

catalog = mine_catalog(ds.graph, MinerConfig(max_nodes=3, min_support=3))
catalog_digest = hashlib.md5(catalog.to_json().encode()).hexdigest()

vectors, _ = build_vectors(ds.graph, catalog)
pairs = sorted(
    (repr(x), repr(y))
    for x in list(ds.universe)[:6]
    for y in list(ds.universe)[:6]
    if repr(x) < repr(y)
)
vec_digest = hashlib.md5(b"".join(
    vectors.pair_vector(x, y).tobytes() for x, y in pairs
)).hexdigest()

triplets = generate_triplets(
    ds.queries("college")[:8], labels, ds.universe, 50, seed=0
)
triplet_digest = hashlib.md5(repr(triplets).encode()).hexdigest()

weights = Trainer(TrainerConfig(restarts=2, max_iterations=150, seed=0)).train(
    triplets, vectors
)
weight_digest = hashlib.md5(np.round(weights, 12).tobytes()).hexdigest()

print(json.dumps({
    "labels": label_digest,
    "catalog": catalog_digest,
    "vectors": vec_digest,
    "triplets": triplet_digest,
    "weights": weight_digest,
}))
"""


def _run_with_hashseed(seed: str) -> dict:
    # Propagate the parent's environment and import path: the child must
    # be able to `import repro` however the parent found it (PYTHONPATH
    # hack, editable install, ...), with only PYTHONHASHSEED varied.
    result = subprocess.run(
        [sys.executable, "-c", SNIPPET],
        capture_output=True,
        text=True,
        timeout=300,
        env=subprocess_env(PYTHONHASHSEED=seed),
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return json.loads(result.stdout.strip().splitlines()[-1])


@pytest.mark.parametrize("other_seed", ["12345", "987654321"])
def test_pipeline_invariant_under_hash_randomisation(other_seed):
    baseline = _run_with_hashseed("0")
    other = _run_with_hashseed(other_seed)
    for stage in ("labels", "catalog", "vectors", "triplets", "weights"):
        assert baseline[stage] == other[stage], (
            f"stage {stage!r} depends on hash order"
        )


def test_parallel_build_snapshot_is_byte_identical(tmp_path):
    """The parallel builder is exact: workers=1 and workers=4 snapshots
    match byte for byte.

    The catalog deliberately includes 4-node patterns so the build also
    exercises graph-partition sharding (not just per-metagraph tasks)
    and the instance-level shard merge.
    """
    from repro.datasets import load_dataset
    from repro.index.parallel import IndexBuildConfig, build_index
    from repro.index.persist import save_index
    from repro.mining import MinerConfig, mine_catalog

    dataset = load_dataset("linkedin", scale="tiny")
    catalog = mine_catalog(dataset.graph, MinerConfig(max_nodes=4, min_support=3))
    assert any(m.size >= 4 for m in catalog), "need a shardable pattern"

    snapshots = {}
    for workers in (1, 4):
        vectors, index = build_index(
            dataset.graph,
            catalog,
            IndexBuildConfig(workers=workers, min_partition_size=4),
        )
        target = tmp_path / f"workers{workers}"
        save_index(target, vectors, catalog, graph=dataset.graph, index=index)
        snapshots[workers] = {
            name: (target / name).read_bytes()
            for name in ("manifest.json", "catalog.json", "arrays.npz")
        }
    for name in snapshots[1]:
        assert snapshots[1][name] == snapshots[4][name], (
            f"{name} differs between sequential and 4-worker builds"
        )
