"""Parallel offline builder: exactness, sharding and configuration."""

import pytest

from repro.exceptions import MatchingError
from repro.index.instance_index import match_and_count
from repro.index.parallel import (
    IndexBuildConfig,
    build_index,
    counts_from_records,
    shard_instance_records,
)
from repro.index.vectors import build_vectors
from repro.metagraph.catalog import MetagraphCatalog
from repro.metagraph.metagraph import Metagraph, metapath
from tests.conftest import random_typed_graph


def assert_stores_equal(actual, expected):
    assert actual._node == expected._node
    assert actual._pair == expected._pair
    assert actual._partners == expected._partners
    assert actual.matched_ids == expected.matched_ids


class TestShardRecords:
    def test_shard_merge_equals_sequential_counts(self, toy_graph, toy_metagraphs):
        for metagraph in toy_metagraphs.values():
            expected = match_and_count(toy_graph, metagraph, anchor_type="user")
            merged = {}
            for shard in range(3):
                merged.update(
                    shard_instance_records(toy_graph, metagraph, "user", shard, 3)
                )
            counts = counts_from_records(merged)
            assert counts.num_instances == expected.num_instances
            assert counts.node_counts == expected.node_counts
            assert counts.pair_counts == expected.pair_counts

    def test_no_symmetric_pair_pattern_counts_instances_only(self, toy_graph):
        # user-school has no symmetric *anchor* pair: Eq. 1 is empty but
        # |I(M)| must still be preserved
        pattern = metapath("user", "school")
        expected = match_and_count(toy_graph, pattern, anchor_type="user")
        merged = {}
        for shard in range(2):
            merged.update(
                shard_instance_records(toy_graph, pattern, "user", shard, 2)
            )
        counts = counts_from_records(merged)
        assert counts.num_instances == expected.num_instances > 0
        assert not counts.node_counts and not counts.pair_counts

    def test_invalid_shard_rejected(self, toy_graph, toy_metagraphs):
        from repro.matching import shard_embeddings

        with pytest.raises(MatchingError):
            list(shard_embeddings(toy_graph, toy_metagraphs["M1"], 3, 3))
        with pytest.raises(MatchingError):
            list(shard_embeddings(toy_graph, toy_metagraphs["M1"], 0, 0))

    def test_compiled_shard_records_match_python_merge(self, toy_graph, toy_metagraphs):
        """The array-level shard worker path produces identical records."""
        from repro.graph.csr import csr_view
        from repro.index.parallel import compiled_shard_records

        csr = csr_view(toy_graph)
        for metagraph in toy_metagraphs.values():
            for num_shards in (1, 2, 3):
                python_merged: dict = {}
                compiled_merged: dict = {}
                for shard in range(num_shards):
                    python_merged.update(
                        shard_instance_records(
                            toy_graph, metagraph, "user", shard, num_shards
                        )
                    )
                    compiled_merged.update(
                        compiled_shard_records(
                            csr, metagraph, "user", shard, num_shards
                        )
                    )
                assert compiled_merged == python_merged

    def test_compiled_shard_records_invalid_shard_rejected(self, toy_graph, toy_metagraphs):
        from repro.graph.csr import csr_view
        from repro.index.parallel import compiled_shard_records

        csr = csr_view(toy_graph)
        with pytest.raises(MatchingError):
            compiled_shard_records(csr, toy_metagraphs["M1"], "user", 2, 2)


class TestBuildIndex:
    @pytest.fixture
    def catalog(self, toy_metagraphs):
        return MetagraphCatalog(toy_metagraphs.values(), anchor_type="user")

    def test_workers_1_is_sequential_reference(self, toy_graph, catalog):
        sequential, seq_index = build_vectors(toy_graph, catalog)
        built, index = build_index(toy_graph, catalog, IndexBuildConfig(workers=1))
        assert_stores_equal(built, sequential)
        assert index.matched_ids() == seq_index.matched_ids()

    @pytest.mark.parametrize("workers", [2, 4])
    def test_pool_matches_sequential(self, toy_graph, catalog, workers):
        sequential, seq_index = build_vectors(toy_graph, catalog)
        built, index = build_index(
            toy_graph, catalog, IndexBuildConfig(workers=workers)
        )
        assert_stores_equal(built, sequential)
        for mg_id in seq_index.matched_ids():
            assert index.num_instances(mg_id) == seq_index.num_instances(mg_id)

    def test_pool_matches_sequential_on_random_graph(self):
        graph = random_typed_graph(3, num_users=10, num_attrs_per_type=3)
        catalog = MetagraphCatalog(
            [
                metapath("user", "school", "user"),
                metapath("user", "hobby", "user"),
                Metagraph(
                    ["user", "school", "hobby", "user"],
                    [(0, 1), (0, 2), (3, 1), (3, 2)],
                ),
                Metagraph(
                    ["user", "school", "employer", "user"],
                    [(0, 1), (0, 2), (3, 1), (3, 2)],
                ),
            ],
            anchor_type="user",
        )
        sequential, _ = build_vectors(graph, catalog)
        built, _ = build_index(
            graph,
            catalog,
            IndexBuildConfig(workers=2, min_partition_size=4),
        )
        assert_stores_equal(built, sequential)

    def test_partition_threshold_controls_sharding(self, toy_metagraphs):
        config = IndexBuildConfig(workers=4, min_partition_size=4)
        assert config.partitions_for(toy_metagraphs["M1"]) == 4  # 4 nodes
        assert config.partitions_for(toy_metagraphs["M3"]) == 1  # 3-node path
        sequential = IndexBuildConfig(workers=1)
        assert sequential.partitions_for(toy_metagraphs["M1"]) == 1
        explicit = IndexBuildConfig(workers=4, partitions_per_metagraph=2)
        assert explicit.partitions_for(toy_metagraphs["M1"]) == 2

    def test_per_metagraph_timings_reported(self, toy_graph, catalog):
        seconds: dict[int, float] = {}
        build_index(
            toy_graph,
            catalog,
            IndexBuildConfig(workers=2),
            on_metagraph=lambda mg_id, sec: seconds.__setitem__(mg_id, sec),
        )
        assert set(seconds) == set(catalog.ids())
        assert all(sec >= 0.0 for sec in seconds.values())
