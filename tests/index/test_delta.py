"""Property suite for incremental index maintenance (repro.index.delta).

The anchor invariant: after any sequence of edits, the delta-maintained
:class:`MetagraphVectors` and :class:`InstanceIndex` must be
*bit-identical* to a from-scratch ``build_vectors`` on the mutated
graph — same sparse count dicts, same partner sets, same per-metagraph
instance totals.
"""

from __future__ import annotations

import random

import pytest

from repro.exceptions import (
    DeltaError,
    DuplicateNodeError,
    EdgeError,
    NodeNotFoundError,
)
from repro.graph.typed_graph import TypedGraph
from repro.index.delta import (
    DeltaStats,
    GraphDelta,
    GraphEdit,
    affected_region,
    apply_delta,
    catalog_radius,
    pattern_diameter,
)
from repro.index.instance_index import MetagraphCounts
from repro.index.vectors import build_vectors
from repro.metagraph.catalog import MetagraphCatalog
from repro.metagraph.metagraph import Metagraph, metapath


def make_graph(seed: int = 0, users: int = 20, groups: int = 5) -> TypedGraph:
    """Random typed graph: users in groups plus user-user friendships."""
    rng = random.Random(seed)
    graph = TypedGraph(name=f"delta-{seed}")
    for i in range(users):
        graph.add_node(f"u{i}", "user")
    for group_type in ("school", "hobby"):
        for j in range(groups):
            graph.add_node(f"{group_type}{j}", group_type)
        for i in range(users):
            for j in rng.sample(range(groups), 2):
                graph.add_edge(f"u{i}", f"{group_type}{j}")
    for _ in range(12):
        a, b = rng.sample(range(users), 2)
        if not graph.has_edge(f"u{a}", f"u{b}"):
            graph.add_edge(f"u{a}", f"u{b}")
    return graph


@pytest.fixture
def catalog() -> MetagraphCatalog:
    """Metapaths, a square, a triangle, and an asymmetric pattern.

    The asymmetric ``user-school`` metapath has no symmetric anchor
    pair, so it exercises the |I(M)|-only counting path of the patcher.
    """
    return MetagraphCatalog(
        [
            metapath("user", "school", "user", name="P-school"),
            metapath("user", "hobby", "user", name="P-hobby"),
            metapath("user", "user", name="P-friend"),
            Metagraph(
                ["user", "school", "hobby", "user"],
                [(0, 1), (0, 2), (3, 1), (3, 2)],
                name="square",
            ),
            Metagraph(
                ["user", "user", "school"],
                [(0, 1), (0, 2), (1, 2)],
                name="triangle",
            ),
            metapath("user", "school", name="P-asym"),
        ],
        anchor_type="user",
    )


def assert_matches_fresh_build(graph, catalog, vectors, index) -> None:
    """The bit-identity oracle: delta state == from-scratch rebuild."""
    fresh_vectors, fresh_index = build_vectors(graph, catalog)
    assert vectors._matched == fresh_vectors._matched
    assert vectors._node == fresh_vectors._node
    assert vectors._pair == fresh_vectors._pair
    assert vectors._partners == fresh_vectors._partners
    for mg_id in fresh_index.matched_ids():
        patched = index.counts_for(mg_id)
        fresh = fresh_index.counts_for(mg_id)
        assert patched.num_instances == fresh.num_instances
        assert patched.node_counts == fresh.node_counts
        assert patched.pair_counts == fresh.pair_counts


def random_delta(graph: TypedGraph, rng: random.Random) -> GraphDelta:
    """A randomized edit sequence touching every mutation kind."""
    delta = GraphDelta()
    edges = sorted(graph.edges(), key=repr)
    for u, v in rng.sample(edges, min(5, len(edges))):
        delta.remove_edge(u, v)
    users = sorted(n for n in graph.nodes() if graph.node_type(n) == "user")
    schools = sorted(n for n in graph.nodes() if graph.node_type(n) == "school")
    new_user = f"u-new-{rng.randrange(1000)}"
    delta.add_node(new_user, "user")
    delta.add_edge(new_user, rng.choice(schools))
    delta.add_edge(new_user, rng.choice(users))
    victim = rng.choice(users)
    delta.remove_node(victim)
    survivor = rng.choice([u for u in users if u != victim])
    partner = rng.choice(schools)
    if graph.has_edge(survivor, partner):
        delta.remove_edge(survivor, partner)
    else:
        delta.add_edge(survivor, partner)
    return delta


class TestRandomizedSequences:
    @pytest.mark.parametrize("seed", range(6))
    def test_bit_identical_to_rebuild(self, catalog, seed):
        graph = make_graph(seed)
        vectors, index = build_vectors(graph, catalog)
        delta = random_delta(graph, random.Random(seed + 100))
        stats = apply_delta(graph, catalog, vectors, delta, index=index)
        assert stats.edits_applied == len(delta)
        assert_matches_fresh_build(graph, catalog, vectors, index)

    @pytest.mark.parametrize("seed", range(3))
    def test_consecutive_batches_compose(self, catalog, seed):
        graph = make_graph(seed, users=14, groups=4)
        vectors, index = build_vectors(graph, catalog)
        rng = random.Random(seed + 500)
        for _ in range(3):
            apply_delta(
                graph, catalog, vectors, random_delta(graph, rng), index=index
            )
        assert_matches_fresh_build(graph, catalog, vectors, index)


class TestSingleEdits:
    def test_remove_edge(self, catalog):
        graph = make_graph(1)
        vectors, index = build_vectors(graph, catalog)
        u, v = next(iter(graph.edges()))
        apply_delta(
            graph, catalog, vectors, GraphDelta().remove_edge(u, v), index=index
        )
        assert_matches_fresh_build(graph, catalog, vectors, index)

    def test_add_edge_between_users(self, catalog):
        graph = make_graph(2)
        vectors, index = build_vectors(graph, catalog)
        users = sorted(n for n in graph.nodes() if graph.node_type(n) == "user")
        pair = next(
            (a, b)
            for a in users
            for b in users
            if a < b and not graph.has_edge(a, b)
        )
        apply_delta(
            graph, catalog, vectors, GraphDelta().add_edge(*pair), index=index
        )
        assert_matches_fresh_build(graph, catalog, vectors, index)

    def test_remove_node_retires_all_its_instances(self, catalog):
        graph = make_graph(3)
        vectors, index = build_vectors(graph, catalog)
        victim = "u0"
        stats = apply_delta(
            graph, catalog, vectors, GraphDelta().remove_node(victim), index=index
        )
        assert stats.instances_added == 0
        assert victim not in vectors.nodes_with_counts()
        assert vectors.partners(victim) == frozenset()
        assert_matches_fresh_build(graph, catalog, vectors, index)

    def test_isolated_add_node_changes_nothing(self, catalog):
        graph = make_graph(4)
        vectors, index = build_vectors(graph, catalog)
        stats = apply_delta(
            graph,
            catalog,
            vectors,
            GraphDelta().add_node("loner", "user"),
            index=index,
        )
        assert stats.instances_added == stats.instances_retired == 0
        assert_matches_fresh_build(graph, catalog, vectors, index)

    def test_remove_then_readd_node_restores_counts(self, catalog):
        """Satellite: re-adding a node with its edges rematches exactly."""
        graph = make_graph(5)
        vectors, index = build_vectors(graph, catalog)
        reference, _ = build_vectors(graph.copy(), catalog)
        victim = "u1"
        incident = [(victim, nbr) for nbr in sorted(graph.neighbors(victim), key=repr)]
        node_type = graph.node_type(victim)
        apply_delta(
            graph, catalog, vectors, GraphDelta().remove_node(victim), index=index
        )
        rebuild = GraphDelta().add_node(victim, node_type)
        for u, v in incident:
            rebuild.add_edge(u, v)
        apply_delta(graph, catalog, vectors, rebuild, index=index)
        assert vectors._node == reference._node
        assert vectors._pair == reference._pair
        assert vectors._partners == reference._partners
        assert_matches_fresh_build(graph, catalog, vectors, index)

    def test_partners_consistent_after_patching(self, catalog):
        """Satellite: partners() mirrors the pair store after every patch."""
        graph = make_graph(6)
        vectors, index = build_vectors(graph, catalog)
        rng = random.Random(9)
        for u, v in rng.sample(sorted(graph.edges(), key=repr), 6):
            apply_delta(
                graph, catalog, vectors, GraphDelta().remove_edge(u, v), index=index
            )
            for x, links in vectors._partners.items():
                assert links, f"empty partner set left behind for {x!r}"
                for y in links:
                    key = (x, y) if repr(x) <= repr(y) else (y, x)
                    assert key in vectors._pair
            for x, y in vectors._pair:
                assert y in vectors.partners(x) and x in vectors.partners(y)


class TestNoOpsAndValidation:
    def test_noop_edits_are_counted_not_applied(self, catalog):
        graph = make_graph(7)
        vectors, index = build_vectors(graph, catalog)
        u, v = next(iter(graph.edges()))
        before_version = graph.version
        stats = apply_delta(
            graph,
            catalog,
            vectors,
            GraphDelta().add_edge(u, v).add_node("u0", "user"),
            index=index,
        )
        assert stats.edits_applied == 0
        assert stats.edits_noop == 2
        assert graph.version == before_version

    @pytest.mark.parametrize(
        "delta, error",
        [
            (GraphDelta().remove_edge("u0", "u-nope"), NodeNotFoundError),
            (GraphDelta().remove_node("u-nope"), NodeNotFoundError),
            (GraphDelta().add_edge("u0", "u0"), EdgeError),
            (GraphDelta().add_node("u0", "school"), DuplicateNodeError),
        ],
    )
    def test_invalid_edit_raises_before_touching_counts(
        self, catalog, delta, error
    ):
        graph = make_graph(8)
        vectors, index = build_vectors(graph, catalog)
        with pytest.raises(error):
            apply_delta(graph, catalog, vectors, delta, index=index)
        assert_matches_fresh_build(graph, catalog, vectors, index)

    def test_remove_absent_edge_raises_edge_error(self, catalog):
        graph = make_graph(8)
        vectors, index = build_vectors(graph, catalog)
        users = sorted(n for n in graph.nodes() if graph.node_type(n) == "user")
        pair = next(
            (a, b)
            for a in users
            for b in users
            if a < b and not graph.has_edge(a, b)
        )
        with pytest.raises(EdgeError):
            apply_delta(
                graph, catalog, vectors, GraphDelta().remove_edge(*pair), index=index
            )

    def test_patch_going_negative_raises(self, catalog):
        graph = make_graph(8)
        vectors, _ = build_vectors(graph, catalog)
        bogus = MetagraphCounts(num_instances=10 ** 6)
        bogus.node_counts["u0"] = 10 ** 6
        with pytest.raises(DeltaError):
            vectors.patch_counts(0, bogus, MetagraphCounts())


class TestEditVocabulary:
    def test_unknown_op_rejected(self):
        with pytest.raises(DeltaError):
            GraphEdit("replace_node", "u0")

    def test_edge_edit_needs_both_endpoints(self):
        with pytest.raises(DeltaError):
            GraphEdit("add_edge", "u0")

    def test_add_node_needs_type(self):
        with pytest.raises(DeltaError):
            GraphEdit("add_node", "u0")

    def test_json_roundtrip_with_tuple_ids(self):
        delta = (
            GraphDelta()
            .add_node(("user", 7), "user")
            .add_edge(("user", 7), "school0")
            .remove_node("u3")
            .remove_edge("a", "b")
        )
        restored = GraphDelta.from_json_list(delta.to_json_list())
        assert [e for e in restored] == [e for e in delta]

    def test_malformed_record_rejected(self):
        with pytest.raises(DeltaError):
            GraphEdit.from_json_dict({"u": "x"})

    def test_apply_to_replays_mutations_only(self):
        graph = TypedGraph()
        graph.add_node("a", "user")
        delta = GraphDelta().add_node("s", "school").add_edge("a", "s")
        delta.apply_to(graph)
        assert graph.has_edge("a", "s")

    def test_stats_repr_mentions_edits(self):
        assert "edits" in repr(DeltaStats(edits_applied=2))


class TestAffectedRegion:
    def test_radius_zero_is_the_seeds(self):
        graph = make_graph(0)
        region = affected_region(graph, ["u0"], 0)
        assert region == {"user": {"u0"}}

    def test_radius_grows_ball(self):
        graph = TypedGraph()
        for i, t in enumerate(["user", "school", "user", "hobby"]):
            graph.add_node(f"n{i}", t)
        graph.add_edge("n0", "n1")
        graph.add_edge("n1", "n2")
        graph.add_edge("n2", "n3")
        assert affected_region(graph, ["n0"], 1) == {
            "user": {"n0"},
            "school": {"n1"},
        }
        assert affected_region(graph, ["n0"], 3)["hobby"] == {"n3"}

    def test_absent_seed_ignored(self):
        graph = make_graph(0)
        assert affected_region(graph, ["ghost"], 2) == {}

    def test_pattern_diameter(self):
        assert pattern_diameter(metapath("user", "school", "user")) == 2
        assert pattern_diameter(metapath("user")) == 0
        square = Metagraph(
            ["user", "school", "hobby", "user"],
            [(0, 1), (0, 2), (3, 1), (3, 2)],
        )
        assert pattern_diameter(square) == 2

    def test_catalog_radius_is_max_diameter(self, catalog):
        assert catalog_radius(catalog) == max(
            pattern_diameter(m) for m in catalog
        )
