"""Tests for vector-store persistence (save/load of the offline artefact)."""

import numpy as np
import pytest

from repro.index.transform import log1p
from repro.index.vectors import MetagraphVectors, build_vectors
from repro.metagraph.catalog import MetagraphCatalog


@pytest.fixture
def store(toy_graph, toy_metagraphs):
    catalog = MetagraphCatalog(toy_metagraphs.values(), anchor_type="user")
    vectors, _ = build_vectors(toy_graph, catalog)
    return vectors


class TestPersistence:
    def test_round_trip_vectors(self, store, tmp_path):
        path = tmp_path / "vectors.json"
        store.save(path)
        restored = MetagraphVectors.load(path)
        assert restored.catalog_size == store.catalog_size
        assert restored.anchor_type == store.anchor_type
        assert restored.matched_ids == store.matched_ids
        for user in ("Alice", "Bob", "Kate", "Jay", "Tom"):
            assert np.array_equal(
                restored.node_vector(user), store.node_vector(user)
            )
        assert np.array_equal(
            restored.pair_vector("Alice", "Bob"),
            store.pair_vector("Alice", "Bob"),
        )

    def test_partners_restored(self, store, tmp_path):
        path = tmp_path / "vectors.json"
        store.save(path)
        restored = MetagraphVectors.load(path)
        for user in ("Alice", "Bob", "Kate"):
            assert restored.partners(user) == store.partners(user)

    def test_transform_reapplied_on_load(self, store, tmp_path):
        path = tmp_path / "vectors.json"
        store.save(path)
        restored = MetagraphVectors.load(path, transform=log1p)
        raw = store.pair_vector("Alice", "Bob")
        transformed = restored.pair_vector("Alice", "Bob")
        nonzero = raw > 0
        assert np.allclose(transformed[nonzero], np.log1p(raw[nonzero]))

    def test_loaded_store_usable_by_model(self, store, tmp_path):
        from repro.learning.model import ProximityModel

        path = tmp_path / "vectors.json"
        store.save(path)
        restored = MetagraphVectors.load(path)
        model = ProximityModel(np.ones(restored.catalog_size), restored)
        ranking = model.rank("Bob", universe=["Alice", "Kate", "Jay", "Tom"])
        assert ranking[0][1] > 0
