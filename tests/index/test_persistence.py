"""Tests for vector-store persistence (save/load of the offline artefact)."""

import numpy as np
import pytest

from repro.exceptions import SnapshotError
from repro.graph.typed_graph import TypedGraph
from repro.index.transform import log1p
from repro.index.vectors import (
    MetagraphVectors,
    build_vectors,
    decode_node_id,
    encode_node_id,
)
from repro.metagraph.catalog import MetagraphCatalog
from repro.metagraph.metagraph import metapath


@pytest.fixture
def store(toy_graph, toy_metagraphs):
    catalog = MetagraphCatalog(toy_metagraphs.values(), anchor_type="user")
    vectors, _ = build_vectors(toy_graph, catalog)
    return vectors


class TestPersistence:
    def test_round_trip_vectors(self, store, tmp_path):
        path = tmp_path / "vectors.json"
        store.save(path)
        restored = MetagraphVectors.load(path)
        assert restored.catalog_size == store.catalog_size
        assert restored.anchor_type == store.anchor_type
        assert restored.matched_ids == store.matched_ids
        for user in ("Alice", "Bob", "Kate", "Jay", "Tom"):
            assert np.array_equal(
                restored.node_vector(user), store.node_vector(user)
            )
        assert np.array_equal(
            restored.pair_vector("Alice", "Bob"),
            store.pair_vector("Alice", "Bob"),
        )

    def test_partners_restored(self, store, tmp_path):
        path = tmp_path / "vectors.json"
        store.save(path)
        restored = MetagraphVectors.load(path)
        for user in ("Alice", "Bob", "Kate"):
            assert restored.partners(user) == store.partners(user)

    def test_transform_reapplied_on_load(self, store, tmp_path):
        path = tmp_path / "vectors.json"
        store.save(path)
        restored = MetagraphVectors.load(path, transform=log1p)
        raw = store.pair_vector("Alice", "Bob")
        transformed = restored.pair_vector("Alice", "Bob")
        nonzero = raw > 0
        assert np.allclose(transformed[nonzero], np.log1p(raw[nonzero]))

    def test_loaded_store_usable_by_model(self, store, tmp_path):
        from repro.learning.model import ProximityModel

        path = tmp_path / "vectors.json"
        store.save(path)
        restored = MetagraphVectors.load(path)
        model = ProximityModel(np.ones(restored.catalog_size), restored)
        ranking = model.rank("Bob", universe=["Alice", "Kate", "Jay", "Tom"])
        assert ranking[0][1] > 0


class TestAdversarialNodeIds:
    """Regression: node ids must round-trip whatever their shape.

    The JSON pair encoding once converted only the *top* level of a
    tuple id back from its array form, so nested tuples came back with
    unhashable list components and crashed the load; separator-laden
    strings relied on luck.  Ids now go through an explicit codec that
    round-trips scalars and (nested) tuples and rejects everything else
    at save time.
    """

    ADVERSARIAL_IDS = [
        "plain",
        "with|pipe",
        "with,comma",
        'looks like ["json", 1]',
        "('a', 'b')",  # repr of a tuple, as a string
        7,
        ("tuple", 3),
        (("nested", 1), "deep"),
        ((("twice",), "nested"), 2),
    ]

    def adversarial_store(self):
        graph = TypedGraph(name="adversarial")
        for uid in self.ADVERSARIAL_IDS:
            graph.add_node(uid, "user")
        graph.add_node(("attr", 0), "school")
        graph.add_node("school|B", "school")
        for uid in self.ADVERSARIAL_IDS:
            graph.add_edge(uid, ("attr", 0))
            graph.add_edge(uid, "school|B")
        catalog = MetagraphCatalog(
            [metapath("user", "school", "user")], anchor_type="user"
        )
        vectors, _ = build_vectors(graph, catalog)
        return vectors

    def test_codec_round_trips_every_id(self):
        for node in self.ADVERSARIAL_IDS:
            assert decode_node_id(encode_node_id(node)) == node

    def test_codec_rejects_unsupported_ids(self):
        with pytest.raises(SnapshotError, match="frozenset"):
            encode_node_id(frozenset({"a"}))

    def test_json_round_trip_with_adversarial_ids(self, tmp_path):
        store = self.adversarial_store()
        path = tmp_path / "vectors.json"
        store.save(path)
        restored = MetagraphVectors.load(path)
        assert restored.nodes_with_counts() == store.nodes_with_counts()
        for node in self.ADVERSARIAL_IDS:
            assert restored.partners(node) == store.partners(node)
            assert np.array_equal(
                restored.node_vector(node), store.node_vector(node)
            )
        assert np.array_equal(
            restored.pair_vector(("tuple", 3), (("nested", 1), "deep")),
            store.pair_vector(("tuple", 3), (("nested", 1), "deep")),
        )

    def test_unsupported_id_rejected_at_save_time(self, tmp_path):
        store = MetagraphVectors(1, anchor_type="user")
        from repro.index.instance_index import MetagraphCounts

        counts = MetagraphCounts(num_instances=1)
        counts.node_counts[frozenset({"x"})] = 1
        store.add_counts(0, counts)
        with pytest.raises(SnapshotError, match="cannot be persisted"):
            store.save(tmp_path / "vectors.json")
