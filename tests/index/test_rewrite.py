"""Rewrite rules: validation, codec, bindings, and the rebuild guarantee.

The tentpole's delta vocabulary: named LHS -> RHS rules compile down to
:class:`GraphDelta` batches, so applying one through ``apply_updates``
must leave the engine bit-identical to a cold rebuild on the mutated
graph — the same guarantee raw edit lists carry.
"""

import json

import pytest

from repro.exceptions import RewriteError
from repro.graph.typed_graph import PLAIN, EdgeKind, TypedGraph
from repro.index.rewrite import RewriteRule, RuleBook
from repro.metagraph.metagraph import Metagraph

IN = EdgeKind("in", True)
OUT = EdgeKind("out", True)
CAT = EdgeKind("cat", True)


def consume_lhs() -> Metagraph:
    return Metagraph(["mol", "rxn"], [(0, 1, IN)])


def pair_lhs() -> Metagraph:
    return Metagraph(["mol", "mol", "rxn"], [(0, 2, IN), (1, 2, IN)])


def reaction_graph() -> TypedGraph:
    """Every reaction consumes two molecules (symmetric, minable)."""
    g = TypedGraph(name="rg")
    for i in range(6):
        g.add_node(f"m{i}", "mol")
    for i, (a, b) in enumerate([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]):
        rxn = f"r{i}"
        g.add_node(rxn, "rxn")
        g.add_edge(f"m{a}", rxn, IN)
        g.add_edge(f"m{b}", rxn, IN)
    return g


class TestValidation:
    def test_removed_edge_must_exist_on_lhs(self):
        with pytest.raises(RewriteError, match="not an LHS edge"):
            RewriteRule(name="r", lhs=pair_lhs(), removed_edges=((0, 1),))

    def test_edge_removed_twice(self):
        with pytest.raises(RewriteError, match="twice"):
            RewriteRule(
                name="r", lhs=pair_lhs(), removed_edges=((0, 2), (2, 0))
            )

    def test_removed_node_out_of_range(self):
        with pytest.raises(RewriteError, match="outside"):
            RewriteRule(name="r", lhs=pair_lhs(), removed_nodes=(3,))

    def test_duplicate_variable(self):
        with pytest.raises(RewriteError, match="variable twice"):
            RewriteRule(
                name="r",
                lhs=consume_lhs(),
                added_nodes=(("x", "mol"), ("x", "rxn")),
            )

    def test_added_edge_at_undeclared_variable(self):
        with pytest.raises(RewriteError, match="undeclared"):
            RewriteRule(
                name="r", lhs=consume_lhs(), added_edges=(("ghost", 1, CAT),)
            )

    def test_added_edge_at_removed_node(self):
        with pytest.raises(RewriteError, match="removed node"):
            RewriteRule(
                name="r",
                lhs=pair_lhs(),
                removed_nodes=(0,),
                added_edges=((0, 1, PLAIN),),
            )

    def test_added_edge_over_unremoved_lhs_edge(self):
        with pytest.raises(RewriteError, match="does not remove"):
            RewriteRule(
                name="r", lhs=consume_lhs(), added_edges=((0, 1, OUT),)
            )

    def test_add_after_remove_is_allowed(self):
        rule = RewriteRule(
            name="invert",
            lhs=consume_lhs(),
            removed_edges=((0, 1),),
            added_edges=((1, 0, OUT),),
        )
        assert rule.removed_edges == ((0, 1),)

    def test_self_loop_rejected(self):
        with pytest.raises(RewriteError, match="self-loop"):
            RewriteRule(
                name="r", lhs=consume_lhs(), added_edges=((0, 0, PLAIN),)
            )


class TestCompile:
    def test_compile_orders_removals_before_additions(self):
        rule = RewriteRule(
            name="splice",
            lhs=consume_lhs(),
            removed_edges=((0, 1),),
            added_nodes=(("mid", "mol"),),
            added_edges=((0, "mid", PLAIN), ("mid", 1, IN)),
        )
        delta = rule.compile({0: "m0", 1: "r0"}, new_nodes={"mid": "mX"})
        ops = [(e.op, e.u, e.v) for e in delta]
        assert ops == [
            ("remove_edge", "m0", "r0"),
            ("add_node", "mX", None),
            ("add_edge", "m0", "mX"),
            ("add_edge", "mX", "r0"),
        ]
        kinds = [e.kind for e in delta if e.op == "add_edge"]
        assert kinds == [PLAIN, IN]

    def test_binding_must_cover_lhs(self):
        rule = RewriteRule(name="r", lhs=pair_lhs())
        with pytest.raises(RewriteError, match="cover"):
            rule.compile({0: "m0", 2: "r0"})

    def test_binding_must_be_injective(self):
        rule = RewriteRule(name="r", lhs=pair_lhs())
        with pytest.raises(RewriteError, match="injective"):
            rule.compile({0: "m0", 1: "m0", 2: "r0"})

    def test_new_nodes_must_match_variables(self):
        rule = RewriteRule(
            name="r", lhs=consume_lhs(), added_nodes=(("x", "mol"),)
        )
        with pytest.raises(RewriteError, match="new_nodes"):
            rule.compile({0: "m0", 1: "r0"})
        with pytest.raises(RewriteError, match="new_nodes"):
            rule.compile({0: "m0", 1: "r0"}, new_nodes={"y": "mX"})

    def test_fresh_ids_must_not_collide_with_binding(self):
        rule = RewriteRule(
            name="r", lhs=consume_lhs(), added_nodes=(("x", "mol"),)
        )
        with pytest.raises(RewriteError, match="distinct"):
            rule.compile({0: "m0", 1: "r0"}, new_nodes={"x": "m0"})


class TestBindings:
    def test_bindings_enumerate_lhs_embeddings(self):
        graph = reaction_graph()
        rule = RewriteRule(name="r", lhs=consume_lhs())
        bindings = list(rule.bindings(graph))
        # every reaction consumes exactly two molecules
        assert len(bindings) == 12
        for binding in bindings:
            assert graph.edge_signature(binding[0], binding[1]) == ("in", 1)

    def test_bindings_are_deterministic(self):
        graph = reaction_graph()
        rule = RewriteRule(name="r", lhs=pair_lhs())
        assert list(rule.bindings(graph)) == list(rule.bindings(graph))


class TestCodec:
    def roundtrip_book(self) -> RuleBook:
        return RuleBook(
            [
                RewriteRule(
                    name="add_catalyst",
                    lhs=consume_lhs(),
                    added_nodes=(("enzyme", "mol"),),
                    added_edges=(("enzyme", 1, CAT),),
                ),
                RewriteRule(
                    name="retract",
                    lhs=pair_lhs(),
                    removed_nodes=(2,),
                ),
            ]
        )

    def test_json_round_trip(self):
        book = self.roundtrip_book()
        restored = RuleBook.from_json(book.to_json())
        assert restored.names() == tuple(sorted(book.names()))
        for rule in book:
            assert restored[rule.name] == rule

    def test_json_is_deterministic_and_sorted(self):
        book = self.roundtrip_book()
        text = book.to_json()
        assert text == RuleBook.from_json(text).to_json()
        doc = json.loads(text)
        names = [rule["name"] for rule in doc["rules"]]
        assert names == sorted(names)

    def test_unsupported_format_rejected(self):
        with pytest.raises(RewriteError, match="format"):
            RuleBook.from_json(json.dumps({"format": 99, "rules": []}))

    def test_malformed_rule_document_rejected(self):
        with pytest.raises(RewriteError, match="malformed"):
            RewriteRule.from_json_dict({"name": "x"})

    def test_duplicate_names_rejected(self):
        book = self.roundtrip_book()
        with pytest.raises(RewriteError, match="already has"):
            book.add(RewriteRule(name="retract", lhs=consume_lhs()))


class TestRebuildGuarantee:
    def test_rule_application_bit_identical_to_cold_rebuild(self):
        from repro.index.parallel import IndexBuildConfig
        from repro.mining.grami import MinerConfig
        from repro.search import SemanticProximitySearch

        graph = reaction_graph()
        engine = SemanticProximitySearch(
            graph,
            anchor_type="mol",
            miner_config=MinerConfig(max_nodes=4, min_support=1),
        )
        engine.prepare(build_config=IndexBuildConfig(workers=1))
        assert len(engine.catalog) > 0

        rule = RewriteRule(
            name="splice",
            lhs=consume_lhs(),
            removed_edges=((0, 1),),
            added_nodes=(("mid", "mol"),),
            added_edges=((0, "mid", IN), ("mid", 1, IN)),
        )
        binding = next(iter(rule.bindings(graph)))
        delta = rule.compile(binding, new_nodes={"mid": "m_fresh"})
        stats = engine.apply_updates(delta)
        assert stats.edits_applied == len(delta)

        cold = SemanticProximitySearch(
            engine.graph,
            anchor_type="mol",
            miner_config=MinerConfig(max_nodes=4, min_support=1),
        )
        # the cold engine re-indexes the SAME catalog on the mutated
        # graph — catalog identity is what "bit-identical" quantifies over
        cold.prepare(
            catalog=engine.catalog,
            build_config=IndexBuildConfig(workers=1),
        )
        assert engine.index.matched_ids() == cold.index.matched_ids()
        for mg_id in engine.index.matched_ids():
            assert engine.index.counts_for(mg_id) == cold.index.counts_for(
                mg_id
            ), f"metagraph {mg_id} counts diverge from cold rebuild"
        assert engine.vectors._node == cold.vectors._node
        assert engine.vectors._pair == cold.vectors._pair
