"""Tests for instance counting (Eq. 1-2) and the vector store."""

import numpy as np
import pytest

from repro.exceptions import CatalogMismatchError
from repro.index.instance_index import InstanceIndex, match_and_count
from repro.index.transform import get_transform, identity, log1p, sqrt
from repro.index.vectors import MetagraphVectors, build_vectors
from repro.metagraph.catalog import MetagraphCatalog
from repro.metagraph.metagraph import metapath


@pytest.fixture
def toy_catalog(toy_metagraphs) -> MetagraphCatalog:
    return MetagraphCatalog(toy_metagraphs.values(), anchor_type="user")


class TestMatchAndCount:
    def test_m3_counts(self, toy_graph, toy_metagraphs):
        counts = match_and_count(toy_graph, toy_metagraphs["M3"])
        assert counts.num_instances == 2
        assert counts.pair_counts[("Alice", "Bob")] == 1
        assert counts.pair_counts[("Jay", "Kate")] == 1
        assert counts.node_counts["Alice"] == 1
        assert counts.node_counts["Kate"] == 1

    def test_m1_counts(self, toy_graph, toy_metagraphs):
        counts = match_and_count(toy_graph, toy_metagraphs["M1"])
        assert counts.num_instances == 2
        assert counts.pair_counts[("Jay", "Kate")] == 1
        assert counts.pair_counts[("Bob", "Tom")] == 1

    def test_pair_implies_node_count(self, toy_graph, toy_metagraphs):
        # Eq. 1 <= Eq. 2: every pair instance counts for both nodes
        for mg in toy_metagraphs.values():
            counts = match_and_count(toy_graph, mg)
            per_node_from_pairs = {}
            for (x, y), c in counts.pair_counts.items():
                per_node_from_pairs[x] = per_node_from_pairs.get(x, 0) + c
                per_node_from_pairs[y] = per_node_from_pairs.get(y, 0) + c
            for node, total in per_node_from_pairs.items():
                assert counts.node_counts[node] <= total
                assert counts.node_counts[node] >= 1

    def test_no_anchor_pairs_counts_instances_only(self, toy_graph):
        pattern = metapath("user", "school")  # no symmetric user pair
        counts = match_and_count(toy_graph, pattern)
        assert counts.num_instances == 4  # user-school edges in Fig. 1
        assert not counts.pair_counts
        assert not counts.node_counts


class TestInstanceIndex:
    def test_add_and_query(self, toy_graph, toy_metagraphs):
        index = InstanceIndex(4)
        counts = match_and_count(toy_graph, toy_metagraphs["M3"])
        index.add(2, counts)
        assert index.is_matched(2)
        assert not index.is_matched(0)
        assert index.num_instances(2) == 2
        assert index.matched_ids() == frozenset({2})
        assert len(index) == 1

    def test_out_of_range_id(self):
        index = InstanceIndex(2)
        from repro.index.instance_index import MetagraphCounts

        with pytest.raises(IndexError):
            index.add(5, MetagraphCounts())


class TestMetagraphVectors:
    def test_build_all(self, toy_graph, toy_catalog):
        vectors, index = build_vectors(toy_graph, toy_catalog)
        assert vectors.matched_ids == frozenset(range(4))
        assert index.matched_ids() == frozenset(range(4))

    def test_pair_vector_values(self, toy_graph, toy_catalog, toy_metagraphs):
        vectors, _ = build_vectors(toy_graph, toy_catalog)
        m3_id = toy_catalog.id_of(toy_metagraphs["M3"])
        vec = vectors.pair_vector("Alice", "Bob")
        assert vec[m3_id] == 1.0
        m4_id = toy_catalog.id_of(toy_metagraphs["M4"])
        assert vec[m4_id] == 1.0

    def test_pair_vector_symmetric(self, toy_graph, toy_catalog):
        vectors, _ = build_vectors(toy_graph, toy_catalog)
        assert np.array_equal(
            vectors.pair_vector("Alice", "Bob"),
            vectors.pair_vector("Bob", "Alice"),
        )

    def test_node_vector(self, toy_graph, toy_catalog, toy_metagraphs):
        vectors, _ = build_vectors(toy_graph, toy_catalog)
        m2_id = toy_catalog.id_of(toy_metagraphs["M2"])
        assert vectors.node_vector("Kate")[m2_id] == 1.0
        assert vectors.node_vector("Tom")[m2_id] == 0.0

    def test_partners(self, toy_graph, toy_catalog):
        vectors, _ = build_vectors(toy_graph, toy_catalog)
        assert "Bob" in vectors.partners("Alice")
        assert "Kate" in vectors.partners("Alice")  # via M2
        assert "Tom" not in vectors.partners("Alice")

    def test_vectors_read_only(self, toy_graph, toy_catalog):
        vectors, _ = build_vectors(toy_graph, toy_catalog)
        vec = vectors.pair_vector("Alice", "Bob")
        with pytest.raises(ValueError):
            vec[0] = 99.0

    def test_incremental_build(self, toy_graph, toy_catalog):
        vectors, index = build_vectors(toy_graph, toy_catalog, mg_ids=[0, 1])
        assert vectors.matched_ids == frozenset({0, 1})
        build_vectors(
            toy_graph, toy_catalog, mg_ids=[2, 3], vectors=vectors, index=index
        )
        assert vectors.matched_ids == frozenset({0, 1, 2, 3})

    def test_duplicate_add_rejected(self, toy_graph, toy_catalog):
        vectors, index = build_vectors(toy_graph, toy_catalog, mg_ids=[0])
        from repro.index.instance_index import MetagraphCounts

        with pytest.raises(CatalogMismatchError):
            vectors.add_counts(0, MetagraphCounts())

    def test_build_skips_already_matched(self, toy_graph, toy_catalog):
        vectors, index = build_vectors(toy_graph, toy_catalog, mg_ids=[0])
        # passing id 0 again must be a no-op, not an error
        build_vectors(
            toy_graph, toy_catalog, mg_ids=[0, 1], vectors=vectors, index=index
        )
        assert vectors.matched_ids == frozenset({0, 1})

    def test_on_metagraph_callback(self, toy_graph, toy_catalog):
        timings = {}
        build_vectors(
            toy_graph,
            toy_catalog,
            on_metagraph=lambda mg_id, sec: timings.__setitem__(mg_id, sec),
        )
        assert set(timings) == set(range(4))
        assert all(t >= 0 for t in timings.values())

    def test_transform_applied(self, toy_graph, toy_catalog, toy_metagraphs):
        vectors, _ = build_vectors(toy_graph, toy_catalog, transform=log1p)
        m3_id = toy_catalog.id_of(toy_metagraphs["M3"])
        assert vectors.pair_vector("Alice", "Bob")[m3_id] == pytest.approx(
            np.log1p(1)
        )


class TestTransforms:
    def test_zero_preserved(self):
        for t in (identity, log1p, sqrt):
            assert t(0) == 0.0

    def test_monotone(self):
        for t in (identity, log1p, sqrt):
            assert t(5) > t(2) > t(0)

    def test_lookup(self):
        assert get_transform("log1p") is log1p
        with pytest.raises(KeyError):
            get_transform("cube")
