"""Snapshot persistence: roundtrip fidelity and rejection paths."""

import json

import numpy as np
import pytest

from repro.exceptions import SnapshotError, StaleSnapshotError
from repro.graph.typed_graph import TypedGraph
from repro.index.persist import (
    ARRAYS_FILE,
    CATALOG_FILE,
    FORMAT_VERSION,
    MANIFEST_FILE,
    SUPPORTED_FORMAT_VERSIONS,
    graph_fingerprint,
    load_index,
    save_index,
)
from repro.index.transform import log1p
from repro.index.vectors import build_vectors
from repro.metagraph.catalog import MetagraphCatalog
from repro.mining import MinerConfig
from repro.search import SemanticProximitySearch

CLASS_LABELS = {
    "Kate": frozenset({"Jay"}),
    "Jay": frozenset({"Kate"}),
    "Bob": frozenset({"Tom"}),
}


@pytest.fixture
def offline(toy_graph, toy_metagraphs):
    catalog = MetagraphCatalog(toy_metagraphs.values(), anchor_type="user")
    vectors, index = build_vectors(toy_graph, catalog)
    return toy_graph, catalog, vectors, index


@pytest.fixture
def snapshot_dir(offline, tmp_path):
    graph, catalog, vectors, index = offline
    path = tmp_path / "snapshot"
    save_index(path, vectors, catalog, graph=graph, index=index)
    return path


class TestRoundTrip:
    def test_counts_survive(self, offline, snapshot_dir):
        graph, _catalog, vectors, _index = offline
        loaded = load_index(snapshot_dir, graph=graph)
        for user in ("Alice", "Bob", "Kate", "Jay", "Tom"):
            assert np.array_equal(
                loaded.vectors.node_vector(user), vectors.node_vector(user)
            )
            assert loaded.vectors.partners(user) == vectors.partners(user)
        assert np.array_equal(
            loaded.vectors.pair_vector("Kate", "Jay"),
            vectors.pair_vector("Kate", "Jay"),
        )
        assert loaded.vectors.matched_ids == vectors.matched_ids

    def test_instance_index_reconstructed(self, offline, snapshot_dir):
        graph, _catalog, _vectors, index = offline
        restored = load_index(snapshot_dir, graph=graph).instance_index()
        assert restored.matched_ids() == index.matched_ids()
        for mg_id in index.matched_ids():
            assert restored.num_instances(mg_id) == index.num_instances(mg_id)
            assert (
                restored.counts_for(mg_id).pair_counts
                == index.counts_for(mg_id).pair_counts
            )
            assert (
                restored.counts_for(mg_id).node_counts
                == index.counts_for(mg_id).node_counts
            )

    def test_catalog_survives(self, offline, snapshot_dir):
        graph, catalog, _vectors, _index = offline
        loaded = load_index(snapshot_dir, graph=graph)
        assert len(loaded.catalog) == len(catalog)
        assert [m.name for m in loaded.catalog] == [m.name for m in catalog]

    def test_update_log_recorded_and_restored(self, offline, tmp_path):
        graph, catalog, vectors, index = offline
        log = [
            {"op": "remove_edge", "u": "Kate", "v": "Music"},
            {"op": "add_node", "u": "Mia", "node_type": "user"},
        ]
        target = save_index(
            tmp_path / "with-log", vectors, catalog, graph=graph,
            index=index, update_log=log,
        )
        loaded = load_index(target, graph=graph)
        assert loaded.manifest["update_log"] == log
        # the log is part of the digested manifest core: tampering trips
        manifest_path = target / MANIFEST_FILE
        doc = json.loads(manifest_path.read_text(encoding="utf-8"))
        doc["update_log"] = []
        manifest_path.write_text(json.dumps(doc), encoding="utf-8")
        with pytest.raises(SnapshotError):
            load_index(target)

    def test_update_log_defaults_empty(self, snapshot_dir):
        loaded = load_index(snapshot_dir)
        assert loaded.manifest["update_log"] == []

    def test_load_without_graph_skips_fingerprint_check(self, snapshot_dir):
        assert load_index(snapshot_dir).vectors.matched_ids

    def test_named_transform_restored(self, toy_graph, toy_metagraphs, tmp_path):
        catalog = MetagraphCatalog(toy_metagraphs.values(), anchor_type="user")
        vectors, index = build_vectors(toy_graph, catalog, transform=log1p)
        path = save_index(tmp_path / "s", vectors, catalog, graph=toy_graph)
        loaded = load_index(path)
        assert loaded.vectors.transform is log1p
        assert np.array_equal(
            loaded.vectors.pair_vector("Kate", "Jay"),
            vectors.pair_vector("Kate", "Jay"),
        )

    def test_custom_transform_must_be_passed(
        self, toy_graph, toy_metagraphs, tmp_path
    ):
        def doubled(count: float) -> float:
            return 2.0 * count

        catalog = MetagraphCatalog(toy_metagraphs.values(), anchor_type="user")
        vectors, _ = build_vectors(toy_graph, catalog, transform=doubled)
        path = save_index(tmp_path / "s", vectors, catalog, graph=toy_graph)
        with pytest.raises(SnapshotError, match="custom transform"):
            load_index(path)
        loaded = load_index(path, transform=doubled)
        assert np.array_equal(
            loaded.vectors.node_vector("Kate"), vectors.node_vector("Kate")
        )


class TestRejection:
    def test_missing_snapshot(self, tmp_path):
        with pytest.raises(SnapshotError, match="missing manifest"):
            load_index(tmp_path / "nowhere")

    def test_version_mismatch(self, snapshot_dir):
        manifest_path = snapshot_dir / MANIFEST_FILE
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = max(SUPPORTED_FORMAT_VERSIONS) + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="format version"):
            load_index(snapshot_dir)

    def test_corrupt_arrays(self, snapshot_dir):
        arrays_path = snapshot_dir / ARRAYS_FILE
        blob = bytearray(arrays_path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        arrays_path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError, match="arrays.npz"):
            load_index(snapshot_dir)

    def test_truncated_arrays(self, snapshot_dir):
        arrays_path = snapshot_dir / ARRAYS_FILE
        arrays_path.write_bytes(arrays_path.read_bytes()[:64])
        with pytest.raises(SnapshotError):
            load_index(snapshot_dir)

    def test_tampered_catalog(self, snapshot_dir):
        catalog_path = snapshot_dir / CATALOG_FILE
        doc = json.loads(catalog_path.read_text())
        doc["metagraphs"] = doc["metagraphs"][:-1]
        catalog_path.write_text(json.dumps(doc))
        with pytest.raises(SnapshotError, match="catalog.json"):
            load_index(snapshot_dir)

    def test_unreadable_manifest(self, snapshot_dir):
        (snapshot_dir / MANIFEST_FILE).write_text("{not json")
        with pytest.raises(SnapshotError, match="unreadable"):
            load_index(snapshot_dir)

    def test_tampered_manifest_node_table(self, snapshot_dir):
        """The manifest is the root of trust — it carries its own digest."""
        manifest_path = snapshot_dir / MANIFEST_FILE
        manifest = json.loads(manifest_path.read_text())
        manifest["nodes"][0] = "Imposter"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="digest"):
            load_index(snapshot_dir)

    def test_tampered_manifest_model_list(self, snapshot_dir):
        manifest_path = snapshot_dir / MANIFEST_FILE
        manifest = json.loads(manifest_path.read_text())
        manifest["models"] = ["phantom"]
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="digest"):
            load_index(snapshot_dir)

    def test_wrong_graph_fingerprint(self, snapshot_dir, toy_graph):
        other = toy_graph.copy()
        other.add_node("Zed", "user")
        other.add_edge("Zed", "Music")
        with pytest.raises(StaleSnapshotError, match="different graph"):
            load_index(snapshot_dir, graph=other)

    def test_snapshot_round_trips_adversarial_node_ids(self, tmp_path):
        graph = TypedGraph(name="adversarial")
        users = ["u|0", ("u", 1), (("deep",), 2), 3]
        for uid in users:
            graph.add_node(uid, "user")
        graph.add_node(("s", 0), "school")
        for uid in users:
            graph.add_edge(uid, ("s", 0))
        from repro.metagraph.metagraph import metapath

        catalog = MetagraphCatalog(
            [metapath("user", "school", "user")], anchor_type="user"
        )
        vectors, index = build_vectors(graph, catalog)
        path = save_index(tmp_path / "s", vectors, catalog, graph=graph, index=index)
        loaded = load_index(path, graph=graph)
        for uid in users:
            assert loaded.vectors.partners(uid) == vectors.partners(uid)

    def test_fingerprint_sensitive_to_edges_only_changes(self, toy_graph):
        baseline = graph_fingerprint(toy_graph)
        other = toy_graph.copy()
        other.remove_edge("Kate", "Music")
        other.add_edge("Jay", "Music")
        assert graph_fingerprint(other) != baseline
        assert graph_fingerprint(toy_graph.copy()) == baseline


class TestFacadeRoundTrip:
    @pytest.fixture
    def engine(self, toy_graph, toy_metagraphs):
        catalog = MetagraphCatalog(toy_metagraphs.values(), anchor_type="user")
        engine = SemanticProximitySearch(
            toy_graph, miner_config=MinerConfig(max_nodes=4, min_support=1)
        ).prepare(catalog=catalog)
        engine.fit("classmate", CLASS_LABELS)
        return engine

    def test_query_many_rank_parity(self, engine, toy_graph, tmp_path):
        path = engine.save_index(tmp_path / "snap")
        cold = SemanticProximitySearch.from_index(path, toy_graph)
        assert cold.classes == engine.classes
        queries = ["Kate", "Bob", "Alice"]
        assert cold.query_many("classmate", queries, k=4) == engine.query_many(
            "classmate", queries, k=4
        )
        assert cold.query("classmate", "Kate", k=3) == engine.query(
            "classmate", "Kate", k=3
        )

    def test_save_requires_prepared(self, toy_graph, tmp_path):
        from repro.exceptions import LearningError

        with pytest.raises(LearningError, match="prepare"):
            SemanticProximitySearch(toy_graph).save_index(tmp_path / "s")

    def test_from_index_rejects_other_graph(self, engine, tmp_path):
        path = engine.save_index(tmp_path / "snap")
        other = TypedGraph(name="other")
        other.add_node("solo", "user")
        with pytest.raises(StaleSnapshotError):
            SemanticProximitySearch.from_index(path, other)

    def test_prepare_cache_dir_skips_mining(
        self, engine, toy_graph, tmp_path, monkeypatch
    ):
        cache = tmp_path / "cache"
        engine.save_index(cache)
        import repro.search

        def exploding_mine(*args, **kwargs):
            raise AssertionError("mining should have been skipped")

        monkeypatch.setattr(repro.search, "mine_catalog", exploding_mine)
        warm = SemanticProximitySearch(toy_graph).prepare(cache_dir=cache)
        assert warm.classes == ("classmate",)  # snapshot classes restored
        assert warm.query("classmate", "Kate", k=3) == engine.query(
            "classmate", "Kate", k=3
        )

    def test_prepare_cache_dir_rebuilds_stale_snapshot(
        self, engine, toy_graph, tmp_path
    ):
        cache = tmp_path / "cache"
        engine.save_index(cache)
        grown = toy_graph.copy()
        grown.add_node("Zed", "user")
        grown.add_edge("Zed", "Music")
        with pytest.warns(UserWarning, match="rebuilding index cache"):
            rebuilt = SemanticProximitySearch(
                grown, miner_config=MinerConfig(max_nodes=3, min_support=1)
            ).prepare(cache_dir=cache)
        assert rebuilt.vectors is not None
        # the cache now carries the new graph's fingerprint
        reloaded = load_index(cache, graph=grown)
        assert reloaded.manifest["graph_fingerprint"] == graph_fingerprint(grown)

    def test_prepare_cache_dir_rebuilds_on_miner_config_change(
        self, toy_graph, tmp_path
    ):
        """A cached catalog mined under different knobs must not be reused."""
        cache = tmp_path / "cache"
        SemanticProximitySearch(
            toy_graph, miner_config=MinerConfig(max_nodes=3, min_support=1)
        ).prepare(cache_dir=cache)
        first = load_index(cache).manifest["extra"]["miner_config"]
        assert first["max_nodes"] == 3
        with pytest.warns(UserWarning, match="mined with"):
            SemanticProximitySearch(
                toy_graph, miner_config=MinerConfig(max_nodes=4, min_support=1)
            ).prepare(cache_dir=cache)
        rebuilt = load_index(cache).manifest["extra"]["miner_config"]
        assert rebuilt["max_nodes"] == 4

    def test_prepare_cache_dir_rejects_transform_mismatch(
        self, engine, toy_graph, toy_metagraphs, tmp_path
    ):
        cache = tmp_path / "cache"
        engine.save_index(cache)  # identity counts
        catalog = MetagraphCatalog(toy_metagraphs.values(), anchor_type="user")
        with pytest.warns(UserWarning, match="transform"):
            log_engine = SemanticProximitySearch(
                toy_graph, transform=log1p
            ).prepare(catalog=catalog, cache_dir=cache)
        # must have rebuilt with its own transform, not adopted raw counts
        assert load_index(cache).manifest["transform"] == "log1p"
        assert log_engine.vectors.transform is log1p
