"""Tests for the compiled CSR serving backend (CompiledVectors)."""

import numpy as np
import pytest

from repro.exceptions import CatalogMismatchError
from repro.index.compiled import CompiledVectors
from repro.index.instance_index import _pair_key
from repro.index.transform import log1p
from repro.index.vectors import MetagraphVectors, build_vectors
from repro.metagraph.catalog import MetagraphCatalog
from tests.conftest import random_typed_graph


@pytest.fixture
def toy_compiled(toy_graph, toy_metagraphs):
    catalog = MetagraphCatalog(toy_metagraphs.values(), anchor_type="user")
    vectors, _ = build_vectors(toy_graph, catalog)
    return vectors, vectors.compile()


class TestStructure:
    def test_nodes_sorted_by_repr(self, toy_compiled):
        _vectors, compiled = toy_compiled
        assert list(compiled.nodes) == sorted(compiled.nodes, key=repr)

    def test_positions_roundtrip(self, toy_compiled):
        _vectors, compiled = toy_compiled
        for i, node in enumerate(compiled.nodes):
            assert compiled.position(node) == i
        assert compiled.position("nobody") is None

    def test_indptr_monotone(self, toy_compiled):
        _vectors, compiled = toy_compiled
        for indptr in (compiled.node_indptr, compiled.pair_indptr, compiled.pair_ptr):
            assert indptr[0] == 0
            assert np.all(np.diff(indptr) >= 0)
        assert compiled.node_indptr[-1] == len(compiled.node_data)
        assert compiled.pair_indptr[-1] == len(compiled.pair_data)
        assert compiled.pair_ptr[-1] == len(compiled.partner_pos)

    def test_arrays_read_only(self, toy_compiled):
        _vectors, compiled = toy_compiled
        with pytest.raises(ValueError):
            compiled.node_data[0] = 99.0

    def test_dense_node_rows_match_store(self, toy_compiled):
        vectors, compiled = toy_compiled
        for i, node in enumerate(compiled.nodes):
            assert np.array_equal(
                compiled.node_vector_dense(i), vectors.node_vector(node)
            )

    def test_adjacency_matches_partners(self, toy_compiled):
        vectors, compiled = toy_compiled
        for i, node in enumerate(compiled.nodes):
            positions, pair_rows = compiled.candidates_of(i)
            partners = {compiled.nodes[p] for p in positions}
            assert partners == set(vectors.partners(node))
            # each entry's pair row reconstructs the store's m_xy
            for p, row in zip(positions, pair_rows):
                assert np.array_equal(
                    compiled.pair_vector_dense(int(row)),
                    vectors.pair_vector(node, compiled.nodes[p]),
                )

    def test_partner_positions_ascending(self, toy_compiled):
        _vectors, compiled = toy_compiled
        for i in range(compiled.num_nodes):
            positions, _rows = compiled.candidates_of(i)
            assert np.all(np.diff(positions) > 0)


class TestDotProducts:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_node_and_pair_dots_match_dense(self, seed):
        from repro.metagraph.metagraph import metapath

        graph = random_typed_graph(seed)
        catalog = MetagraphCatalog(
            [metapath("user", t, "user", name=t) for t in ("school", "hobby")],
            anchor_type="user",
        )
        vectors, _ = build_vectors(graph, catalog)
        compiled = vectors.compile()
        rng = np.random.default_rng(seed)
        w = rng.uniform(0.0, 2.0, size=len(catalog))
        node_dots = compiled.node_dot_products(w)
        for i, node in enumerate(compiled.nodes):
            assert node_dots[i] == pytest.approx(
                float(vectors.node_vector(node) @ w), abs=1e-12
            )
        pair_dots = compiled.pair_dot_products(w)
        for i, node in enumerate(compiled.nodes):
            positions, rows = compiled.candidates_of(i)
            for p, row in zip(positions, rows):
                expected = float(vectors.pair_vector(node, compiled.nodes[p]) @ w)
                assert pair_dots[row] == pytest.approx(expected, abs=1e-12)

    def test_transform_applied(self, toy_graph, toy_metagraphs):
        catalog = MetagraphCatalog(toy_metagraphs.values(), anchor_type="user")
        vectors, _ = build_vectors(toy_graph, catalog, transform=log1p)
        compiled = vectors.compile()
        for i, node in enumerate(compiled.nodes):
            assert np.array_equal(
                compiled.node_vector_dense(i), vectors.node_vector(node)
            )


class TestLifecycle:
    def test_compile_is_cached(self, toy_compiled):
        vectors, compiled = toy_compiled
        assert vectors.compile() is compiled

    def test_add_counts_invalidates(self, toy_graph, toy_metagraphs):
        from repro.index.instance_index import match_and_count

        mgs = list(toy_metagraphs.values())
        catalog = MetagraphCatalog(mgs, anchor_type="user")
        vectors = MetagraphVectors(len(catalog), anchor_type="user")
        vectors.add_counts(0, match_and_count(toy_graph, mgs[0]))
        first = vectors.compile()
        vectors.add_counts(1, match_and_count(toy_graph, mgs[1]))
        second = vectors.compile()
        assert second is not first
        assert second.nnz >= first.nnz

    def test_empty_store_compiles(self):
        vectors = MetagraphVectors(3, anchor_type="user")
        compiled = vectors.compile()
        assert compiled.num_nodes == 0
        assert compiled.num_pairs == 0
        assert len(compiled.node_dot_products(np.ones(3))) == 0

    def test_load_roundtrip_compiles_identically(self, tmp_path, toy_compiled):
        vectors, compiled = toy_compiled
        vectors.save(tmp_path / "v.json")
        reloaded = MetagraphVectors.load(tmp_path / "v.json")
        recompiled = reloaded.compile()
        assert recompiled.nodes == compiled.nodes
        assert np.array_equal(recompiled.node_data, compiled.node_data)
        assert np.array_equal(recompiled.pair_data, compiled.pair_data)
        assert np.array_equal(recompiled.partner_pos, compiled.partner_pos)

    def test_inconsistent_pair_without_node_raises(self):
        with pytest.raises(CatalogMismatchError):
            CompiledVectors.build(
                node_counts={"a": {0: 1}},
                pair_counts={_pair_key("a", "ghost"): {0: 1}},
                partners={"a": {"ghost"}, "ghost": {"a"}},
                catalog_size=1,
            )
