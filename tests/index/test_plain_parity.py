"""The edge-kinds-off compatibility gate, pinned to golden digests.

The kind axis must be invisible to plain graphs: with ``edge_kinds``
off, every dataset keeps producing **byte-identical snapshots** and
**bit-identical rankings** — across every matcher engine and worker
count.  The digests below were produced by the pre-kind codebase on the
toy dataset with the exact recipe encoded here; any drift in graph
storage, canonical forms, matching, vector packing, or the persist
format shows up as a digest mismatch.

If a change legitimately alters the snapshot layout (a deliberate
format bump for *plain* graphs), regenerate both constants and say so
in the commit — this test exists to make that an explicit decision.
"""

import hashlib
import json

import pytest

from repro.datasets.toy import toy_dataset
from repro.index.parallel import IndexBuildConfig
from repro.index.persist import read_manifest
from repro.mining import MinerConfig
from repro.search import SemanticProximitySearch

GOLDEN_MANIFEST_SHA = (
    "71a44e7567234b1075d18f39d7abcfd16e22dbc9abd7aea35efc357aae4f839c"
)
GOLDEN_RANKING_DIGEST = (
    "a87c9156f1efb39737c357aa7b3d392985ee357965cd4f5e1604330d29f2c76e"
)

ENGINES = ("compiled", "symiso", "symiso-r", "quicksi", "turboiso", "boostiso")


def build_engine(workers: int = 1, matcher: str = "compiled"):
    dataset = toy_dataset()
    engine = SemanticProximitySearch(
        dataset.graph,
        miner_config=MinerConfig(max_nodes=4, min_support=1),
    )
    engine.prepare(
        build_config=IndexBuildConfig(workers=workers, matcher=matcher)
    )
    return dataset, engine


def ranking_digest(dataset, engine) -> str:
    rankings = {}
    for cls in dataset.classes:
        engine.fit(cls, dataset.class_labels(cls))
        for q in sorted(engine.universe(), key=repr):
            rankings[f"{cls}|{q}"] = [
                [str(node), float(score)]
                for node, score in engine.query(cls, q, k=5)
            ]
    payload = json.dumps(rankings, sort_keys=True).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


class TestPlainSnapshotParity:
    @pytest.mark.parametrize("matcher", ENGINES)
    @pytest.mark.parametrize("workers", [1, 4])
    def test_snapshot_bytes_pinned(self, tmp_path, matcher, workers):
        _, engine = build_engine(workers=workers, matcher=matcher)
        path = engine.save_index(tmp_path / "snap")
        manifest = read_manifest(path)
        assert manifest["manifest_sha256"] == GOLDEN_MANIFEST_SHA, (
            f"plain snapshot drifted (matcher={matcher}, workers={workers})"
        )
        assert "schema" not in manifest

    def test_rankings_pinned(self):
        dataset, engine = build_engine()
        assert ranking_digest(dataset, engine) == GOLDEN_RANKING_DIGEST

    @pytest.mark.parametrize("matcher", ["symiso", "turboiso"])
    def test_rankings_engine_invariant(self, matcher):
        dataset, engine = build_engine(workers=4, matcher=matcher)
        assert ranking_digest(dataset, engine) == GOLDEN_RANKING_DIGEST
