"""Format-v2 snapshot sidecar: mmap loading, integrity, compatibility."""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import numpy as np
import pytest

from repro import SemanticProximitySearch
from repro.datasets.toy import toy_dataset, toy_metagraphs
from repro.exceptions import SnapshotError
from repro.index.persist import (
    COMPILED_DIR,
    MANIFEST_FILE,
    _COMPILED_MEMBERS,
    load_compiled,
    load_index,
    save_index,
)
from repro.index.transform import sqrt
from repro.index.vectors import build_vectors
from repro.metagraph.catalog import MetagraphCatalog

COMPILED_ARRAY_NAMES = _COMPILED_MEMBERS


def member_path(target: Path, name: str) -> Path:
    """The digest-suffixed sidecar file of one member."""
    return next((target / COMPILED_DIR).glob(f"{name}-*.npy"))


@pytest.fixture()
def snapshot(tmp_path):
    ds = toy_dataset()
    catalog = MetagraphCatalog(toy_metagraphs().values(), anchor_type="user")
    vectors, index = build_vectors(ds.graph, catalog)
    target = tmp_path / "snap"
    save_index(target, vectors, catalog, graph=ds.graph, index=index)
    return target, ds, vectors


class TestSidecarRoundtrip:
    def test_sidecar_members_written(self, snapshot):
        target, _ds, _vectors = snapshot
        members = sorted(p.name for p in (target / COMPILED_DIR).glob("*.npy"))
        assert len(members) == len(COMPILED_ARRAY_NAMES)
        for name in COMPILED_ARRAY_NAMES:
            # filenames carry the content digest so a manifest and a
            # sidecar from different builds can never silently pair up
            assert member_path(target, name).name.endswith(".npy")

    def test_mmap_load_matches_compile(self, snapshot):
        target, _ds, vectors = snapshot
        reference = vectors.compile()
        loaded = load_compiled(target)
        assert loaded.nodes == reference.nodes
        assert loaded.catalog_size == reference.catalog_size
        for name in COMPILED_ARRAY_NAMES:
            assert np.array_equal(getattr(loaded, name), getattr(reference, name))

    def test_mmap_arrays_are_memory_mapped(self, snapshot):
        target, _ds, _vectors = snapshot
        loaded = load_compiled(target)
        assert isinstance(loaded.node_data, np.memmap)
        assert not loaded.node_data.flags.writeable

    def test_verifying_load_checks_digests(self, snapshot):
        target, _ds, vectors = snapshot
        loaded = load_compiled(target, mmap=False)
        assert not isinstance(loaded.node_data, np.memmap)
        assert np.array_equal(loaded.node_data, vectors.compile().node_data)

    def test_load_index_attaches_compiled(self, snapshot):
        target, ds, _vectors = snapshot
        loaded = load_index(target, graph=ds.graph)
        assert loaded.compiled is not None
        assert loaded.compiled.nodes == tuple(
            sorted(loaded.vectors._node, key=repr)
        )

    def test_load_index_mmap_false_skips_sidecar(self, snapshot):
        target, ds, _vectors = snapshot
        loaded = load_index(target, graph=ds.graph, mmap=False)
        assert loaded.compiled is None

    def test_from_index_adopts_mmap_snapshot(self, snapshot):
        target, ds, _vectors = snapshot
        engine = SemanticProximitySearch.from_index(target, ds.graph)
        compiled = engine.vectors.compile()
        assert isinstance(compiled.node_data, np.memmap)
        # ranking through the adopted snapshot matches a fresh compile
        rebuilt = SemanticProximitySearch.from_index(
            target, ds.graph, mmap=False
        )
        assert not isinstance(rebuilt.vectors.compile().node_data, np.memmap)
        assert engine.vectors.compile().nnz == rebuilt.vectors.compile().nnz

    def test_mmap_engine_rankings_match_rebuilt(self, snapshot):
        target, ds, _vectors = snapshot
        mapped = SemanticProximitySearch.from_index(target, ds.graph)
        rebuilt = SemanticProximitySearch.from_index(target, ds.graph, mmap=False)
        for engine in (mapped, rebuilt):
            engine.fit(
                "family", labels=ds.class_labels("family"), num_examples=40
            )
        queries = list(mapped.universe())
        assert mapped.query_many("family", queries, k=4) == rebuilt.query_many(
            "family", queries, k=4
        )


class TestSidecarIntegrity:
    def test_missing_member_rejected(self, snapshot):
        target, _ds, _vectors = snapshot
        member_path(target, "pair_data").unlink()
        with pytest.raises(SnapshotError, match="missing pair_data"):
            load_compiled(target)

    def test_resized_member_rejected(self, snapshot):
        target, _ds, _vectors = snapshot
        member = member_path(target, "node_data")
        member.write_bytes(member.read_bytes() + b"\0")
        with pytest.raises(SnapshotError, match="corrupt or tampered"):
            load_compiled(target)

    def test_same_size_corruption_caught_by_verifying_load(self, snapshot):
        target, _ds, _vectors = snapshot
        member = member_path(target, "node_data")
        payload = bytearray(member.read_bytes())
        payload[-1] ^= 0xFF
        member.write_bytes(bytes(payload))
        # the mmap fast path only checks names and sizes, so it loads...
        load_compiled(target)
        # ...and the verifying load is the one that catches the flip
        with pytest.raises(SnapshotError, match="digest"):
            load_compiled(target, mmap=False)

    def test_mixed_build_sidecar_detected_by_filename(self, snapshot):
        # interrupted re-save signature: manifest from one build, sidecar
        # members from another.  Byte sizes can agree, but the
        # digest-suffixed filenames never do — the fast path must refuse
        # rather than silently serve the other build's arrays.
        target, ds, _vectors = snapshot
        member = member_path(target, "node_data")
        stale_name = "node_data-000000000000.npy"
        member.rename(member.with_name(stale_name))
        with pytest.raises(SnapshotError, match="missing node_data"):
            load_compiled(target)
        # ...and the snapshot as a whole stays loadable via the counts
        with pytest.warns(UserWarning, match="unusable compiled sidecar"):
            assert load_index(target, graph=ds.graph).compiled is None

    def test_missing_sidecar_dir_rejected(self, snapshot):
        target, _ds, _vectors = snapshot
        shutil.rmtree(target / COMPILED_DIR)
        with pytest.raises(SnapshotError, match="missing node_indptr"):
            load_compiled(target)

    def test_load_index_falls_back_when_sidecar_unusable(self, snapshot):
        # the sidecar is derived data: losing it must cost the fast
        # path (with a warning), never the snapshot itself
        target, ds, _vectors = snapshot
        shutil.rmtree(target / COMPILED_DIR)
        with pytest.warns(UserWarning, match="unusable compiled sidecar"):
            loaded = load_index(target, graph=ds.graph)
        assert loaded.compiled is None
        with pytest.warns(UserWarning, match="unusable compiled sidecar"):
            engine = SemanticProximitySearch.from_index(target, ds.graph)
        compiled = engine.vectors.compile()
        assert not isinstance(compiled.node_data, np.memmap)

    def test_index_info_reports_unusable_sidecar_without_failing(
        self, snapshot, capsys
    ):
        from repro.cli import main

        target, _ds, _vectors = snapshot
        shutil.rmtree(target / COMPILED_DIR)
        assert main(["index", "info", str(target)]) == 0
        out = capsys.readouterr().out
        assert "UNUSABLE" in out and "falls back to the counts" in out

    def test_no_staging_dir_left_behind(self, snapshot):
        target, _ds, _vectors = snapshot
        assert not (target / (COMPILED_DIR + ".staging")).exists()

    def test_scalar_engine_save_does_not_pin_snapshot(self, tmp_path):
        # compile_serving=False exists to keep the CSR snapshot out of
        # memory; writing the sidecar must not pin one on the store
        ds = toy_dataset()
        engine = SemanticProximitySearch(ds.graph, compile_serving=False)
        catalog = MetagraphCatalog(
            toy_metagraphs().values(), anchor_type="user"
        )
        engine.prepare(catalog=catalog)
        assert engine.vectors._compiled is None
        engine.save_index(tmp_path / "scalar-snap")
        assert engine.vectors._compiled is None
        # while a compiled engine keeps its (unchanged) snapshot
        compiled_engine = SemanticProximitySearch(ds.graph.copy())
        compiled_engine.prepare(catalog=catalog)
        before = compiled_engine.vectors.compile()
        compiled_engine.save_index(tmp_path / "compiled-snap")
        assert compiled_engine.vectors.compile() is before


    def test_v1_snapshot_still_loads_without_sidecar(self, snapshot):
        # rewrite the manifest as a sidecar-free format-1 snapshot (what
        # pre-v2 builds produced): load_index works, load_compiled says no
        target, ds, _vectors = snapshot
        from repro.index.persist import _manifest_digest

        manifest = json.loads((target / MANIFEST_FILE).read_text())
        manifest["format_version"] = 1
        del manifest["compiled_arrays"]
        manifest["manifest_sha256"] = _manifest_digest(manifest)
        (target / MANIFEST_FILE).write_text(json.dumps(manifest, indent=1))
        shutil.rmtree(target / COMPILED_DIR)
        loaded = load_index(target, graph=ds.graph)
        assert loaded.compiled is None
        with pytest.raises(SnapshotError, match="no compiled sidecar"):
            load_compiled(target)

    def test_unsupported_version_rejected(self, snapshot):
        target, _ds, _vectors = snapshot
        from repro.index.persist import _manifest_digest

        manifest = json.loads((target / MANIFEST_FILE).read_text())
        manifest["format_version"] = 99
        manifest["manifest_sha256"] = _manifest_digest(manifest)
        (target / MANIFEST_FILE).write_text(json.dumps(manifest, indent=1))
        with pytest.raises(SnapshotError, match="format version 99"):
            load_index(target)


class TestTransformGuard:
    def test_custom_transform_override_skips_sidecar(self, tmp_path):
        # the sidecar data has the *saved* transform burned in; loading
        # under a different transform must not trust it
        ds = toy_dataset()
        catalog = MetagraphCatalog(
            toy_metagraphs().values(), anchor_type="user"
        )
        vectors, index = build_vectors(ds.graph, catalog, transform=sqrt)
        target = tmp_path / "snap"
        save_index(target, vectors, catalog, graph=ds.graph, index=index)

        def sqrtish(count: int) -> float:
            return float(count) ** 0.5

        loaded = load_index(target, graph=ds.graph, transform=sqrtish)
        assert loaded.compiled is None
        # while the named transform keeps the fast path
        assert load_index(target, graph=ds.graph).compiled is not None


class TestDeterminism:
    def test_sidecar_bytes_deterministic(self, tmp_path):
        ds = toy_dataset()
        catalog = MetagraphCatalog(
            toy_metagraphs().values(), anchor_type="user"
        )
        payloads = []
        for run in range(2):
            vectors, index = build_vectors(ds.graph, catalog)
            target = tmp_path / f"snap{run}"
            save_index(target, vectors, catalog, graph=ds.graph, index=index)
            payloads.append(
                {
                    p.name: p.read_bytes()
                    for p in sorted((target / COMPILED_DIR).glob("*.npy"))
                }
            )
        assert payloads[0] == payloads[1]

    def test_resave_replaces_stale_members(self, snapshot):
        target, ds, vectors = snapshot
        stale = target / COMPILED_DIR / "leftover.npy"
        stale.write_bytes(b"junk")
        catalog = MetagraphCatalog(
            toy_metagraphs().values(), anchor_type="user"
        )
        save_index(target, vectors, catalog, graph=ds.graph)
        assert not stale.exists()
