"""Property tests for Eq. 1-2 invariants on random graphs."""

import random

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.instance_index import match_and_count
from repro.index.vectors import build_vectors
from repro.learning.model import ProximityModel, uniform_model
from repro.matching import QuickSIMatcher, SymISOMatcher, find_instances
from repro.metagraph.catalog import MetagraphCatalog
from repro.metagraph.metagraph import Metagraph, metapath
from tests.conftest import random_typed_graph

PATTERNS = [
    metapath("user", "school", "user"),
    metapath("user", "hobby", "user"),
    Metagraph(
        ["user", "school", "hobby", "user"],
        [(0, 1), (0, 2), (3, 1), (3, 2)],
    ),
    Metagraph(["user", "user", "employer"], [(0, 1), (0, 2), (1, 2)]),
]


class TestCountInvariants:
    @given(st.integers(0, 2000))
    @settings(max_examples=20, deadline=None)
    def test_pair_counts_bounded_by_node_counts(self, seed):
        """Eq. 1 <= Eq. 2: m_xy[i] <= min(m_x[i], m_y[i])."""
        graph = random_typed_graph(seed, num_users=10, num_attrs_per_type=3)
        for pattern in PATTERNS:
            counts = match_and_count(graph, pattern)
            for (x, y), c in counts.pair_counts.items():
                assert c <= counts.node_counts[x]
                assert c <= counts.node_counts[y]

    @given(st.integers(0, 2000))
    @settings(max_examples=20, deadline=None)
    def test_counts_engine_independent(self, seed):
        """Eq. 1-2 counts must not depend on the matching engine."""
        graph = random_typed_graph(seed, num_users=9, num_attrs_per_type=3)
        for pattern in PATTERNS:
            a = match_and_count(graph, pattern, matcher=SymISOMatcher())
            b = match_and_count(graph, pattern, matcher=QuickSIMatcher())
            assert a.num_instances == b.num_instances
            assert a.pair_counts == b.pair_counts
            assert a.node_counts == b.node_counts

    @given(st.integers(0, 2000))
    @settings(max_examples=15, deadline=None)
    def test_node_count_at_most_instances(self, seed):
        graph = random_typed_graph(seed, num_users=9, num_attrs_per_type=3)
        for pattern in PATTERNS:
            counts = match_and_count(graph, pattern)
            for node, c in counts.node_counts.items():
                assert 1 <= c <= counts.num_instances

    @given(st.integers(0, 2000))
    @settings(max_examples=15, deadline=None)
    def test_instances_count_matches_find_instances(self, seed):
        graph = random_typed_graph(seed, num_users=8, num_attrs_per_type=3)
        for pattern in PATTERNS:
            counts = match_and_count(graph, pattern)
            instances = find_instances(SymISOMatcher(), graph, pattern)
            assert counts.num_instances == len(instances)


class TestModelProperties:
    @given(st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_rank_sorted_by_proximity(self, seed):
        graph = random_typed_graph(seed, num_users=10, num_attrs_per_type=3)
        catalog = MetagraphCatalog(PATTERNS, anchor_type="user")
        vectors, _ = build_vectors(graph, catalog)
        model = uniform_model(vectors)
        users = sorted(graph.nodes_of_type("user"))
        for query in users[:3]:
            ranking = model.rank(query, universe=users)
            scores = [s for _n, s in ranking]
            assert scores == sorted(scores, reverse=True)
            for node, score in ranking:
                assert score == model.proximity(query, node)

    @given(st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_proximity_symmetric_via_store(self, seed):
        """Theorem 1 symmetry holds end-to-end through the index."""
        graph = random_typed_graph(seed, num_users=8, num_attrs_per_type=3)
        catalog = MetagraphCatalog(PATTERNS, anchor_type="user")
        vectors, _ = build_vectors(graph, catalog)
        rng = np.random.default_rng(seed)
        weights = rng.uniform(0, 1, len(catalog))
        model = ProximityModel(weights, vectors)
        users = sorted(graph.nodes_of_type("user"))
        for x in users[:4]:
            for y in users[:4]:
                assert model.proximity(x, y) == model.proximity(y, x)
