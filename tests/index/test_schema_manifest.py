"""Snapshot schema recording: compat flag, format bump, mismatch errors.

Kinded graphs bump the snapshot format to v3 and record the realised
schema (types + edge rules) in the manifest; plain graphs keep writing
byte-compatible v2 manifests with no schema block at all.  Loading a
snapshot against a graph that disagrees on the edge-kind flag raises
:class:`SchemaError` — a structural error, not staleness — and
``repro index info`` surfaces the recorded schema to operators.
"""

import pytest

from repro.cli import main as cli_main
from repro.exceptions import SchemaError
from repro.graph.typed_graph import EdgeKind, TypedGraph
from repro.index.parallel import IndexBuildConfig, build_index
from repro.index.persist import (
    FORMAT_VERSION,
    KINDED_FORMAT_VERSION,
    load_index,
    read_manifest,
    save_index,
)
from repro.metagraph.catalog import MetagraphCatalog
from repro.metagraph.metagraph import Metagraph

IN = EdgeKind("in", True)
OUT = EdgeKind("out", True)


def kinded_graph() -> TypedGraph:
    g = TypedGraph(name="kg")
    for i in range(4):
        g.add_node(f"m{i}", "mol")
    for i, (a, b) in enumerate([(0, 1), (1, 2), (2, 3)]):
        g.add_node(f"r{i}", "rxn")
        g.add_edge(f"m{a}", f"r{i}", IN)
        g.add_edge(f"r{i}", f"m{b}", OUT)
    return g


def plain_graph() -> TypedGraph:
    g = TypedGraph(name="pg")
    for i in range(4):
        g.add_node(f"u{i}", "user")
    g.add_node("s", "school")
    for i in range(4):
        g.add_edge(f"u{i}", "s")
    return g


def snapshot_for(graph: TypedGraph, anchor: str, pattern: Metagraph, path):
    catalog = MetagraphCatalog(anchor_type=anchor)
    catalog.add_if_new(pattern)
    vectors, index = build_index(
        graph, catalog, config=IndexBuildConfig(workers=1)
    )
    return save_index(path, vectors, catalog, graph=graph, index=index)


KINDED_PATTERN = Metagraph(["mol", "rxn", "mol"], [(0, 1, IN), (1, 2, OUT)])
PLAIN_PATTERN = Metagraph(["user", "school", "user"], [(0, 1), (2, 1)])


class TestManifestSchema:
    def test_kinded_snapshot_bumps_format_and_records_schema(self, tmp_path):
        graph = kinded_graph()
        path = snapshot_for(graph, "mol", KINDED_PATTERN, tmp_path / "k")
        manifest = read_manifest(path)
        assert manifest["format_version"] == KINDED_FORMAT_VERSION
        schema = manifest["schema"]
        assert schema["edge_kinds"] is True
        assert schema["types"] == ["mol", "rxn"]
        assert ["mol", "rxn", "in", 1] in schema["edge_rules"]
        assert ["rxn", "mol", "out", 1] in schema["edge_rules"]
        # kinded fingerprints carry 4-entry edges
        assert manifest["graph_fingerprint"] is not None

    def test_plain_snapshot_keeps_v2_and_no_schema_block(self, tmp_path):
        path = snapshot_for(plain_graph(), "user", PLAIN_PATTERN, tmp_path / "p")
        manifest = read_manifest(path)
        assert manifest["format_version"] == FORMAT_VERSION
        assert "schema" not in manifest

    def test_round_trip_with_matching_graph(self, tmp_path):
        graph = kinded_graph()
        path = snapshot_for(graph, "mol", KINDED_PATTERN, tmp_path / "k")
        loaded = load_index(path, graph=graph)
        assert loaded.vectors.anchor_type == "mol"

    def test_plain_graph_against_kinded_snapshot_raises(self, tmp_path):
        path = snapshot_for(
            kinded_graph(), "mol", KINDED_PATTERN, tmp_path / "k"
        )
        with pytest.raises(SchemaError, match="edge kinds"):
            load_index(path, graph=plain_graph())

    def test_kinded_graph_against_plain_snapshot_raises(self, tmp_path):
        path = snapshot_for(
            plain_graph(), "user", PLAIN_PATTERN, tmp_path / "p"
        )
        with pytest.raises(SchemaError, match="edge kinds"):
            load_index(path, graph=kinded_graph())


class TestIndexInfoCLI:
    def test_info_prints_recorded_schema(self, tmp_path, capsys):
        path = snapshot_for(
            kinded_graph(), "mol", KINDED_PATTERN, tmp_path / "k"
        )
        assert cli_main(["index", "info", str(path)]) == 0
        out = capsys.readouterr().out
        assert "schema         : edge kinds on, types mol, rxn" in out
        assert "mol -> rxn [in]" in out
        assert "rxn -> mol [out]" in out
        assert f"format version : {KINDED_FORMAT_VERSION}" in out

    def test_info_reports_plain_schema(self, tmp_path, capsys):
        path = snapshot_for(
            plain_graph(), "user", PLAIN_PATTERN, tmp_path / "p"
        )
        assert cli_main(["index", "info", str(path)]) == 0
        out = capsys.readouterr().out
        assert "schema         : plain (unlabeled, undirected)" in out
        assert f"format version : {FORMAT_VERSION}" in out
