"""Numeric verification of SRW's analytic derivatives.

The supervised-random-walk gradient chains through the power iteration;
a silent sign or alignment bug (e.g. sparse-index misalignment between
Q and its per-feature masks) produces a model that trains but learns
the wrong thing.  These tests pin both dQ/dtheta and dp/dtheta against
central finite differences.
"""

import numpy as np
import pytest

from repro.baselines.srw import SRWModel
from repro.datasets import load_dataset


@pytest.fixture(scope="module")
def model():
    dataset = load_dataset("linkedin", scale="tiny")
    return dataset, SRWModel(dataset.graph, power_iterations=60)


THETA = np.array([0.3, -0.2, 0.1])


class TestTransitionDerivative:
    def test_dq_matches_finite_difference(self, model):
        _dataset, m = model
        q_matrix, masks, s_features = m._transition(THETA)
        q_dense = q_matrix.toarray()
        eps = 1e-6
        for k in range(m.num_features):
            hi, lo = THETA.copy(), THETA.copy()
            hi[k] += eps
            lo[k] -= eps
            numeric = (
                m._transition(hi)[0].toarray() - m._transition(lo)[0].toarray()
            ) / (2 * eps)
            analytic = masks[k].toarray() - q_dense * s_features[:, k][:, None]
            assert np.abs(numeric - analytic).max() < 1e-6

    def test_masks_partition_q(self, model):
        _dataset, m = model
        q_matrix, masks, _s = m._transition(THETA)
        total = sum(mask.toarray() for mask in masks)
        assert np.abs(total - q_matrix.toarray()).max() == 0.0

    def test_rows_stochastic(self, model):
        _dataset, m = model
        q_matrix, _masks, _s = m._transition(THETA)
        row_sums = np.asarray(q_matrix.sum(axis=1)).ravel()
        nonzero = row_sums > 0
        assert np.allclose(row_sums[nonzero], 1.0)


class TestWalkDerivative:
    def test_dp_matches_finite_difference(self, model):
        dataset, m = model
        query = dataset.queries("college")[0]
        qi = m.indexer.index[query]
        q_matrix, masks, s_features = m._transition(THETA)
        _p, dp = m._walk_with_gradient(q_matrix, masks, s_features, qi)
        eps = 1e-6
        for k in range(m.num_features):
            hi, lo = THETA.copy(), THETA.copy()
            hi[k] += eps
            lo[k] -= eps
            p_hi = m._walk(m._transition(hi)[0], qi)
            p_lo = m._walk(m._transition(lo)[0], qi)
            numeric = (p_hi - p_lo) / (2 * eps)
            assert np.abs(numeric - dp[:, k]).max() < 1e-6

    def test_walk_probability_distribution(self, model):
        dataset, m = model
        query = dataset.queries("college")[0]
        q_matrix, _masks, _s = m._transition(THETA)
        p = m._walk(q_matrix, m.indexer.index[query])
        assert p.sum() == pytest.approx(1.0)
        assert np.all(p >= 0)
