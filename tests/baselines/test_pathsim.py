"""Tests for the PathSim reference baseline."""

import pytest

from repro.baselines.pathsim import pathsim_model, select_pathsim
from repro.exceptions import LearningError
from repro.index.vectors import MetagraphVectors, build_vectors
from repro.metagraph.catalog import MetagraphCatalog
from repro.metagraph.metagraph import metapath

USERS = ["Alice", "Bob", "Kate", "Jay", "Tom"]


@pytest.fixture
def setup(toy_graph, toy_metagraphs):
    catalog = MetagraphCatalog(toy_metagraphs.values(), anchor_type="user")
    vectors, _ = build_vectors(toy_graph, catalog)
    return catalog, vectors


class TestPathsimModel:
    def test_manual_metapath(self, setup):
        catalog, vectors = setup
        model = pathsim_model(catalog, vectors, metapath("user", "address", "user"))
        # Alice-123GreenSt-Bob: proximity 1 (one shared address each side)
        assert model.proximity("Alice", "Bob") == pytest.approx(1.0)
        assert model.proximity("Alice", "Tom") == 0.0

    def test_non_path_rejected(self, setup, toy_metagraphs):
        catalog, vectors = setup
        with pytest.raises(LearningError):
            pathsim_model(catalog, vectors, toy_metagraphs["M1"])

    def test_unknown_path_rejected(self, setup):
        catalog, vectors = setup
        from repro.exceptions import MetagraphError

        with pytest.raises(MetagraphError):
            pathsim_model(catalog, vectors, metapath("user", "planet", "user"))


class TestSelectPathsim:
    def test_selects_discriminative_path(self, setup):
        catalog, vectors = setup
        # toy catalog has one metapath: M3 (user-address-user)
        labels = {"Bob": frozenset({"Alice"}), "Alice": frozenset({"Bob"})}
        model = select_pathsim(catalog, vectors, ["Bob"], labels, USERS)
        m3_id = catalog.metapath_ids()[0]
        assert model.weights[m3_id] == 1.0

    def test_empty_matched_paths_raises(self, setup):
        catalog, _vectors = setup
        empty = MetagraphVectors(len(catalog))
        with pytest.raises(LearningError):
            select_pathsim(catalog, empty, [], {}, USERS)
