"""Tests for the comparison algorithms: PPR, SRW, SimRank, MGP variants."""

import numpy as np
import pytest

from repro.baselines.mgp_variants import mgp_uniform, train_mgp_best, train_mpp
from repro.baselines.pagerank import (
    NodeIndexer,
    personalized_pagerank,
    ppr_ranker,
    transition_matrix,
)
from repro.baselines.simrank import SimRank
from repro.baselines.srw import SRWModel
from repro.datasets import load_dataset
from repro.exceptions import LearningError, ReproError, TrainingDataError
from repro.index.vectors import build_vectors
from repro.learning.trainer import Trainer, TrainerConfig
from repro.metagraph.catalog import MetagraphCatalog

USERS = ["Alice", "Bob", "Kate", "Jay", "Tom"]


class TestPageRank:
    def test_distribution_sums_to_one(self, toy_graph):
        indexer = NodeIndexer(toy_graph)
        q = transition_matrix(toy_graph, indexer)
        p = personalized_pagerank(q, indexer.index["Kate"])
        assert p.sum() == pytest.approx(1.0)
        assert np.all(p >= 0)

    def test_restart_node_has_highest_mass(self, toy_graph):
        indexer = NodeIndexer(toy_graph)
        q = transition_matrix(toy_graph, indexer)
        p = personalized_pagerank(q, indexer.index["Kate"], alpha=0.3)
        assert p.argmax() == indexer.index["Kate"]

    def test_rows_stochastic(self, toy_graph):
        indexer = NodeIndexer(toy_graph)
        q = transition_matrix(toy_graph, indexer)
        sums = np.asarray(q.sum(axis=1)).ravel()
        for node in toy_graph.nodes():
            expected = 1.0 if toy_graph.degree(node) else 0.0
            assert sums[indexer.index[node]] == pytest.approx(expected)

    def test_strength_function_biases_walk(self, toy_graph):
        indexer = NodeIndexer(toy_graph)

        def prefer_school(u, v):
            pair = toy_graph.edge_type_pair(u, v)
            return 10.0 if "school" in pair else 1.0

        q = transition_matrix(toy_graph, indexer, strength=prefer_school)
        p = personalized_pagerank(q, indexer.index["Bob"], alpha=0.2)
        q_uniform = transition_matrix(toy_graph, indexer)
        p_uniform = personalized_pagerank(q_uniform, indexer.index["Bob"], alpha=0.2)
        assert p[indexer.index["College A"]] > p_uniform[indexer.index["College A"]]

    def test_ppr_ranker_excludes_query(self, toy_graph):
        ranker = ppr_ranker(toy_graph, USERS)
        ranked = ranker("Kate")
        assert "Kate" not in ranked
        assert set(ranked) == set(USERS) - {"Kate"}

    def test_dangling_node_handled(self):
        from repro.graph.typed_graph import TypedGraph

        g = TypedGraph()
        g.add_node("a", "user")
        g.add_node("b", "user")
        g.add_node("lonely", "user")
        g.add_edge("a", "b")
        indexer = NodeIndexer(g)
        q = transition_matrix(g, indexer)
        p = personalized_pagerank(q, indexer.index["lonely"])
        assert p.sum() == pytest.approx(1.0)
        assert p[indexer.index["lonely"]] == pytest.approx(1.0)


class TestSRW:
    @pytest.fixture(scope="class")
    def dataset(self):
        return load_dataset("linkedin", scale="tiny")

    def test_feature_space(self, dataset):
        model = SRWModel(dataset.graph)
        assert model.num_features == 3  # user-{college,employer,location}

    def test_fit_learns_class_relevant_feature(self, dataset):
        from repro.learning.examples import generate_triplets

        labels = dataset.class_labels("college")
        queries = dataset.queries("college")[:12]
        triplets = generate_triplets(
            queries, labels, dataset.universe, num_examples=60, seed=0
        )
        model = SRWModel(dataset.graph, epochs=15, power_iterations=25, seed=1)
        model.fit(triplets)
        features = {pair: k for pair, k in model.feature_of_pair.items()}
        college_k = features[("college", "user")]
        location_k = features[("location", "user")]
        # the college edge type must end up stronger than the irrelevant one
        assert model.theta[college_k] > model.theta[location_k]

    def test_rank_shape(self, dataset):
        model = SRWModel(dataset.graph, epochs=2, power_iterations=15)
        from repro.learning.examples import generate_triplets

        labels = dataset.class_labels("college")
        queries = dataset.queries("college")[:5]
        triplets = generate_triplets(
            queries, labels, dataset.universe, num_examples=10, seed=0
        )
        model.fit(triplets)
        ranked = model.rank(queries[0], dataset.universe, k=10)
        assert len(ranked) == 10
        assert all(score >= 0 for _n, score in ranked)
        assert queries[0] not in [n for n, _s in ranked]

    def test_empty_triplets_rejected(self, dataset):
        with pytest.raises(TrainingDataError):
            SRWModel(dataset.graph).fit([])


class TestSimRank:
    def test_self_similarity_one(self, toy_graph):
        sim = SimRank(toy_graph, iterations=4)
        assert sim.similarity("Kate", "Kate") == pytest.approx(1.0)

    def test_symmetric(self, toy_graph):
        sim = SimRank(toy_graph, iterations=4)
        assert sim.similarity("Kate", "Jay") == pytest.approx(
            sim.similarity("Jay", "Kate")
        )

    def test_shared_structure_scores_higher(self, toy_graph):
        sim = SimRank(toy_graph, iterations=4)
        # Kate and Jay share three attributes; Kate and Tom share nothing
        assert sim.similarity("Kate", "Jay") > sim.similarity("Kate", "Tom")

    def test_rank(self, toy_graph):
        sim = SimRank(toy_graph, iterations=4)
        ranked = sim.rank("Kate", USERS, k=2)
        assert len(ranked) == 2

    def test_size_guard(self, toy_graph):
        with pytest.raises(ReproError):
            SimRank(toy_graph, max_nodes=3)

    def test_sparse_matches_dense(self, toy_graph):
        """The scipy-sparse iteration is a pure speed change."""
        pytest.importorskip("scipy")
        import numpy as np

        sparse = SimRank(toy_graph, iterations=5, use_sparse=True)
        dense = SimRank(toy_graph, iterations=5, use_sparse=False)
        assert np.allclose(sparse._scores, dense._scores)
        for x in ("Kate", "Alice"):
            for y in USERS:
                assert sparse.similarity(x, y) == pytest.approx(
                    dense.similarity(x, y)
                )

    def test_sparse_matches_dense_on_random_graph(self):
        pytest.importorskip("scipy")
        import numpy as np

        from tests.conftest import random_typed_graph

        graph = random_typed_graph(11, num_users=10, num_attrs_per_type=4)
        sparse = SimRank(graph, iterations=6, use_sparse=True)
        dense = SimRank(graph, iterations=6, use_sparse=False)
        assert np.allclose(sparse._scores, dense._scores)

    def test_raised_guard_admits_midsize_graphs(self):
        """The sparse iteration is why its default guard sits at 10k."""
        pytest.importorskip("scipy")  # the dense fallback keeps the 4k guard
        from repro.graph.typed_graph import TypedGraph

        graph = TypedGraph()
        for i in range(4001):  # over the old dense-W limit of 4000
            graph.add_node(i, "user" if i % 2 else "hobby")
        for i in range(1, 4001):
            graph.add_edge(i, i - 1)
        sim = SimRank(graph, iterations=1)
        assert sim.similarity(0, 0) == pytest.approx(1.0)


class TestMGPVariants:
    @pytest.fixture(scope="class")
    def setup(self, request):
        from tests.conftest import build_toy_graph, fig2_metagraphs

        graph = build_toy_graph()
        catalog = MetagraphCatalog(fig2_metagraphs().values(), anchor_type="user")
        vectors, _ = build_vectors(graph, catalog)
        return graph, catalog, vectors

    def test_mpp_uses_only_metapaths(self, setup):
        _graph, catalog, vectors = setup
        triplets = [("Bob", "Alice", "Tom"), ("Alice", "Bob", "Kate")]
        model = train_mpp(
            catalog, vectors, triplets,
            Trainer(TrainerConfig(restarts=1, max_iterations=50)),
        )
        non_paths = set(catalog.non_metapath_ids())
        assert all(model.weights[i] == 0.0 for i in non_paths)
        assert model.name == "MPP"

    def test_mpp_without_metapaths_raises(self, setup):
        from tests.conftest import fig2_metagraphs

        graphs = fig2_metagraphs()
        catalog = MetagraphCatalog([graphs["M1"]], anchor_type="user")
        _graph, _full_catalog, _vectors = setup
        from tests.conftest import build_toy_graph

        vectors, _ = build_vectors(build_toy_graph(), catalog)
        with pytest.raises(LearningError):
            train_mpp(catalog, vectors, [("Bob", "Alice", "Tom")])

    def test_uniform(self, setup):
        _graph, _catalog, vectors = setup
        model = mgp_uniform(vectors)
        assert np.array_equal(model.weights, np.ones(4))

    def test_mgp_best_picks_class_metagraph(self, setup, toy_metagraphs):
        _graph, catalog, vectors = setup
        from repro.datasets.toy import toy_dataset

        ds = toy_dataset()
        labels = ds.class_labels("classmates")
        model = train_mgp_best(
            vectors, ds.queries("classmates"), labels, USERS
        )
        m1_id = catalog.id_of(toy_metagraphs["M1"])
        assert model.weights[m1_id] == 1.0  # M1 is the classmate signature

    def test_mgp_best_empty_store_raises(self):
        from repro.index.vectors import MetagraphVectors

        with pytest.raises(LearningError):
            train_mgp_best(MetagraphVectors(4), [], {}, [])
