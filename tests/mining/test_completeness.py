"""Completeness and anti-monotonicity properties of the miner."""

import itertools
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metagraph.canonical import canonical_form
from repro.metagraph.metagraph import Metagraph
from repro.mining.enumerate import enumerate_patterns
from repro.mining.grami import GramiMiner, MinerConfig, mni_support
from tests.conftest import random_typed_graph


def brute_force_patterns(types, allowed_pairs, max_nodes):
    """All connected typed patterns by exhaustive construction."""
    found = set()
    for n in range(2, max_nodes + 1):
        for type_combo in itertools.product(types, repeat=n):
            all_edges = list(itertools.combinations(range(n), 2))
            for r in range(n - 1, len(all_edges) + 1):
                for edge_set in itertools.combinations(all_edges, r):
                    ok = all(
                        tuple(sorted((type_combo[u], type_combo[v])))
                        in allowed_pairs
                        for u, v in edge_set
                    )
                    if not ok:
                        continue
                    try:
                        pattern = Metagraph(type_combo, edge_set)
                    except Exception:
                        continue  # disconnected
                    found.add(canonical_form(pattern))
    return found


class TestEnumerationCompleteness:
    def test_matches_brute_force_two_types(self):
        pairs = frozenset({("school", "user")})
        enumerated = {
            canonical_form(m)
            for m in enumerate_patterns(pairs, max_nodes=4)
        }
        brute = brute_force_patterns(["school", "user"], pairs, max_nodes=4)
        assert enumerated == brute

    def test_matches_brute_force_with_self_pair(self):
        pairs = frozenset({("user", "user"), ("hobby", "user")})
        enumerated = {
            canonical_form(m)
            for m in enumerate_patterns(pairs, max_nodes=3)
        }
        brute = brute_force_patterns(["hobby", "user"], pairs, max_nodes=3)
        assert enumerated == brute


class TestMinerProperties:
    @given(st.integers(0, 500))
    @settings(max_examples=8, deadline=None)
    def test_anti_monotone_closure(self, seed):
        """Every connected sub-pattern of a mined pattern is also mined.

        MNI support is anti-monotone, so the frequent set must be closed
        under taking connected subpatterns (of >= 2 nodes).
        """
        graph = random_typed_graph(seed, num_users=8, num_attrs_per_type=2)
        config = MinerConfig(max_nodes=4, min_support=2)
        result = GramiMiner(config).mine(graph)
        mined = {canonical_form(m) for m in result.patterns}
        for pattern in result.patterns:
            if pattern.size <= 2:
                continue
            # remove each leaf node (keeps connectivity)
            for node in pattern.nodes():
                if pattern.degree(node) == 1:
                    rest = [u for u in pattern.nodes() if u != node]
                    sub = pattern.induced_on(rest)
                    assert canonical_form(sub) in mined, (
                        f"sub-pattern of mined pattern missing: {sub!r}"
                    )

    @given(st.integers(0, 500))
    @settings(max_examples=8, deadline=None)
    def test_reported_support_meets_threshold(self, seed):
        graph = random_typed_graph(seed, num_users=8, num_attrs_per_type=2)
        config = MinerConfig(max_nodes=3, min_support=3)
        result = GramiMiner(config).mine(graph)
        for pattern in result.patterns:
            estimate = mni_support(graph, pattern, threshold=3)
            assert estimate.support >= 3

    @given(st.integers(0, 500))
    @settings(max_examples=6, deadline=None)
    def test_higher_support_mines_subset(self, seed):
        graph = random_typed_graph(seed, num_users=8, num_attrs_per_type=2)
        low = GramiMiner(MinerConfig(max_nodes=3, min_support=2)).mine(graph)
        high = GramiMiner(MinerConfig(max_nodes=3, min_support=4)).mine(graph)
        low_set = {canonical_form(m) for m in low.patterns}
        high_set = {canonical_form(m) for m in high.patterns}
        assert high_set <= low_set
