"""Pattern enumeration over kinded edge rules.

The miner grows patterns over the graph's observed ``(type, type,
kind)`` rules.  Directed rules are orientation-significant; undirected
and plain rules behave exactly as the historical type-pair grammar —
pinned here by comparing against 2-tuple rule enumeration.
"""

from repro.graph.typed_graph import EdgeKind
from repro.metagraph.canonical import canonical_form
from repro.mining.enumerate import enumerate_patterns

IN = EdgeKind("in", True)
OUT = EdgeKind("out", True)
CITES = EdgeKind("cites", True)


def forms(patterns):
    return {canonical_form(p) for p in patterns}


class TestPlainCompatibility:
    def test_two_tuple_rules_match_plain_three_tuples(self):
        pairs = [("a", "b"), ("b", "c")]
        from repro.graph.typed_graph import PLAIN

        kinded = [(x, y, PLAIN) for x, y in pairs]
        for max_nodes in (2, 3, 4):
            assert forms(
                enumerate_patterns(pairs, max_nodes=max_nodes)
            ) == forms(enumerate_patterns(kinded, max_nodes=max_nodes))

    def test_plain_chain_space(self):
        patterns = enumerate_patterns([("a", "b"), ("b", "c")], max_nodes=3)
        # a-b, b-c, a-b-a, b-a-b(x), ... the historical 2-rule space
        assert len(patterns) == len(forms(patterns))
        assert all(not p.has_kinds for p in patterns)


class TestDirectedRules:
    def test_orientation_is_respected(self):
        # only mol -> rxn consumption exists: no pattern may contain a
        # reversed 'in' edge
        patterns = enumerate_patterns([("mol", "rxn", IN)], max_nodes=3)
        assert patterns
        for p in patterns:
            for u, v, kind in p.edges_with_kinds():
                assert kind == IN
                assert p.node_type(u) == "mol"
                assert p.node_type(v) == "rxn"

    def test_in_and_out_rules_do_not_mix_roles(self):
        patterns = enumerate_patterns(
            [("mol", "rxn", IN), ("rxn", "mol", OUT)], max_nodes=3
        )
        star_in = {
            canonical_form(p)
            for p in patterns
            if p.size == 3
            and all(kind == IN for _, _, kind in p.edges_with_kinds())
        }
        star_out = {
            canonical_form(p)
            for p in patterns
            if p.size == 3
            and all(kind == OUT for _, _, kind in p.edges_with_kinds())
        }
        mixed = {
            canonical_form(p)
            for p in patterns
            if p.size == 3
            and len({kind for _, _, kind in p.edges_with_kinds()}) == 2
        }
        # consume-star, produce-star and the conversion path all exist
        # and are distinct canonical classes
        assert star_in and star_out and mixed
        assert not (star_in & star_out)
        assert not (star_in & mixed)

    def test_same_type_directed_rule_distinguishes_star_shapes(self):
        # paper -cites-> paper: at 3 nodes the in-star (two papers cite
        # one) and the out-star (one paper cites two) are different
        # patterns, as are the path and the two triangle orientations
        patterns = enumerate_patterns([("paper", "paper", CITES)], max_nodes=3)
        two_edge = [p for p in patterns if p.size == 3 and p.num_edges == 2]
        # in-star (both cite one), out-star (one cites both), and the
        # citation path are three distinct canonical classes
        assert len(two_edge) == 3
        profiles = set()
        for p in two_edge:
            indeg, outdeg = [0, 0, 0], [0, 0, 0]
            for u, v, _ in p.edges_with_kinds():
                outdeg[u] += 1
                indeg[v] += 1
            profiles.add((max(indeg), max(outdeg)))
        assert profiles == {(2, 1), (1, 2), (1, 1)}
        triangles = [p for p in patterns if p.size == 3 and p.num_edges == 3]
        assert len(triangles) == 2  # cyclic and transitive orientations

    def test_determinism(self):
        rules = [("mol", "rxn", IN), ("rxn", "mol", OUT)]
        a = enumerate_patterns(rules, max_nodes=4)
        b = enumerate_patterns(rules, max_nodes=4)
        assert [canonical_form(p) for p in a] == [
            canonical_form(p) for p in b
        ]
