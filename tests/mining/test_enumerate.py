"""Tests for schema-driven pattern enumeration."""

from repro.metagraph.canonical import canonical_form
from repro.metagraph.metagraph import metapath
from repro.mining.enumerate import enumerate_patterns, single_edge_patterns


class TestSingleEdgePatterns:
    def test_one_per_pair(self):
        patterns = single_edge_patterns([("user", "school"), ("user", "user")])
        assert len(patterns) == 2

    def test_pair_order_irrelevant(self):
        a = single_edge_patterns([("school", "user")])
        b = single_edge_patterns([("user", "school")])
        assert canonical_form(a[0]) == canonical_form(b[0])


class TestEnumeratePatterns:
    def test_single_pair_paths(self):
        # only user-school edges allowed: patterns alternate types;
        # max 3 nodes -> user-school, user-school-user, school-user-school
        patterns = enumerate_patterns([("school", "user")], max_nodes=3)
        forms = {canonical_form(m) for m in patterns}
        assert canonical_form(metapath("user", "school")) in forms
        assert canonical_form(metapath("user", "school", "user")) in forms
        assert canonical_form(metapath("school", "user", "school")) in forms
        assert len(patterns) == 3

    def test_no_duplicates(self):
        patterns = enumerate_patterns(
            [("school", "user"), ("hobby", "user")], max_nodes=4
        )
        forms = [canonical_form(m) for m in patterns]
        assert len(forms) == len(set(forms))

    def test_all_connected(self):
        patterns = enumerate_patterns(
            [("school", "user"), ("user", "user")], max_nodes=4
        )
        # Metagraph constructor enforces connectivity; reaching here means
        # every generated pattern was connected
        assert all(m.size <= 4 for m in patterns)

    def test_max_edges_bound(self):
        unbounded = enumerate_patterns([("user", "user")], max_nodes=4)
        bounded = enumerate_patterns([("user", "user")], max_nodes=4, max_edges=3)
        assert max(m.num_edges for m in bounded) <= 3
        assert len(bounded) < len(unbounded)

    def test_growth_covers_squares(self):
        # the Fig. 2 square M1 must be reachable via edge closing
        patterns = enumerate_patterns(
            [("school", "user"), ("major", "user")], max_nodes=4
        )
        from repro.metagraph.metagraph import Metagraph

        m1 = Metagraph(
            ["user", "school", "major", "user"],
            [(0, 1), (0, 2), (3, 1), (3, 2)],
        )
        forms = {canonical_form(m) for m in patterns}
        assert canonical_form(m1) in forms

    def test_deterministic(self):
        pairs = [("school", "user"), ("hobby", "user"), ("user", "user")]
        a = enumerate_patterns(pairs, max_nodes=4)
        b = enumerate_patterns(pairs, max_nodes=4)
        assert [canonical_form(m) for m in a] == [canonical_form(m) for m in b]

    def test_sizes_respected(self):
        patterns = enumerate_patterns([("school", "user")], max_nodes=5)
        assert all(2 <= m.size <= 5 for m in patterns)
