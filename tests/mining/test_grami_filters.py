"""Tests for the GraMi-style miner and the paper's metagraph filters."""

import pytest

from repro.metagraph.canonical import canonical_form
from repro.metagraph.metagraph import Metagraph, metapath
from repro.mining import mine_catalog
from repro.mining.filters import (
    build_catalog,
    filter_metagraphs,
    passes_paper_filters,
)
from repro.mining.grami import GramiMiner, MinerConfig, mni_support
from tests.conftest import random_typed_graph


class TestMNISupport:
    def test_simple_edge_support(self, toy_graph):
        # user-school edges: 4 users touch schools, 2 schools
        pattern = metapath("user", "school")
        est = mni_support(toy_graph, pattern, threshold=10)
        assert est.support == 2  # min(4 users, 2 schools) = 2
        assert not est.budget_hit

    def test_threshold_short_circuit(self, toy_graph):
        pattern = metapath("user", "school")
        est = mni_support(toy_graph, pattern, threshold=2)
        assert est.support == 2
        assert est.is_frequent(2)

    def test_zero_support_for_absent_pattern(self, toy_graph):
        pattern = metapath("user", "user")
        est = mni_support(toy_graph, pattern, threshold=1)
        assert est.support == 0
        assert not est.is_frequent(1)

    def test_non_induced_semantics(self):
        """MNI uses standard embeddings: a triangle supports a path."""
        from repro.graph.typed_graph import TypedGraph

        g = TypedGraph()
        for n in ("a", "b", "c"):
            g.add_node(n, "user")
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_edge("a", "c")
        path = metapath("user", "user", "user")
        est = mni_support(g, path, threshold=5)
        assert est.support == 3  # every node appears in every role

    def test_budget_hit_reported(self, toy_graph):
        pattern = metapath("user", "school")
        est = mni_support(
            toy_graph, pattern, threshold=100, embedding_budget=1
        )
        assert est.budget_hit
        assert est.is_frequent(100)  # budget hits count as frequent


class TestGramiMiner:
    def test_toy_mining_finds_fig2_metagraphs(self, toy_graph, toy_metagraphs):
        miner = GramiMiner(MinerConfig(max_nodes=4, min_support=2))
        result = miner.mine(toy_graph)
        forms = {canonical_form(m) for m in result.patterns}
        # M1 (school+major square) occurs twice in the toy graph -> support 2
        assert canonical_form(toy_metagraphs["M1"]) in forms
        # M3 (shared address) occurs twice -> support 2
        assert canonical_form(toy_metagraphs["M3"]) in forms

    def test_infrequent_pattern_absent(self, toy_graph, toy_metagraphs):
        miner = GramiMiner(MinerConfig(max_nodes=4, min_support=2))
        result = miner.mine(toy_graph)
        forms = {canonical_form(m) for m in result.patterns}
        # M2 (employer+hobby square) occurs once; each node role has
        # only 1 image -> support 1 < 2
        assert canonical_form(toy_metagraphs["M2"]) not in forms

    def test_supports_recorded(self, toy_graph):
        miner = GramiMiner(MinerConfig(max_nodes=3, min_support=2))
        result = miner.mine(toy_graph)
        for pattern in result.patterns:
            assert result.support_of(pattern) >= 2

    def test_anti_monotone_growth(self, toy_graph):
        # every mined pattern's sub-edge count is within bounds and
        # every pattern is connected (constructor guarantees)
        miner = GramiMiner(MinerConfig(max_nodes=4, min_support=2))
        result = miner.mine(toy_graph)
        assert all(m.size <= 4 for m in result.patterns)
        assert result.candidates_tested >= len(result.patterns)

    def test_empty_graph(self):
        from repro.graph.typed_graph import TypedGraph

        result = GramiMiner().mine(TypedGraph())
        assert result.patterns == []

    def test_deterministic(self, toy_graph):
        cfg = MinerConfig(max_nodes=4, min_support=2)
        a = GramiMiner(cfg).mine(toy_graph)
        b = GramiMiner(cfg).mine(toy_graph)
        assert [canonical_form(m) for m in a.patterns] == [
            canonical_form(m) for m in b.patterns
        ]

    def test_random_graph_smoke(self):
        graph = random_typed_graph(3, num_users=10, num_attrs_per_type=3)
        result = GramiMiner(MinerConfig(max_nodes=3, min_support=3)).mine(graph)
        assert result.patterns  # something frequent must exist


class TestPaperFilters:
    def test_symmetric_anchor_pattern_passes(self, toy_metagraphs):
        assert passes_paper_filters(toy_metagraphs["M1"])
        assert passes_paper_filters(toy_metagraphs["M3"])

    def test_single_user_fails(self):
        assert not passes_paper_filters(metapath("user", "school"))

    def test_all_users_fails(self):
        m = metapath("user", "user", "user")
        assert not passes_paper_filters(m)

    def test_asymmetric_fails(self):
        m = Metagraph(
            ["user", "school", "user", "hobby"],
            [(0, 1), (1, 2), (2, 3)],
        )
        # users are NOT at symmetric positions (one has a hobby side)
        assert not passes_paper_filters(m)

    def test_oversized_fails(self):
        m = metapath("user", "hobby", "user", "hobby", "user", name="big")
        assert passes_paper_filters(m, max_nodes=5)
        assert not passes_paper_filters(m, max_nodes=4)

    def test_anchor_type_parameter(self):
        m = metapath("hobby", "user", "hobby")
        assert not passes_paper_filters(m, anchor_type="user")
        assert passes_paper_filters(m, anchor_type="hobby")

    def test_filter_metagraphs(self, toy_metagraphs):
        kept = filter_metagraphs(toy_metagraphs.values())
        assert len(kept) == 4  # all of M1-M4 qualify

    def test_build_catalog_dedupes(self, toy_metagraphs):
        doubled = list(toy_metagraphs.values()) * 2
        catalog = build_catalog(doubled)
        assert len(catalog) == 4


class TestMineCatalog:
    def test_end_to_end_toy(self, toy_graph, toy_metagraphs):
        catalog = mine_catalog(
            toy_graph, MinerConfig(max_nodes=4, min_support=2)
        )
        assert len(catalog) > 0
        assert toy_metagraphs["M1"] in catalog
        assert toy_metagraphs["M3"] in catalog
        # metapath seeds exist
        assert catalog.metapath_ids()

    def test_catalog_members_all_pass_filters(self, toy_graph):
        catalog = mine_catalog(
            toy_graph, MinerConfig(max_nodes=4, min_support=2)
        )
        assert all(passes_paper_filters(m, max_nodes=4) for m in catalog)


@pytest.mark.parametrize("max_nodes", [2, 3])
def test_miner_respects_max_nodes(toy_graph, max_nodes):
    result = GramiMiner(MinerConfig(max_nodes=max_nodes, min_support=1)).mine(
        toy_graph
    )
    assert all(m.size <= max_nodes for m in result.patterns)
