"""Regression tests: unknown/off-anchor queries must raise QueryError.

Before this suite's fixes, ``query("family", "Zed")`` on a graph with
no "Zed" silently returned an all-zero ranking, ``proximity`` returned
0.0 and ``explain`` returned ``[]`` — confidently wrong answers a
production service would have served.  Every online entry point, on
both the compiled and scalar backends (and the sharded router), now
rejects such queries up front.
"""

from __future__ import annotations

import pytest

from repro import SemanticProximitySearch
from repro.datasets.toy import toy_dataset, toy_metagraphs
from repro.exceptions import QueryError, ReproError
from repro.learning.trainer import TrainerConfig
from repro.metagraph.catalog import MetagraphCatalog
from repro.serving import validate_query_node


def make_engine(**kwargs):
    ds = toy_dataset()
    spx = SemanticProximitySearch(
        ds.graph,
        trainer_config=TrainerConfig(restarts=2, max_iterations=300, seed=0),
        **kwargs,
    )
    catalog = MetagraphCatalog(toy_metagraphs().values(), anchor_type="user")
    spx.prepare(catalog=catalog)
    spx.fit("family", labels=ds.class_labels("family"), num_examples=40)
    return spx


@pytest.fixture(
    scope="module",
    params=["compiled", "scalar", "sharded"],
)
def engine(request):
    """One engine per serving backend — the fixes cover all of them."""
    if request.param == "scalar":
        return make_engine(compile_serving=False)
    if request.param == "sharded":
        return make_engine(shards=3, serving_workers=2)
    return make_engine()


UNKNOWN = "Zed"
OFF_ANCHOR = "Clinton"  # a surname node of the toy graph, not a user


class TestUnknownQueryNode:
    def test_query_raises(self, engine):
        with pytest.raises(QueryError, match="not in graph"):
            engine.query("family", UNKNOWN)

    def test_query_many_raises_before_ranking(self, engine):
        with pytest.raises(QueryError, match="Zed"):
            engine.query_many("family", ["Bob", UNKNOWN, "Alice"])

    def test_proximity_raises(self, engine):
        with pytest.raises(QueryError, match="not in graph"):
            engine.proximity("family", "Bob", UNKNOWN)
        with pytest.raises(QueryError, match="not in graph"):
            engine.proximity("family", UNKNOWN, "Bob")

    def test_explain_raises(self, engine):
        with pytest.raises(QueryError, match="not in graph"):
            engine.explain("family", UNKNOWN, "Alice")
        with pytest.raises(QueryError, match="not in graph"):
            engine.explain("family", "Alice", UNKNOWN)


class TestOffAnchorQueryNode:
    def test_toy_graph_has_the_off_anchor_node(self, engine):
        assert engine.graph.node_type(OFF_ANCHOR) == "surname"

    def test_query_raises(self, engine):
        with pytest.raises(QueryError, match="anchored on 'user'"):
            engine.query("family", OFF_ANCHOR)

    def test_query_many_raises(self, engine):
        with pytest.raises(QueryError, match="anchored on 'user'"):
            engine.query_many("family", [OFF_ANCHOR])

    def test_proximity_raises(self, engine):
        with pytest.raises(QueryError, match="anchored on 'user'"):
            engine.proximity("family", "Bob", OFF_ANCHOR)

    def test_explain_raises(self, engine):
        with pytest.raises(QueryError, match="anchored on 'user'"):
            engine.explain("family", OFF_ANCHOR, "Bob")


class TestNegativeK:
    def test_query_negative_k_raises(self, engine):
        with pytest.raises(ValueError, match="k must be"):
            engine.query("family", "Bob", k=-1)

    def test_query_many_negative_k_raises(self, engine):
        with pytest.raises(ValueError, match="k must be"):
            engine.query_many("family", ["Bob"], k=-3)
        # even an empty batch must not swallow the bad budget
        with pytest.raises(ValueError, match="k must be"):
            engine.query_many("family", [], k=-1)

    def test_zero_k_still_returns_empty(self, engine):
        assert engine.query("family", "Bob", k=0) == []
        assert engine.query_many("family", ["Bob", "Kate"], k=0) == [[], []]


class TestErrorShape:
    def test_query_error_is_catchable_as_repro_error(self, engine):
        with pytest.raises(ReproError):
            engine.query("family", UNKNOWN)
        with pytest.raises(ValueError):  # and as the stdlib category
            engine.query("family", UNKNOWN)

    def test_valid_queries_still_serve(self, engine):
        ranking = engine.query("family", "Bob", k=3)
        assert ranking and ranking[0][0] == "Alice"

    def test_query_many_accepts_a_generator(self, engine):
        # validation iterates the batch before ranking; a generator
        # argument must not be silently exhausted into an empty result
        rankings = engine.query_many(
            "family", (q for q in ["Bob", "Kate"]), k=3
        )
        assert len(rankings) == 2
        assert rankings[0] == engine.query("family", "Bob", k=3)

    def test_validate_helper_accepts_anchor_nodes(self, engine):
        validate_query_node(engine.graph, "Bob", "user")

    def test_messages_name_the_role(self, engine):
        with pytest.raises(QueryError, match="query node"):
            engine.query("family", UNKNOWN)
        with pytest.raises(QueryError, match="pair node"):
            engine.proximity("family", "Bob", UNKNOWN)
