"""Smoke tests: every shipped example must run to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

from tests.conftest import subprocess_env

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_complete():
    """The README promises at least these runnable examples."""
    assert {
        "quickstart.py",
        "friend_circles.py",
        "citation_contexts.py",
        "engine_shootout.py",
        "search_service.py",
        "reaction_networks.py",
    } <= set(EXAMPLES)


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs(example):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / example)],
        capture_output=True,
        text=True,
        timeout=600,
        env=subprocess_env(),
    )
    assert result.returncode == 0, f"{example} failed:\n{result.stderr[-2000:]}"
    assert result.stdout.strip(), f"{example} produced no output"


def test_quickstart_produces_expected_rankings():
    """The quickstart must reproduce Fig. 1(b)'s answers."""
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
        env=subprocess_env(),
    )
    out = result.stdout
    # classmate: Kate -> Jay; family: Bob -> Alice
    classmate_block = out.split("=== classmate ===")[1].split("===")[0]
    assert "Kate -> Jay" in classmate_block
    family_block = out.split("=== family ===")[1]
    assert "Bob -> Alice" in family_block
