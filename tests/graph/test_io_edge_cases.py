"""Edge-case IO tests: exotic node ids and round-trip fidelity."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.io import from_json, to_json
from repro.graph.typed_graph import TypedGraph
from tests.conftest import random_typed_graph


class TestExoticNodeIds:
    def test_integer_ids_round_trip(self):
        g = TypedGraph()
        g.add_node(1, "user")
        g.add_node(2, "user")
        g.add_node(10, "school")
        g.add_edge(1, 10)
        g.add_edge(2, 10)
        restored = from_json(to_json(g))
        assert restored == g

    def test_tuple_ids_round_trip_as_tuples(self):
        g = TypedGraph()
        g.add_node(("user", 1), "user")
        g.add_node(("school", 1), "school")
        g.add_edge(("user", 1), ("school", 1))
        restored = from_json(to_json(g))
        assert ("user", 1) in restored
        assert restored.has_edge(("user", 1), ("school", 1))

    def test_unicode_ids(self):
        g = TypedGraph()
        g.add_node("Алиса", "user")
        g.add_node("Köln", "location")
        g.add_edge("Алиса", "Köln")
        assert from_json(to_json(g)) == g


class TestRoundTripProperty:
    @given(st.integers(0, 3000))
    @settings(max_examples=25, deadline=None)
    def test_random_graphs_round_trip(self, seed):
        g = random_typed_graph(seed, num_users=8, num_attrs_per_type=3)
        restored = from_json(to_json(g))
        assert restored == g
        assert restored.types == g.types
        for node in g.nodes():
            assert restored.degree(node) == g.degree(node)

    @given(st.integers(0, 3000))
    @settings(max_examples=15, deadline=None)
    def test_serialisation_deterministic(self, seed):
        g = random_typed_graph(seed, num_users=6, num_attrs_per_type=2)
        assert to_json(g) == to_json(g.copy())
