"""Tests for GraphSchema, GraphBuilder and graph serialisation."""

import pytest

from repro.exceptions import GraphError, SchemaError
from repro.graph.builder import GraphBuilder
from repro.graph.io import (
    from_json,
    from_networkx,
    from_tsv,
    load_json,
    save_json,
    to_json,
    to_networkx,
    to_tsv,
)
from repro.graph.schema import GraphSchema
from repro.graph.typed_graph import TypedGraph


@pytest.fixture
def schema() -> GraphSchema:
    return GraphSchema(
        types=["user", "school", "hobby"],
        edge_pairs=[("user", "school"), ("user", "hobby"), ("user", "user")],
    )


class TestSchema:
    def test_allows_edge_is_symmetric(self, schema):
        assert schema.allows_edge("user", "school")
        assert schema.allows_edge("school", "user")

    def test_disallowed_edge(self, schema):
        assert not schema.allows_edge("school", "hobby")

    def test_same_type_pair(self, schema):
        assert schema.allows_edge("user", "user")

    def test_empty_types_rejected(self):
        with pytest.raises(SchemaError):
            GraphSchema(types=[], edge_pairs=[])

    def test_unknown_type_in_pair_rejected(self):
        with pytest.raises(SchemaError):
            GraphSchema(types=["user"], edge_pairs=[("user", "ghost")])

    def test_validate_graph_accepts_conforming(self, schema):
        g = TypedGraph()
        g.add_node("a", "user")
        g.add_node("s", "school")
        g.add_edge("a", "s")
        schema.validate_graph(g)  # should not raise

    def test_validate_graph_rejects_bad_type(self, schema):
        g = TypedGraph()
        g.add_node("x", "alien")
        with pytest.raises(SchemaError):
            schema.validate_graph(g)

    def test_validate_graph_rejects_bad_edge(self, schema):
        g = TypedGraph()
        g.add_node("s", "school")
        g.add_node("h", "hobby")
        g.add_edge("s", "h")
        with pytest.raises(SchemaError):
            schema.validate_graph(g)

    def test_infer_round_trip(self, schema):
        g = TypedGraph()
        g.add_node("a", "user")
        g.add_node("s", "school")
        g.add_edge("a", "s")
        inferred = GraphSchema.infer(g)
        assert inferred.types == frozenset({"user", "school"})
        assert inferred.edge_pairs == frozenset({("school", "user")})

    def test_infer_empty_graph_raises(self):
        with pytest.raises(SchemaError):
            GraphSchema.infer(TypedGraph())

    def test_equality(self, schema):
        same = GraphSchema(
            types=["user", "school", "hobby"],
            edge_pairs=[("school", "user"), ("hobby", "user"), ("user", "user")],
        )
        assert schema == same


class TestBuilder:
    def test_fluent_chain(self):
        g = (
            GraphBuilder(name="b")
            .node("a", "user")
            .node("s", "school")
            .edge("a", "s")
            .build()
        )
        assert g.num_edges == 1
        assert g.name == "b"

    def test_attach_creates_attribute(self):
        builder = GraphBuilder()
        builder.node("a", "user").attach("a", "CS", "major")
        g = builder.build()
        assert g.node_type("CS") == "major"
        assert g.has_edge("a", "CS")

    def test_attach_reuses_attribute(self):
        builder = GraphBuilder()
        builder.node("a", "user").node("b", "user")
        builder.attach("a", "CS", "major").attach("b", "CS", "major")
        g = builder.build()
        assert g.count_type("major") == 1
        assert g.degree("CS") == 2

    def test_schema_enforced_on_node(self, schema):
        builder = GraphBuilder(schema=schema)
        with pytest.raises(SchemaError):
            builder.node("x", "alien")

    def test_schema_enforced_on_edge(self, schema):
        builder = GraphBuilder(schema=schema)
        builder.node("s", "school").node("h", "hobby")
        with pytest.raises(SchemaError):
            builder.edge("s", "h")

    def test_build_validates_live_mutations(self, schema):
        builder = GraphBuilder(schema=schema)
        builder.node("s", "school").node("h", "hobby")
        builder.graph.add_edge("s", "h")  # around the builder
        with pytest.raises(SchemaError):
            builder.build()


class TestJsonIO:
    def test_round_trip(self, toy_graph):
        text = to_json(toy_graph)
        restored = from_json(text)
        assert restored == toy_graph
        assert restored.name == "toy"

    def test_file_round_trip(self, toy_graph, tmp_path):
        path = tmp_path / "g.json"
        save_json(toy_graph, path)
        assert load_json(path) == toy_graph

    def test_invalid_json_raises(self):
        with pytest.raises(GraphError):
            from_json("{not json")

    def test_missing_fields_raise(self):
        with pytest.raises(GraphError):
            from_json('{"nodes": []}')

    def test_malformed_node_entry(self):
        with pytest.raises(GraphError):
            from_json('{"nodes": [["a"]], "edges": []}')

    def test_malformed_edge_entry(self):
        with pytest.raises(GraphError):
            from_json('{"nodes": [["a", "user"]], "edges": [["a"]]}')


class TestTsvIO:
    def test_round_trip(self, toy_graph):
        assert from_tsv(to_tsv(toy_graph)) == toy_graph

    def test_non_string_ids_rejected(self):
        g = TypedGraph()
        g.add_node(1, "user")
        with pytest.raises(GraphError):
            to_tsv(g)

    def test_line_before_section_raises(self):
        with pytest.raises(GraphError):
            from_tsv("a\tuser\n")

    def test_malformed_line_raises(self):
        with pytest.raises(GraphError):
            from_tsv("#nodes\na user with spaces no tab\n")


class TestNetworkxIO:
    def test_round_trip(self, toy_graph):
        assert from_networkx(to_networkx(toy_graph)) == toy_graph

    def test_type_attribute_preserved(self, toy_graph):
        nxg = to_networkx(toy_graph)
        assert nxg.nodes["Alice"]["type"] == "user"

    def test_missing_type_attribute_raises(self):
        import networkx as nx

        nxg = nx.Graph()
        nxg.add_node("a")
        with pytest.raises(GraphError):
            from_networkx(nxg)

    def test_self_loops_dropped(self):
        import networkx as nx

        nxg = nx.Graph()
        nxg.add_node("a", type="user")
        nxg.add_edge("a", "a")
        g = from_networkx(nxg)
        assert g.num_edges == 0
