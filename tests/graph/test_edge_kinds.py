"""Edge kinds (label x direction) at the graph layer.

Storage semantics, signatures under argument swap, conflict detection,
schema rules, CSR signature slices, and io round-trips — plus the
plain-graph guarantee: a graph without kinds behaves and serialises
exactly as before the kind axis existed.
"""

import json

import pytest

from repro.exceptions import EdgeError, SchemaError
from repro.graph.csr import CSRGraph
from repro.graph.io import from_json, from_tsv, to_json, to_tsv
from repro.graph.schema import GraphSchema
from repro.graph.typed_graph import PLAIN, EdgeKind, TypedGraph

IN = EdgeKind("in", True)
OUT = EdgeKind("out", True)
TAG = EdgeKind("tag", False)


def kinded_graph() -> TypedGraph:
    g = TypedGraph(name="k")
    for m in ("m1", "m2", "m3"):
        g.add_node(m, "mol")
    g.add_node("r1", "rxn")
    g.add_edge("m1", "r1", IN)
    g.add_edge("r1", "m2", OUT)
    g.add_edge("m1", "m3", TAG)
    g.add_edge("m2", "m3")
    return g


class TestStorage:
    def test_plain_graph_has_no_kinds(self):
        g = TypedGraph()
        g.add_node("a", "t")
        g.add_node("b", "t")
        g.add_edge("a", "b")
        assert not g.has_kinds
        assert g.edge_kind("a", "b") == PLAIN
        assert g.edge_signature("a", "b") == ("", 0)

    def test_kinds_stored_and_reported(self):
        g = kinded_graph()
        assert g.has_kinds
        assert g.edge_kind("m1", "r1") == IN
        assert g.edge_kind("r1", "m1") == IN  # kind is orientation-free
        assert g.edge_kind("m1", "m3") == TAG
        assert g.edge_kind("m2", "m3") == PLAIN

    def test_signature_flips_under_argument_swap(self):
        g = kinded_graph()
        assert g.edge_signature("m1", "r1") == ("in", 1)
        assert g.edge_signature("r1", "m1") == ("in", -1)
        assert g.edge_signature("r1", "m2") == ("out", 1)
        assert g.edge_signature("m2", "r1") == ("out", -1)
        assert g.edge_signature("m1", "m3") == ("tag", 0)
        assert g.edge_signature("m3", "m1") == ("tag", 0)

    def test_conflicting_kind_raises(self):
        g = kinded_graph()
        with pytest.raises(EdgeError, match="conflicting"):
            g.add_edge("m1", "r1", OUT)
        with pytest.raises(EdgeError, match="conflicting"):
            g.add_edge("r1", "m1", IN)  # flipped orientation conflicts too
        with pytest.raises(EdgeError, match="conflicting"):
            g.add_edge("m2", "m3", TAG)  # plain edge cannot gain a label

    def test_readding_same_kind_is_noop(self):
        g = kinded_graph()
        before = g.num_edges
        g.add_edge("m1", "r1", IN)
        g.add_edge("m1", "m3", TAG)
        g.add_edge("m3", "m1", TAG)  # undirected: order-free
        assert g.num_edges == before

    def test_edges_with_kinds_yields_source_first(self):
        g = kinded_graph()
        entries = {(u, v): kind for u, v, kind in g.edges_with_kinds()}
        assert entries[("m1", "r1")] == IN
        assert entries[("r1", "m2")] == OUT

    def test_observed_edge_rules(self):
        g = kinded_graph()
        assert g.observed_edge_rules() == frozenset(
            {
                ("mol", "rxn", IN),
                ("rxn", "mol", OUT),
                ("mol", "mol", TAG),
                ("mol", "mol", PLAIN),
            }
        )

    def test_removal_forgets_the_kind(self):
        g = kinded_graph()
        g.remove_edge("m1", "r1")
        g.add_edge("m1", "r1", OUT)  # no conflict after removal
        assert g.edge_kind("m1", "r1") == OUT
        g.remove_node("r1")
        assert g.has_kinds  # tag edge remains
        g.remove_edge("m1", "m3")
        assert not g.has_kinds

    def test_copy_and_subgraph_preserve_kinds(self):
        g = kinded_graph()
        assert g.copy() == g
        sub = g.induced_subgraph(["m1", "r1", "m2"])
        assert sub.edge_signature("m1", "r1") == ("in", 1)
        assert sub.edge_signature("r1", "m2") == ("out", 1)


class TestSchema:
    def test_directed_rules_are_oriented(self):
        schema = GraphSchema(
            types=("mol", "rxn"), edge_rules=[("mol", "rxn", IN)]
        )
        assert schema.edge_kinds
        assert schema.allows_edge("mol", "rxn", IN)
        assert not schema.allows_edge("rxn", "mol", IN)
        assert not schema.allows_edge("mol", "rxn", OUT)
        assert not schema.allows_edge("mol", "rxn")

    def test_undirected_rules_normalise(self):
        schema = GraphSchema(types=("a", "b"), edge_rules=[("b", "a", TAG)])
        assert schema.allows_edge("a", "b", TAG)
        assert schema.allows_edge("b", "a", TAG)

    def test_plain_pairs_keep_edge_kinds_off(self):
        schema = GraphSchema(types=("a", "b"), edge_pairs=[("a", "b")])
        assert not schema.edge_kinds

    def test_validate_rejects_unruled_kind(self):
        schema = GraphSchema(
            types=("mol", "rxn"), edge_rules=[("mol", "rxn", IN)]
        )
        g = TypedGraph()
        g.add_node("m", "mol")
        g.add_node("r", "rxn")
        g.add_edge("r", "m", OUT)
        with pytest.raises(SchemaError):
            schema.validate_graph(g)

    def test_infer_round_trips_rules(self):
        g = kinded_graph()
        schema = GraphSchema.infer(g)
        assert schema.edge_kinds
        schema.validate_graph(g)
        assert schema.edge_rules == frozenset(
            {
                ("mol", "rxn", IN),
                ("rxn", "mol", OUT),
                ("mol", "mol", TAG),
                ("mol", "mol", PLAIN),
            }
        )


class TestIO:
    def test_json_round_trip(self):
        g = kinded_graph()
        assert from_json(to_json(g)) == g

    def test_tsv_round_trip(self):
        g = kinded_graph()
        assert from_tsv(to_tsv(g)) == g

    def test_plain_json_has_no_kind_fields(self):
        g = TypedGraph()
        g.add_node("a", "t")
        g.add_node("b", "t")
        g.add_edge("a", "b")
        doc = json.loads(to_json(g))
        assert doc["edges"] == [["a", "b"]]

    def test_kinded_edges_serialise_source_first(self):
        g = kinded_graph()
        doc = json.loads(to_json(g))
        assert ["m1", "r1", "in", 1] in doc["edges"]
        assert ["r1", "m2", "out", 1] in doc["edges"]
        assert ["m1", "m3", "tag", 0] in doc["edges"]
        assert ["m2", "m3"] in doc["edges"]


class TestCSR:
    def test_sig_slices_partition_typed_neighbors(self):
        g = kinded_graph()
        csr = CSRGraph.from_graph(g)
        assert csr.has_kinds
        for node in g.nodes():
            nid = csr.id_of[node]
            for code, type_name in enumerate(csr.type_names):
                typed = set(csr.typed_neighbors(nid, code).tolist())
                by_sig = set()
                for sig in range(csr.num_sigs):
                    by_sig |= set(
                        csr.typed_neighbors_sig(nid, code, sig).tolist()
                    )
                assert by_sig == typed, (node, type_name)

    def test_sig_ids_match_edge_signatures(self):
        g = kinded_graph()
        csr = CSRGraph.from_graph(g)
        m1, r1 = csr.id_of["m1"], csr.id_of["r1"]
        sig = csr.sig_id(*g.edge_signature("m1", "r1"))
        assert sig is not None
        code = csr.type_id("rxn")
        assert r1 in csr.typed_neighbors_sig(m1, code, sig).tolist()
        # the reverse direction lives in the flipped signature slice
        back = csr.sig_id(*g.edge_signature("r1", "m1"))
        code_mol = csr.type_id("mol")
        assert m1 in csr.typed_neighbors_sig(r1, code_mol, back).tolist()

    def test_plain_graph_csr_has_no_sig_layer(self):
        g = TypedGraph()
        g.add_node("a", "t")
        g.add_node("b", "t")
        g.add_edge("a", "b")
        csr = CSRGraph.from_graph(g)
        assert not csr.has_kinds
