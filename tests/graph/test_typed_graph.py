"""Unit tests for the TypedGraph substrate."""

import pytest

from repro.exceptions import (
    DuplicateNodeError,
    EdgeError,
    NodeNotFoundError,
    SchemaError,
)
from repro.graph.typed_graph import TypedGraph, edge_key


@pytest.fixture
def small() -> TypedGraph:
    g = TypedGraph(name="small")
    g.add_node("a", "user")
    g.add_node("b", "user")
    g.add_node("s", "school")
    g.add_edge("a", "s")
    g.add_edge("b", "s")
    return g


class TestConstruction:
    def test_counts(self, small):
        assert small.num_nodes == 3
        assert small.num_edges == 2

    def test_contains_and_len(self, small):
        assert "a" in small
        assert "zzz" not in small
        assert len(small) == 3

    def test_readd_same_type_is_noop(self, small):
        small.add_node("a", "user")
        assert small.num_nodes == 3

    def test_readd_different_type_raises(self, small):
        with pytest.raises(DuplicateNodeError):
            small.add_node("a", "school")

    def test_self_loop_rejected(self, small):
        with pytest.raises(EdgeError):
            small.add_edge("a", "a")

    def test_edge_to_missing_node_raises(self, small):
        with pytest.raises(NodeNotFoundError):
            small.add_edge("a", "missing")

    def test_duplicate_edge_is_noop(self, small):
        small.add_edge("a", "s")
        assert small.num_edges == 2

    def test_empty_type_rejected(self):
        g = TypedGraph()
        with pytest.raises(SchemaError):
            g.add_node("x", "")

    def test_non_string_type_rejected(self):
        g = TypedGraph()
        with pytest.raises(SchemaError):
            g.add_node("x", 7)

    def test_invalid_type_is_not_an_edge_error(self):
        # a node-schema problem must not masquerade as an edge problem
        g = TypedGraph()
        with pytest.raises(SchemaError) as excinfo:
            g.add_node("x", None)
        assert not isinstance(excinfo.value, EdgeError)


class TestQueries:
    def test_node_type(self, small):
        assert small.node_type("s") == "school"
        with pytest.raises(NodeNotFoundError):
            small.node_type("nope")

    def test_neighbors(self, small):
        assert small.neighbors("s") == frozenset({"a", "b"})

    def test_neighbors_of_type(self, small):
        assert small.neighbors_of_type("s", "user") == frozenset({"a", "b"})
        assert small.neighbors_of_type("s", "hobby") == frozenset()

    def test_degree(self, small):
        assert small.degree("s") == 2
        assert small.typed_degree("a", "school") == 1
        assert small.typed_degree("a", "hobby") == 0

    def test_types(self, small):
        assert small.types == frozenset({"user", "school"})

    def test_nodes_of_type(self, small):
        assert small.nodes_of_type("user") == frozenset({"a", "b"})
        assert small.nodes_of_type("unknown") == frozenset()

    def test_count_type(self, small):
        assert small.count_type("user") == 2

    def test_has_edge(self, small):
        assert small.has_edge("a", "s")
        assert small.has_edge("s", "a")
        assert not small.has_edge("a", "b")

    def test_edges_enumerated_once(self, small):
        edges = list(small.edges())
        assert len(edges) == 2
        assert len(set(edges)) == 2

    def test_edge_type_pair_sorted(self, small):
        assert small.edge_type_pair("s", "a") == ("school", "user")

    def test_observed_type_pairs(self, small):
        assert small.observed_type_pairs() == frozenset({("school", "user")})


class TestMutation:
    def test_remove_edge(self, small):
        small.remove_edge("a", "s")
        assert not small.has_edge("a", "s")
        assert small.num_edges == 1
        assert small.neighbors_of_type("s", "user") == frozenset({"b"})

    def test_remove_missing_edge_raises(self, small):
        with pytest.raises(EdgeError):
            small.remove_edge("a", "b")

    def test_remove_node_cascades(self, small):
        small.remove_node("s")
        assert "s" not in small
        assert small.num_edges == 0
        assert small.neighbors("a") == frozenset()

    def test_remove_last_node_of_type_clears_type(self, small):
        small.remove_node("s")
        assert small.types == frozenset({"user"})

    def test_remove_missing_node_raises(self, small):
        with pytest.raises(NodeNotFoundError):
            small.remove_node("nope")

    def test_remove_edge_prunes_empty_type_bucket(self, small):
        small.remove_edge("a", "s")
        small.remove_edge("b", "s")
        # no phantom neighbour types once the last typed neighbour is gone
        assert "user" not in small.typed_adjacency("s")
        assert "school" not in small.typed_adjacency("a")
        assert small.neighbors_of_type("s", "user") == frozenset()

    def test_remove_edge_keeps_nonempty_type_bucket(self, small):
        small.remove_edge("a", "s")
        assert small.typed_adjacency("s")["user"] == {"b"}

    def test_remove_node_prunes_neighbor_buckets(self, small):
        small.remove_node("s")
        assert "school" not in small.typed_adjacency("a")
        assert "school" not in small.typed_adjacency("b")

    def test_mixed_type_edge_key_ordering_under_removal(self):
        # node ids of mixed, non-comparable Python types still remove
        # cleanly: the canonical edge key is repr-ordered either way
        g = TypedGraph()
        g.add_node(("u", 1), "user")
        g.add_node("s0", "school")
        g.add_edge("s0", ("u", 1))
        assert edge_key(("u", 1), "s0") == edge_key("s0", ("u", 1))
        g.remove_edge(("u", 1), "s0")
        assert g.num_edges == 0
        assert "user" not in g.typed_adjacency("s0")
        assert list(g.edges()) == []


class TestVersionCounter:
    def test_new_graph_starts_at_zero(self):
        assert TypedGraph().version == 0

    def test_every_effective_mutation_bumps(self, small):
        version = small.version
        small.add_node("c", "user")
        assert small.version == version + 1
        small.add_edge("c", "s")
        assert small.version == version + 2
        small.remove_edge("c", "s")
        assert small.version == version + 3
        small.remove_node("c")
        assert small.version == version + 4

    def test_noop_mutations_do_not_bump(self, small):
        version = small.version
        small.add_node("a", "user")  # re-add, same type
        small.add_edge("a", "s")  # edge already present
        assert small.version == version

    def test_failed_mutations_do_not_bump(self, small):
        version = small.version
        with pytest.raises(EdgeError):
            small.add_edge("a", "a")
        with pytest.raises(NodeNotFoundError):
            small.remove_node("ghost")
        with pytest.raises(SchemaError):
            small.add_node("x", "")
        assert small.version == version

    def test_remove_node_with_edges_bumps_per_edge_and_node(self, small):
        version = small.version
        small.remove_node("s")  # cascades through two edge removals
        assert small.version == version + 3


class TestDerived:
    def test_induced_subgraph(self, small):
        sub = small.induced_subgraph(["a", "s"])
        assert sub.num_nodes == 2
        assert sub.num_edges == 1
        assert sub.has_edge("a", "s")

    def test_induced_subgraph_drops_outside_edges(self, small):
        sub = small.induced_subgraph(["a", "b"])
        assert sub.num_edges == 0

    def test_copy_is_independent(self, small):
        dup = small.copy()
        dup.remove_node("s")
        assert "s" in small
        assert small.num_edges == 2

    def test_equality(self, small):
        assert small == small.copy()
        other = small.copy()
        other.remove_edge("a", "s")
        assert small != other

    def test_repr_mentions_counts(self, small):
        assert "3 nodes" in repr(small)


class TestEdgeKey:
    def test_sorted_for_comparable(self):
        assert edge_key(2, 1) == (1, 2)
        assert edge_key("b", "a") == ("a", "b")

    def test_mixed_types_deterministic(self):
        k1 = edge_key("a", 1)
        k2 = edge_key(1, "a")
        assert k1 == k2

    def test_typed_adjacency_is_live_view(self, small):
        view = small.typed_adjacency("s")
        assert view["user"] == {"a", "b"}
        small.add_node("c", "user")
        small.add_edge("c", "s")
        assert view["user"] == {"a", "b", "c"}
