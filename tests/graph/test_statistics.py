"""Tests for graph statistics (Table II support)."""

from repro.graph.statistics import degree_histogram, graph_statistics
from repro.graph.typed_graph import TypedGraph


class TestGraphStatistics:
    def test_toy_counts(self, toy_graph):
        stats = graph_statistics(toy_graph)
        assert stats.num_nodes == toy_graph.num_nodes
        assert stats.num_edges == toy_graph.num_edges
        assert stats.num_types == 7  # user + 6 attribute types in Fig. 1
        assert stats.nodes_per_type["user"] == 5

    def test_mean_degree(self, toy_graph):
        stats = graph_statistics(toy_graph)
        expected = 2 * toy_graph.num_edges / toy_graph.num_nodes
        assert abs(stats.mean_degree - expected) < 1e-9

    def test_empty_graph(self):
        stats = graph_statistics(TypedGraph(name="empty"))
        assert stats.num_nodes == 0
        assert stats.num_edges == 0
        assert stats.mean_degree == 0.0

    def test_as_row_has_table2_columns(self, toy_graph):
        row = graph_statistics(toy_graph).as_row()
        for column in ("#Nodes", "#Edges", "#Types"):
            assert column in row


class TestDegreeHistogram:
    def test_total_matches_node_count(self, toy_graph):
        hist = degree_histogram(toy_graph)
        assert sum(hist.values()) == toy_graph.num_nodes

    def test_restricted_to_type(self, toy_graph):
        hist = degree_histogram(toy_graph, node_type="user")
        assert sum(hist.values()) == 5

    def test_sorted_keys(self, toy_graph):
        keys = list(degree_histogram(toy_graph).keys())
        assert keys == sorted(keys)
