"""CSRGraph layout correctness and cache-invalidation properties.

The compiled matcher trusts the CSR view completely, so these tests pin
(1) that the arrays encode exactly the TypedGraph they were built from,
(2) that the cached view rebuilds precisely when the graph's mutation
version moves — including through ``apply_updates`` edit batches — and
never serves stale adjacency, and (3) that pickling round-trips the
compact array form the parallel workers receive.
"""

from __future__ import annotations

import pickle
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph, csr_view
from repro.graph.typed_graph import TypedGraph
from tests.conftest import random_typed_graph

SEEDS = st.integers(min_value=0, max_value=10_000)


def assert_csr_matches_graph(csr: CSRGraph, graph: TypedGraph) -> None:
    """The CSR view must encode exactly the graph's nodes, types, edges."""
    assert csr.num_nodes == graph.num_nodes
    assert set(csr.node_ids) == set(graph.nodes())
    assert csr.version == graph.version
    id_of = csr.id_of
    # type partitioning: every node's dense id falls inside its type range
    for name in graph.types:
        code = csr.type_id(name)
        lo, hi = csr.type_range(code)
        assert {csr.node_ids[i] for i in range(lo, hi)} == set(
            graph.nodes_of_type(name)
        )
    for node in graph.nodes():
        dense = id_of[node]
        row = csr.neighbors(dense)
        assert list(row) == sorted(row), "adjacency rows must be sorted"
        assert {csr.node_ids[v] for v in row} == set(graph.neighbors(node))
        # typed slices and profile row agree with the typed adjacency
        for name in graph.types:
            code = csr.type_id(name)
            typed = csr.typed_neighbors(dense, code)
            assert {csr.node_ids[v] for v in typed} == set(
                graph.neighbors_of_type(node, name)
            )
            assert csr.profiles[dense, code] == graph.typed_degree(node, name)


class TestLayout:
    @given(SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_arrays_encode_the_graph(self, seed):
        graph = random_typed_graph(seed, num_users=8, num_attrs_per_type=3)
        assert_csr_matches_graph(CSRGraph.from_graph(graph), graph)

    def test_empty_graph(self):
        csr = CSRGraph.from_graph(TypedGraph())
        assert csr.num_nodes == 0
        assert csr.num_types == 0

    def test_cardinalities_match_graph_statistics(self, toy_graph):
        from repro.matching.ordering import GraphCardinalities

        reference = GraphCardinalities(toy_graph)
        stats = CSRGraph.from_graph(toy_graph).cardinalities()
        types = sorted(toy_graph.types) + ["ghost"]
        for a in types:
            assert stats.nodes_of(a) == reference.nodes_of(a)
            for b in types:
                assert stats.edges_of(a, b) == reference.edges_of(a, b)

    def test_has_edge(self, toy_graph):
        csr = CSRGraph.from_graph(toy_graph)
        id_of = csr.id_of
        assert csr.has_edge(id_of["Kate"], id_of["456 White St"])
        assert not csr.has_edge(id_of["Kate"], id_of["Bob"])

    def test_pickle_roundtrip_rebuilds_id_map(self, toy_graph):
        csr = CSRGraph.from_graph(toy_graph)
        clone = pickle.loads(pickle.dumps(csr))
        assert clone.node_ids == csr.node_ids
        assert clone.id_of == csr.id_of  # rebuilt lazily on the far side
        assert_csr_matches_graph(clone, toy_graph)


class TestViewCache:
    def test_view_is_cached_until_mutation(self, toy_graph):
        first = csr_view(toy_graph)
        assert csr_view(toy_graph) is first  # same version -> same object
        toy_graph.add_node("Zoe", "user")
        second = csr_view(toy_graph)
        assert second is not first
        assert second.version == toy_graph.version
        assert csr_view(toy_graph) is second

    def test_noop_mutation_keeps_the_view(self, toy_graph):
        toy_graph.add_node("Zoe", "user")
        first = csr_view(toy_graph)
        toy_graph.add_node("Zoe", "user")  # no-op: version unchanged
        assert csr_view(toy_graph) is first

    @given(SEEDS)
    @settings(max_examples=15, deadline=None)
    def test_view_tracks_random_direct_mutations(self, seed):
        rng = random.Random(seed)
        graph = random_typed_graph(seed, num_users=6, num_attrs_per_type=2)
        for step in range(8):
            edges = sorted(graph.edges(), key=repr)
            choice = rng.randrange(3)
            if choice == 0 and edges:
                graph.remove_edge(*rng.choice(edges))
            elif choice == 1:
                graph.add_node(("extra", seed, step), "user")
            else:
                users = sorted(graph.nodes_of_type("user"), key=repr)
                hobbies = sorted(graph.nodes_of_type("hobby"), key=repr)
                if users and hobbies:
                    u, h = rng.choice(users), rng.choice(hobbies)
                    if not graph.has_edge(u, h):
                        graph.add_edge(u, h)
            assert_csr_matches_graph(csr_view(graph), graph)


class TestViewCacheUnderApplyUpdates:
    """The facade's edit path must never leave a stale CSR behind."""

    @given(SEEDS)
    @settings(max_examples=10, deadline=None)
    def test_view_rebuilds_through_apply_updates(self, seed):
        from repro.index.delta import GraphDelta, apply_delta
        from repro.index.vectors import build_vectors
        from repro.metagraph.catalog import MetagraphCatalog
        from repro.metagraph.metagraph import metapath

        rng = random.Random(seed)
        graph = random_typed_graph(seed, num_users=6, num_attrs_per_type=2)
        catalog = MetagraphCatalog(
            [metapath("user", "school", "user"), metapath("user", "hobby", "user")],
            anchor_type="user",
        )
        vectors, index = build_vectors(graph, catalog)
        before = csr_view(graph)
        edges = sorted(graph.edges(), key=repr)
        if not edges:
            return
        u, v = rng.choice(edges)
        apply_delta(
            graph,
            catalog,
            vectors,
            GraphDelta().remove_edge(u, v).add_edge(u, v),
            index=index,
        )
        after = csr_view(graph)
        assert after is not before  # two version bumps happened
        assert_csr_matches_graph(after, graph)
        # and the maintained counts still match a fresh compiled build
        fresh, _ = build_vectors(graph, catalog)
        assert vectors._node == fresh._node
        assert vectors._pair == fresh._pair

    def test_direct_mutation_never_serves_stale_adjacency(self, toy_graph):
        before = csr_view(toy_graph)
        toy_graph.remove_edge("Kate", "456 White St")
        after = csr_view(toy_graph)
        id_of = after.id_of
        row = after.neighbors(id_of["Kate"])
        assert id_of["456 White St"] not in set(row.tolist())
        assert before is not after
