"""Bench for Fig. 6-7: the five-algorithm accuracy comparison.

Regenerates one panel (linkedin/college) per benchmark round and checks
the headline shape: MGP is at least as accurate as every baseline at the
largest |Omega|, in both NDCG (Fig. 6) and MAP (Fig. 7).
"""

from repro.experiments import fig6_7


def test_bench_fig6_7_panel(benchmark, quick_config, runner):
    ndcg, map_ = benchmark(fig6_7.run_panel, runner, "linkedin", "college")

    assert set(ndcg) == set(fig6_7.ALGORITHMS)
    largest = max(x for x, _y in ndcg["MGP"])

    def at_largest(series):
        return {x: y for x, y in series}[largest]

    mgp_ndcg = at_largest(ndcg["MGP"])
    mgp_map = at_largest(map_["MGP"])
    assert 0.0 < mgp_ndcg <= 1.0
    # MGP beats the unsupervised control decisively (paper Fig. 6)
    assert mgp_ndcg > at_largest(ndcg["MGP-U"])
    assert mgp_map > at_largest(map_["MGP-U"])
    # and is within noise of or above every supervised baseline
    for name in ("MPP", "MGP-B", "SRW"):
        assert mgp_ndcg >= at_largest(ndcg[name]) - 0.05, name
