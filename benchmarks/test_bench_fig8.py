"""Bench for Fig. 8: dual-stage training impact.

Regenerates the |K| sweep and checks the headline shape: at the largest
swept |K|, relative accuracy is close to the all-metagraph anchor while
relative matching time stays clearly below 100%.
"""

from repro.experiments import fig8
from repro.learning.dual_stage import dual_stage_train


def _pct(cell: str) -> float:
    return float(cell.rstrip("%"))


def test_bench_fig8_rows(benchmark, quick_config, runner):
    rows = benchmark(fig8.run, quick_config, runner)
    by_class: dict[tuple, list[dict]] = {}
    for row in rows:
        by_class.setdefault((row["dataset"], row["class"]), []).append(row)
    assert len(by_class) == 4
    for key, class_rows in by_class.items():
        numeric = [r for r in class_rows if isinstance(r["|K|"], int) and r["|K|"] > 0]
        assert numeric, key
        # accuracy approaches the all-metagraphs anchor somewhere in the
        # sweep (at tiny scale the smallest |K| points can dip below the
        # seed anchor before jumping; see EXPERIMENTS.md)...
        assert max(_pct(r["NDCG incr"]) for r in numeric) >= 50.0, key
        # ...while matching time stays below the all-metagraphs anchor
        assert all(_pct(r["Time incr"]) <= 100.0 for r in numeric), key


def test_bench_dual_stage_end_to_end(benchmark, quick_config, runner):
    """Alg. 1 end to end (seed match + train + candidate match + train)."""
    phase = runner.offline("linkedin")
    from repro.experiments.common import splits_for, triplets_for_split

    dataset = phase.dataset
    split = splits_for(dataset, "college", 1, 0)[0]
    triplets = triplets_for_split(dataset, "college", split, 100, 0)

    def run_alg1():
        return dual_stage_train(
            dataset.graph, phase.catalog, triplets,
            num_candidates=3, trainer=runner.trainer(),
        )

    result = benchmark(run_alg1)
    assert len(result.matched_ids) < len(phase.catalog)
