"""Bench for Table III: time costs of the offline/online subproblems.

The shape to reproduce: matching dominates mining in the offline phase,
and online testing is orders of magnitude below both.
"""

from repro.experiments import table3
from repro.experiments.common import splits_for, triplets_for_split
from repro.learning.model import ProximityModel


def test_bench_table3_rows(benchmark, quick_config, runner):
    rows = benchmark(table3.run, quick_config, runner)
    assert len(rows) == 2
    for row in rows:
        assert row["Matching (s)"] >= 0
        assert float(row["Testing per query (s)"]) < 1.0


def test_bench_online_query(benchmark, quick_config, runner):
    """Online phase: one proximity query against precomputed vectors."""
    phase = runner.offline("linkedin")
    dataset = phase.dataset
    class_name = dataset.classes[0]
    split = splits_for(dataset, class_name, 1, 0)[0]
    triplets = triplets_for_split(dataset, class_name, split, 100, 0)
    weights = runner.trainer().train(triplets, phase.vectors)
    model = ProximityModel(weights, phase.vectors)
    query = split.test[0]

    ranking = benchmark(model.rank, query, dataset.universe, 10)
    assert len(ranking) == 10


def test_bench_training_1000_examples(benchmark, quick_config, runner):
    """Offline training subproblem with the paper's 1000 examples."""
    phase = runner.offline("linkedin")
    dataset = phase.dataset
    class_name = dataset.classes[0]
    split = splits_for(dataset, class_name, 1, 0)[0]
    triplets = triplets_for_split(dataset, class_name, split, 1000, 0)
    trainer = runner.trainer()

    weights = benchmark(trainer.train, triplets, phase.vectors)
    assert weights.max() > 0
