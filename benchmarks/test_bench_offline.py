"""Offline-phase benchmarks: parallel builds and snapshot cold starts.

Two acceptance floors guard the indexing subsystem on a synthetic
offline workload (a serving-scale graph with square patterns that are
expensive enough to shard):

- the 4-worker parallel build must beat the sequential reference by
  >= 2x (``REPRO_OFFLINE_SPEEDUP_FLOOR`` relaxes it on noisy shared
  runners; the test skips on single-core machines where a process pool
  cannot win by construction);
- cold-starting from a persisted snapshot must beat rebuilding the
  index from the graph by >= 6x (``REPRO_COLDSTART_SPEEDUP_FLOOR``;
  re-based from 10x when the compiled matching kernel made the rebuild
  itself several times cheaper).

Exactness of the parallel path is proven elsewhere (the determinism and
parallel suites); these tests only measure.
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.graph.typed_graph import TypedGraph
from repro.index.parallel import IndexBuildConfig, build_index
from repro.index.persist import load_index, save_index
from repro.index.vectors import build_vectors
from repro.metagraph.catalog import MetagraphCatalog
from repro.metagraph.metagraph import Metagraph, metapath

NUM_USERS = 400
GROUP_SIZE = 8
MEMBERSHIPS = 3  # groups each user joins per attribute type
PARALLEL_WORKERS = 4


def offline_graph(seed: int = 0) -> TypedGraph:
    """A serving-scale build workload: users in overlapping typed groups.

    Multiple memberships per type make the square patterns genuinely
    expensive to match (many partially-matching candidate pairs), which
    is what the parallel and cold-start floors need to measure.
    """
    rng = random.Random(seed)
    graph = TypedGraph(name="offline-bench")
    users = [f"u{i:03d}" for i in range(NUM_USERS)]
    for user in users:
        graph.add_node(user, "user")
    num_groups = NUM_USERS // GROUP_SIZE
    for attr_type in ("school", "employer", "hobby"):
        for g in range(num_groups):
            graph.add_node(f"{attr_type}{g}", attr_type)
        for user in users:
            for g in rng.sample(range(num_groups), MEMBERSHIPS):
                graph.add_edge(user, f"{attr_type}{g}")
    return graph


def offline_catalog() -> MetagraphCatalog:
    """Metapaths plus 4/5-node squares — the squares dominate matching
    cost and cross the sharding threshold.

    The double squares (two shared groups of one type) and the 5-node
    triple square are search-heavy but instance-light: they keep the
    rebuild genuinely expensive without inflating the snapshot the
    cold-start floor loads.
    """
    members = [
        metapath("user", t, "user", name=f"P-{t}")
        for t in ("school", "employer", "hobby")
    ]
    for a, b in (("school", "employer"), ("school", "hobby"), ("employer", "hobby")):
        members.append(
            Metagraph(
                ["user", a, b, "user"],
                [(0, 1), (0, 2), (3, 1), (3, 2)],
                name=f"S-{a}-{b}",
            )
        )
    for t in ("school", "employer", "hobby"):
        members.append(
            Metagraph(
                ["user", t, t, "user"],
                [(0, 1), (0, 2), (3, 1), (3, 2)],
                name=f"D-{t}",
            )
        )
    members.append(
        Metagraph(
            ["user", "school", "employer", "hobby", "user"],
            [(0, 1), (0, 2), (0, 3), (4, 1), (4, 2), (4, 3)],
            name="T-all",
        )
    )
    return MetagraphCatalog(members, anchor_type="user")


@pytest.fixture(scope="module")
def offline_workload(tmp_path_factory):
    """One timed sequential build + its snapshot, shared by every test."""
    graph = offline_graph()
    catalog = offline_catalog()
    start = time.perf_counter()
    vectors, index = build_vectors(graph, catalog)
    sequential_seconds = time.perf_counter() - start
    snapshot = tmp_path_factory.mktemp("offline") / "snapshot"
    save_index(snapshot, vectors, catalog, graph=graph, index=index)
    return {
        "graph": graph,
        "catalog": catalog,
        "vectors": vectors,
        "sequential_seconds": sequential_seconds,
        "snapshot": snapshot,
    }


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_snapshot_load(benchmark, offline_workload):
    benchmark(load_index, offline_workload["snapshot"])


def test_bench_snapshot_save(benchmark, offline_workload, tmp_path):
    workload = offline_workload
    benchmark(
        save_index,
        tmp_path / "resave",
        workload["vectors"],
        workload["catalog"],
        graph=workload["graph"],
    )


def test_parallel_build_speedup(offline_workload):
    """Acceptance floor: 4-worker offline build >= 2x over sequential.

    Shared runners are noisy, so the floor is tunable via
    REPRO_OFFLINE_SPEEDUP_FLOOR; on a single core a process pool can
    only add overhead, so the measurement is skipped outright.
    """
    cores = os.cpu_count() or 1
    if cores < 2:
        pytest.skip(f"parallel speedup needs >= 2 cores, have {cores}")
    floor = float(os.environ.get("REPRO_OFFLINE_SPEEDUP_FLOOR", "2"))
    workload = offline_workload
    parallel_seconds = _best_of(
        lambda: build_index(
            workload["graph"],
            workload["catalog"],
            IndexBuildConfig(workers=PARALLEL_WORKERS, min_partition_size=4),
        ),
        2,
    )
    speedup = workload["sequential_seconds"] / parallel_seconds
    assert speedup >= floor, (
        f"{PARALLEL_WORKERS}-worker build only {speedup:.2f}x faster "
        f"(floor {floor}x; sequential "
        f"{workload['sequential_seconds']:.2f} s, parallel "
        f"{parallel_seconds:.2f} s)"
    )


def test_cold_start_speedup(offline_workload):
    """Acceptance floor: snapshot load >= 6x faster than a full rebuild.

    Re-based from 10x when the compiled matching kernel (PR 4) cut the
    rebuild side of the ratio several-fold; the snapshot load side is
    bounded below by deserialising the counts themselves, so the old
    margin is no longer attainable on a count-heavy workload.
    """
    floor = float(os.environ.get("REPRO_COLDSTART_SPEEDUP_FLOOR", "6"))
    workload = offline_workload
    load_seconds = _best_of(lambda: load_index(workload["snapshot"]), 3)
    speedup = workload["sequential_seconds"] / load_seconds
    assert speedup >= floor, (
        f"snapshot cold start only {speedup:.1f}x faster than rebuild "
        f"(floor {floor}x; rebuild {workload['sequential_seconds']:.2f} s, "
        f"load {load_seconds * 1e3:.1f} ms)"
    )


def test_loaded_snapshot_serves_same_counts(offline_workload):
    """Cheap in-benchmark parity spot check on the workload graph."""
    workload = offline_workload
    loaded = load_index(workload["snapshot"], graph=workload["graph"])
    vectors = workload["vectors"]
    assert loaded.vectors.matched_ids == vectors.matched_ids
    probe = sorted(vectors.nodes_with_counts())[:5]
    for node in probe:
        assert loaded.vectors.partners(node) == vectors.partners(node)
