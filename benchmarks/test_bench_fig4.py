"""Bench for Fig. 4: learning the full weight vector and its sparsity.

The regenerated artefact is the ranked-weight curve; the shape to hold
is a long tail (few large weights, most below 0.1).
"""

import numpy as np

from repro.experiments import fig4


def test_bench_fig4_rows(benchmark, quick_config, runner):
    rows = benchmark(fig4.run, quick_config, runner)
    assert len(rows) == 4  # four (dataset, class) combinations
    for row in rows:
        # the long tail: weights below 0.1 outnumber weights above 0.9
        assert row["#w<0.1"] >= row["#w>0.9"]
        assert row["#w>0.5"] >= 1  # at least one characteristic metagraph


def test_bench_fig4_single_class_training(benchmark, quick_config, runner):
    weights = benchmark(
        fig4.train_full_weights, runner, "linkedin", "college", 200
    )
    ranked = np.sort(weights)[::-1]
    assert ranked[0] > ranked[-1]  # non-degenerate
