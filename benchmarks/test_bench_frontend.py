"""Query-frontend benchmark: coalesced, cached serving under Zipf load.

Real query traffic is skewed — a few hot anchors absorb most requests —
so the frontend's two optimisations compound: the LRU result cache
absorbs the repeats, and the batch coalescer merges the concurrent
misses into dynamic ``query_many`` batches.  This harness drives a
fixed-seed Zipf(1.2) workload from concurrent client threads through
:class:`~repro.serving.frontend.QueryFrontend` over the sharded tier
and measures sustained QPS and p99 latency.

``test_frontend_qps_floor`` enforces the throughput floor
(``REPRO_FRONTEND_QPS_FLOOR``, default 200 QPS; the GitHub Actions job
sets a lower one for shared runners).  The parity spot check pins the
whole stack to the direct ``query_many`` bits — caching and batching
change latency shape, never results.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np
import pytest

from repro import SemanticProximitySearch
from repro.learning.trainer import TrainerConfig
from repro.metagraph.catalog import MetagraphCatalog
from repro.metagraph.metagraph import metapath
from repro.serving import FrontendConfig, QueryFrontend
from benchmarks.test_bench_serving import TOP_K, _best_of, serving_graph

SHARDS = 4
ROUTER_WORKERS = 4
CLIENTS = 8
NUM_REQUESTS = 400
ZIPF_A = 1.2
WORKLOAD_SEED = 7


@pytest.fixture(scope="module")
def frontend_setup():
    graph = serving_graph()
    catalog = MetagraphCatalog(
        [
            metapath("user", t, "user", name=f"P-{t}")
            for t in ("school", "employer", "hobby")
        ],
        anchor_type="user",
    )
    engine = SemanticProximitySearch(
        graph,
        shards=SHARDS,
        serving_workers=ROUTER_WORKERS,
        trainer_config=TrainerConfig(restarts=1, max_iterations=50, seed=0),
    )
    engine.prepare(catalog=catalog)
    engine.fit(
        "circle",
        triplets=[("u000", "u001", "u010"), ("u002", "u003", "u020")],
    )
    users = sorted(engine.universe())
    # fixed-seed Zipf rank workload: rank r (1-hot) maps onto user r-1
    ranks = np.random.default_rng(WORKLOAD_SEED).zipf(ZIPF_A, NUM_REQUESTS)
    workload = [users[int(r - 1) % len(users)] for r in ranks]
    frontend = QueryFrontend(
        engine,
        config=FrontendConfig(
            max_batch=32, max_delay_ms=2.0, cache_size=4096,
            dispatch_workers=ROUTER_WORKERS,
        ),
    )
    # warm the serving tier (router build, shard dot caches) off-clock
    frontend.query("circle", workload[0], k=TOP_K)
    yield engine, frontend, workload
    frontend.close()
    engine.close()


def drive_workload(frontend, workload) -> dict:
    """All requests through CLIENTS concurrent threads; QPS and p99."""
    latencies: list[float] = []
    record_lock = threading.Lock()
    errors: list[BaseException] = []

    def client(requests: list) -> None:
        mine: list[float] = []
        try:
            for query in requests:
                start = time.perf_counter()
                frontend.query("circle", query, k=TOP_K)
                mine.append(time.perf_counter() - start)
        except BaseException as exc:  # noqa: BLE001 — surfaced below
            errors.append(exc)
        with record_lock:
            latencies.extend(mine)

    threads = [
        threading.Thread(target=client, args=(workload[i::CLIENTS],))
        for i in range(CLIENTS)
    ]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start
    assert not errors, errors
    assert len(latencies) == len(workload)
    return {
        "wall_s": wall,
        "qps": len(workload) / wall,
        "p50_ms": float(np.percentile(latencies, 50)) * 1e3,
        "p99_ms": float(np.percentile(latencies, 99)) * 1e3,
    }


def test_bench_frontend_zipf(benchmark, frontend_setup):
    _engine, frontend, workload = frontend_setup
    summary = benchmark(drive_workload, frontend, workload)
    benchmark.extra_info["qps"] = round(summary["qps"], 1)
    benchmark.extra_info["p50_ms"] = round(summary["p50_ms"], 3)
    benchmark.extra_info["p99_ms"] = round(summary["p99_ms"], 3)


def test_frontend_qps_floor(frontend_setup):
    """Acceptance floor: sustained Zipf throughput >= the QPS floor.

    Wall-clock throughput is noisy on shared runners, so the floor can
    be relaxed via REPRO_FRONTEND_QPS_FLOOR (the GitHub Actions job
    sets a lower one); the local tier-1 run enforces the full 200 QPS.
    """
    floor = float(os.environ.get("REPRO_FRONTEND_QPS_FLOOR", "200"))
    _engine, frontend, workload = frontend_setup
    summaries = []
    _best_of(lambda: summaries.append(drive_workload(frontend, workload)), 3)
    best = max(summaries, key=lambda s: s["qps"])
    assert best["qps"] >= floor, (
        f"frontend sustained only {best['qps']:.0f} QPS (floor {floor:.0f}; "
        f"p50 {best['p50_ms']:.2f} ms, p99 {best['p99_ms']:.2f} ms over "
        f"{len(workload)} Zipf({ZIPF_A}) requests from {CLIENTS} clients)"
    )


def test_frontend_parity_spot_check(frontend_setup):
    """The benchmarked stack serves the direct ``query_many`` bits."""
    engine, frontend, workload = frontend_setup
    sample = sorted(set(workload))[:16]
    direct = engine.query_many("circle", sample, k=TOP_K)
    assert [
        frontend.query("circle", query, k=TOP_K) for query in sample
    ] == direct


def test_frontend_cache_absorbs_zipf_repeats(frontend_setup):
    """Under Zipf skew the cache, not the backend, serves the repeats."""
    _engine, frontend, workload = frontend_setup
    drive_workload(frontend, workload)
    stats = frontend.stats()
    hits = stats["cache"]["hits"]
    submitted = stats["batching"]["submitted"]
    assert hits + submitted >= len(workload)
    # every distinct query dispatches at most once per snapshot: the
    # steady-state dispatch count is bounded by the key space, not the
    # request count
    assert submitted < hits, (
        f"cache absorbed too little: {hits} hits vs {submitted} dispatches"
    )
