"""Bench for Fig. 9: structural-vs-functional similarity correlation.

Regenerates the binned mean-FS rows and checks the foundation of the
candidate heuristic: the top SS bin's mean FS is at least the bottom
bin's (structurally similar metagraphs are functionally similar).
"""

from repro.experiments import fig9
from repro.metagraph.similarity import structural_similarity


def test_bench_fig9_rows(benchmark, quick_config, runner):
    rows = benchmark(fig9.run, quick_config, runner)
    assert len(rows) == 4
    for row in rows:
        bins = [v for k, v in row.items() if k.startswith("SS ") and v != "n/a"]
        assert bins, row
        populated = [v for v in bins if isinstance(v, float)]
        assert all(0.0 <= v <= 1.0 for v in populated)
        # correlation shape: highest populated bin >= lowest populated bin
        assert populated[-1] >= populated[0] - 0.35


def test_bench_pairwise_ss(benchmark, runner):
    """The kernel of Fig. 9: one all-pairs SS computation."""
    catalog = runner.offline("linkedin").catalog

    def all_pairs():
        total = 0.0
        for i in catalog.ids():
            for j in range(i + 1, len(catalog)):
                total += structural_similarity(catalog[i], catalog[j])
        return total

    total = benchmark(all_pairs)
    assert total > 0
