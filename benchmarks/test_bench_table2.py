"""Bench for Table II: dataset statistics and the full offline subproblem 1.

Two benchmarks: regenerating the Table II rows from cached artefacts,
and the end-to-end mining pipeline (generate + mine + filter) that
produces the #Metagraphs column.
"""

from repro.datasets import load_dataset
from repro.experiments import table2
from repro.mining import MinerConfig, mine_catalog


def test_bench_table2_rows(benchmark, quick_config, runner):
    rows = benchmark(table2.run, quick_config, runner)
    assert len(rows) == 2
    assert {row["dataset"] for row in rows} == {"linkedin", "facebook"}
    for row in rows:
        assert row["#Metagraphs"] > 0
        assert row["#Metapaths"] > 0


def test_bench_mining_pipeline(benchmark):
    dataset = load_dataset("linkedin", scale="tiny")

    def mine():
        return mine_catalog(
            dataset.graph, MinerConfig(max_nodes=4, min_support=3)
        )

    catalog = benchmark(mine)
    assert len(catalog) > 0
    # Table II shape: only 2-3% of metagraphs are metapaths in the paper;
    # at tiny scale the ratio is larger but paths must be a minority
    assert len(catalog.metapath_ids()) < len(catalog)
