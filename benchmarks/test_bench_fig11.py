"""Bench for Fig. 11: per-engine matching time.

This is the harness's only *true* pytest-benchmark comparison: each of
the five engines is benchmarked on the same workload (every catalog
metagraph of the largest size on the tiny LinkedIn graph), so
``--benchmark-only`` output reproduces the Fig. 11 bar group directly —
compare the five ``test_bench_engine[...]`` rows.
"""

import os
import statistics

import pytest

from repro.experiments import fig11
from repro.matching import ALL_ENGINES
from repro.matching.base import deduplicate_instances

ENGINES = ("SymISO", "SymISO-R", "BoostISO", "TurboISO", "QuickSI")


@pytest.fixture(scope="module")
def workload(runner):
    phase = runner.offline("linkedin")
    largest = max(m.size for m in phase.catalog)
    metagraphs = [m for m in phase.catalog if m.size == largest]
    return phase.dataset.graph, metagraphs


@pytest.mark.parametrize("engine_name", ENGINES)
def test_bench_engine(benchmark, workload, engine_name):
    graph, metagraphs = workload
    engine = ALL_ENGINES[engine_name]()

    def match_all():
        total = 0
        for metagraph in metagraphs:
            total += sum(
                1
                for _ in deduplicate_instances(
                    engine.find_embeddings(graph, metagraph)
                )
            )
        return total

    total = benchmark(match_all)
    assert total >= 0


def test_bench_fig11_rows(benchmark, quick_config, runner):
    rows = benchmark(fig11.run, quick_config, runner)
    assert rows
    for row in rows:
        assert row["engines agree"], row
    # shape: at the largest pattern size, SymISO beats the non-symmetric
    # engines (the paper's 52% average gap grows with |V_M|).  The
    # comparison uses per-metagraph best-of-N medians — single means
    # flake on small patterns where one scheduler hiccup dominates —
    # and the margin is tunable for noisy shared runners.
    margin = float(os.environ.get("REPRO_FIG11_MARGIN", "1.25"))
    largest = max(row["|V_M|"] for row in rows)
    for row in rows:
        if row["|V_M|"] != largest:
            continue
        per_mg = row["_per_metagraph_ms"]
        symiso = statistics.median(per_mg["SymISO"])
        baselines = min(
            statistics.median(per_mg[name])
            for name in ("BoostISO", "TurboISO", "QuickSI")
        )
        assert symiso <= baselines * margin, (
            f"SymISO median {symiso:.2f} ms vs best baseline median "
            f"{baselines:.2f} ms (margin {margin}x): {row}"
        )
