"""Bench for Fig. 10: candidate heuristic (CH) vs reversed order (RCH).

Regenerates the sweep and checks the shape: averaged over the panels and
|K| points, CH accuracy is at least RCH accuracy (the heuristic ordering
is meaningful).
"""

from repro.experiments import fig10


def test_bench_fig10_rows(benchmark, quick_config, runner):
    rows = benchmark(fig10.run, quick_config, runner)
    assert rows
    ch = [row["CH NDCG"] for row in rows]
    rch = [row["RCH NDCG"] for row in rows]
    assert sum(ch) / len(ch) >= sum(rch) / len(rch) - 1e-9
    # CH strictly wins somewhere (at tiny scale some panels saturate)
    assert any(c > r for c, r in zip(ch, rch)) or ch == rch
