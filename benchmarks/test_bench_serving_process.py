"""Process-worker serving benchmark: supervised shard workers vs scalar.

The process backend pays everything the thread backend does not: JSON
framing, a Unix-socket round trip per shard group, and supervisor
bookkeeping.  Two floors keep that overhead honest:

- ``test_process_batch_speedup`` — the process-worker router (2 shards,
  2 replicas each) must still beat the scalar reference path on the
  batched workload by ``REPRO_PROCESS_SERVING_FLOOR`` (default 2x):
  crossing the process boundary must not give back the compiled
  kernel's win;
- ``test_killed_worker_loses_no_queries`` — killing one worker while
  the benchmark workload runs loses no queries and changes no bits:
  the surviving replica serves the identical rankings.

Both compare against the same serving-scale graph as
``test_bench_serving.py`` (600 users, batch of 64, top-10).
"""

from __future__ import annotations

import os

import pytest

from repro.index.persist import save_index
from repro.index.vectors import build_vectors
from repro.learning.model import SortedUniverse, uniform_model
from repro.metagraph.catalog import MetagraphCatalog
from repro.metagraph.metagraph import metapath
from repro.serving import QueryRouter, ShardedVectors, SubprocessBackend
from benchmarks.test_bench_serving import (
    BATCH,
    TOP_K,
    _best_of,
    _rank_batch,
    serving_graph,
)

SHARDS = 2
REPLICAS = 2
ROUTER_WORKERS = 2


@pytest.fixture(scope="module")
def process_setup(tmp_path_factory):
    graph = serving_graph()
    catalog = MetagraphCatalog(
        [
            metapath("user", t, "user", name=f"P-{t}")
            for t in ("school", "employer", "hobby")
        ],
        anchor_type="user",
    )
    vectors, index = build_vectors(graph, catalog)
    scalar = uniform_model(vectors, name="scalar")
    model = uniform_model(vectors, name="process").compile()
    universe = SortedUniverse(graph.nodes_of_type("user"))
    queries = list(universe)[:BATCH]
    snapshot = tmp_path_factory.mktemp("process-serving") / "snapshot"
    save_index(snapshot, vectors, catalog, graph=graph, index=index)
    backend = SubprocessBackend(snapshot, SHARDS, replicas=REPLICAS)
    router = QueryRouter(backend, workers=ROUTER_WORKERS)
    # warm every worker's dot/universe caches and the scalar dense path
    router.rank_many(model, queries, universe=universe, k=TOP_K)
    for query in queries:
        scalar.rank(query, universe=universe, k=TOP_K)
    yield scalar, model, universe, queries, backend, router
    router.close()


def test_bench_process_batch(benchmark, process_setup):
    _scalar, model, universe, queries, _backend, router = process_setup
    benchmark(router.rank_many, model, queries, universe=universe, k=TOP_K)


def test_process_batch_speedup(process_setup):
    """Acceptance floor: process-worker batched serving >= 2x over scalar.

    Wall-clock ratios are noisy on shared runners, so the floor can be
    relaxed via REPRO_PROCESS_SERVING_FLOOR (the GitHub Actions job
    sets a lower one); the local tier-1 run enforces the full 2x.
    """
    floor = float(os.environ.get("REPRO_PROCESS_SERVING_FLOOR", "2"))
    scalar, model, universe, queries, _backend, router = process_setup
    scalar_s = _best_of(lambda: _rank_batch(scalar, universe, queries), 5)
    process_s = _best_of(
        lambda: router.rank_many(model, queries, universe=universe, k=TOP_K),
        5,
    )
    speedup = scalar_s / process_s
    assert speedup >= floor, (
        f"process-worker batched path only {speedup:.1f}x faster (floor "
        f"{floor}x; scalar {scalar_s * 1e3:.1f} ms, process "
        f"{process_s * 1e3:.1f} ms)"
    )


def test_process_results_bit_identical(process_setup):
    """The process tier must merge to the in-process sharded rankings."""
    _scalar, model, universe, queries, _backend, router = process_setup
    compiled = model.vectors.compile()
    with QueryRouter(
        ShardedVectors.partition(compiled, SHARDS), workers=ROUTER_WORKERS
    ) as flat:
        expected = flat.rank_many(model, queries, universe=universe, k=TOP_K)
    assert router.rank_many(
        model, queries, universe=universe, k=TOP_K
    ) == expected


def test_killed_worker_loses_no_queries(process_setup):
    """Acceptance: killing any single worker mid-workload drops nothing.

    One replica of each shard is SIGKILLed in turn while the benchmark
    batch replays; every batch must come back complete and bit-identical
    to the healthy run served before the kills.
    """
    _scalar, model, universe, queries, backend, router = process_setup
    healthy = router.rank_many(model, queries, universe=universe, k=TOP_K)
    assert len(healthy) == len(queries)
    for shard_id in range(SHARDS):
        victim = backend._workers[shard_id][0]
        victim.proc.kill()
        victim.proc.wait()
        assert router.rank_many(
            model, queries, universe=universe, k=TOP_K
        ) == healthy
