"""Online-phase serving benchmark: scalar vs compiled scoring backend.

Measures Sect. II-B's online ranking on a synthetic serving graph that
is larger than the experiment datasets (more anchor nodes, denser
partner sets), in the two shapes a deployment cares about:

- single-query latency (one ``rank`` call, warm caches);
- batched throughput (one ranking per query over a query batch).

The compiled CSR backend must beat the scalar reference path by >= 10x
on the batched workload; ``test_compiled_batch_speedup`` enforces that
floor, and the parity suite (tests/learning/test_rank_parity.py) proves
the two paths return identical rankings.
"""

from __future__ import annotations

import os
import random
import time

import numpy as np
import pytest

from repro.graph.typed_graph import TypedGraph
from repro.index.vectors import build_vectors
from repro.learning.model import ProximityModel, SortedUniverse, uniform_model
from repro.metagraph.catalog import MetagraphCatalog
from repro.metagraph.metagraph import metapath

NUM_USERS = 600
GROUP_SIZE = 8
BATCH = 64
TOP_K = 10


def serving_graph(seed: int = 0) -> TypedGraph:
    """A serving-scale graph: users clustered by typed attribute groups."""
    rng = random.Random(seed)
    graph = TypedGraph(name="serving")
    users = [f"u{i:03d}" for i in range(NUM_USERS)]
    for user in users:
        graph.add_node(user, "user")
    for attr_type in ("school", "employer", "hobby"):
        pool = users[:]
        rng.shuffle(pool)
        for g, start in enumerate(range(0, len(pool), GROUP_SIZE)):
            attr = f"{attr_type}{g}"
            graph.add_node(attr, attr_type)
            for user in pool[start : start + GROUP_SIZE]:
                graph.add_edge(user, attr)
    return graph


@pytest.fixture(scope="module")
def serving_setup():
    graph = serving_graph()
    catalog = MetagraphCatalog(
        [
            metapath("user", t, "user", name=f"P-{t}")
            for t in ("school", "employer", "hobby")
        ],
        anchor_type="user",
    )
    vectors, _ = build_vectors(graph, catalog)
    scalar = uniform_model(vectors, name="scalar")
    compiled = uniform_model(vectors, name="compiled").compile()
    universe = SortedUniverse(graph.nodes_of_type("user"))
    queries = list(universe)[:BATCH]
    # warm the scalar path's dense-vector caches so both backends are
    # measured at steady state
    for query in queries:
        scalar.rank(query, universe=universe, k=TOP_K)
        compiled.rank(query, universe=universe, k=TOP_K)
    return scalar, compiled, universe, queries


def _rank_batch(model: ProximityModel, universe, queries, k=TOP_K):
    return [model.rank(q, universe=universe, k=k) for q in queries]


def test_bench_scalar_single_query(benchmark, serving_setup):
    scalar, _compiled, universe, queries = serving_setup
    benchmark(scalar.rank, queries[0], universe=universe, k=TOP_K)


def test_bench_compiled_single_query(benchmark, serving_setup):
    _scalar, compiled, universe, queries = serving_setup
    benchmark(compiled.rank, queries[0], universe=universe, k=TOP_K)


def test_bench_scalar_batch(benchmark, serving_setup):
    scalar, _compiled, universe, queries = serving_setup
    benchmark(_rank_batch, scalar, universe, queries)


def test_bench_compiled_batch(benchmark, serving_setup):
    _scalar, compiled, universe, queries = serving_setup
    benchmark(_rank_batch, compiled, universe, queries)


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_compiled_batch_speedup(serving_setup):
    """Acceptance floor: compiled batched serving >= 10x over scalar.

    Wall-clock ratios are noisy on shared runners, so the floor can be
    relaxed via REPRO_SERVING_SPEEDUP_FLOOR (the GitHub Actions job
    sets a lower one); the local tier-1 run enforces the full 10x.
    """
    floor = float(os.environ.get("REPRO_SERVING_SPEEDUP_FLOOR", "10"))
    scalar, compiled, universe, queries = serving_setup
    scalar_s = _best_of(lambda: _rank_batch(scalar, universe, queries), 5)
    compiled_s = _best_of(lambda: _rank_batch(compiled, universe, queries), 5)
    speedup = scalar_s / compiled_s
    assert speedup >= floor, (
        f"compiled batched path only {speedup:.1f}x faster (floor {floor}x; "
        f"scalar {scalar_s * 1e3:.1f} ms, compiled {compiled_s * 1e3:.1f} ms)"
    )


def test_bench_backends_agree(serving_setup):
    """Cheap in-benchmark parity spot check on the serving graph."""
    scalar, compiled, universe, queries = serving_setup
    weights = np.asarray(scalar.weights)
    assert np.array_equal(weights, compiled.weights)
    for query in queries[:8]:
        a = scalar.rank(query, universe=universe, k=TOP_K)
        b = compiled.rank(query, universe=universe, k=TOP_K)
        assert [n for n, _ in a] == [n for n, _ in b]
        assert all(abs(x - y) < 1e-12 for (_, x), (_, y) in zip(a, b))
