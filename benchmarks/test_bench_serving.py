"""Online-phase serving benchmark: scalar vs compiled scoring backend.

Measures Sect. II-B's online ranking on a synthetic serving graph that
is larger than the experiment datasets (more anchor nodes, denser
partner sets), in the two shapes a deployment cares about:

- single-query latency (one ``rank`` call, warm caches);
- batched throughput (one ranking per query over a query batch).

The compiled CSR backend must beat the scalar reference path by >= 10x
on the batched workload; ``test_compiled_batch_speedup`` enforces that
floor, and the parity suite (tests/learning/test_rank_parity.py) proves
the two paths return identical rankings.

The sharded serving tier adds two more floors:

- ``test_sharded_batch_speedup`` — the shard router (4 shards, 4
  workers) must also beat the scalar path by a floor
  (``REPRO_SHARDED_SERVING_FLOOR``, default 5x): sharding must not
  give back what compiling bought;
- ``test_mmap_coldstart_speedup`` — cold-starting a serving worker
  from the format-v2 mmap sidecar must beat the npz path (decompress +
  dict replay + compile) by ``REPRO_MMAP_COLDSTART_FLOOR`` (default
  2x).
"""

from __future__ import annotations

import os
import random
import time

import numpy as np
import pytest

from repro.graph.typed_graph import TypedGraph
from repro.index.persist import load_compiled, load_index, save_index
from repro.index.vectors import build_vectors
from repro.learning.model import ProximityModel, SortedUniverse, uniform_model
from repro.metagraph.catalog import MetagraphCatalog
from repro.metagraph.metagraph import metapath
from repro.serving import QueryRouter, ShardedVectors

SHARDS = 4
ROUTER_WORKERS = 4

NUM_USERS = 600
GROUP_SIZE = 8
BATCH = 64
TOP_K = 10


def serving_graph(seed: int = 0) -> TypedGraph:
    """A serving-scale graph: users clustered by typed attribute groups."""
    rng = random.Random(seed)
    graph = TypedGraph(name="serving")
    users = [f"u{i:03d}" for i in range(NUM_USERS)]
    for user in users:
        graph.add_node(user, "user")
    for attr_type in ("school", "employer", "hobby"):
        pool = users[:]
        rng.shuffle(pool)
        for g, start in enumerate(range(0, len(pool), GROUP_SIZE)):
            attr = f"{attr_type}{g}"
            graph.add_node(attr, attr_type)
            for user in pool[start : start + GROUP_SIZE]:
                graph.add_edge(user, attr)
    return graph


@pytest.fixture(scope="module")
def serving_setup():
    graph = serving_graph()
    catalog = MetagraphCatalog(
        [
            metapath("user", t, "user", name=f"P-{t}")
            for t in ("school", "employer", "hobby")
        ],
        anchor_type="user",
    )
    vectors, _ = build_vectors(graph, catalog)
    scalar = uniform_model(vectors, name="scalar")
    compiled = uniform_model(vectors, name="compiled").compile()
    universe = SortedUniverse(graph.nodes_of_type("user"))
    queries = list(universe)[:BATCH]
    # warm the scalar path's dense-vector caches so both backends are
    # measured at steady state
    for query in queries:
        scalar.rank(query, universe=universe, k=TOP_K)
        compiled.rank(query, universe=universe, k=TOP_K)
    return scalar, compiled, universe, queries


def _rank_batch(model: ProximityModel, universe, queries, k=TOP_K):
    return [model.rank(q, universe=universe, k=k) for q in queries]


def test_bench_scalar_single_query(benchmark, serving_setup):
    scalar, _compiled, universe, queries = serving_setup
    benchmark(scalar.rank, queries[0], universe=universe, k=TOP_K)


def test_bench_compiled_single_query(benchmark, serving_setup):
    _scalar, compiled, universe, queries = serving_setup
    benchmark(compiled.rank, queries[0], universe=universe, k=TOP_K)


def test_bench_scalar_batch(benchmark, serving_setup):
    scalar, _compiled, universe, queries = serving_setup
    benchmark(_rank_batch, scalar, universe, queries)


def test_bench_compiled_batch(benchmark, serving_setup):
    _scalar, compiled, universe, queries = serving_setup
    benchmark(_rank_batch, compiled, universe, queries)


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_compiled_batch_speedup(serving_setup):
    """Acceptance floor: compiled batched serving >= 10x over scalar.

    Wall-clock ratios are noisy on shared runners, so the floor can be
    relaxed via REPRO_SERVING_SPEEDUP_FLOOR (the GitHub Actions job
    sets a lower one); the local tier-1 run enforces the full 10x.
    """
    floor = float(os.environ.get("REPRO_SERVING_SPEEDUP_FLOOR", "10"))
    scalar, compiled, universe, queries = serving_setup
    scalar_s = _best_of(lambda: _rank_batch(scalar, universe, queries), 5)
    compiled_s = _best_of(lambda: _rank_batch(compiled, universe, queries), 5)
    speedup = scalar_s / compiled_s
    assert speedup >= floor, (
        f"compiled batched path only {speedup:.1f}x faster (floor {floor}x; "
        f"scalar {scalar_s * 1e3:.1f} ms, compiled {compiled_s * 1e3:.1f} ms)"
    )


@pytest.fixture(scope="module")
def sharded_setup(serving_setup):
    _scalar, compiled_model, universe, queries = serving_setup
    compiled = compiled_model.vectors.compile()
    router = QueryRouter(
        ShardedVectors.partition(compiled, SHARDS), workers=ROUTER_WORKERS
    )
    # warm the pool and the per-shard dot/mask caches
    router.rank_many(compiled_model, queries, universe=universe, k=TOP_K)
    yield router, compiled_model
    router.close()


def test_bench_sharded_batch(benchmark, serving_setup, sharded_setup):
    _scalar, compiled, universe, queries = serving_setup
    router, model = sharded_setup
    benchmark(router.rank_many, model, queries, universe=universe, k=TOP_K)


def test_sharded_batch_speedup(serving_setup, sharded_setup):
    """Acceptance floor: sharded batched serving >= 5x over scalar.

    The shard router pays partition bookkeeping and thread fan-out on
    top of the compiled kernels; this floor proves those costs never
    hand back the compiled path's win over the scalar reference.
    Relax via REPRO_SHARDED_SERVING_FLOOR on noisy runners.
    """
    floor = float(os.environ.get("REPRO_SHARDED_SERVING_FLOOR", "5"))
    scalar, _compiled, universe, queries = serving_setup
    router, model = sharded_setup
    scalar_s = _best_of(lambda: _rank_batch(scalar, universe, queries), 5)
    sharded_s = _best_of(
        lambda: router.rank_many(model, queries, universe=universe, k=TOP_K),
        5,
    )
    speedup = scalar_s / sharded_s
    assert speedup >= floor, (
        f"sharded batched path only {speedup:.1f}x faster (floor {floor}x; "
        f"scalar {scalar_s * 1e3:.1f} ms, sharded {sharded_s * 1e3:.1f} ms)"
    )


def test_sharded_results_bit_identical(serving_setup, sharded_setup):
    """The sharded tier must merge to the unsharded compiled rankings."""
    _scalar, compiled, universe, queries = serving_setup
    router, model = sharded_setup
    sharded = router.rank_many(model, queries, universe=universe, k=TOP_K)
    unsharded = [model.rank(q, universe=universe, k=TOP_K) for q in queries]
    assert sharded == unsharded


@pytest.fixture(scope="module")
def serving_snapshot(tmp_path_factory):
    graph = serving_graph()
    catalog = MetagraphCatalog(
        [
            metapath("user", t, "user", name=f"P-{t}")
            for t in ("school", "employer", "hobby")
        ],
        anchor_type="user",
    )
    vectors, index = build_vectors(graph, catalog)
    target = tmp_path_factory.mktemp("serving") / "snapshot"
    save_index(target, vectors, catalog, graph=graph, index=index)
    return target


def test_mmap_coldstart_speedup(serving_snapshot):
    """Acceptance floor: mmap sidecar cold start >= 2x over the npz path.

    The npz leg is what a pre-v2 worker did at boot: decompress
    ``arrays.npz``, replay the counts into dicts, re-freeze them into
    the CSR backend.  The mmap leg opens the format-v2 sidecar with
    ``mmap_mode="r"``.  Relax via REPRO_MMAP_COLDSTART_FLOOR on noisy
    runners.
    """
    floor = float(os.environ.get("REPRO_MMAP_COLDSTART_FLOOR", "2"))

    def npz_cold_start():
        return load_index(serving_snapshot, mmap=False).vectors.compile()

    def mmap_cold_start():
        return load_compiled(serving_snapshot)

    assert npz_cold_start().nnz == mmap_cold_start().nnz
    npz_s = _best_of(npz_cold_start, 3)
    mmap_s = _best_of(mmap_cold_start, 3)
    speedup = npz_s / mmap_s
    assert speedup >= floor, (
        f"mmap cold start only {speedup:.1f}x faster (floor {floor}x; "
        f"npz {npz_s * 1e3:.1f} ms, mmap {mmap_s * 1e3:.1f} ms)"
    )


def test_bench_backends_agree(serving_setup):
    """Cheap in-benchmark parity spot check on the serving graph."""
    scalar, compiled, universe, queries = serving_setup
    weights = np.asarray(scalar.weights)
    assert np.array_equal(weights, compiled.weights)
    for query in queries[:8]:
        a = scalar.rank(query, universe=universe, k=TOP_K)
        b = compiled.rank(query, universe=universe, k=TOP_K)
        assert [n for n, _ in a] == [n for n, _ in b]
        assert all(abs(x - y) < 1e-12 for (_, x), (_, y) in zip(a, b))
