"""Shared fixtures for the benchmark harness.

Each ``test_bench_*`` file regenerates one table/figure of the paper at
the quick (tiny) scale so the whole harness completes in minutes.  The
expensive offline phase (dataset generation, mining, matching) is
computed once per session and shared; benchmarks then measure the
experiment-specific computation.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.experiments import QUICK_CONFIG, OfflineRunner


@pytest.fixture(scope="session")
def quick_config():
    return QUICK_CONFIG


@pytest.fixture(scope="session")
def runner(quick_config) -> OfflineRunner:
    """Session-wide offline runner: mining/matching run once, then cached."""
    shared = OfflineRunner(quick_config)
    # warm both datasets so individual benchmarks measure their own work
    shared.offline("linkedin")
    shared.offline("facebook")
    return shared
