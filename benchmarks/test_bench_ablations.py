"""Ablation benches for the design choices DESIGN.md calls out.

1. **Instance semantics** — Def. 2's induced instances (node sets)
   vs raw embedding enumeration: instances are never more numerous, and
   the counting layer must cost only the dedup overhead.
2. **Matching order** — the paper's f(M) estimated-cost order vs the
   rarest-type static order vs random (SymISO vs SymISO-R isolates this
   inside one engine).
3. **Count transform** — identity vs log1p vectors: same sparsity, same
   ranking machinery, different damping.
"""

import pytest

from repro.index.transform import identity, log1p
from repro.index.vectors import build_vectors
from repro.matching import SymISOMatcher, backtrack_embeddings
from repro.matching.base import deduplicate_instances
from repro.matching.ordering import estimated_cost_order, rarest_type_order


@pytest.fixture(scope="module")
def workload(runner):
    phase = runner.offline("linkedin")
    largest = max(m.size for m in phase.catalog)
    metagraphs = [m for m in phase.catalog if m.size == largest]
    return phase, phase.dataset.graph, metagraphs


class TestInstanceSemanticsAblation:
    def test_bench_embedding_enumeration(self, benchmark, workload):
        _phase, graph, metagraphs = workload
        engine = SymISOMatcher()

        def embeddings():
            return sum(
                1
                for m in metagraphs
                for _ in engine.find_embeddings(graph, m)
            )

        count = benchmark(embeddings)
        assert count >= 0

    def test_bench_instance_dedup(self, benchmark, workload):
        _phase, graph, metagraphs = workload
        engine = SymISOMatcher()

        def instances():
            return sum(
                1
                for m in metagraphs
                for _ in deduplicate_instances(engine.find_embeddings(graph, m))
            )

        count = benchmark(instances)
        assert count >= 0


class TestOrderingAblation:
    @pytest.mark.parametrize("order_name", ["estimated", "rarest"])
    def test_bench_order(self, benchmark, workload, order_name):
        _phase, graph, metagraphs = workload
        order_fn = (
            estimated_cost_order if order_name == "estimated" else rarest_type_order
        )

        def match_all():
            total = 0
            for m in metagraphs:
                order = order_fn(graph, m)
                total += sum(1 for _ in backtrack_embeddings(graph, m, order))
            return total

        total = benchmark(match_all)
        assert total >= 0


class TestTransformAblation:
    @pytest.mark.parametrize("transform", [identity, log1p], ids=["identity", "log1p"])
    def test_bench_vector_build(self, benchmark, workload, transform):
        phase, graph, _metagraphs = workload
        catalog = phase.catalog
        seed_ids = list(catalog.metapath_ids())

        def build():
            vectors, _index = build_vectors(
                graph, catalog, mg_ids=seed_ids, transform=transform
            )
            return vectors

        vectors = benchmark(build)
        assert vectors.matched_ids == frozenset(seed_ids)
