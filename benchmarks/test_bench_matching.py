"""Matching-kernel benchmarks: the compiled CSR engine vs pure Python.

The acceptance floor guards the point of
:mod:`repro.matching.compiled`: an end-to-end offline build (matching +
Eq. 1–2 counting for the whole catalog) through the compiled
integer-CSR kernel — the default engine — must beat the pure-Python
``SymISO`` reference by >= 3x (``REPRO_MATCHING_SPEEDUP_FLOOR`` relaxes
it on noisy shared runners, matching the other bench conventions).

Exactness is pinned by the cross-matcher parity suite; a bit-identical
counts assertion on this workload rides along here so the measured
speedup can never come from counting something different.
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.graph.typed_graph import TypedGraph
from repro.index.vectors import build_vectors
from repro.matching import SymISOMatcher
from repro.metagraph.catalog import MetagraphCatalog
from repro.metagraph.metagraph import Metagraph, metapath

NUM_USERS = 600
GROUP_SIZE = 30
MEMBERSHIPS = 3  # groups each user joins per attribute type


def matching_graph(seed: int = 7) -> TypedGraph:
    """Dense overlapping typed groups: candidate lists are wide (~90
    members per group), which is exactly the regime the array kernel is
    built for and the per-candidate Python engines struggle with."""
    rng = random.Random(seed)
    graph = TypedGraph(name="matching-bench")
    users = [f"u{i:04d}" for i in range(NUM_USERS)]
    for user in users:
        graph.add_node(user, "user")
    num_groups = NUM_USERS // GROUP_SIZE
    for attr_type in ("school", "employer", "hobby"):
        for g in range(num_groups):
            graph.add_node(f"{attr_type}{g}", attr_type)
        for user in users:
            for g in rng.sample(range(num_groups), MEMBERSHIPS):
                graph.add_edge(user, f"{attr_type}{g}")
    return graph


def matching_catalog() -> MetagraphCatalog:
    """Metapaths, every 4-node square pair, and a 5-node triple square."""
    members = [
        metapath("user", t, "user", name=f"P-{t}")
        for t in ("school", "employer", "hobby")
    ]
    for a, b in (("school", "employer"), ("school", "hobby"), ("employer", "hobby")):
        members.append(
            Metagraph(
                ["user", a, b, "user"],
                [(0, 1), (0, 2), (3, 1), (3, 2)],
                name=f"S-{a}-{b}",
            )
        )
    members.append(
        Metagraph(
            ["user", "school", "employer", "hobby", "user"],
            [(0, 1), (0, 2), (0, 3), (4, 1), (4, 2), (4, 3)],
            name="T-all",
        )
    )
    return MetagraphCatalog(members, anchor_type="user")


@pytest.fixture(scope="module")
def matching_workload():
    """One timed pure-Python build and one timed compiled build."""
    graph = matching_graph()
    catalog = matching_catalog()
    start = time.perf_counter()
    reference_vectors, reference_index = build_vectors(
        graph, catalog, matcher=SymISOMatcher()
    )
    python_seconds = time.perf_counter() - start
    compiled_seconds = float("inf")
    for _ in range(2):  # best-of-2: scheduler noise only ever adds time
        # drop the cached CSR view so every run pays the full cold path,
        # O(V+E) layout included — the floor certifies end-to-end cost
        graph.__dict__.pop("_csr_view_cache", None)
        start = time.perf_counter()
        compiled_vectors, compiled_index = build_vectors(graph, catalog)
        compiled_seconds = min(compiled_seconds, time.perf_counter() - start)
    return {
        "graph": graph,
        "catalog": catalog,
        "python_seconds": python_seconds,
        "compiled_seconds": compiled_seconds,
        "reference_index": reference_index,
        "compiled_index": compiled_index,
        "reference_vectors": reference_vectors,
        "compiled_vectors": compiled_vectors,
    }


def test_bench_compiled_metagraph_match(benchmark, matching_workload):
    """Benchmark one square pattern end to end through the default kernel."""
    from repro.index.instance_index import match_and_count

    workload = matching_workload
    catalog = workload["catalog"]
    square_id = next(
        mg_id for mg_id in catalog.ids() if catalog[mg_id].name == "S-school-employer"
    )
    benchmark(match_and_count, workload["graph"], catalog[square_id])


def test_compiled_build_speedup(matching_workload):
    """Acceptance floor: compiled offline build >= 3x over pure Python."""
    floor = float(os.environ.get("REPRO_MATCHING_SPEEDUP_FLOOR", "3"))
    workload = matching_workload
    speedup = workload["python_seconds"] / workload["compiled_seconds"]
    assert speedup >= floor, (
        f"compiled offline build only {speedup:.2f}x faster than the "
        f"pure-Python default (floor {floor}x; SymISO "
        f"{workload['python_seconds']:.2f} s, compiled "
        f"{workload['compiled_seconds']:.2f} s)"
    )


def test_compiled_counts_bit_identical(matching_workload):
    """The measured speedup counts exactly what the reference counts."""
    workload = matching_workload
    reference, compiled = workload["reference_index"], workload["compiled_index"]
    assert reference.matched_ids() == compiled.matched_ids()
    for mg_id in reference.matched_ids():
        ref, got = reference.counts_for(mg_id), compiled.counts_for(mg_id)
        assert ref.num_instances == got.num_instances
        assert ref.node_counts == got.node_counts
        assert ref.pair_counts == got.pair_counts
    assert (
        workload["reference_vectors"]._node == workload["compiled_vectors"]._node
    )
    assert (
        workload["reference_vectors"]._pair == workload["compiled_vectors"]._pair
    )
