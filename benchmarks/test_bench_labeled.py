"""Labeled/directed matching benchmarks: signature pruning vs blind matching.

The acceptance floor guards the point of threading edge kinds through
the matching stack: on a kinded graph (the reactions dataset), matching
a mined kinded pattern prunes candidates by edge signature, so the
per-pattern build cost must beat matching the same topology with kinds
stripped by >= 2x (``REPRO_LABELED_FLOOR`` relaxes it on noisy shared
runners, matching the other bench conventions).  Correctness of kinded
matching is proven by ``tests/matching/test_labeled_parity.py``; here a
cheap determinism assertion rides along — two independent kinded builds
must agree bit for bit.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.datasets import generate_reactions
from repro.graph.typed_graph import TypedGraph
from repro.index.vectors import build_vectors
from repro.metagraph.catalog import MetagraphCatalog
from repro.metagraph.metagraph import Metagraph
from repro.mining import MinerConfig, mine_catalog

REPEATS = 3  # builds per variant; medians absorb one slow outlier


def plain_projection(graph: TypedGraph) -> TypedGraph:
    """The same nodes and topology with every edge kind stripped."""
    plain = TypedGraph(name=f"{graph.name}-plain")
    for node in graph.nodes():
        plain.add_node(node, graph.node_type(node))
    for u, v in graph.edges():
        plain.add_edge(u, v)
    return plain


def stripped_catalog(catalog: MetagraphCatalog) -> MetagraphCatalog:
    """Kinds dropped from every pattern, deduped up to isomorphism.

    Stripping merges classes that differ only in edge roles (an in-star
    and an out-star collapse to one plain star), so the result is
    smaller than the input — the floor below is per pattern.
    """
    plain = MetagraphCatalog([], anchor_type="mol")
    for metagraph in catalog:
        plain.add_if_new(
            Metagraph(
                list(metagraph.types),
                [(u, v) for u, v in metagraph.edges],
                name=metagraph.name,
            )
        )
    return plain


def timed_builds(graph: TypedGraph, catalog: MetagraphCatalog) -> tuple[float, list]:
    """Median build seconds over ``REPEATS`` runs plus every build result."""
    seconds: list[float] = []
    results = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        results.append(build_vectors(graph, catalog))
        seconds.append(time.perf_counter() - start)
    seconds.sort()
    return seconds[len(seconds) // 2], results


@pytest.fixture(scope="module")
def labeled_workload():
    """Mined kinded catalog plus timed kinded and kind-stripped builds."""
    dataset = generate_reactions(scale="medium")
    graph = dataset.graph
    catalog = mine_catalog(
        graph, MinerConfig(max_nodes=4, min_support=2), anchor_type="mol"
    )
    assert len(catalog) > 0 and all(m.has_kinds for m in catalog)
    plain_graph = plain_projection(graph)
    plain_cat = stripped_catalog(catalog)
    kinded_seconds, kinded_builds = timed_builds(graph, catalog)
    plain_seconds, _ = timed_builds(plain_graph, plain_cat)
    return {
        "graph": graph,
        "catalog": catalog,
        "kinded_seconds": kinded_seconds,
        "kinded_builds": kinded_builds,
        "plain_seconds": plain_seconds,
        "plain_patterns": len(plain_cat),
    }


def test_bench_labeled_build(benchmark, labeled_workload):
    """Benchmark a full kinded index build on the reactions graph."""
    workload = labeled_workload
    benchmark(build_vectors, workload["graph"], workload["catalog"])


def test_labeled_per_pattern_speedup(labeled_workload):
    """Acceptance floor: signature pruning >= 2x per pattern.

    The kinded catalog is larger (stripping merges role-distinct
    classes), so the comparison normalises by pattern count: seconds
    per blind plain pattern over seconds per signature-pruned kinded
    pattern.
    """
    floor = float(os.environ.get("REPRO_LABELED_FLOOR", "2"))
    workload = labeled_workload
    per_kinded = workload["kinded_seconds"] / len(workload["catalog"])
    per_plain = workload["plain_seconds"] / workload["plain_patterns"]
    speedup = per_plain / per_kinded
    assert speedup >= floor, (
        f"labeled matching only {speedup:.1f}x faster per pattern than "
        f"kind-stripped matching (floor {floor}x; kinded "
        f"{per_kinded * 1e3:.1f} ms/pattern over {len(workload['catalog'])} "
        f"patterns, plain {per_plain * 1e3:.1f} ms/pattern over "
        f"{workload['plain_patterns']})"
    )


def test_kinded_builds_are_bit_identical(labeled_workload):
    """Every repeated kinded build must agree with the first exactly."""
    builds = labeled_workload["kinded_builds"]
    first_vectors, first_index = builds[0]
    for vectors, index in builds[1:]:
        assert vectors._node == first_vectors._node
        assert vectors._pair == first_vectors._pair
        assert index.matched_ids() == first_index.matched_ids()
        for mg_id in first_index.matched_ids():
            assert index.num_instances(mg_id) == first_index.num_instances(mg_id)
