"""Ablation bench: dual-stage (Alg. 1) vs the multi-stage extension.

Sect. III-C's closing paragraph generalises dual-stage training to
progressive candidate batches with an accuracy-based stop.  This bench
compares the two on the same budget: multi-stage with early stopping
should match fewer metagraphs than one-shot dual-stage whenever the
class is recovered early.
"""

import numpy as np

from repro.experiments.common import splits_for, triplets_for_split
from repro.learning.dual_stage import dual_stage_train, multi_stage_train


def _setup(runner, class_name="college"):
    phase = runner.offline("linkedin")
    dataset = phase.dataset
    split = splits_for(dataset, class_name, 1, 0)[0]
    triplets = triplets_for_split(dataset, class_name, split, 120, 0)
    return phase, dataset, triplets


def test_bench_dual_stage_budget(benchmark, runner):
    phase, dataset, triplets = _setup(runner)
    budget = max(2, len(phase.catalog) // 2)

    def run():
        return dual_stage_train(
            dataset.graph, phase.catalog, triplets,
            num_candidates=budget, trainer=runner.trainer(),
        )

    result = benchmark(run)
    assert len(result.candidate_ids) <= budget


def test_bench_multi_stage_early_stop(benchmark, runner):
    phase, dataset, triplets = _setup(runner)
    budget = max(2, len(phase.catalog) // 2)
    batch = max(1, budget // 3)

    def stop(weights: np.ndarray, stage: int) -> bool:
        # stop once a confidently characteristic metagraph emerged
        return stage > 0 and float(weights.max()) > 0.9

    def run():
        return multi_stage_train(
            dataset.graph, phase.catalog, triplets,
            batch_size=batch, max_stages=3, stop=stop,
            trainer=runner.trainer(),
        )

    result = benchmark(run)
    # early stopping must never exceed the one-shot budget
    assert len(result.candidate_ids) <= budget
    assert result.weights.max() > 0.5  # the class was recovered
