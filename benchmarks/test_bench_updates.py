"""Dynamic-update benchmarks: delta maintenance vs. full rebuild.

The acceptance floor guards the point of :mod:`repro.index.delta`: a
single-edge delta must beat rebuilding the index from scratch by
>= 10x (``REPRO_UPDATE_SPEEDUP_FLOOR`` relaxes it on noisy shared
runners, matching the offline/serving bench conventions).  Exactness is
proven by the property suite in ``tests/index/test_delta.py``; here a
cheap parity assertion rides along — after toggling edges off and back
on, the maintained counts must equal the originals bit for bit.
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.graph.typed_graph import TypedGraph
from repro.index.delta import GraphDelta, apply_delta
from repro.index.vectors import build_vectors
from repro.metagraph.catalog import MetagraphCatalog
from repro.metagraph.metagraph import Metagraph, metapath

NUM_USERS = 300
GROUP_SIZE = 8
MEMBERSHIPS = 3  # groups each user joins per attribute type
SAMPLE_EDGES = 5  # distinct single-edge deltas measured


def update_graph(seed: int = 0) -> TypedGraph:
    """A serving-scale workload: users in overlapping typed groups."""
    rng = random.Random(seed)
    graph = TypedGraph(name="updates-bench")
    users = [f"u{i:03d}" for i in range(NUM_USERS)]
    for user in users:
        graph.add_node(user, "user")
    num_groups = NUM_USERS // GROUP_SIZE
    for attr_type in ("school", "employer", "hobby"):
        for g in range(num_groups):
            graph.add_node(f"{attr_type}{g}", attr_type)
        for user in users:
            for g in rng.sample(range(num_groups), MEMBERSHIPS):
                graph.add_edge(user, f"{attr_type}{g}")
    return graph


def update_catalog() -> MetagraphCatalog:
    """Metapaths plus 4-node squares (the squares dominate match cost)."""
    members = [
        metapath("user", t, "user", name=f"P-{t}")
        for t in ("school", "employer", "hobby")
    ]
    for a, b in (("school", "employer"), ("school", "hobby"), ("employer", "hobby")):
        members.append(
            Metagraph(
                ["user", a, b, "user"],
                [(0, 1), (0, 2), (3, 1), (3, 2)],
                name=f"S-{a}-{b}",
            )
        )
    return MetagraphCatalog(members, anchor_type="user")


@pytest.fixture(scope="module")
def update_workload():
    """One timed full build plus the edges the deltas toggle."""
    graph = update_graph()
    catalog = update_catalog()
    start = time.perf_counter()
    vectors, index = build_vectors(graph, catalog)
    rebuild_seconds = time.perf_counter() - start
    rng = random.Random(1)
    sample = rng.sample(sorted(graph.edges(), key=repr), SAMPLE_EDGES)
    return {
        "graph": graph,
        "catalog": catalog,
        "vectors": vectors,
        "index": index,
        "rebuild_seconds": rebuild_seconds,
        "sample_edges": sample,
    }


def test_bench_single_edge_toggle(benchmark, update_workload):
    """Benchmark one remove+re-add edge pair through delta maintenance."""
    workload = update_workload
    u, v = workload["sample_edges"][0]
    toggle = GraphDelta().remove_edge(u, v).add_edge(u, v)
    benchmark(
        apply_delta,
        workload["graph"],
        workload["catalog"],
        workload["vectors"],
        toggle,
        index=workload["index"],
    )


def test_single_edge_delta_speedup(update_workload):
    """Acceptance floor: single-edge delta >= 10x faster than a rebuild.

    Measures each direction of several remove/re-add toggles and takes
    the *median* single-edit time, so one slow outlier cannot fail the
    floor while one lucky edit cannot carry it either.
    """
    floor = float(os.environ.get("REPRO_UPDATE_SPEEDUP_FLOOR", "10"))
    workload = update_workload
    graph, catalog = workload["graph"], workload["catalog"]
    vectors, index = workload["vectors"], workload["index"]
    edit_seconds: list[float] = []
    for u, v in workload["sample_edges"]:
        for delta in (
            GraphDelta().remove_edge(u, v),
            GraphDelta().add_edge(u, v),
        ):
            start = time.perf_counter()
            apply_delta(graph, catalog, vectors, delta, index=index)
            edit_seconds.append(time.perf_counter() - start)
    edit_seconds.sort()
    median = edit_seconds[len(edit_seconds) // 2]
    speedup = workload["rebuild_seconds"] / median
    assert speedup >= floor, (
        f"single-edge delta only {speedup:.1f}x faster than rebuild "
        f"(floor {floor}x; rebuild {workload['rebuild_seconds']:.2f} s, "
        f"median edit {median * 1e3:.1f} ms)"
    )


def test_toggled_counts_match_original(update_workload):
    """Every toggle pair restored the graph, so counts must round-trip."""
    workload = update_workload
    fresh, fresh_index = build_vectors(workload["graph"], workload["catalog"])
    vectors = workload["vectors"]
    assert vectors._node == fresh._node
    assert vectors._pair == fresh._pair
    assert vectors.matched_ids == fresh.matched_ids
    index = workload["index"]
    for mg_id in fresh_index.matched_ids():
        assert index.num_instances(mg_id) == fresh_index.num_instances(mg_id)
