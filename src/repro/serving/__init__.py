"""Sharded serving tier: shard partitioning, query routing, validation.

The single-process online phase lives in :mod:`repro.index.compiled`
and :mod:`repro.learning.model`; this package layers the serving-scale
pieces on top —

- :func:`~repro.serving.shards.partition_compiled` /
  :class:`~repro.serving.shards.CompiledShard`: node-range CSR slices
  of a compiled snapshot, each self-contained;
- :class:`~repro.serving.router.ShardedVectors` /
  :class:`~repro.serving.router.QueryRouter`: multi-worker batch
  routing with bit-identical merge over a pluggable
  :class:`~repro.serving.backend.ShardBackend`;
- :class:`~repro.serving.backend.InProcessBackend` /
  :class:`~repro.serving.backend.SubprocessBackend`: shard scoring as
  a function call, or as protocol frames to supervised worker
  processes with per-shard replicas and failover;
- :mod:`~repro.serving.protocol` / :mod:`~repro.serving.worker`: the
  length-prefixed JSON wire format and the standalone shard-worker
  process (``python -m repro shard-worker``);
- :func:`~repro.serving.validation.validate_query_node`: the
  :class:`~repro.exceptions.QueryError` guard every serving entry
  point runs before scoring;
- :class:`~repro.serving.frontend.QueryFrontend` /
  :class:`~repro.serving.frontend.FrontendServer` /
  :class:`~repro.serving.cache.ResultCache`: the long-lived query
  front-end — dynamic batch coalescing over ``query_many``, an
  LRU+TTL result cache keyed by snapshot digest, zero-downtime hot
  snapshot reload, and the ``repro serve --listen`` HTTP face.
"""

from repro.serving.backend import (
    InProcessBackend,
    ShardBackend,
    SubprocessBackend,
)
from repro.serving.cache import CacheStats, ResultCache, result_key
from repro.serving.frontend import (
    BatchCoalescer,
    FrontendConfig,
    FrontendServer,
    QueryFrontend,
)
from repro.serving.protocol import (
    PROTOCOL_VERSION,
    ScoreRequest,
    ShardExecutor,
    recv_frame,
    send_frame,
)
from repro.serving.router import QueryRouter, ShardedVectors
from repro.serving.shards import (
    CompiledShard,
    extract_shard,
    partition_compiled,
    shard_ranges,
)
from repro.serving.validation import validate_query_node

__all__ = [
    "BatchCoalescer",
    "CacheStats",
    "CompiledShard",
    "FrontendConfig",
    "FrontendServer",
    "InProcessBackend",
    "PROTOCOL_VERSION",
    "QueryFrontend",
    "QueryRouter",
    "ResultCache",
    "ScoreRequest",
    "ShardBackend",
    "ShardExecutor",
    "ShardedVectors",
    "SubprocessBackend",
    "extract_shard",
    "partition_compiled",
    "recv_frame",
    "result_key",
    "send_frame",
    "shard_ranges",
    "validate_query_node",
]
