"""Sharded serving tier: shard partitioning, query routing, validation.

The single-process online phase lives in :mod:`repro.index.compiled`
and :mod:`repro.learning.model`; this package layers the serving-scale
pieces on top —

- :func:`~repro.serving.shards.partition_compiled` /
  :class:`~repro.serving.shards.CompiledShard`: node-range CSR slices
  of a compiled snapshot, each self-contained;
- :class:`~repro.serving.router.ShardedVectors` /
  :class:`~repro.serving.router.QueryRouter`: multi-worker batch
  routing with bit-identical merge;
- :func:`~repro.serving.validation.validate_query_node`: the
  :class:`~repro.exceptions.QueryError` guard every serving entry
  point runs before scoring.
"""

from repro.serving.router import QueryRouter, ShardedVectors
from repro.serving.shards import CompiledShard, partition_compiled, shard_ranges
from repro.serving.validation import validate_query_node

__all__ = [
    "CompiledShard",
    "QueryRouter",
    "ShardedVectors",
    "partition_compiled",
    "shard_ranges",
    "validate_query_node",
]
