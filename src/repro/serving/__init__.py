"""Sharded serving tier: shard partitioning, query routing, validation.

The single-process online phase lives in :mod:`repro.index.compiled`
and :mod:`repro.learning.model`; this package layers the serving-scale
pieces on top —

- :func:`~repro.serving.shards.partition_compiled` /
  :class:`~repro.serving.shards.CompiledShard`: node-range CSR slices
  of a compiled snapshot, each self-contained;
- :class:`~repro.serving.router.ShardedVectors` /
  :class:`~repro.serving.router.QueryRouter`: multi-worker batch
  routing with bit-identical merge over a pluggable
  :class:`~repro.serving.backend.ShardBackend`;
- :class:`~repro.serving.backend.InProcessBackend` /
  :class:`~repro.serving.backend.SubprocessBackend`: shard scoring as
  a function call, or as protocol frames to supervised worker
  processes with per-shard replicas and failover;
- :mod:`~repro.serving.protocol` / :mod:`~repro.serving.worker`: the
  length-prefixed JSON wire format and the standalone shard-worker
  process (``python -m repro shard-worker``);
- :func:`~repro.serving.validation.validate_query_node`: the
  :class:`~repro.exceptions.QueryError` guard every serving entry
  point runs before scoring.
"""

from repro.serving.backend import (
    InProcessBackend,
    ShardBackend,
    SubprocessBackend,
)
from repro.serving.protocol import (
    PROTOCOL_VERSION,
    ScoreRequest,
    ShardExecutor,
    recv_frame,
    send_frame,
)
from repro.serving.router import QueryRouter, ShardedVectors
from repro.serving.shards import (
    CompiledShard,
    extract_shard,
    partition_compiled,
    shard_ranges,
)
from repro.serving.validation import validate_query_node

__all__ = [
    "CompiledShard",
    "InProcessBackend",
    "PROTOCOL_VERSION",
    "QueryRouter",
    "ScoreRequest",
    "ShardBackend",
    "ShardExecutor",
    "ShardedVectors",
    "SubprocessBackend",
    "extract_shard",
    "partition_compiled",
    "recv_frame",
    "send_frame",
    "shard_ranges",
    "validate_query_node",
]
