"""Query validation for the online phase.

Sect. IV's online ranking is defined only for anchor-typed nodes of the
indexed graph.  Anything else used to fall through to the all-zero
scoring path and come back as a confidently wrong answer — an all-zero
ranking, a 0.0 proximity, an empty explanation.  The serving entry
points (facade, router, ``repro serve``) call
:func:`validate_query_node` up front and surface
:class:`~repro.exceptions.QueryError` instead.
"""

from __future__ import annotations

from repro.exceptions import QueryError
from repro.graph.typed_graph import NodeId, TypedGraph


def validate_query_node(
    graph: TypedGraph,
    node: NodeId,
    anchor_type: str,
    role: str = "query",
) -> None:
    """Raise :class:`QueryError` unless ``node`` is an anchor of ``graph``.

    ``role`` names the argument in the message (``"query"`` for ranking
    entry points, ``"pair"`` for proximity/explain members).
    """
    if node not in graph:
        raise QueryError(
            f"{role} node {node!r} is not in graph {graph.name!r}; the "
            f"online phase can only rank existing {anchor_type!r} nodes"
        )
    node_type = graph.node_type(node)
    if node_type != anchor_type:
        raise QueryError(
            f"{role} node {node!r} has type {node_type!r}, but this index "
            f"is anchored on {anchor_type!r} nodes; proximity is only "
            f"defined between anchor nodes"
        )
