"""LRU + TTL result cache for the serving front-end.

Millions of users means skewed traffic: a handful of hot queries
dominate any realistic workload, so the cheapest ranking is the one
never recomputed.  :class:`ResultCache` memoises finished rankings
under a key that pins *everything* a ranking depends on —

``(snapshot digest, class name, query, k, universe digest)``

— so a cache entry can only ever be served for the exact snapshot it
was computed against.  A hot snapshot swap therefore cannot serve
pre-swap results even without cooperation (the digest in the key
changes); :meth:`invalidate` additionally drops the old entries
atomically so they stop occupying memory the moment the swap lands.

Eviction is size-capped LRU; expiry is optional per-cache TTL checked
on read (an expired entry counts as a miss and is removed in place).
All operations take one lock and do O(1) work, so the cache adds
nanoseconds, not contention, in front of a ranking that costs
microseconds.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from collections.abc import Callable, Hashable
from dataclasses import dataclass


@dataclass(frozen=True)
class CacheStats:
    """Counters since construction (monotonic; never reset)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0
    invalidations: int = 0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "invalidations": self.invalidations,
        }


def result_key(
    snapshot_digest: str,
    class_name: str,
    query: Hashable,
    k: int | None,
    universe_digest: str | None,
) -> tuple:
    """The canonical cache key of one single-query ranking."""
    return (snapshot_digest, class_name, query, k, universe_digest)


class ResultCache:
    """Thread-safe LRU + TTL map from :func:`result_key` to rankings.

    ``max_size <= 0`` disables the cache entirely (every ``get`` is a
    miss, every ``put`` a no-op) so one configuration knob can turn
    caching off without a second code path in the caller.  ``ttl`` is
    seconds an entry stays servable (None: forever); ``clock`` is
    injectable for tests and defaults to the monotonic clock so wall
    clock jumps never mass-expire a warm cache.
    """

    def __init__(
        self,
        max_size: int = 4096,
        ttl: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if ttl is not None and ttl <= 0:
            raise ValueError(f"ttl must be positive or None, got {ttl}")
        self.max_size = max_size
        self.ttl = ttl
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, tuple[object, float | None]] = (
            OrderedDict()  # guarded-by: _lock
        )
        self._hits = 0  # guarded-by: _lock
        self._misses = 0  # guarded-by: _lock
        self._evictions = 0  # guarded-by: _lock
        self._expirations = 0  # guarded-by: _lock
        self._invalidations = 0  # guarded-by: _lock

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: tuple):
        """The cached value (refreshed to MRU), or None on miss/expiry."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            value, expires_at = entry
            if expires_at is not None and self._clock() >= expires_at:
                del self._entries[key]
                self._expirations += 1
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: tuple, value) -> None:
        """Insert/refresh an entry, evicting LRU entries past the cap."""
        if self.max_size <= 0:
            return
        expires_at = None if self.ttl is None else self._clock() + self.ttl
        with self._lock:
            self._entries[key] = (value, expires_at)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_size:
                self._entries.popitem(last=False)
                self._evictions += 1

    def invalidate(self) -> int:
        """Atomically drop every entry; returns how many were dropped.

        The swap half of cache coherence: correctness is carried by the
        snapshot digest in the key, this reclaims the dead entries'
        memory in one move.
        """
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._invalidations += 1
            return dropped

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                expirations=self._expirations,
                invalidations=self._invalidations,
            )

    def __repr__(self) -> str:
        stats = self.stats
        return (
            f"<ResultCache: {len(self)}/{self.max_size} entries, "
            f"ttl={self.ttl}, {stats.hits} hits / {stats.misses} misses>"
        )
