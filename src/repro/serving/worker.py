"""Standalone shard-worker process: one node-range slice, one socket.

``python -m repro shard-worker`` (or ``python -m repro.serving.worker``)
turns one :class:`~repro.serving.shards.CompiledShard` into a serving
process:

1. *cold start* — the worker mmaps its slice straight out of the
   snapshot's format-v2 sidecar
   (:func:`~repro.index.persist.load_compiled_shard`): no decompression,
   no dict replay, and co-hosted workers share the mapped pages;
2. *serve* — length-prefixed JSON frames
   (:mod:`~repro.serving.protocol`) over a Unix domain socket
   (``--socket``) or TCP (``--host``/``--port``), one handler thread
   per connection; scoring is numpy-bound and releases the GIL's cost
   to the supervisor by being a separate *process* in the first place;
3. *drain* — ``SIGTERM``/``SIGINT`` stop the accept loop, wait up to
   ``--drain-timeout`` seconds for in-flight requests to finish, then
   close connections and exit 0, so a router never loses an answered
   query to a routine restart or snapshot swap.

The worker is deliberately stateless between requests apart from
content-addressed caches (dot products per weights digest, universes
per digest), so any replica of a shard can answer any request — the
property the router's failover leans on.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import sys
import threading
import time
from pathlib import Path

from repro.exceptions import ReproError, ServingError
from repro.index.persist import load_compiled_shard
from repro.serving.protocol import ShardExecutor, recv_frame, send_frame

#: default seconds a terminating worker waits for in-flight requests
DEFAULT_DRAIN_TIMEOUT = 5.0


def build_worker_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro shard-worker",
        description=(
            "Serve one node-range shard of a format-v2 index snapshot "
            "over a Unix or TCP socket (length-prefixed JSON frames)."
        ),
    )
    parser.add_argument(
        "--snapshot", required=True, help="snapshot directory (format v2)"
    )
    parser.add_argument(
        "--shard", type=int, required=True, help="shard id in [0, num-shards)"
    )
    parser.add_argument(
        "--num-shards", type=int, required=True, help="total shard count"
    )
    parser.add_argument(
        "--socket", default=None, help="Unix domain socket path to listen on"
    )
    parser.add_argument(
        "--host", default=None, help="TCP host to bind (with --port)"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        help="TCP port to bind (0 picks an ephemeral port, printed on the "
        "ready line)",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=None,
        help="seconds to wait for in-flight requests on SIGTERM (default: "
        f"REPRO_SERVING_DRAIN_TIMEOUT or {DEFAULT_DRAIN_TIMEOUT})",
    )
    parser.add_argument(
        "--no-mmap",
        action="store_true",
        help="read and digest-verify the sidecar instead of mmapping it",
    )
    return parser


class ShardWorker:
    """The accept/serve/drain loop around one :class:`ShardExecutor`."""

    def __init__(
        self,
        executor: ShardExecutor,
        listener: socket.socket,
        drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
    ):
        self.executor = executor
        self.listener = listener
        self.drain_timeout = drain_timeout
        self._shutdown = threading.Event()
        self._lock = threading.Condition()
        self._inflight = 0  # guarded-by: _lock
        self._connections: set[socket.socket] = set()  # guarded-by: _lock

    # -- lifecycle -----------------------------------------------------
    def initiate_shutdown(self) -> None:
        """Stop accepting; safe from a signal handler or any thread."""
        self._shutdown.set()
        try:
            # shutdown() wakes a blocking accept() in another thread
            # (close() alone leaves it parked on the old fd)
            self.listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.listener.close()
        except OSError:
            pass

    def _drain(self) -> None:
        """Wait for in-flight requests, then drop idle connections."""
        deadline = time.monotonic() + self.drain_timeout
        with self._lock:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._lock.wait(remaining)
        with self._lock:
            connections = list(self._connections)
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass

    # -- connection handling -------------------------------------------
    def _handle_connection(self, conn: socket.socket) -> None:
        try:
            while not self._shutdown.is_set():
                try:
                    doc = recv_frame(conn)
                except ServingError:
                    break  # corrupt stream: drop the connection, not the worker
                if doc is None:
                    break
                if doc.get("op") == "shutdown":
                    send_frame(conn, {"ok": True, "draining": True})
                    self.initiate_shutdown()
                    break
                with self._lock:
                    self._inflight += 1
                try:
                    response = self.executor.execute(doc)
                finally:
                    with self._lock:
                        self._inflight -= 1
                        self._lock.notify_all()
                send_frame(conn, response)
        except OSError:
            pass  # peer vanished; the router handles its side
        finally:
            with self._lock:
                self._connections.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    def serve_forever(self) -> None:
        while not self._shutdown.is_set():
            try:
                conn, _addr = self.listener.accept()
            except OSError:
                break  # listener closed by initiate_shutdown
            with self._lock:
                if self._shutdown.is_set():
                    conn.close()
                    break
                self._connections.add(conn)
            thread = threading.Thread(
                target=self._handle_connection,
                args=(conn,),
                name="repro-shard-conn",
                daemon=True,
            )
            thread.start()
        self._drain()


def _bind_listener(args: argparse.Namespace) -> tuple[socket.socket, str]:
    """The listening socket plus a printable endpoint description."""
    if (args.socket is None) == (args.host is None and args.port is None):
        raise ServingError(
            "exactly one transport required: --socket PATH (Unix) or "
            "--host/--port (TCP)"
        )
    if args.socket is not None:
        path = Path(args.socket)
        try:
            path.unlink()  # a stale socket file from a killed predecessor
        except FileNotFoundError:
            pass
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(str(path))
        listener.listen(64)
        return listener, f"unix:{path}"
    host = args.host or "127.0.0.1"
    port = args.port if args.port is not None else 0
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind((host, port))
    listener.listen(64)
    bound_host, bound_port = listener.getsockname()
    return listener, f"tcp:{bound_host}:{bound_port}"


def main(argv: list[str] | None = None) -> int:
    """Worker entry point; blocks until SIGTERM/SIGINT, returns 0."""
    args = build_worker_parser().parse_args(argv)
    drain_timeout = args.drain_timeout
    if drain_timeout is None:
        drain_timeout = float(
            os.environ.get("REPRO_SERVING_DRAIN_TIMEOUT", DEFAULT_DRAIN_TIMEOUT)
        )
    try:
        shard = load_compiled_shard(
            args.snapshot, args.shard, args.num_shards, mmap=not args.no_mmap
        )
        listener, endpoint = _bind_listener(args)
    except (ReproError, OSError, ValueError) as exc:
        print(f"[shard-worker] cannot start: {exc}", file=sys.stderr)
        return 1
    worker = ShardWorker(
        ShardExecutor(shard), listener, drain_timeout=drain_timeout
    )
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: worker.initiate_shutdown())
    # machine-parseable ready line: supervisors on the same host race
    # the socket file instead, but TCP callers need the bound port
    print(
        json.dumps(
            {
                "ready": True,
                "shard": args.shard,
                "num_shards": args.num_shards,
                "endpoint": endpoint,
                "pid": os.getpid(),
                "owned_rows": shard.num_owned,
            },
            separators=(",", ":"),
        ),
        flush=True,
    )
    worker.serve_forever()
    return 0


if __name__ == "__main__":
    sys.exit(main())
