"""Long-lived query front-end: dynamic batching, caching, hot reload.

The router (:mod:`repro.serving.router`) answers *batches*; real
traffic arrives as concurrent *single* queries.  This module closes
that gap with three cooperating pieces:

- :class:`BatchCoalescer` — holds each arriving query briefly and
  merges concurrent ones for the same ``(class, k)`` into one dynamic
  batch, flushed when it reaches ``max_batch`` queries or when its
  oldest query has waited ``max_delay_ms`` — whichever comes first.
  Batches dispatch straight into the engine's ``query_many``, so a
  coalesced ranking is *bit-identical* to the direct call: batching
  changes latency shape, never results.
- :class:`QueryFrontend` — validates each query before it can join a
  batch (one bad query must not fail its neighbours), fronts the
  dispatch with an LRU+TTL :class:`~repro.serving.cache.ResultCache`
  keyed on ``(snapshot digest, class, query, k, universe digest)``,
  and performs zero-downtime hot reloads: swap the serving tier onto
  the new snapshot first, then advance the digest and invalidate the
  cache atomically.  Because the digest is part of every key, a stale
  entry can never be *served* after a swap even in the instant before
  invalidation — the post-swap key simply differs.
- :class:`FrontendServer` — a stdlib ``ThreadingHTTPServer`` exposing
  ``/query``, ``/reload``, ``/stats`` and ``/health`` so the whole
  thing runs as ``repro serve --listen HOST:PORT``.

Knobs (flag > environment > default): ``REPRO_FRONTEND_MAX_BATCH``
(32), ``REPRO_FRONTEND_MAX_DELAY_MS`` (2.0),
``REPRO_FRONTEND_CACHE_SIZE`` (4096), ``REPRO_FRONTEND_CACHE_TTL``
(unset: entries never expire).
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections.abc import Callable, Sequence
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qs, urlsplit

from repro.exceptions import (
    LearningError,
    QueryError,
    ReproError,
    ServingError,
    SnapshotError,
    StaleIndexError,
)
from repro.graph.typed_graph import NodeId
from repro.index.persist import snapshot_digest
from repro.index.vectors import decode_node_id, encode_node_id
from repro.learning.model import require_valid_k
from repro.serving.cache import ResultCache, result_key
from repro.serving.protocol import universe_digest

Ranking = list[tuple[NodeId, float]]
DispatchFn = Callable[[str, Sequence[NodeId], "int | None"], list[Ranking]]


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    return default if raw is None else int(raw)


def _env_float(name: str, default: float | None) -> float | None:
    raw = os.environ.get(name)
    return default if raw is None else float(raw)


@dataclass
class FrontendConfig:
    """Batching and caching knobs of one :class:`QueryFrontend`.

    ``max_delay_ms`` is the *batching window*: how long the first query
    of a batch may wait for company before the batch flushes anyway.
    ``0`` disables coalescing-by-time (every query still piggybacks on
    a batch already being assembled by concurrent arrivals).
    ``cache_ttl`` is in seconds; ``None`` means cached rankings only
    leave by LRU eviction or swap invalidation.
    """

    max_batch: int = 32
    max_delay_ms: float = 2.0
    cache_size: int = 4096
    cache_ttl: float | None = None
    dispatch_workers: int = 4
    request_timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_delay_ms < 0:
            raise ValueError(
                f"max_delay_ms must be >= 0, got {self.max_delay_ms}"
            )
        if self.dispatch_workers < 1:
            raise ValueError(
                f"dispatch_workers must be >= 1, got {self.dispatch_workers}"
            )

    @classmethod
    def from_env(
        cls,
        max_batch: int | None = None,
        max_delay_ms: float | None = None,
        cache_size: int | None = None,
        cache_ttl: float | None = None,
    ) -> "FrontendConfig":
        """Resolve knobs as flag > ``REPRO_FRONTEND_*`` env > default."""
        return cls(
            max_batch=(
                max_batch
                if max_batch is not None
                else _env_int("REPRO_FRONTEND_MAX_BATCH", 32)
            ),
            max_delay_ms=(
                max_delay_ms
                if max_delay_ms is not None
                else _env_float("REPRO_FRONTEND_MAX_DELAY_MS", 2.0)
            ),
            cache_size=(
                cache_size
                if cache_size is not None
                else _env_int("REPRO_FRONTEND_CACHE_SIZE", 4096)
            ),
            cache_ttl=(
                cache_ttl
                if cache_ttl is not None
                else _env_float("REPRO_FRONTEND_CACHE_TTL", None)
            ),
        )


class _PendingBatch:
    """One in-assembly batch: same class and k, flushed as a unit."""

    __slots__ = ("class_name", "k", "queries", "futures", "deadline")

    def __init__(self, class_name: str, k: int | None, deadline: float):
        self.class_name = class_name
        self.k = k
        self.queries: list[NodeId] = []
        self.futures: list[Future] = []
        self.deadline = deadline


class BatchCoalescer:
    """Merge concurrent single queries into dynamic ``query_many`` batches.

    ``submit`` parks each query in the open batch of its ``(class, k)``
    group and returns a :class:`~concurrent.futures.Future` for its
    ranking.  A batch flushes the moment it holds ``max_batch`` queries
    (inline, on the submitting thread) or when its first query has
    waited ``max_delay`` seconds (a single background flusher thread
    sleeps until the earliest deadline).  Dispatch runs on a small
    thread pool so batches for different groups overlap; a dispatch
    error fails every future of its batch with the same exception.
    """

    def __init__(
        self,
        dispatch: DispatchFn,
        max_batch: int = 32,
        max_delay: float = 0.002,
        dispatch_workers: int = 4,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._dispatch = dispatch
        self.max_batch = max_batch
        self.max_delay = max_delay
        self._clock = clock
        self._lock = threading.Lock()
        # the condition wraps _lock: holding either is holding both
        self._cv = threading.Condition(self._lock)
        self._groups: dict[tuple[str, int | None], _PendingBatch] = {}  # guarded-by: _cv
        self._closed = False  # guarded-by: _cv
        self._batches = 0  # guarded-by: _lock
        self._coalesced_batches = 0  # guarded-by: _lock
        self._submitted = 0  # guarded-by: _lock
        self._largest_batch = 0  # guarded-by: _lock
        self._pool = ThreadPoolExecutor(
            max_workers=dispatch_workers,
            thread_name_prefix="repro-frontend-dispatch",
        )
        self._flusher = threading.Thread(
            target=self._flush_loop, name="repro-frontend-flusher", daemon=True
        )
        self._flusher.start()

    def submit(self, class_name: str, query: NodeId, k: int | None) -> Future:
        """Queue one query; the future resolves to its ranking."""
        future: Future = Future()
        group = (class_name, k)
        with self._cv:
            if self._closed:
                raise ServingError("frontend coalescer is closed")
            batch = self._groups.get(group)
            if batch is None:
                batch = _PendingBatch(
                    class_name, k, self._clock() + self.max_delay
                )
                self._groups[group] = batch
                # the flusher may be sleeping past this batch's deadline
                self._cv.notify()
            batch.queries.append(query)
            batch.futures.append(future)
            self._submitted += 1
            full = len(batch.queries) >= self.max_batch
            if full:
                del self._groups[group]
        if full:
            self._pool.submit(self._run_batch, batch)
        return future

    def _flush_loop(self) -> None:
        while True:
            with self._cv:
                if self._closed:
                    return
                now = self._clock()
                due = [
                    key
                    for key, batch in self._groups.items()
                    if batch.deadline <= now
                ]
                batches = [self._groups.pop(key) for key in due]
                if not batches:
                    deadlines = [
                        b.deadline for b in self._groups.values()
                    ]
                    timeout = min(deadlines) - now if deadlines else None
                    self._cv.wait(timeout)
                    continue
            for batch in batches:
                self._pool.submit(self._run_batch, batch)

    def _run_batch(self, batch: _PendingBatch) -> None:
        try:
            results = self._dispatch(batch.class_name, batch.queries, batch.k)
            if len(results) != len(batch.futures):
                raise ServingError(
                    f"dispatch returned {len(results)} rankings for "
                    f"{len(batch.futures)} queries"
                )
        except (KeyboardInterrupt, SystemExit) as exc:
            # a shutdown signal on a dispatch thread is not a query
            # failure: fail the batch with a ServingError the callers
            # can classify, and let the signal keep unwinding the
            # thread instead of smuggling it into a Future
            failure = ServingError(
                f"dispatch interrupted by {type(exc).__name__}"
            )
            for future in batch.futures:
                future.set_exception(failure)
            raise
        except BaseException as exc:  # noqa: BLE001 — forwarded per-future
            for future in batch.futures:
                future.set_exception(exc)
        else:
            for future, ranking in zip(batch.futures, results):
                future.set_result(ranking)
        with self._lock:
            self._batches += 1
            if len(batch.queries) > 1:
                self._coalesced_batches += 1
            self._largest_batch = max(self._largest_batch, len(batch.queries))

    def flush(self) -> None:
        """Dispatch every open batch now (testing / shutdown aid)."""
        with self._cv:
            batches = list(self._groups.values())
            self._groups.clear()
        for batch in batches:
            self._pool.submit(self._run_batch, batch)

    @property
    def stats(self) -> dict:
        with self._lock:
            return {
                "submitted": self._submitted,
                "batches": self._batches,
                "coalesced_batches": self._coalesced_batches,
                "largest_batch": self._largest_batch,
            }

    def close(self) -> None:
        """Flush the open batches, then stop the flusher and the pool."""
        with self._cv:
            if self._closed:
                return
            self._closed = True
            batches = list(self._groups.values())
            self._groups.clear()
            self._cv.notify_all()
        for batch in batches:
            self._pool.submit(self._run_batch, batch)
        self._flusher.join(timeout=5.0)
        self._pool.shutdown(wait=True)


class QueryFrontend:
    """Validating, caching, batching face of one engine.

    ``query`` is the serving entry point: it validates eagerly (so a
    bad query is rejected *before* it can join — and poison — a
    coalesced batch), consults the result cache under the current
    snapshot digest, and otherwise rides a dynamic batch through the
    engine's ``query_many`` — results are bit-identical to calling
    ``query_many`` directly.

    ``reload`` is the zero-downtime swap: the engine moves onto the
    new snapshot (in-flight batches drain on the old backend), and
    only then does the frontend advance its digest and drop the cache
    in one atomic step.  In-flight queries may resolve against either
    snapshot during the window — exactly the router's swap semantics —
    but a *cached* ranking is always served under the digest of the
    snapshot that computed it.
    """

    def __init__(
        self,
        engine,
        config: FrontendConfig | None = None,
        cache: ResultCache | None = None,
    ):
        self.engine = engine
        self.config = config or FrontendConfig.from_env()
        self.cache = (
            cache
            if cache is not None
            else ResultCache(self.config.cache_size, ttl=self.config.cache_ttl)
        )
        self._reload_lock = threading.Lock()
        # reloads serialise under the lock; query/stats/watch read the
        # digest racily on purpose — a stale read is indistinguishable
        # from having queried an instant before the swap
        self._digest = engine.serving_digest()  # guarded-by: _reload_lock (writes)
        self._coalescer = BatchCoalescer(
            self._dispatch,
            max_batch=self.config.max_batch,
            max_delay=self.config.max_delay_ms / 1000.0,
            dispatch_workers=self.config.dispatch_workers,
        )
        self._watch_stop = threading.Event()
        self._watcher: threading.Thread | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def _dispatch(
        self, class_name: str, queries: Sequence[NodeId], k: int | None
    ) -> list[Ranking]:
        return self.engine.query_many(class_name, list(queries), k=k)

    @property
    def digest(self) -> str:
        """Digest of the snapshot this frontend currently serves."""
        return self._digest

    def query(
        self, class_name: str, query: NodeId, k: int | None = 10
    ) -> Ranking:
        """One ranking — validated, cached, batch-coalesced.

        Raises exactly what the engine's own ``query`` raises
        (:class:`~repro.exceptions.QueryError` for unrankable nodes,
        :class:`~repro.exceptions.LearningError` for unknown classes,
        ...), and raises it *here*, before the query can join a batch.
        """
        self.engine._require_fresh()
        self.engine.model(class_name)
        require_valid_k(k)
        self.engine._validate_query_node(query)
        digest = self._digest
        key = result_key(
            digest,
            class_name,
            query,
            k,
            universe_digest(self.engine.universe()),
        )
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        future = self._coalescer.submit(class_name, query, k)
        result = future.result(timeout=self.config.request_timeout)
        # a reload may have landed while this batch was in flight; the
        # result then belongs to an unknowable snapshot generation, so
        # it must not be memoised under the pre-reload key
        if self._digest == digest:
            self.cache.put(key, result)
        return result

    # ------------------------------------------------------------------
    # hot reload
    # ------------------------------------------------------------------
    def reload(self, snapshot: str | Path | None = None) -> dict:
        """Swap serving onto a new snapshot with zero downtime.

        With ``snapshot`` the engine hot-loads that snapshot directory
        (:meth:`SemanticProximitySearch.reload_index`); without, it
        re-warms the serving tier over its current counts
        (:meth:`~SemanticProximitySearch.refresh_serving`).  Order is
        load-bearing: the router swap completes *first*, then the
        digest advances and the cache is invalidated atomically —
        queries keyed after this point can only hit post-swap entries.
        """
        with self._reload_lock:
            if snapshot is not None:
                self.engine.reload_index(snapshot)
            else:
                self.engine.refresh_serving()
            self._digest = self.engine.serving_digest()
            dropped = self.cache.invalidate()
        return {"digest": self._digest, "invalidated": dropped}

    def watch(
        self, snapshot_dir: str | Path, poll_interval: float = 1.0
    ) -> None:
        """Poll a snapshot directory and hot-reload when its digest moves.

        A half-written snapshot (publisher mid-save) fails digest
        verification and is skipped until a consistent manifest
        appears; the watcher never takes a broken snapshot live.
        """
        if self._watcher is not None:
            raise ServingError("frontend is already watching a snapshot dir")
        snapshot_dir = Path(snapshot_dir)

        def poll() -> None:
            while not self._watch_stop.wait(poll_interval):
                try:
                    on_disk = snapshot_digest(snapshot_dir)
                except (SnapshotError, OSError):
                    continue
                if on_disk != self._digest:
                    try:
                        self.reload(snapshot_dir)
                    except ReproError:
                        continue

        self._watcher = threading.Thread(
            target=poll, name="repro-frontend-watcher", daemon=True
        )
        self._watcher.start()

    # ------------------------------------------------------------------
    # observability / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "digest": self._digest,
            "classes": list(self.engine.classes),
            "cache": {
                "entries": len(self.cache),
                "max_size": self.cache.max_size,
                "ttl": self.cache.ttl,
                **self.cache.stats.to_dict(),
            },
            "batching": self._coalescer.stats,
        }

    def close(self) -> None:
        """Stop the watcher and the coalescer (the engine stays open)."""
        if self._closed:
            return
        self._closed = True
        self._watch_stop.set()
        if self._watcher is not None:
            self._watcher.join(timeout=5.0)
            self._watcher = None
        self._coalescer.close()

    def __enter__(self) -> "QueryFrontend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# HTTP face
# ----------------------------------------------------------------------
def _error_status(exc: Exception) -> int:
    """Map a serving exception onto the HTTP status it deserves."""
    if isinstance(exc, QueryError):
        return 400  # the query itself is unrankable
    if isinstance(exc, (ServingError, StaleIndexError)):
        return 503  # the fleet / index, not the query
    if isinstance(exc, LearningError):
        return 404  # unknown class
    if isinstance(exc, (SnapshotError, ValueError)):
        return 400
    return 500


def parse_listen(listen: str) -> tuple[str, int]:
    """Split a ``HOST:PORT`` listen spec (port required)."""
    host, sep, port = listen.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"listen spec must be HOST:PORT, got {listen!r}"
        )
    return host, int(port)


class _FrontendHandler(BaseHTTPRequestHandler):
    """One request: ``/query``, ``/reload``, ``/stats``, ``/health``."""

    frontend: QueryFrontend  # class attribute, bound per server
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # the server is library code; stderr is not its log

    def _send_json(self, status: int, doc: dict) -> None:
        payload = json.dumps(doc).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        doc = json.loads(self.rfile.read(length).decode("utf-8"))
        if not isinstance(doc, dict):
            raise ValueError("request body must be a JSON object")
        return doc

    def _handle_query(
        self, class_name: str, query: NodeId, k: int | None
    ) -> None:
        try:
            results = self.frontend.query(class_name, query, k=k)
        except Exception as exc:  # noqa: BLE001 — mapped to a status
            # Exception, not BaseException: KeyboardInterrupt/SystemExit
            # must unwind the handler thread, never become an HTTP 500
            self._send_json(_error_status(exc), {"error": str(exc)})
            return
        self._send_json(
            200,
            {
                "class": class_name,
                "query": encode_node_id(query),
                "k": k,
                "digest": self.frontend.digest,
                "results": [
                    [encode_node_id(node), score] for node, score in results
                ],
            },
        )

    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        url = urlsplit(self.path)
        if url.path == "/health":
            self._send_json(
                200, {"status": "ok", "digest": self.frontend.digest}
            )
        elif url.path == "/stats":
            self._send_json(200, self.frontend.stats())
        elif url.path == "/query":
            params = parse_qs(url.query)
            class_name = (params.get("class") or [None])[0]
            query = (params.get("query") or [None])[0]
            if class_name is None or query is None:
                self._send_json(
                    400, {"error": "query needs class= and query= params"}
                )
                return
            raw_k = (params.get("k") or ["10"])[0]
            try:
                k = None if raw_k.lower() in ("none", "null") else int(raw_k)
            except ValueError:
                self._send_json(400, {"error": f"bad k: {raw_k!r}"})
                return
            self._handle_query(class_name, query, k)
        else:
            self._send_json(404, {"error": f"no route {url.path}"})

    def do_POST(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        url = urlsplit(self.path)
        try:
            doc = self._read_body()
        except ValueError as exc:
            self._send_json(400, {"error": f"bad request body: {exc}"})
            return
        if url.path == "/query":
            if "class" not in doc or "query" not in doc:
                self._send_json(
                    400, {"error": "body needs 'class' and 'query'"}
                )
                return
            k = doc.get("k", 10)
            if k is not None and not isinstance(k, int):
                self._send_json(400, {"error": f"bad k: {k!r}"})
                return
            self._handle_query(
                str(doc["class"]), decode_node_id(doc["query"]), k
            )
        elif url.path == "/reload":
            try:
                outcome = self.frontend.reload(doc.get("snapshot"))
            except Exception as exc:  # noqa: BLE001 — mapped to a status
                # Exception, not BaseException — same shutdown-signal
                # taxonomy as _handle_query
                self._send_json(_error_status(exc), {"error": str(exc)})
                return
            self._send_json(200, outcome)
        else:
            self._send_json(404, {"error": f"no route {url.path}"})


class FrontendServer:
    """A :class:`QueryFrontend` behind a stdlib threading HTTP server.

    ``port=0`` binds an ephemeral port; read it back from
    :attr:`address`.  ``serve_forever`` blocks (the CLI path);
    ``start`` serves from a daemon thread (tests, embedding).
    """

    def __init__(
        self, frontend: QueryFrontend, host: str = "127.0.0.1", port: int = 0
    ):
        self.frontend = frontend
        handler = type(
            "_BoundFrontendHandler", (_FrontendHandler,), {"frontend": frontend}
        )
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` (blocking)."""
        self._httpd.serve_forever()

    def start(self) -> "FrontendServer":
        """Serve from a background daemon thread; returns self."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-frontend-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop accepting requests and close the listening socket."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "FrontendServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
