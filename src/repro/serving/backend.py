"""Shard backends: how the router reaches a shard's scoring.

:class:`~repro.serving.router.QueryRouter` routes and merges; *where*
each shard's arithmetic runs is this module's seam:

- :class:`InProcessBackend` — the PR-5 behaviour: every shard is a
  :class:`~repro.serving.shards.CompiledShard` in this process and a
  score call is a plain function call into
  :func:`~repro.serving.protocol.score_group_on_shard`;
- :class:`SubprocessBackend` — a supervisor over standalone shard
  worker processes (:mod:`repro.serving.worker`): it spawns
  ``num_shards x replicas`` workers that mmap their slice from the
  snapshot's format-v2 sidecar, speaks the
  :mod:`~repro.serving.protocol` frames to them over Unix sockets,
  fails a shard's request over to the next replica when a worker dies
  (restarting the dead one in the background), and keeps retrying
  until the request deadline — a batch never loses queries to a
  single worker death.

Both backends execute the same scoring function on the same sliced
arrays, so the router's merged rankings are bit-identical across them
— the property every serving test pins.

Environment knobs (all overridable per-backend in the constructor):

- ``REPRO_SERVING_REPLICAS`` — workers per shard (default 1);
- ``REPRO_SERVING_DEADLINE`` — seconds a shard request may retry
  across replicas/restarts before :class:`ServingError` (default 15);
- ``REPRO_SERVING_DRAIN_TIMEOUT`` — seconds a closing backend waits
  for workers to drain after SIGTERM before killing them (default 5);
- ``REPRO_SERVING_START_TIMEOUT`` — seconds to wait for a spawned
  worker's handshake (default 30).
"""

from __future__ import annotations

import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
import weakref
from abc import ABC, abstractmethod
from pathlib import Path

import numpy as np

from repro.exceptions import LearningError, ServingError
from repro.graph.typed_graph import NodeId
from repro.index.persist import load_compiled, read_manifest
from repro.learning.model import ProximityModel, SortedUniverse
from repro.serving.protocol import (
    ScoreRequest,
    decode_rankings,
    raise_remote_error,
    recv_frame,
    score_group_on_shard,
    send_frame,
    universe_digest,
)
from repro.serving.shards import shard_ranges


def _env_float(name: str, default: float) -> float:
    return float(os.environ.get(name, default))


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


class ShardBackend(ABC):
    """Where shard scoring happens; the router is transport-blind.

    A backend owns the routing table (the global anchor universe and
    the shard bounds) and one ``score_group`` entry point; everything
    else — fan-out, merge, empty-slot padding — stays in the router
    and is therefore identical across transports.
    """

    #: shard s owns global rows [bounds[s], bounds[s+1])
    _bounds: np.ndarray

    @property
    @abstractmethod
    def num_shards(self) -> int: ...

    @property
    @abstractmethod
    def nodes(self) -> tuple[NodeId, ...]:
        """The global anchor universe, in position order."""

    @abstractmethod
    def position(self, node: NodeId) -> int | None:
        """Global universe row of a node (None if absent)."""

    @abstractmethod
    def score_group(
        self,
        model: ProximityModel,
        shard_id: int,
        group: list[tuple[int, NodeId, int]],
        universe: SortedUniverse | None,
        k: int | None,
    ) -> dict[int, list[tuple[NodeId, float]]]:
        """Rankings per batch slot for one shard's query group."""

    def shard_id_of(self, global_pos: int) -> int:
        return int(np.searchsorted(self._bounds, global_pos, side="right")) - 1

    def start(self) -> None:
        """Warm the backend until it can take traffic (idempotent)."""

    def close(self) -> None:
        """Release every resource the backend holds (idempotent)."""


class InProcessBackend(ShardBackend):
    """Shards live in this process; scoring is a function call."""

    def __init__(self, sharded) -> None:
        self.sharded = sharded  # ShardedVectors
        self._bounds = sharded._bounds
        # per-model per-shard (node_dots, pair_dots); weak keys so a
        # replaced model's entry dies with it instead of lingering (or,
        # worse, being served to a new model that recycled its id)
        self._dots: "weakref.WeakKeyDictionary[ProximityModel, list[tuple[np.ndarray, np.ndarray]]]" = (
            weakref.WeakKeyDictionary()
        )

    @property
    def num_shards(self) -> int:
        return self.sharded.num_shards

    @property
    def nodes(self) -> tuple[NodeId, ...]:
        return self.sharded.source.nodes

    def position(self, node: NodeId) -> int | None:
        return self.sharded.position(node)

    def _model_dots(
        self, model: ProximityModel
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        if model.compiled is not self.sharded.source:
            raise LearningError(
                "model is not compiled against this router's snapshot; "
                "rebuild the router (or recompile the model) after the "
                "counts change"
            )
        dots = self._dots.get(model)
        if dots is None:
            dots = [
                (
                    shard.node_dot_products(model.weights),
                    shard.pair_dot_products(model.weights),
                )
                for shard in self.sharded.shards
            ]
            self._dots[model] = dots
        return dots

    def score_group(
        self,
        model: ProximityModel,
        shard_id: int,
        group: list[tuple[int, NodeId, int]],
        universe: SortedUniverse | None,
        k: int | None,
    ) -> dict[int, list[tuple[NodeId, float]]]:
        node_dots, pair_dots = self._model_dots(model)[shard_id]
        return score_group_on_shard(
            self.sharded.shards[shard_id], node_dots, pair_dots, group,
            universe, k,
        )

    def __repr__(self) -> str:
        return f"<InProcessBackend: {self.sharded!r}>"


class _TransportFailure(Exception):
    """A worker could not be reached/answer; failover-eligible."""


class _WorkerHandle:
    """One worker process of one shard: socket, connection, liveness."""

    def __init__(self, shard_id: int, replica: int, socket_path: Path):
        self.shard_id = shard_id
        self.replica = replica
        self.socket_path = socket_path
        # spawns serialise under the lock; liveness probes (`alive`,
        # `poll`, teardown) read the reference racily on purpose
        self.proc: subprocess.Popen | None = None  # guarded-by: lock (writes)
        self.conn: socket.socket | None = None  # guarded-by: lock
        # universes this worker *incarnation* has cached, so the router
        # can inline the payload proactively after a restart
        self.known_universes: set[str] = set()  # guarded-by: lock
        self.lock = threading.Lock()

    @property
    def name(self) -> str:
        return f"shard {self.shard_id} replica {self.replica}"

    def drop_connection(self) -> None:  # guarded-by-caller: lock
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:
                pass
            self.conn = None

    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    def kill(self) -> None:
        """Forcibly end this worker incarnation (connection included)."""
        self.drop_connection()
        if self.alive():
            try:
                self.proc.kill()
            except OSError:
                pass
        if self.proc is not None:
            try:
                self.proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                pass


class SubprocessBackend(ShardBackend):
    """Supervise shard worker processes and speak the wire protocol.

    ``snapshot_path`` must hold a format-v2 snapshot (the workers mmap
    its compiled sidecar).  ``replicas`` workers serve each shard;
    requests go to the first live replica and fail over in replica
    order, restarting dead workers as they are discovered, until
    ``deadline`` seconds have elapsed — only then does a shard request
    fail, with :class:`ServingError`.
    """

    def __init__(
        self,
        snapshot_path: str | Path,
        num_shards: int,
        replicas: int | None = None,
        deadline: float | None = None,
        drain_timeout: float | None = None,
        start_timeout: float | None = None,
    ):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.snapshot_path = Path(snapshot_path)
        self._num_shards = num_shards
        self.replicas = (
            _env_int("REPRO_SERVING_REPLICAS", 1) if replicas is None else replicas
        )
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas}")
        self.deadline = (
            _env_float("REPRO_SERVING_DEADLINE", 15.0)
            if deadline is None
            else deadline
        )
        self.drain_timeout = (
            _env_float("REPRO_SERVING_DRAIN_TIMEOUT", 5.0)
            if drain_timeout is None
            else drain_timeout
        )
        self.start_timeout = (
            _env_float("REPRO_SERVING_START_TIMEOUT", 30.0)
            if start_timeout is None
            else start_timeout
        )
        self._workers: list[list[_WorkerHandle]] = []
        self._socket_dir: Path | None = None
        self._nodes: tuple[NodeId, ...] | None = None
        self._pos: dict[NodeId, int] = {}
        self._started = False
        self._closed = False

    # -- routing table -------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self._num_shards

    @property
    def nodes(self) -> tuple[NodeId, ...]:
        self.start()
        return self._nodes

    def position(self, node: NodeId) -> int | None:
        self.start()
        return self._pos.get(node)

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        if self._closed:
            raise ServingError("backend already closed; build a new one")
        if self._started:
            return
        manifest = read_manifest(self.snapshot_path)
        if not manifest.get("compiled_arrays"):
            raise ServingError(
                f"snapshot at {self.snapshot_path} has no format-v2 "
                "compiled sidecar; process workers mmap their slice from "
                "it — re-save the snapshot first"
            )
        # the supervisor's routing table is the same mmap'd sidecar the
        # workers slice, so router and fleet agree on positions by
        # construction
        compiled = load_compiled(self.snapshot_path, manifest=manifest)
        self._nodes = compiled.nodes
        self._pos = {node: i for i, node in enumerate(compiled.nodes)}
        self._bounds = np.asarray(
            [lo for lo, _hi in shard_ranges(compiled.num_nodes, self._num_shards)]
            + [compiled.num_nodes],
            dtype=np.int64,
        )
        self._socket_dir = Path(
            tempfile.mkdtemp(prefix="repro-serving-")
        )
        self._workers = [
            [
                _WorkerHandle(
                    shard_id,
                    replica,
                    self._socket_dir / f"shard{shard_id}-r{replica}.sock",
                )
                for replica in range(self.replicas)
            ]
            for shard_id in range(self._num_shards)
        ]
        try:
            for handles in self._workers:
                for handle in handles:
                    # the handles are unpublished until start() returns,
                    # but _spawn's discipline is caller-holds-lock —
                    # uncontended here, so hold it rather than carve an
                    # exception into the rule
                    with handle.lock:
                        self._spawn(handle)
            deadline = time.monotonic() + self.start_timeout
            for handles in self._workers:
                for handle in handles:
                    with handle.lock:
                        self._ensure_connected(handle, deadline)
        except BaseException:
            self._started = True  # so close() tears the fleet down
            self.close()
            raise
        self._started = True

    def _spawn(self, handle: _WorkerHandle) -> None:  # guarded-by-caller: handle.lock
        handle.drop_connection()
        handle.known_universes.clear()
        try:
            handle.socket_path.unlink()
        except OSError:
            pass
        env = os.environ.copy()
        # guarantee the child resolves the same `repro` (and its deps)
        # as this process, however the parent was launched
        package_root = str(Path(__file__).resolve().parents[2])
        parts = [package_root] + [
            p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p
        ]
        env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
        handle.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.serving.worker",
                "--snapshot", str(self.snapshot_path),
                "--shard", str(handle.shard_id),
                "--num-shards", str(self._num_shards),
                "--socket", str(handle.socket_path),
                "--drain-timeout", str(self.drain_timeout),
            ],
            env=env,
            stdout=subprocess.DEVNULL,
        )

    def _ensure_connected(self, handle: _WorkerHandle, deadline: float) -> None:  # guarded-by-caller: handle.lock
        """Connect + handshake (lock held); _TransportFailure on give-up."""
        if handle.conn is not None:
            return
        if not handle.alive():
            self._spawn(handle)
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise _TransportFailure(
                    f"{handle.name}: no worker became reachable in time"
                )
            if handle.proc is not None and handle.proc.poll() is not None:
                raise _TransportFailure(
                    f"{handle.name}: worker exited with code "
                    f"{handle.proc.returncode} before serving"
                )
            conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            conn.settimeout(max(remaining, 0.01))
            try:
                conn.connect(str(handle.socket_path))
                send_frame(conn, {"op": "hello"})
                hello = recv_frame(conn)
            except (OSError, ServingError):
                conn.close()
                time.sleep(0.02)
                continue
            if (
                hello is None
                or not hello.get("ok")
                or hello.get("shard") != handle.shard_id
            ):
                conn.close()
                # the worker is live but wrong (serving another shard,
                # stale spawn, rogue process on the socket): left alone
                # the failover loop would retry it until the deadline
                # burns, because it only respawns dead workers — kill
                # this incarnation so the next attempt spawns a correct
                # replacement
                handle.kill()
                raise _TransportFailure(
                    f"{handle.name}: bad handshake response {hello!r} "
                    "(worker killed for respawn)"
                )
            handle.conn = conn
            return

    def poll(self) -> dict[tuple[int, int], bool]:
        """Liveness per (shard, replica) — operator introspection."""
        return {
            (handle.shard_id, handle.replica): handle.alive()
            for handles in self._workers
            for handle in handles
        }

    def close(self) -> None:
        if self._closed or not self._started:
            self._closed = True
            return
        self._closed = True
        procs = []
        for handles in self._workers:
            for handle in handles:
                handle.drop_connection()
                if handle.alive():
                    try:
                        handle.proc.send_signal(signal.SIGTERM)
                    except OSError:
                        pass
                if handle.proc is not None:
                    procs.append(handle.proc)
        deadline = time.monotonic() + self.drain_timeout
        for proc in procs:
            try:
                proc.wait(timeout=max(deadline - time.monotonic(), 0.05))
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        if self._socket_dir is not None:
            shutil.rmtree(self._socket_dir, ignore_errors=True)

    # -- serving -------------------------------------------------------
    def _call(  # guarded-by-caller: handle.lock
        self, handle: _WorkerHandle, doc: dict, deadline: float
    ) -> dict:
        """One request/response on a connected handle (lock held)."""
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise _TransportFailure(f"{handle.name}: request deadline elapsed")
        try:
            handle.conn.settimeout(remaining)
            send_frame(handle.conn, doc)
            response = recv_frame(handle.conn)
        except (OSError, ServingError) as exc:
            handle.drop_connection()
            raise _TransportFailure(f"{handle.name}: {exc}") from exc
        if response is None:
            handle.drop_connection()
            raise _TransportFailure(
                f"{handle.name}: worker closed the connection mid-request"
            )
        return response

    def _score_on_worker(
        self,
        handle: _WorkerHandle,
        request: ScoreRequest,
        deadline: float,
    ) -> dict[int, list[tuple[NodeId, float]]]:
        digest = (
            None if request.universe is None else universe_digest(request.universe)
        )
        with handle.lock:
            self._ensure_connected(handle, deadline)
            request.include_universe = (
                digest is not None and digest not in handle.known_universes
            )
            response = self._call(handle, request.to_wire(), deadline)
            if response.get("need") == "universe":
                # cold replica (restart raced our bookkeeping): re-send
                # with the universe inline
                request.include_universe = True
                response = self._call(handle, request.to_wire(), deadline)
                if response.get("need") == "universe":
                    # the worker restarted again between the two calls:
                    # its caches are empty and this connection now talks
                    # to an incarnation our bookkeeping knows nothing
                    # about — retriable, not a protocol violation
                    handle.known_universes.discard(digest)
                    handle.drop_connection()
                    raise _TransportFailure(
                        f"{handle.name}: universe cache miss persisted "
                        "after an inline re-send (worker restarted "
                        "mid-request)"
                    )
            if not response.get("ok"):
                error = response.get("error")
                if isinstance(error, dict):
                    raise_remote_error(error)  # deterministic; no failover
                raise _TransportFailure(
                    f"{handle.name}: malformed response {response!r}"
                )
            if digest is not None:
                handle.known_universes.add(digest)
            return decode_rankings(response["results"])

    def score_group(
        self,
        model: ProximityModel,
        shard_id: int,
        group: list[tuple[int, NodeId, int]],
        universe: SortedUniverse | None,
        k: int | None,
    ) -> dict[int, list[tuple[NodeId, float]]]:
        self.start()
        request = ScoreRequest(
            queries=group, weights=model.weights, k=k, universe=universe
        )
        deadline = time.monotonic() + self.deadline
        failures: list[str] = []
        while True:
            for handle in self._workers[shard_id]:
                try:
                    return self._score_on_worker(handle, request, deadline)
                except _TransportFailure as exc:
                    # replica is gone: respawn it in the background and
                    # fail the request over to the next one
                    failures.append(str(exc))
                    with handle.lock:
                        if not handle.alive():
                            self._spawn(handle)
            if time.monotonic() >= deadline:
                detail = "; ".join(failures[-2 * self.replicas :])
                raise ServingError(
                    f"shard {shard_id}: no replica answered within "
                    f"{self.deadline:.1f}s ({detail})"
                )
            time.sleep(0.02)

    def __repr__(self) -> str:
        return (
            f"<SubprocessBackend: {self._num_shards} shards x "
            f"{self.replicas} replicas over {self.snapshot_path}>"
        )
