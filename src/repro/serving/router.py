"""Multi-worker query router over a sharded compiled snapshot.

The serving tier's fan-out/merge layer: :class:`ShardedVectors` holds
the K node-range shards of one compiled snapshot, and
:class:`QueryRouter` answers query batches against them —

1. *route*: each query belongs to exactly one shard (the one owning its
   universe position), because a node's candidate lists live with its
   row;
2. *fan out*: per-shard query groups are scored concurrently on a
   thread pool (``workers``), each producing the query's positively
   scored, in-universe top-k partial ranking;
3. *merge*: partial rankings return to batch order and are padded with
   zero-proximity universe members exactly like the single-process
   compiled path (:func:`~repro.learning.model.pad_with_universe`), so
   the merged output is bit-identical to the unsharded backend.

Per-model state is two dot-product arrays per shard (the same O(nnz)
passes as the unsharded backend, sliced), cached per
(model, snapshot) — attaching a second class or re-routing after
``apply_updates()`` never re-partitions more than it must.
"""

from __future__ import annotations

import weakref
from collections.abc import Iterable, Sequence
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.exceptions import LearningError
from repro.graph.typed_graph import NodeId
from repro.index.compiled import CompiledVectors
from repro.learning.model import (
    ProximityModel,
    SortedUniverse,
    _descending_order,
    pad_with_universe,
    require_valid_k,
)
from repro.serving.shards import CompiledShard, partition_compiled


class ShardedVectors:
    """K node-range shards over one compiled snapshot."""

    def __init__(self, shards: Sequence[CompiledShard], source: CompiledVectors):
        self.shards = list(shards)
        self.source = source
        # shard s owns global rows [bounds[s], bounds[s+1])
        self._bounds = np.asarray(
            [shard.lo for shard in self.shards] + [source.num_nodes],
            dtype=np.int64,
        )

    @classmethod
    def partition(
        cls, compiled: CompiledVectors, num_shards: int
    ) -> "ShardedVectors":
        return cls(partition_compiled(compiled, num_shards), compiled)

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def position(self, node: NodeId) -> int | None:
        """Global universe row of a node (None if absent)."""
        return self.source.position(node)

    def shard_of(self, global_pos: int) -> CompiledShard:
        index = int(np.searchsorted(self._bounds, global_pos, side="right")) - 1
        return self.shards[index]

    def __repr__(self) -> str:
        return (
            f"<ShardedVectors: {self.num_shards} shards over "
            f"{self.source.num_nodes} nodes>"
        )


class QueryRouter:
    """Fan query batches out across shard workers and merge the results."""

    def __init__(self, sharded: ShardedVectors, workers: int = 1):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.sharded = sharded
        self.workers = workers
        self._executor: ThreadPoolExecutor | None = None
        # per-model per-shard (node_dots, pair_dots); weak keys so a
        # replaced model's entry dies with it instead of lingering (or,
        # worse, being served to a new model that recycled its id)
        self._dots: "weakref.WeakKeyDictionary[ProximityModel, list[tuple[np.ndarray, np.ndarray]]]" = (
            weakref.WeakKeyDictionary()
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "QueryRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _pool(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-shard",
            )
        return self._executor

    # ------------------------------------------------------------------
    # per-model shard state
    # ------------------------------------------------------------------
    def _model_dots(
        self, model: ProximityModel
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        if model.compiled is not self.sharded.source:
            raise LearningError(
                "model is not compiled against this router's snapshot; "
                "rebuild the router (or recompile the model) after the "
                "counts change"
            )
        dots = self._dots.get(model)
        if dots is None:
            dots = [
                (
                    shard.node_dot_products(model.weights),
                    shard.pair_dot_products(model.weights),
                )
                for shard in self.sharded.shards
            ]
            self._dots[model] = dots
        return dots

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def rank(
        self,
        model: ProximityModel,
        query: NodeId,
        universe: Iterable[NodeId] | None = None,
        k: int | None = None,
    ) -> list[tuple[NodeId, float]]:
        """Rank one query through the sharded tier."""
        return self.rank_many(model, [query], universe=universe, k=k)[0]

    def rank_many(
        self,
        model: ProximityModel,
        queries: Sequence[NodeId],
        universe: Iterable[NodeId] | None = None,
        k: int | None = None,
    ) -> list[list[tuple[NodeId, float]]]:
        """One ranking per query, bit-identical to the unsharded path."""
        require_valid_k(k)
        dots = self._model_dots(model)
        if universe is not None and not isinstance(universe, SortedUniverse):
            universe = SortedUniverse(universe)

        # route: group batch slots by owning shard; absent nodes score
        # as an empty candidate set, exactly like the unsharded path
        groups: dict[int, list[tuple[int, NodeId, int]]] = {}
        empty: list[tuple[int, NodeId]] = []
        for slot, query in enumerate(queries):
            pos = self.sharded.position(query)
            if pos is None:
                empty.append((slot, query))
            else:
                shard = self.sharded.shard_of(pos)
                groups.setdefault(shard.shard_id, []).append((slot, query, pos))

        results: list[list[tuple[NodeId, float]] | None] = [None] * len(queries)

        def score_group(shard_id: int) -> None:
            shard = self.sharded.shards[shard_id]
            node_dots, pair_dots = dots[shard_id]
            for slot, query, pos in groups[shard_id]:
                results[slot] = _score_on_shard(
                    shard, node_dots, pair_dots, query, pos, universe, k
                )

        if self.workers > 1 and len(groups) > 1:
            pool = self._pool()
            for future in [
                pool.submit(score_group, shard_id) for shard_id in groups
            ]:
                future.result()
        else:
            for shard_id in groups:
                score_group(shard_id)

        for slot, query in empty:
            if k is not None and k <= 0:
                results[slot] = []
            elif universe is None:
                results[slot] = []
            else:
                results[slot] = pad_with_universe([], query, universe, k)
        return results  # type: ignore[return-value]

    def __repr__(self) -> str:
        return (
            f"<QueryRouter: {self.sharded.num_shards} shards, "
            f"{self.workers} workers>"
        )


def _score_on_shard(
    shard: CompiledShard,
    node_dots: np.ndarray,
    pair_dots: np.ndarray,
    query: NodeId,
    global_pos: int,
    universe: SortedUniverse | None,
    k: int | None,
) -> list[tuple[NodeId, float]]:
    """Score one query on its owning shard — the unsharded math, sliced.

    Mirrors ``ProximityModel._rank_compiled`` operation for operation
    (same candidate order, same masked division, same stable top-k) so
    scores and tie-breaks are bit-identical.
    """
    if k is not None and k <= 0:
        return []
    row = shard.local_row(global_pos)
    cand, pair = shard.candidates_of(row)
    keep = cand != row
    cand, pair = cand[keep], pair[keep]
    numerators = 2.0 * pair_dots[pair]
    denominators = node_dots[row] + node_dots[cand]
    scores = np.zeros(len(cand), dtype=np.float64)
    positive = denominators > 0.0
    scores[positive] = numerators[positive] / denominators[positive]

    nodes = shard.nodes
    if universe is None:
        order = _descending_order(scores, k)
        return [(nodes[cand[j]], float(scores[j])) for j in order]
    in_universe = universe.mask_over(shard)[cand]
    hit = np.flatnonzero(in_universe & (scores > 0.0))
    order = hit[_descending_order(scores[hit], k)]
    result = [(nodes[cand[j]], float(scores[j])) for j in order]
    return pad_with_universe(result, query, universe, k)
