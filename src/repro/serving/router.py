"""Multi-worker query router over a sharded compiled snapshot.

The serving tier's fan-out/merge layer: :class:`ShardedVectors` holds
the K node-range shards of one compiled snapshot, and
:class:`QueryRouter` answers query batches against a
:class:`~repro.serving.backend.ShardBackend` —

1. *route*: each query belongs to exactly one shard (the one owning its
   universe position), because a node's candidate lists live with its
   row;
2. *fan out*: per-shard query groups are scored concurrently on a
   thread pool (``workers``) through the backend — a function call
   into this process (:class:`~repro.serving.backend.InProcessBackend`)
   or a protocol frame to a shard worker process
   (:class:`~repro.serving.backend.SubprocessBackend`); each group
   returns the queries' positively scored, in-universe top-k partial
   rankings;
3. *merge*: partial rankings return to batch order and are padded with
   zero-proximity universe members exactly like the single-process
   compiled path (:func:`~repro.learning.model.pad_with_universe`), so
   the merged output is bit-identical to the unsharded backend — for
   every transport.

:meth:`QueryRouter.swap` replaces the backend with zero downtime: the
new backend warms first, new batches move to it atomically, and the old
backend closes only after its in-flight batches drain — the serving
half of a live snapshot swap.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterable, Sequence
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.exceptions import ServingError
from repro.graph.typed_graph import NodeId
from repro.index.compiled import CompiledVectors
from repro.learning.model import (
    ProximityModel,
    SortedUniverse,
    pad_with_universe,
    require_valid_k,
)
from repro.serving.backend import InProcessBackend, ShardBackend
from repro.serving.shards import CompiledShard, partition_compiled


class ShardedVectors:
    """K node-range shards over one compiled snapshot."""

    def __init__(self, shards: Sequence[CompiledShard], source: CompiledVectors):
        self.shards = list(shards)
        self.source = source
        # shard s owns global rows [bounds[s], bounds[s+1])
        self._bounds = np.asarray(
            [shard.lo for shard in self.shards] + [source.num_nodes],
            dtype=np.int64,
        )

    @classmethod
    def partition(
        cls, compiled: CompiledVectors, num_shards: int
    ) -> "ShardedVectors":
        return cls(partition_compiled(compiled, num_shards), compiled)

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def position(self, node: NodeId) -> int | None:
        """Global universe row of a node (None if absent)."""
        return self.source.position(node)

    def shard_of(self, global_pos: int) -> CompiledShard:
        index = int(np.searchsorted(self._bounds, global_pos, side="right")) - 1
        return self.shards[index]

    def __repr__(self) -> str:
        return (
            f"<ShardedVectors: {self.num_shards} shards over "
            f"{self.source.num_nodes} nodes>"
        )


class QueryRouter:
    """Fan query batches out across shard workers and merge the results.

    ``backend`` is either a :class:`ShardedVectors` (wrapped into an
    :class:`InProcessBackend`, the PR-5 behaviour) or any started-able
    :class:`ShardBackend`.  ``workers`` bounds the router-side fan-out
    concurrency — threads here are IO/dispatch, the arithmetic runs
    wherever the backend puts it.
    """

    def __init__(
        self, backend: ShardBackend | ShardedVectors, workers: int = 1
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if isinstance(backend, ShardedVectors):
            backend = InProcessBackend(backend)
        backend.start()
        self.workers = workers
        # writes serialise under the lock; readers take a benign
        # point-in-time snapshot (a stale backend is indistinguishable
        # from having read one instant earlier)
        self._backend: ShardBackend | None = backend  # guarded-by: _cv (writes)
        self._executor: ThreadPoolExecutor | None = None  # guarded-by: _cv
        self._cv = threading.Condition()
        # in-flight batch count per backend: swap() drains the old
        # backend against this before closing it
        self._inflight: dict[ShardBackend, int] = {}  # guarded-by: _cv

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def backend(self) -> ShardBackend | None:
        return self._backend

    @property
    def sharded(self) -> ShardedVectors | None:
        """The in-process shard set, when the backend holds one."""
        return getattr(self._backend, "sharded", None)

    def close(self, drain_timeout: float = 30.0) -> None:
        """Shut the dispatch pool and the backend down (idempotent).

        Like :meth:`swap`, the backend's in-flight batches drain first
        (new batches are rejected the moment the backend detaches): a
        concurrent ``rank_many`` that already acquired the backend would
        otherwise race the teardown and hit closed worker sockets
        mid-request.  After ``drain_timeout`` seconds the stragglers are
        abandoned to race the close, exactly like a worker death.
        """
        with self._cv:
            backend, self._backend = self._backend, None
            if backend is not None:
                self._drain_locked(backend, drain_timeout)
            # the executor outlives the drain: in-flight batches may
            # still be fanning groups out on it right up to their
            # release; detach under the lock, shut down outside it
            # (workers release batches through `_cv` — waiting on them
            # while holding it would deadlock)
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)
        if backend is not None:
            backend.close()

    def __enter__(self) -> "QueryRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _pool(self) -> ThreadPoolExecutor:
        # lazy creation must hold the lock: two first batches arriving
        # together would otherwise each build a pool and leak one
        with self._cv:
            if self._backend is None:
                # a straggler past close()'s drain timeout: refuse to
                # resurrect a pool nobody would ever shut down
                raise ServingError("router is closed")
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-shard",
                )
            return self._executor

    # ------------------------------------------------------------------
    # zero-downtime backend swap
    # ------------------------------------------------------------------
    def swap(
        self,
        backend: ShardBackend | ShardedVectors,
        drain_timeout: float = 30.0,
    ) -> None:
        """Replace the backend without dropping a query.

        The new backend warms (``start()``) while the old one keeps
        serving; new batches switch over atomically; the old backend is
        closed once its in-flight batches drain (or ``drain_timeout``
        elapses — the stragglers then race the close, exactly like a
        worker death, which the process backend already survives).
        """
        if isinstance(backend, ShardedVectors):
            backend = InProcessBackend(backend)
        backend.start()
        with self._cv:
            if self._backend is None:
                backend.close()
                raise ServingError("router is closed; cannot swap backends")
            old, self._backend = self._backend, backend
            self._drain_locked(old, drain_timeout)
        old.close()

    def _drain_locked(self, backend: ShardBackend, timeout: float) -> None:  # guarded-by-caller: _cv
        """Wait (``_cv`` held) until ``backend`` has no in-flight batches."""
        # repro-lint: ignore[hot-path-entropy] -- drain-deadline bookkeeping; the clock bounds a wait and never reaches a score or ranking
        deadline = time.monotonic() + timeout
        while self._inflight.get(backend, 0) > 0:
            # repro-lint: ignore[hot-path-entropy] -- same drain deadline; remaining time only parameterises _cv.wait
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            self._cv.wait(remaining)

    def _acquire(self) -> ShardBackend:
        with self._cv:
            backend = self._backend
            if backend is None:
                raise ServingError("router is closed")
            self._inflight[backend] = self._inflight.get(backend, 0) + 1
            return backend

    def _release(self, backend: ShardBackend) -> None:
        with self._cv:
            count = self._inflight.get(backend, 0) - 1
            if count <= 0:
                self._inflight.pop(backend, None)
            else:
                self._inflight[backend] = count
            self._cv.notify_all()

    # ------------------------------------------------------------------
    # compatibility shims for the in-process backend's caches
    # ------------------------------------------------------------------
    def _model_dots(self, model: ProximityModel):
        return self._backend._model_dots(model)

    @property
    def _dots(self):
        return self._backend._dots

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def rank(
        self,
        model: ProximityModel,
        query: NodeId,
        universe: Iterable[NodeId] | None = None,
        k: int | None = None,
    ) -> list[tuple[NodeId, float]]:
        """Rank one query through the sharded tier."""
        return self.rank_many(model, [query], universe=universe, k=k)[0]

    def rank_many(
        self,
        model: ProximityModel,
        queries: Sequence[NodeId],
        universe: Iterable[NodeId] | None = None,
        k: int | None = None,
    ) -> list[list[tuple[NodeId, float]]]:
        """One ranking per query, bit-identical to the unsharded path."""
        require_valid_k(k)
        if universe is not None and not isinstance(universe, SortedUniverse):
            universe = SortedUniverse(universe)
        backend = self._acquire()
        try:
            return self._rank_on(backend, model, list(queries), universe, k)
        finally:
            self._release(backend)

    def _rank_on(
        self,
        backend: ShardBackend,
        model: ProximityModel,
        queries: list[NodeId],
        universe: SortedUniverse | None,
        k: int | None,
    ) -> list[list[tuple[NodeId, float]]]:
        # route: group batch slots by owning shard; absent nodes score
        # as an empty candidate set, exactly like the unsharded path
        groups: dict[int, list[tuple[int, NodeId, int]]] = {}
        empty: list[tuple[int, NodeId]] = []
        for slot, query in enumerate(queries):
            pos = backend.position(query)
            if pos is None:
                empty.append((slot, query))
            else:
                shard_id = backend.shard_id_of(pos)
                groups.setdefault(shard_id, []).append((slot, query, pos))

        results: list[list[tuple[NodeId, float]] | None] = [None] * len(queries)

        def score_group(shard_id: int) -> None:
            group = groups[shard_id]
            for slot, ranking in backend.score_group(
                model, shard_id, group, universe, k
            ).items():
                results[slot] = ranking

        if self.workers > 1 and len(groups) > 1:
            pool = self._pool()
            futures = [pool.submit(score_group, shard_id) for shard_id in groups]
            # wait for EVERY sibling before surfacing an error: raising
            # on the first failure would release the backend while
            # straggler groups still score on it, letting a concurrent
            # swap()/close() tear the backend down under them
            first_error: BaseException | None = None
            for future in futures:
                try:
                    future.result()
                except BaseException as exc:  # noqa: BLE001 — re-raised below
                    if first_error is None:
                        first_error = exc
            if first_error is not None:
                raise first_error
        else:
            for shard_id in groups:
                score_group(shard_id)

        for slot, query in empty:
            if k is not None and k <= 0:
                results[slot] = []
            elif universe is None:
                results[slot] = []
            else:
                results[slot] = pad_with_universe([], query, universe, k)
        return results  # type: ignore[return-value]

    def __repr__(self) -> str:
        return f"<QueryRouter: {self._backend!r}, {self.workers} workers>"
