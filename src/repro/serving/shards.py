"""Node-range shards of a :class:`~repro.index.compiled.CompiledVectors`.

The compiled CSR snapshot serves one process well, but the ROADMAP's
serving tier wants to spread a query batch over several workers (and,
eventually, machines).  :func:`partition_compiled` splits the anchor
universe into ``K`` contiguous node-range shards; each
:class:`CompiledShard` is self-contained:

- the *owned* rows — the contiguous global position range ``[lo, hi)``
  whose queries this shard answers;
- the owned rows' candidate lists (partner positions and pair rows),
  rebased onto shard-local ids;
- the node CSR rows of every *referenced* node — owned plus the "halo"
  of partners living in other shards' ranges (their ``m_x . w`` is
  needed for MGP denominators) — and the pair CSR rows its candidate
  lists touch.

Because every CSR row is sliced intact (same nonzeros, same order), a
shard's per-row dot products are bit-identical to the unsharded
snapshot's, so sharded rankings merge bit-identically to the
single-process compiled path (proven by tests/serving/test_shards.py).

A shard deliberately quacks like a ``CompiledVectors`` where the
scoring code cares (``nodes``, ``num_nodes``, ``node_dot_products``,
``pair_dot_products``, ``candidates_of``), so
:meth:`~repro.learning.model.SortedUniverse.mask_over` and the router
reuse the exact single-process code paths.
"""

from __future__ import annotations

import numpy as np

from repro.graph.typed_graph import NodeId
from repro.index.compiled import CompiledVectors, csr_dot_products, csr_row_index


def _take_csr_rows(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    rows: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gather whole CSR rows (nonzero order preserved) into a new CSR."""
    rows = np.asarray(rows, dtype=np.int64)
    counts = indptr[rows + 1] - indptr[rows]
    out_indptr = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum(counts, out=out_indptr[1:])
    total = int(out_indptr[-1])
    # source position of each gathered nonzero: its row start plus its
    # offset within the row
    positions = np.repeat(indptr[rows], counts) + (
        np.arange(total, dtype=np.int64) - np.repeat(out_indptr[:-1], counts)
    )
    return out_indptr, np.asarray(indices[positions]), np.asarray(data[positions])


class CompiledShard:
    """One self-contained node-range slice of a compiled universe."""

    def __init__(
        self,
        shard_id: int,
        lo: int,
        hi: int,
        nodes: tuple[NodeId, ...],
        own_offset: int,
        node_csr: tuple[np.ndarray, np.ndarray, np.ndarray],
        pair_csr: tuple[np.ndarray, np.ndarray, np.ndarray],
        cand_ptr: np.ndarray,
        cand_local: np.ndarray,
        cand_pair: np.ndarray,
    ):
        self.shard_id = shard_id
        self.lo = lo
        self.hi = hi
        # all referenced nodes (owned + halo) in ascending global
        # position; owned rows are the block starting at own_offset
        self.nodes = nodes
        self.own_offset = own_offset
        self.node_indptr, self.node_indices, self.node_data = node_csr
        self.pair_indptr, self.pair_indices, self.pair_data = pair_csr
        self.cand_ptr = cand_ptr
        self.cand_local = cand_local
        self.cand_pair = cand_pair
        self._node_rows = csr_row_index(self.node_indptr)
        self._pair_rows = csr_row_index(self.pair_indptr)
        for array in (
            self.node_indptr, self.node_indices, self.node_data,
            self.pair_indptr, self.pair_indices, self.pair_data,
            self.cand_ptr, self.cand_local, self.cand_pair,
        ):
            array.setflags(write=False)

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Referenced rows (owned + halo) — the ``mask_over`` contract."""
        return len(self.nodes)

    @property
    def num_owned(self) -> int:
        """Rows whose queries this shard answers."""
        return self.hi - self.lo

    @property
    def num_pairs(self) -> int:
        return len(self.pair_indptr) - 1

    @property
    def nnz(self) -> int:
        return len(self.node_data) + len(self.pair_data)

    def owns(self, global_pos: int) -> bool:
        return self.lo <= global_pos < self.hi

    def local_row(self, global_pos: int) -> int:
        """Local row of an *owned* global position."""
        if not self.owns(global_pos):
            raise IndexError(
                f"global position {global_pos} outside shard range "
                f"[{self.lo}, {self.hi})"
            )
        return self.own_offset + (global_pos - self.lo)

    def candidates_of(self, local_row: int) -> tuple[np.ndarray, np.ndarray]:
        """(local partner rows, local pair rows) of an owned local row."""
        own = local_row - self.own_offset
        a, b = self.cand_ptr[own], self.cand_ptr[own + 1]
        return self.cand_local[a:b], self.cand_pair[a:b]

    # ------------------------------------------------------------------
    # per-model dot products (the same shared O(nnz) pass as
    # CompiledVectors, over the row-intact slices)
    # ------------------------------------------------------------------
    def node_dot_products(self, weights: np.ndarray) -> np.ndarray:
        return csr_dot_products(
            self._node_rows, self.node_indices, self.node_data,
            weights, self.num_nodes,
        )

    def pair_dot_products(self, weights: np.ndarray) -> np.ndarray:
        return csr_dot_products(
            self._pair_rows, self.pair_indices, self.pair_data,
            weights, self.num_pairs,
        )

    def __repr__(self) -> str:
        return (
            f"<CompiledShard {self.shard_id}: rows [{self.lo}, {self.hi}), "
            f"{self.num_nodes} referenced nodes, {self.num_pairs} pairs, "
            f"{self.nnz} nonzeros>"
        )


def shard_ranges(num_nodes: int, num_shards: int) -> list[tuple[int, int]]:
    """Balanced contiguous ``[lo, hi)`` row ranges covering the universe.

    Mirrors ``np.array_split``: the first ``num_nodes % num_shards``
    shards get one extra row.  ``num_shards`` larger than the universe
    yields trailing empty shards, which the router simply never routes
    to.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    base, extra = divmod(num_nodes, num_shards)
    ranges = []
    lo = 0
    for s in range(num_shards):
        hi = lo + base + (1 if s < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


def _slice_shard(
    compiled: CompiledVectors, shard_id: int, lo: int, hi: int
) -> CompiledShard:
    """Build the self-contained shard for global row range ``[lo, hi)``."""
    a, b = int(compiled.pair_ptr[lo]), int(compiled.pair_ptr[hi])
    cand_global = compiled.partner_pos[a:b]
    pair_global = compiled.entry_pair[a:b]
    cand_ptr = np.asarray(compiled.pair_ptr[lo : hi + 1] - a, dtype=np.int64)

    # referenced rows: the owned range plus the halo of partners
    # (union1d returns them sorted, so local order preserves the
    # global — i.e. repr — order the tie-break relies on)
    local_nodes = np.union1d(
        np.arange(lo, hi, dtype=np.int64), cand_global
    ).astype(np.int64)
    cand_local = np.searchsorted(local_nodes, cand_global).astype(np.int64)
    own_offset = int(np.searchsorted(local_nodes, lo))

    pair_rows = np.unique(pair_global).astype(np.int64)
    cand_pair = np.searchsorted(pair_rows, pair_global).astype(np.int64)

    node_csr = _take_csr_rows(
        compiled.node_indptr,
        compiled.node_indices,
        compiled.node_data,
        local_nodes,
    )
    pair_csr = _take_csr_rows(
        compiled.pair_indptr,
        compiled.pair_indices,
        compiled.pair_data,
        pair_rows,
    )
    return CompiledShard(
        shard_id,
        lo,
        hi,
        tuple(compiled.nodes[i] for i in local_nodes),
        own_offset,
        node_csr,
        pair_csr,
        cand_ptr,
        cand_local,
        cand_pair,
    )


def extract_shard(
    compiled: CompiledVectors, shard_id: int, num_shards: int
) -> CompiledShard:
    """Slice shard ``shard_id`` of ``num_shards`` out of a snapshot.

    The standalone-worker entry point: with the snapshot opened
    ``mmap_mode="r"`` (:func:`~repro.index.persist.load_compiled`) the
    row gathers touch only this shard's slice plus its halo, so a
    worker materialises its own node range without ever paging the
    rest of the universe in — identical arrays to the corresponding
    element of :func:`partition_compiled`.
    """
    ranges = shard_ranges(compiled.num_nodes, num_shards)
    if not 0 <= shard_id < num_shards:
        raise ValueError(
            f"shard_id must be in [0, {num_shards}), got {shard_id}"
        )
    lo, hi = ranges[shard_id]
    return _slice_shard(compiled, shard_id, lo, hi)


def partition_compiled(
    compiled: CompiledVectors, num_shards: int
) -> list[CompiledShard]:
    """Slice a compiled snapshot into ``num_shards`` node-range shards."""
    return [
        _slice_shard(compiled, shard_id, lo, hi)
        for shard_id, (lo, hi) in enumerate(
            shard_ranges(compiled.num_nodes, num_shards)
        )
    ]
