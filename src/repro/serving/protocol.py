"""The shard boundary: a serializable score request/response protocol.

PR 5's router drove :class:`~repro.serving.shards.CompiledShard` scoring
through in-process closures, which welded the serving tier to one
process.  This module extracts the shard-scoring contract into a wire
protocol so the *same* scoring code can be driven in-process (a plain
function call, no serialization) or across a process boundary (a
length-prefixed JSON frame over a Unix or TCP socket):

- :func:`score_group_on_shard` — the pure scoring function both
  transports execute; it is the single implementation of the paper's
  online ranking on a shard slice, so rankings are bit-identical by
  construction, not by parallel maintenance of two code paths;
- :class:`ScoreRequest` — one shard's share of a query batch plus the
  model weights and (optionally) the candidate universe, with a
  JSON-safe codec (:func:`~repro.index.vectors.encode_node_id` handles
  arbitrary node ids; Python's shortest-repr float round trip keeps
  scores and weights bit-exact across the wire);
- :class:`ShardExecutor` — the worker-side request handler: caches
  per-weights dot products and per-digest universes so steady-state
  requests carry only the queries, and answers ``need``-frames when a
  cold replica is missing a cached universe (the router then re-sends
  it inline — failover never depends on warm caches);
- the frame codec (:func:`send_frame` / :func:`recv_frame`) — 4-byte
  big-endian length prefix, UTF-8 JSON body — and the remote-error
  envelope (:func:`encode_error` / :func:`raise_remote_error`) that
  carries any :class:`~repro.exceptions.ReproError` (``QueryError``
  included) across the boundary with its exact message.
"""

from __future__ import annotations

import hashlib
import json
import socket
import struct
from dataclasses import dataclass

import numpy as np

import repro.exceptions as _exceptions
from repro.exceptions import QueryError, ReproError, ServingError
from repro.graph.typed_graph import NodeId
from repro.index.vectors import decode_node_id, encode_node_id
from repro.learning.model import (
    SortedUniverse,
    _descending_order,
    pad_with_universe,
)
from repro.serving.shards import CompiledShard

#: protocol revision carried in every hello frame; bumped on any wire
#: format change so a mixed-version fleet fails loudly at handshake
PROTOCOL_VERSION = 1

_FRAME_HEADER = struct.Struct(">I")
#: hard ceiling on one frame (universe payloads scale with the anchor
#: set; half a GiB is far past any plausible request and cheap insurance
#: against a corrupt length prefix allocating unbounded memory)
MAX_FRAME_BYTES = 1 << 29


# ----------------------------------------------------------------------
# framing: 4-byte big-endian length prefix + UTF-8 JSON body
# ----------------------------------------------------------------------
def send_frame(sock: socket.socket, doc: dict) -> None:
    """Serialize one protocol message onto a connected socket."""
    payload = json.dumps(doc, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ServingError(
            f"protocol frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit"
        )
    sock.sendall(_FRAME_HEADER.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; None on clean EOF at a frame boundary."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == n:
                return None
            raise ServingError(
                f"peer closed the connection mid-frame ({n - remaining} of "
                f"{n} bytes received)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict | None:
    """Read one protocol message; None when the peer closed cleanly."""
    header = _recv_exact(sock, _FRAME_HEADER.size)
    if header is None:
        return None
    (length,) = _FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ServingError(
            f"peer announced a {length}-byte frame (limit "
            f"{MAX_FRAME_BYTES}); corrupt stream or protocol mismatch"
        )
    payload = _recv_exact(sock, length)
    if payload is None:
        raise ServingError("peer closed the connection after a frame header")
    try:
        doc = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ServingError(f"undecodable protocol frame: {exc}") from exc
    if not isinstance(doc, dict):
        raise ServingError(
            f"protocol frame must be a JSON object, got {type(doc).__name__}"
        )
    return doc


# ----------------------------------------------------------------------
# content digests: how request payloads become cacheable
# ----------------------------------------------------------------------
def weights_digest(weights: np.ndarray) -> str:
    """Content key of a model's weight vector (exact float64 bytes)."""
    data = np.ascontiguousarray(np.asarray(weights, dtype=np.float64))
    return hashlib.sha256(data.tobytes()).hexdigest()


def universe_digest(universe: SortedUniverse) -> str:
    """Content key of a candidate universe, cached on the instance."""
    cached = getattr(universe, "_wire_digest", None)
    if cached is None:
        doc = json.dumps(
            [encode_node_id(node) for node in universe],
            separators=(",", ":"),
        )
        cached = hashlib.sha256(doc.encode("utf-8")).hexdigest()
        universe._wire_digest = cached
    return cached


# ----------------------------------------------------------------------
# remote errors: any ReproError crosses the boundary message-intact
# ----------------------------------------------------------------------
def encode_error(exc: BaseException) -> dict:
    """The error half of a response frame."""
    kind = type(exc).__name__ if isinstance(exc, ReproError) else "ServingError"
    message = str(exc)
    if not isinstance(exc, ReproError):
        message = f"shard worker failed: {type(exc).__name__}: {exc}"
    return {"ok": False, "error": {"type": kind, "message": message}}


def raise_remote_error(error: dict) -> None:
    """Re-raise a worker-side error locally, same type and message.

    The type name is resolved against :mod:`repro.exceptions` so a
    remote ``QueryError`` is catchable exactly like a local one;
    unknown or non-library names degrade to :class:`ServingError`.
    """
    kind = _exceptions.__dict__.get(error.get("type", ""))
    if not (isinstance(kind, type) and issubclass(kind, ReproError)):
        kind = ServingError
    raise kind(error.get("message", "shard worker reported an error"))


# ----------------------------------------------------------------------
# rankings codec
# ----------------------------------------------------------------------
def encode_rankings(
    results: dict[int, list[tuple[NodeId, float]]]
) -> list[list]:
    """``{slot: ranking}`` as JSON rows (slot, [[node, score], ...])."""
    return [
        [slot, [[encode_node_id(node), score] for node, score in ranking]]
        for slot, ranking in sorted(results.items())
    ]


def decode_rankings(rows: list[list]) -> dict[int, list[tuple[NodeId, float]]]:
    """Inverse of :func:`encode_rankings`."""
    return {
        int(slot): [(decode_node_id(node), float(score)) for node, score in ranking]
        for slot, ranking in rows
    }


# ----------------------------------------------------------------------
# the score request
# ----------------------------------------------------------------------
@dataclass
class ScoreRequest:
    """One shard's share of a query batch, transport-ready.

    ``queries`` rows are ``(slot, node, global_pos)`` — the batch slot
    the ranking must return to, the query node id, and its row in the
    global anchor universe.  ``universe`` is the optional candidate
    filter; ``include_universe`` controls whether its node list rides
    along (first contact / cache-miss retry) or only its digest does
    (steady state).
    """

    queries: list[tuple[int, NodeId, int]]
    weights: np.ndarray
    k: int | None
    universe: SortedUniverse | None = None
    include_universe: bool = False

    def to_wire(self) -> dict:
        doc: dict = {
            "op": "score",
            "v": PROTOCOL_VERSION,
            "weights": [float(w) for w in np.asarray(self.weights, dtype=np.float64)],
            "weights_digest": weights_digest(self.weights),
            "k": self.k,
            "queries": [
                [slot, encode_node_id(node), pos]
                for slot, node, pos in self.queries
            ],
            "universe_digest": (
                None if self.universe is None else universe_digest(self.universe)
            ),
        }
        if self.universe is not None and self.include_universe:
            doc["universe"] = [encode_node_id(node) for node in self.universe]
        return doc


# ----------------------------------------------------------------------
# scoring: the one implementation both transports execute
# ----------------------------------------------------------------------
def score_on_shard(
    shard: CompiledShard,
    node_dots: np.ndarray,
    pair_dots: np.ndarray,
    query: NodeId,
    global_pos: int,
    universe: SortedUniverse | None,
    k: int | None,
) -> list[tuple[NodeId, float]]:
    """Score one query on its owning shard — the unsharded math, sliced.

    Mirrors ``ProximityModel._rank_compiled`` operation for operation
    (same candidate order, same masked division, same stable top-k) so
    scores and tie-breaks are bit-identical to the single-process path.
    """
    if k is not None and k <= 0:
        return []
    row = shard.local_row(global_pos)
    cand, pair = shard.candidates_of(row)
    keep = cand != row
    cand, pair = cand[keep], pair[keep]
    numerators = 2.0 * pair_dots[pair]
    denominators = node_dots[row] + node_dots[cand]
    scores = np.zeros(len(cand), dtype=np.float64)
    positive = denominators > 0.0
    scores[positive] = numerators[positive] / denominators[positive]

    nodes = shard.nodes
    if universe is None:
        order = _descending_order(scores, k)
        return [(nodes[cand[j]], float(scores[j])) for j in order]
    in_universe = universe.mask_over(shard)[cand]
    hit = np.flatnonzero(in_universe & (scores > 0.0))
    order = hit[_descending_order(scores[hit], k)]
    result = [(nodes[cand[j]], float(scores[j])) for j in order]
    return pad_with_universe(result, query, universe, k)


def score_group_on_shard(
    shard: CompiledShard,
    node_dots: np.ndarray,
    pair_dots: np.ndarray,
    queries: list[tuple[int, NodeId, int]],
    universe: SortedUniverse | None,
    k: int | None,
) -> dict[int, list[tuple[NodeId, float]]]:
    """Score one shard's query group; the shared backend entry point.

    Every query is checked against the shard's own node table first: a
    position outside the owned range, or one whose resident node is not
    the node the router sent, means the router and this shard disagree
    on the snapshot (e.g. a worker still serving a pre-swap sidecar) —
    that surfaces as :class:`~repro.exceptions.QueryError` with one
    message, raised by this same function on either side of the
    transport seam, instead of a silently wrong ranking.
    """
    results: dict[int, list[tuple[NodeId, float]]] = {}
    for slot, query, pos in queries:
        if not shard.owns(pos):
            raise QueryError(
                f"query node {query!r} routes to universe position {pos}, "
                f"outside shard {shard.shard_id}'s owned range "
                f"[{shard.lo}, {shard.hi}); the router and shard disagree "
                "on the snapshot"
            )
        resident = shard.nodes[shard.local_row(pos)]
        if resident != query:
            raise QueryError(
                f"query node {query!r} does not occupy universe position "
                f"{pos} on shard {shard.shard_id} (resident node: "
                f"{resident!r}); the router and shard disagree on the "
                "snapshot"
            )
        results[slot] = score_on_shard(
            shard, node_dots, pair_dots, query, pos, universe, k
        )
    return results


# ----------------------------------------------------------------------
# the worker-side request handler
# ----------------------------------------------------------------------
class ShardExecutor:
    """Executes protocol requests against one :class:`CompiledShard`.

    Holds the per-shard caches the router used to keep in closures:
    dot-product arrays per weights digest and decoded universes per
    content digest.  Thread-safe under CPython's GIL (cache writes are
    single dict stores; a racing duplicate computation is wasted work,
    never a wrong answer).
    """

    def __init__(self, shard: CompiledShard):
        self.shard = shard
        self._dots: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        self._universes: dict[str, SortedUniverse] = {}

    def dot_products(
        self, weights: np.ndarray, digest: str | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """(node_dots, pair_dots) for a weight vector, cached by digest."""
        key = digest or weights_digest(weights)
        dots = self._dots.get(key)
        if dots is None:
            weights = np.asarray(weights, dtype=np.float64)
            dots = (
                self.shard.node_dot_products(weights),
                self.shard.pair_dot_products(weights),
            )
            self._dots[key] = dots
        return dots

    def _resolve_universe(self, doc: dict) -> SortedUniverse | None | dict:
        """The request's universe, a ``need`` frame, or None (unfiltered)."""
        digest = doc.get("universe_digest")
        if digest is None:
            return None
        cached = self._universes.get(digest)
        if cached is not None:
            return cached
        inline = doc.get("universe")
        if inline is None:
            # a cold (or failed-over-to) replica without this universe:
            # ask the router to re-send it inline rather than guessing
            return {"ok": False, "need": "universe", "universe_digest": digest}
        universe = SortedUniverse(decode_node_id(node) for node in inline)
        self._universes[digest] = universe
        return universe

    def hello(self) -> dict:
        shard = self.shard
        return {
            "ok": True,
            "role": "shard-worker",
            "protocol": PROTOCOL_VERSION,
            "shard": shard.shard_id,
            "lo": shard.lo,
            "hi": shard.hi,
            "nodes": shard.num_nodes,
            "pairs": shard.num_pairs,
        }

    def execute(self, doc: dict) -> dict:
        """Handle one wire-level request document; never raises."""
        try:
            op = doc.get("op")
            if op == "hello":
                return self.hello()
            if op == "ping":
                return {"ok": True}
            if op != "score":
                raise ServingError(f"unknown protocol op {op!r}")
            if doc.get("v") != PROTOCOL_VERSION:
                raise ServingError(
                    f"protocol version mismatch: request v{doc.get('v')!r}, "
                    f"worker v{PROTOCOL_VERSION}"
                )
            universe = self._resolve_universe(doc)
            if isinstance(universe, dict):  # need-frame
                return universe
            weights = np.asarray(doc["weights"], dtype=np.float64)
            node_dots, pair_dots = self.dot_products(
                weights, doc.get("weights_digest")
            )
            queries = [
                (int(slot), decode_node_id(node), int(pos))
                for slot, node, pos in doc["queries"]
            ]
            k = doc.get("k")
            results = score_group_on_shard(
                self.shard,
                node_dots,
                pair_dots,
                queries,
                universe,
                None if k is None else int(k),
            )
            return {"ok": True, "results": encode_rankings(results)}
        except (KeyboardInterrupt, SystemExit):
            # shutdown signals must stop the worker loop, not ride the
            # wire as an error frame the router would retry elsewhere
            raise
        except BaseException as exc:  # noqa: BLE001 — the envelope IS the handler
            return encode_error(exc)
