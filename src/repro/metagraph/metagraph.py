"""Metagraph: a small typed pattern graph (Sect. II-A, Def. in Table I).

A metagraph ``M = (V_M, E_M)`` abstracts objects into types: each node
carries a type from ``T`` and only the type matters.  Metagraphs in this
library are immutable, hashable value objects with nodes labelled
``0 .. n-1``; equality is *labelled* equality (same types tuple, same
edge set) — use :func:`repro.metagraph.canonical.canonical_form` for
isomorphism-invariant identity.

Instances of a metagraph on an object graph (Def. 2) are computed by the
engines in :mod:`repro.matching`.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Sequence
from functools import cached_property

from repro.exceptions import InvalidMetagraphError
from repro.graph.typed_graph import PLAIN, EdgeKind, EdgeSignature

Edge = tuple[int, int]

#: (edge, (label, rel)) pairs, sorted — the hashable kind encoding
KindItems = tuple[tuple[Edge, EdgeSignature], ...]


def _normalize_edge(u: int, v: int) -> Edge:
    if u == v:
        raise InvalidMetagraphError(f"self-loop on node {u} is not allowed")
    return (u, v) if u < v else (v, u)


def _normalize_kind(u: int, v: int, kind: EdgeKind) -> tuple[Edge, EdgeSignature]:
    """Normalise an oriented (u, v, kind) into (edge, signature).

    The signature is stored relative to the normalised ``a < b`` edge:
    rel 0 = undirected, 1 = ``a -> b``, -1 = ``b -> a``.
    """
    edge = _normalize_edge(u, v)
    if not kind.directed:
        return edge, (kind.label, 0)
    return edge, (kind.label, 1 if edge[0] == u else -1)


class Metagraph:
    """An immutable connected typed pattern graph.

    Parameters
    ----------
    types:
        ``types[i]`` is the type of pattern node ``i``.
    edges:
        Edges as ``(u, v)`` pairs of node indexes, or ``(u, v, kind)``
        triples carrying an :class:`~repro.graph.typed_graph.EdgeKind`
        (oriented ``u -> v`` when the kind is directed).  Plain pairs
        reproduce the paper's undirected unlabeled pattern edges.
    name:
        Optional label (e.g. ``"M1"``) used in reports.

    Examples
    --------
    The paper's M3 (Fig. 2b): two users sharing an address.

    >>> m3 = Metagraph(["user", "address", "user"], [(0, 1), (1, 2)], name="M3")
    >>> m3.is_path
    True
    >>> m3.size
    3
    """

    __slots__ = ("_types", "_edges", "_kinds", "_adj", "name", "__dict__")

    def __init__(
        self,
        types: Sequence[str],
        edges: Iterable[tuple],
        name: str = "",
    ):
        self._types: tuple[str, ...] = tuple(types)
        if not self._types:
            raise InvalidMetagraphError("a metagraph must have at least one node")
        for t in self._types:
            if not isinstance(t, str) or not t:
                raise InvalidMetagraphError(f"invalid node type {t!r}")
        n = len(self._types)
        normalized: set[Edge] = set()
        kinds: dict[Edge, EdgeSignature] = {}
        for entry in edges:
            if len(entry) == 2:
                u, v = entry
                kind = PLAIN
            elif len(entry) == 3:
                u, v, kind = entry
                if not isinstance(kind, EdgeKind):
                    raise InvalidMetagraphError(
                        f"edge ({u}, {v}) kind must be an EdgeKind, "
                        f"got {kind!r}"
                    )
            else:
                raise InvalidMetagraphError(f"malformed edge entry {entry!r}")
            if not (0 <= u < n and 0 <= v < n):
                raise InvalidMetagraphError(
                    f"edge ({u}, {v}) references a node outside 0..{n - 1}"
                )
            edge, sig = _normalize_kind(u, v, kind)
            if edge in normalized:
                if kinds.get(edge, ("", 0)) != sig:
                    raise InvalidMetagraphError(
                        f"edge {edge} declared twice with conflicting kinds"
                    )
            normalized.add(edge)
            if sig != ("", 0):
                kinds[edge] = sig
        self._edges: frozenset[Edge] = frozenset(normalized)
        self._kinds: dict[Edge, EdgeSignature] = kinds
        adj: list[set[int]] = [set() for _ in range(n)]
        for u, v in self._edges:
            adj[u].add(v)
            adj[v].add(u)
        self._adj: tuple[frozenset[int], ...] = tuple(frozenset(s) for s in adj)
        self.name = name
        if n > 1 and not self._is_connected():
            raise InvalidMetagraphError("metagraphs must be connected")

    def _is_connected(self) -> bool:
        seen = {0}
        queue = deque([0])
        while queue:
            u = queue.popleft()
            for v in self._adj[u]:
                if v not in seen:
                    seen.add(v)
                    queue.append(v)
        return len(seen) == self.size

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of pattern nodes |V_M|."""
        return len(self._types)

    @property
    def num_edges(self) -> int:
        """Number of pattern edges |E_M|."""
        return len(self._edges)

    @property
    def types(self) -> tuple[str, ...]:
        """Node types indexed by node id."""
        return self._types

    @property
    def edges(self) -> frozenset[Edge]:
        """The (normalised, u < v) edge set."""
        return self._edges

    def node_type(self, node: int) -> str:
        """Type of pattern node ``node``."""
        return self._types[node]

    def neighbors(self, node: int) -> frozenset[int]:
        """Neighbours of pattern node ``node``."""
        return self._adj[node]

    def degree(self, node: int) -> int:
        """Degree of pattern node ``node``."""
        return len(self._adj[node])

    def has_edge(self, u: int, v: int) -> bool:
        """True iff the pattern edge (u, v) exists."""
        return _normalize_edge(u, v) in self._edges if u != v else False

    @property
    def has_kinds(self) -> bool:
        """True iff any pattern edge carries a non-plain kind (O(1))."""
        return bool(self._kinds)

    @cached_property
    def kind_items(self) -> KindItems:
        """Sorted, hashable (edge, signature) pairs of non-plain edges."""
        return tuple(sorted(self._kinds.items()))

    def edge_kind(self, u: int, v: int) -> EdgeKind:
        """The kind of pattern edge (u, v) (:data:`PLAIN` default)."""
        label, rel = self.edge_signature(u, v)
        return EdgeKind(label, rel != 0)

    def edge_signature(self, u: int, v: int) -> EdgeSignature:
        """The pattern edge's (label, rel) relative to argument order.

        ``rel`` is 0 for undirected, 1 for ``u -> v``, -1 for
        ``v -> u``.  Raises :class:`InvalidMetagraphError` when the edge
        is absent.
        """
        edge = _normalize_edge(u, v)
        if edge not in self._edges:
            raise InvalidMetagraphError(f"pattern edge ({u}, {v}) does not exist")
        label, rel = self._kinds.get(edge, ("", 0))
        if rel != 0 and edge[0] != u:
            rel = -rel
        return (label, rel)

    def edges_with_kinds(self) -> Iterable[tuple[int, int, EdgeKind]]:
        """(source, target, kind) triples, directed edges source-first."""
        for u, v in sorted(self._edges):
            label, rel = self._kinds.get((u, v), ("", 0))
            if rel == -1:
                yield (v, u, EdgeKind(label, True))
            elif rel == 1:
                yield (u, v, EdgeKind(label, True))
            else:
                yield (u, v, EdgeKind(label, False))

    def nodes(self) -> range:
        """Node ids 0..n-1."""
        return range(self.size)

    def nodes_of_type(self, node_type: str) -> tuple[int, ...]:
        """Pattern nodes with the given type."""
        return tuple(i for i, t in enumerate(self._types) if t == node_type)

    @cached_property
    def type_multiset(self) -> tuple[tuple[str, int], ...]:
        """Sorted (type, multiplicity) pairs — a cheap isomorphism invariant."""
        counts: dict[str, int] = {}
        for t in self._types:
            counts[t] = counts.get(t, 0) + 1
        return tuple(sorted(counts.items()))

    # ------------------------------------------------------------------
    # structural predicates
    # ------------------------------------------------------------------
    @cached_property
    def is_path(self) -> bool:
        """True iff the metagraph is a *metapath* (a simple path).

        Metapaths are the seed metagraphs of dual-stage training
        (Alg. 1 line 1).  A single node counts as a (trivial) path.
        """
        n = self.size
        if n == 1:
            return True
        if self.num_edges != n - 1:
            return False
        degrees = [self.degree(i) for i in range(n)]
        return max(degrees) <= 2 and degrees.count(1) == 2

    def count_type(self, node_type: str) -> int:
        """Multiplicity of ``node_type`` among pattern nodes."""
        return sum(1 for t in self._types if t == node_type)

    # ------------------------------------------------------------------
    # derived patterns
    # ------------------------------------------------------------------
    def induced_on(self, nodes: Sequence[int]) -> "Metagraph":
        """Induced sub-metagraph on ``nodes`` (relabelled to 0..k-1).

        Raises :class:`InvalidMetagraphError` if the induced pattern is
        disconnected (metagraphs are connected by definition).
        """
        index = {node: i for i, node in enumerate(nodes)}
        sub_types = [self._types[node] for node in nodes]
        sub_edges = [
            (index[u], index[v], kind)
            for u, v, kind in self.edges_with_kinds()
            if u in index and v in index
        ]
        return Metagraph(sub_types, sub_edges)

    def with_name(self, name: str) -> "Metagraph":
        """A copy carrying a different display name."""
        return Metagraph(self._types, self.edges_with_kinds(), name=name)

    def relabeled(self, permutation: Sequence[int]) -> "Metagraph":
        """Apply a node relabelling: new node ``permutation[i]`` gets old ``i``.

        ``permutation`` must be a permutation of ``0..n-1``.
        """
        n = self.size
        if sorted(permutation) != list(range(n)):
            raise InvalidMetagraphError(f"{permutation!r} is not a permutation of 0..{n - 1}")
        new_types = [""] * n
        for old, new in enumerate(permutation):
            new_types[new] = self._types[old]
        new_edges = [
            (permutation[u], permutation[v], kind)
            for u, v, kind in self.edges_with_kinds()
        ]
        return Metagraph(new_types, new_edges, name=self.name)

    # ------------------------------------------------------------------
    # value semantics
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Metagraph):
            return NotImplemented
        return (
            self._types == other._types
            and self._edges == other._edges
            and self._kinds == other._kinds
        )

    def __hash__(self) -> int:
        return hash((self._types, self._edges, self.kind_items))

    def __repr__(self) -> str:
        label = f" {self.name}" if self.name else ""
        return (
            f"<Metagraph{label}: types={list(self._types)}, "
            f"edges={sorted(self._edges)}>"
        )


def metapath(*types: str, name: str = "") -> Metagraph:
    """Convenience constructor for a metapath with the given type sequence.

    >>> m = metapath("user", "school", "user")
    >>> m.is_path
    True
    """
    edges = [(i, i + 1) for i in range(len(types) - 1)]
    return Metagraph(list(types), edges, name=name)
