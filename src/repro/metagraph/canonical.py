"""Canonical labelling of metagraphs for isomorphism-invariant identity.

Two metagraphs that differ only in node numbering describe the same
pattern.  The miner (:mod:`repro.mining`) must deduplicate patterns, and
the structural-similarity code compares patterns up to isomorphism;
both rely on :func:`canonical_form`.

Metagraphs are tiny (the paper restricts them to at most 5 nodes), so we
use an exact scheme: enumerate all type-respecting relabellings whose
resulting type sequence is sorted, and take the lexicographically
smallest ``(types, edges)`` encoding.  Type-class pruning keeps the
search at worst ``prod_t m_t!`` for type multiplicities ``m_t``, which is
trivially small for patterns of this size.
"""

from __future__ import annotations

from collections.abc import Iterator
from itertools import permutations

from repro.graph.typed_graph import EdgeKind
from repro.metagraph.metagraph import Metagraph

#: a plain form is (types, (u, v) edges); a kinded form extends every
#: edge entry to (u, v, label, rel) — the tuple shapes differ, so plain
#: and kinded patterns can never collide
CanonicalForm = tuple[tuple[str, ...], tuple[tuple, ...]]


def _grouped_permutations(metagraph: Metagraph) -> Iterator[list[int]]:
    """Yield node permutations mapping old ids onto type-sorted positions.

    Positions are assigned so that the permuted type sequence equals the
    sorted type sequence; only assignments within each type class vary.
    """
    n = metagraph.size
    order = sorted(range(n), key=lambda i: metagraph.node_type(i))
    # positions (in the canonical layout) available to each type class
    slots_by_type: dict[str, list[int]] = {}
    for pos, old in enumerate(order):
        slots_by_type.setdefault(metagraph.node_type(old), []).append(pos)
    type_classes = sorted(slots_by_type)
    members = {t: metagraph.nodes_of_type(t) for t in type_classes}

    def expand(class_idx: int, mapping: dict[int, int]) -> Iterator[list[int]]:
        if class_idx == len(type_classes):
            yield [mapping[i] for i in range(n)]
            return
        t = type_classes[class_idx]
        slots = slots_by_type[t]
        for perm in permutations(slots):
            next_mapping = dict(mapping)
            for node, slot in zip(members[t], perm):
                next_mapping[node] = slot
            yield from expand(class_idx + 1, next_mapping)

    yield from expand(0, {})


def _mapped_kinded_edge(
    a: int, b: int, label: str, rel: int
) -> tuple[int, int, str, int]:
    """Normalise a relabelled kinded edge entry to ``a < b`` order."""
    if a < b:
        return (a, b, label, rel)
    return (b, a, label, -rel)


def canonical_form(metagraph: Metagraph) -> CanonicalForm:
    """The canonical ``(types, edges)`` encoding of a metagraph.

    Invariant under any relabelling of the metagraph's nodes:
    ``canonical_form(m) == canonical_form(m.relabeled(p))`` for every
    permutation ``p``.  Patterns without edge kinds keep the legacy
    two-tuple edge encoding exactly; kinded patterns extend every edge
    to ``(u, v, label, rel)`` so patterns that differ only in edge
    roles stop colliding.
    """
    kinded = metagraph.has_kinds
    kinded_edges = list(metagraph.edges_with_kinds()) if kinded else []
    best: CanonicalForm | None = None
    for mapping in _grouped_permutations(metagraph):
        types = [""] * metagraph.size
        for old, new in enumerate(mapping):
            types[new] = metagraph.node_type(old)
        if kinded:
            edges = tuple(
                sorted(
                    _mapped_kinded_edge(
                        mapping[u],
                        mapping[v],
                        kind.label,
                        1 if kind.directed else 0,
                    )
                    for u, v, kind in kinded_edges
                )
            )
        else:
            edges = tuple(
                sorted(
                    (mapping[u], mapping[v]) if mapping[u] < mapping[v] else (mapping[v], mapping[u])
                    for u, v in metagraph.edges
                )
            )
        candidate = (tuple(types), edges)
        if best is None or candidate < best:
            best = candidate
    assert best is not None  # metagraphs are non-empty
    return best


def form_edge_entry(entry: tuple) -> tuple:
    """Decode one canonical-form edge entry into a constructor edge.

    Two-tuples pass through; ``(u, v, label, rel)`` entries become
    oriented ``(source, target, EdgeKind)`` triples.
    """
    if len(entry) == 2:
        return entry
    u, v, label, rel = entry
    if rel == 0:
        return (u, v, EdgeKind(label, False))
    if rel == 1:
        return (u, v, EdgeKind(label, True))
    return (v, u, EdgeKind(label, True))


def canonicalize(metagraph: Metagraph) -> Metagraph:
    """Return the canonically labelled copy of a metagraph."""
    types, edges = canonical_form(metagraph)
    return Metagraph(
        types, [form_edge_entry(e) for e in edges], name=metagraph.name
    )


def are_isomorphic(a: Metagraph, b: Metagraph) -> bool:
    """True iff two metagraphs are isomorphic as typed graphs."""
    if a.size != b.size or a.num_edges != b.num_edges:
        return False
    if a.type_multiset != b.type_multiset:
        return False
    return canonical_form(a) == canonical_form(b)
