"""Structural similarity between metagraphs via maximum common subgraph.

The candidate heuristic of dual-stage training (Sect. III-C) scores a
non-seed metagraph by its structural similarity to the seeds:

    SS(Mi, Mj) = (|V_M| + |E_M|)^2 / ((|V_Mi| + |E_Mi|) * (|V_Mj| + |E_Mj|))

where ``M`` is the maximum common subgraph (MCS) of ``Mi`` and ``Mj``.

We take the MCS to be the largest *connected induced* common subgraph —
consistent with the induced instance semantics of Def. 2 — maximising
``|V| + |E|``.  Patterns have at most ~6 nodes, so exact enumeration of
connected node subsets plus an induced-embedding test is fast; results
are memoised per unordered pair of canonical forms.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import combinations

from repro.metagraph.canonical import canonical_form, form_edge_entry
from repro.metagraph.metagraph import Metagraph


def _connected_subsets(metagraph: Metagraph) -> list[tuple[int, ...]]:
    """All node subsets of the metagraph that induce a connected subgraph."""
    n = metagraph.size
    subsets: list[tuple[int, ...]] = []
    for size in range(1, n + 1):
        for subset in combinations(range(n), size):
            chosen = set(subset)
            # BFS inside the subset to check connectivity
            stack = [subset[0]]
            seen = {subset[0]}
            while stack:
                u = stack.pop()
                for v in metagraph.neighbors(u):
                    if v in chosen and v not in seen:
                        seen.add(v)
                        stack.append(v)
            if len(seen) == size:
                subsets.append(subset)
    return subsets


def _embeds_induced(pattern: Metagraph, host: Metagraph) -> bool:
    """True iff ``pattern`` is an induced, type-preserving subgraph of ``host``."""
    if pattern.size > host.size or pattern.num_edges > host.num_edges:
        return False
    candidates = [
        [
            h
            for h in host.nodes()
            if host.node_type(h) == pattern.node_type(p)
            and host.degree(h) >= 0  # degree can shrink in induced subgraphs
        ]
        for p in pattern.nodes()
    ]
    if any(not c for c in candidates):
        return False
    assignment: list[int] = []
    used: set[int] = set()

    def backtrack(p: int) -> bool:
        if p == pattern.size:
            return True
        for h in candidates[p]:
            if h in used:
                continue
            ok = True
            kinded = pattern.has_kinds or host.has_kinds
            for q in range(p):
                adjacent = pattern.has_edge(p, q)
                if adjacent != host.has_edge(h, assignment[q]):
                    ok = False
                    break
                if (
                    adjacent
                    and kinded
                    and pattern.edge_signature(p, q)
                    != host.edge_signature(h, assignment[q])
                ):
                    ok = False
                    break
            if ok:
                assignment.append(h)
                used.add(h)
                if backtrack(p + 1):
                    return True
                used.discard(h)
                assignment.pop()
        return False

    return backtrack(0)


@lru_cache(maxsize=65536)
def _mcs_size_cached(
    form_a: CanonicalForm, form_b: CanonicalForm
) -> tuple[int, int]:
    a = Metagraph(form_a[0], [form_edge_entry(e) for e in form_a[1]])
    b = Metagraph(form_b[0], [form_edge_entry(e) for e in form_b[1]])
    # enumerate connected induced subgraphs of the smaller pattern
    small, large = (a, b) if (a.size + a.num_edges) <= (b.size + b.num_edges) else (b, a)
    best = (0, 0)
    for subset in sorted(_connected_subsets(small), key=len, reverse=True):
        if len(subset) + len(subset) < best[0] + best[1]:
            # even a clique on |subset| nodes could not beat the incumbent
            pass
        candidate = small.induced_on(subset)
        score = (candidate.size, candidate.num_edges)
        if score[0] + score[1] <= best[0] + best[1]:
            continue
        if _embeds_induced(candidate, large):
            best = score
    return best


def mcs_size(a: Metagraph, b: Metagraph) -> tuple[int, int]:
    """``(|V|, |E|)`` of the maximum common connected induced subgraph."""
    form_a, form_b = canonical_form(a), canonical_form(b)
    if form_b < form_a:
        form_a, form_b = form_b, form_a
    return _mcs_size_cached(form_a, form_b)


def structural_similarity(a: Metagraph, b: Metagraph) -> float:
    """SS(a, b) in [0, 1]; 1 iff the metagraphs are isomorphic.

    Symmetric in its arguments and memoised on canonical forms.
    """
    v, e = mcs_size(a, b)
    common = v + e
    denom = (a.size + a.num_edges) * (b.size + b.num_edges)
    return (common * common) / denom


def functional_similarity(weight_a: float, weight_b: float) -> float:
    """FS(Mi, Mj) = 1 - |w*[i] - w*[j]| (Sect. III-C).

    Weights are expected in [0, 1]; the result is clipped to [0, 1] to be
    robust to slightly out-of-range learned weights.
    """
    return max(0.0, min(1.0, 1.0 - abs(weight_a - weight_b)))
