"""Symmetric-component decomposition and simplified metagraphs (Sect. IV-C).

SymISO matches a metagraph one *component* at a time and reuses the
matchings of a component for its symmetric twin.  This module produces
the decomposition:

1. Choose the *witness involution* ``sigma`` — the involutive
   automorphism exchanging the most nodes (Def. 1's Ψ with the largest
   coverage; ties broken deterministically).
2. Nodes fixed by ``sigma`` become singleton components.
3. Nodes moved by ``sigma`` are split into connected components of the
   induced subgraph; each such component ``S`` pairs with its image
   ``sigma(S)``.  When ``sigma(S) = S`` (the component straddles the
   symmetry axis, e.g. two adjacent symmetric users), it is split into
   singleton twins ``{x} / {sigma(x)}``.

The *simplified metagraph* M+ of Fig. 5 keeps the fixed components and
one representative of each twin family.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metagraph.metagraph import Metagraph
from repro.metagraph.symmetry import Permutation, automorphisms, is_involution


@dataclass(frozen=True)
class TwinFamily:
    """A pair of mutually symmetric components.

    ``representative`` and ``twin`` are component indexes into
    :attr:`Decomposition.components`; ``sigma`` maps representative
    nodes onto twin nodes (and vice versa — it is an involution).
    """

    representative: int
    twin: int
    sigma: Permutation


@dataclass(frozen=True)
class Decomposition:
    """Result of decomposing a metagraph into symmetric components."""

    metagraph: Metagraph
    sigma: Permutation
    components: tuple[tuple[int, ...], ...]
    families: tuple[TwinFamily, ...]

    @property
    def is_symmetric(self) -> bool:
        """True iff the witness involution moves at least one node."""
        return any(self.sigma[u] != u for u in range(len(self.sigma)))

    @property
    def twin_indexes(self) -> frozenset[int]:
        """Indexes of components that are twins (skipped in M+)."""
        return frozenset(f.twin for f in self.families)

    def simplified_nodes(self) -> tuple[int, ...]:
        """Nodes of the simplified metagraph M+ (fixed + representatives)."""
        kept: list[int] = []
        for idx, comp in enumerate(self.components):
            if idx not in self.twin_indexes:
                kept.extend(comp)
        return tuple(sorted(kept))

    def component_of(self, node: int) -> int:
        """Index of the component containing ``node``."""
        for idx, comp in enumerate(self.components):
            if node in comp:
                return idx
        raise ValueError(f"node {node} is not in any component")


def _best_involution(metagraph: Metagraph) -> Permutation:
    """The involutive automorphism moving the most nodes (identity if none).

    Ties are broken by the lexicographically smallest permutation tuple,
    making the decomposition deterministic.
    """
    n = metagraph.size
    identity = tuple(range(n))
    best = identity
    best_moved = 0
    for sigma in automorphisms(metagraph):
        if not is_involution(sigma):
            continue
        moved = sum(1 for u in range(n) if sigma[u] != u)
        if moved > best_moved or (moved == best_moved and moved and sigma < best):
            best = sigma
            best_moved = moved
    return best


def _connected_components(metagraph: Metagraph, nodes: set[int]) -> list[tuple[int, ...]]:
    """Connected components of the subgraph induced on ``nodes``."""
    remaining = set(nodes)
    components: list[tuple[int, ...]] = []
    while remaining:
        start = min(remaining)
        stack = [start]
        comp = {start}
        remaining.discard(start)
        while stack:
            u = stack.pop()
            for v in metagraph.neighbors(u):
                if v in remaining:
                    remaining.discard(v)
                    comp.add(v)
                    stack.append(v)
        components.append(tuple(sorted(comp)))
    return components


def decompose(metagraph: Metagraph, sigma: Permutation | None = None) -> Decomposition:
    """Decompose a metagraph into symmetric components.

    Parameters
    ----------
    metagraph:
        The pattern to decompose.
    sigma:
        Optional witness involution to use instead of the automatically
        selected one (must be an involutive automorphism).
    """
    if sigma is None:
        sigma = _best_involution(metagraph)
    else:
        if sigma not in automorphisms(metagraph) or not is_involution(sigma):
            raise ValueError("sigma must be an involutive automorphism of the metagraph")

    n = metagraph.size
    fixed = [u for u in range(n) if sigma[u] == u]
    moved = {u for u in range(n) if sigma[u] != u}

    components: list[tuple[int, ...]] = [(u,) for u in fixed]
    families: list[TwinFamily] = []

    processed: set[frozenset[int]] = set()
    for comp in _connected_components(metagraph, moved):
        comp_set = frozenset(comp)
        if comp_set in processed:
            continue
        image = frozenset(sigma[u] for u in comp)
        if image == comp_set:
            # The component straddles the symmetry axis: split into
            # singleton twins {x} / {sigma(x)}.
            for u in comp:
                v = sigma[u]
                if u < v:
                    rep_idx = len(components)
                    components.append((u,))
                    components.append((v,))
                    families.append(TwinFamily(rep_idx, rep_idx + 1, sigma))
            processed.add(comp_set)
        else:
            rep_idx = len(components)
            components.append(comp)
            components.append(tuple(sorted(image)))
            families.append(TwinFamily(rep_idx, rep_idx + 1, sigma))
            processed.add(comp_set)
            processed.add(image)

    return Decomposition(
        metagraph=metagraph,
        sigma=sigma,
        components=tuple(components),
        families=tuple(families),
    )
