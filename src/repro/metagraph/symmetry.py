"""Metagraph symmetry (Def. 1): automorphisms, symmetric pairs, orbits.

Def. 1 declares a metagraph *symmetric* when a non-empty set Ψ of
disjoint node pairs can be exchanged simultaneously without changing the
edge set.  Exchanging the pairs of Ψ is an *involutive automorphism* of
the typed pattern graph, so:

- ``u`` and ``u'`` are **symmetric to each other** iff some involutive,
  type-preserving automorphism swaps them;
- the metagraph is **symmetric** iff at least one such pair exists.

Patterns have at most a handful of nodes, so the full automorphism group
is computed exactly by backtracking over type- and degree-compatible
assignments.
"""

from __future__ import annotations

from functools import lru_cache

from repro.graph.typed_graph import EdgeSignature
from repro.metagraph.metagraph import Edge, KindItems, Metagraph

Permutation = tuple[int, ...]


def automorphisms(metagraph: Metagraph) -> tuple[Permutation, ...]:
    """All type- and edge-kind-preserving automorphisms of the metagraph.

    Returned as tuples ``sigma`` with ``sigma[u]`` the image of node
    ``u``; the identity is always included.  An automorphism must map
    every pattern edge onto an edge with the *same* signature (label
    and direction), so directed/labeled patterns keep only the
    symmetries that respect edge roles.  Results are cached per
    structurally identical metagraph.
    """
    return _automorphisms_cached(
        metagraph.types, metagraph.edges, metagraph.kind_items
    )


@lru_cache(maxsize=4096)
def _automorphisms_cached(
    types: tuple[str, ...],
    edges: frozenset[tuple[int, int]],
    kind_items: KindItems = (),
) -> tuple[Permutation, ...]:
    n = len(types)
    adj: list[set[int]] = [set() for _ in range(n)]
    for u, v in edges:
        adj[u].add(v)
        adj[v].add(u)
    kinds: dict[Edge, EdgeSignature] = dict(kind_items)

    def sig(a: int, b: int) -> EdgeSignature:
        edge = (a, b) if a < b else (b, a)
        label, rel = kinds.get(edge, ("", 0))
        if rel != 0 and edge[0] != a:
            rel = -rel
        return (label, rel)

    degrees = [len(a) for a in adj]
    # candidate images per node: same type and degree
    candidates = [
        [v for v in range(n) if types[v] == types[u] and degrees[v] == degrees[u]]
        for u in range(n)
    ]
    found: list[Permutation] = []
    image = [-1] * n
    used = [False] * n

    def backtrack(u: int) -> None:
        if u == n:
            found.append(tuple(image))
            return
        for v in candidates[u]:
            if used[v]:
                continue
            # adjacency (and, for kinded patterns, signature)
            # consistency with already-assigned nodes
            consistent = True
            for w in range(u):
                w_adjacent = w in adj[u]
                img_adjacent = image[w] in adj[v]
                if w_adjacent != img_adjacent:
                    consistent = False
                    break
                if (
                    w_adjacent
                    and kinds
                    and sig(u, w) != sig(v, image[w])
                ):
                    consistent = False
                    break
            if consistent:
                image[u] = v
                used[v] = True
                backtrack(u + 1)
                used[v] = False
                image[u] = -1

    backtrack(0)
    return tuple(found)


def is_involution(sigma: Permutation) -> bool:
    """True iff applying ``sigma`` twice is the identity."""
    return all(sigma[sigma[u]] == u for u in range(len(sigma)))


def symmetric_pairs(metagraph: Metagraph) -> frozenset[tuple[int, int]]:
    """All unordered node pairs that are symmetric to each other (Def. 1).

    A pair ``(u, v)`` (with ``u < v``) is included iff some involutive
    automorphism swaps ``u`` and ``v``.
    """
    pairs: set[tuple[int, int]] = set()
    for sigma in automorphisms(metagraph):
        if not is_involution(sigma):
            continue
        for u in range(len(sigma)):
            v = sigma[u]
            if u < v:  # sigma[v] == u follows from involution
                pairs.add((u, v))
    return frozenset(pairs)


def is_symmetric(metagraph: Metagraph) -> bool:
    """True iff the metagraph is symmetric per Def. 1."""
    return bool(symmetric_pairs(metagraph))


def symmetric_partners(metagraph: Metagraph) -> dict[int, frozenset[int]]:
    """Map each node to the set of nodes it is symmetric to (possibly empty)."""
    partners: dict[int, set[int]] = {u: set() for u in metagraph.nodes()}
    for u, v in symmetric_pairs(metagraph):
        partners[u].add(v)
        partners[v].add(u)
    return {u: frozenset(s) for u, s in partners.items()}


def orbits(metagraph: Metagraph) -> tuple[frozenset[int], ...]:
    """Node orbits under the full automorphism group.

    Nodes in the same orbit are structurally interchangeable.  Orbits are
    returned sorted by their smallest member.
    """
    n = metagraph.size
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    for sigma in automorphisms(metagraph):
        for u in range(n):
            union(u, sigma[u])
    groups: dict[int, set[int]] = {}
    for u in range(n):
        groups.setdefault(find(u), set()).add(u)
    return tuple(
        sorted((frozenset(g) for g in groups.values()), key=min)
    )


def anchor_symmetric_pairs(metagraph: Metagraph, anchor_type: str) -> frozenset[tuple[int, int]]:
    """Symmetric pairs whose nodes both have ``anchor_type``.

    The metagraph vectors (Eq. 1–2) count co-occurrences of two *user*
    nodes at symmetric positions; this helper restricts Def. 1 pairs to
    the anchor type being queried.
    """
    return frozenset(
        (u, v)
        for u, v in symmetric_pairs(metagraph)
        if metagraph.node_type(u) == anchor_type and metagraph.node_type(v) == anchor_type
    )
