"""Metagraphs: typed pattern graphs characterising semantic classes."""

from repro.metagraph.canonical import are_isomorphic, canonical_form, canonicalize
from repro.metagraph.catalog import MetagraphCatalog
from repro.metagraph.decomposition import Decomposition, TwinFamily, decompose
from repro.metagraph.describe import describe, describe_weights
from repro.metagraph.metagraph import Metagraph, metapath
from repro.metagraph.similarity import (
    functional_similarity,
    mcs_size,
    structural_similarity,
)
from repro.metagraph.symmetry import (
    anchor_symmetric_pairs,
    automorphisms,
    is_symmetric,
    orbits,
    symmetric_pairs,
    symmetric_partners,
)

__all__ = [
    "Decomposition",
    "Metagraph",
    "MetagraphCatalog",
    "TwinFamily",
    "anchor_symmetric_pairs",
    "are_isomorphic",
    "automorphisms",
    "canonical_form",
    "canonicalize",
    "decompose",
    "describe",
    "describe_weights",
    "functional_similarity",
    "is_symmetric",
    "mcs_size",
    "metapath",
    "orbits",
    "structural_similarity",
    "symmetric_pairs",
    "symmetric_partners",
]
