"""MetagraphCatalog: the indexed set M of metagraphs on a graph.

The learning subsystem addresses metagraphs by dense integer id — the
positions of the weight vector ``w`` and the metagraph vectors ``m_x``,
``m_xy``.  :class:`MetagraphCatalog` provides that id space, deduplicates
by canonical form, and precomputes the structural facts the rest of the
pipeline needs (metapath flags for seed selection, symmetry flags for
the paper's symmetric-class restriction).
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.exceptions import CatalogMismatchError, MetagraphError
from repro.metagraph.canonical import (
    CanonicalForm,
    canonical_form,
    canonicalize,
    form_edge_entry,
)
from repro.metagraph.metagraph import Metagraph
from repro.metagraph.symmetry import anchor_symmetric_pairs, is_symmetric


class MetagraphCatalog:
    """An ordered, deduplicated collection of metagraphs.

    Parameters
    ----------
    metagraphs:
        Initial members; duplicates (up to isomorphism) are rejected.
    anchor_type:
        The node type whose proximity is being measured (``user`` in the
        paper).  Stored so that dependent artefacts can verify they were
        built against the same catalog.

    Examples
    --------
    >>> from repro.metagraph.metagraph import metapath
    >>> catalog = MetagraphCatalog([metapath("user", "school", "user")], "user")
    >>> len(catalog)
    1
    >>> catalog.metapath_ids()
    (0,)
    """

    def __init__(
        self,
        metagraphs: Iterable[Metagraph] = (),
        anchor_type: str = "user",
    ):
        self.anchor_type = anchor_type
        self._members: list[Metagraph] = []
        self._forms: dict[CanonicalForm, int] = {}
        for metagraph in metagraphs:
            self.add(metagraph)

    def add(self, metagraph: Metagraph) -> int:
        """Add a metagraph; returns its id.  Duplicates raise."""
        form = canonical_form(metagraph)
        if form in self._forms:
            raise MetagraphError(
                f"metagraph {metagraph!r} duplicates catalog member "
                f"#{self._forms[form]}"
            )
        mg_id = len(self._members)
        stored = canonicalize(metagraph)
        if not stored.name:
            stored = stored.with_name(f"M{mg_id}")
        self._members.append(stored)
        self._forms[form] = mg_id
        return mg_id

    def add_if_new(self, metagraph: Metagraph) -> tuple[int, bool]:
        """Add unless an isomorphic member exists; returns (id, added)."""
        form = canonical_form(metagraph)
        if form in self._forms:
            return self._forms[form], False
        return self.add(metagraph), True

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self) -> Iterator[Metagraph]:
        return iter(self._members)

    def __getitem__(self, mg_id: int) -> Metagraph:
        return self._members[mg_id]

    def __contains__(self, metagraph: Metagraph) -> bool:
        return canonical_form(metagraph) in self._forms

    def id_of(self, metagraph: Metagraph) -> int:
        """Id of an isomorphic member; raises if absent."""
        form = canonical_form(metagraph)
        try:
            return self._forms[form]
        except KeyError:
            raise MetagraphError(f"{metagraph!r} is not in the catalog") from None

    def ids(self) -> range:
        """All member ids 0..len-1."""
        return range(len(self._members))

    def metapath_ids(self) -> tuple[int, ...]:
        """Ids of members that are metapaths — Alg. 1's seed set K0."""
        return tuple(i for i, m in enumerate(self._members) if m.is_path)

    def non_metapath_ids(self) -> tuple[int, ...]:
        """Ids of members that are not metapaths — Alg. 1's M \\ K0."""
        return tuple(i for i, m in enumerate(self._members) if not m.is_path)

    def symmetric_ids(self) -> tuple[int, ...]:
        """Ids of members that are symmetric per Def. 1."""
        return tuple(i for i, m in enumerate(self._members) if is_symmetric(m))

    def anchor_pair_ids(self) -> tuple[int, ...]:
        """Ids whose members have ≥1 symmetric pair of anchor-type nodes.

        Only these metagraphs can contribute to the proximity between
        two anchor-type nodes (Eq. 1).
        """
        return tuple(
            i
            for i, m in enumerate(self._members)
            if anchor_symmetric_pairs(m, self.anchor_type)
        )

    def subset(self, ids: Iterable[int]) -> "MetagraphCatalog":
        """A new catalog containing only the given members (re-indexed)."""
        return MetagraphCatalog(
            (self._members[i] for i in ids), anchor_type=self.anchor_type
        )

    def verify_compatible(self, expected_size: int) -> None:
        """Raise :class:`CatalogMismatchError` unless sizes agree.

        Dependent artefacts (vectors, weight vectors) carry the catalog
        size they were built against and call this before use.
        """
        if len(self) != expected_size:
            raise CatalogMismatchError(
                f"catalog has {len(self)} metagraphs but the artefact was "
                f"built against {expected_size}"
            )

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    @staticmethod
    def _edge_doc(m: Metagraph) -> list[list]:
        """JSON edge entries: legacy pairs, or (u, v, label, rel) when kinded."""
        if not m.has_kinds:
            return [list(e) for e in sorted(m.edges)]
        entries = []
        for u, v, kind in m.edges_with_kinds():
            if not kind.directed:
                a, b = (u, v) if u < v else (v, u)
                entries.append([a, b, kind.label, 0])
            elif u < v:
                entries.append([u, v, kind.label, 1])
            else:
                entries.append([v, u, kind.label, -1])
        return sorted(entries)

    def to_json(self) -> str:
        """Serialise the catalog to JSON."""
        doc = {
            "anchor_type": self.anchor_type,
            "metagraphs": [
                {
                    "name": m.name,
                    "types": list(m.types),
                    "edges": self._edge_doc(m),
                }
                for m in self._members
            ],
        }
        return json.dumps(doc, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "MetagraphCatalog":
        """Parse a catalog from :meth:`to_json` output."""
        doc = json.loads(text)
        catalog = cls(anchor_type=doc["anchor_type"])
        for entry in doc["metagraphs"]:
            catalog.add(
                Metagraph(
                    entry["types"],
                    [form_edge_entry(tuple(e)) for e in entry["edges"]],
                    name=entry.get("name", ""),
                )
            )
        return catalog

    def save(self, path: str | Path) -> None:
        """Write the catalog to a JSON file."""
        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "MetagraphCatalog":
        """Read a catalog from a JSON file."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    def __repr__(self) -> str:
        return (
            f"<MetagraphCatalog: {len(self)} metagraphs, "
            f"{len(self.metapath_ids())} metapaths, anchor={self.anchor_type!r}>"
        )
