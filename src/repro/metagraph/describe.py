"""Human-readable one-line descriptions of metagraphs.

Learned weight vectors are only useful to a person if the heavy
metagraphs can be read back as structures ("two users sharing a school
and a major").  :func:`describe` renders the common shapes the way the
paper's Fig. 2 captions do, falling back to an explicit type/edge
listing for unusual patterns.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING

from repro.metagraph.metagraph import Metagraph
from repro.metagraph.symmetry import anchor_symmetric_pairs

if TYPE_CHECKING:
    import numpy as np

    from repro.metagraph.catalog import MetagraphCatalog


def _fmt_types(types: list[str]) -> str:
    counts = Counter(types)
    parts = []
    for name in sorted(counts):
        parts.append(name if counts[name] == 1 else f"{counts[name]}x {name}")
    return ", ".join(parts)


def describe(metagraph: Metagraph, anchor_type: str = "user") -> str:
    """A one-line English description of a metagraph.

    >>> from repro.metagraph.metagraph import Metagraph, metapath
    >>> describe(metapath("user", "address", "user"))
    'two users sharing an address'
    >>> describe(Metagraph(["user", "school", "major", "user"],
    ...                    [(0, 1), (0, 2), (3, 1), (3, 2)]))
    'two users sharing a school and a major'
    """
    anchors = metagraph.nodes_of_type(anchor_type)
    others = [i for i in metagraph.nodes() if i not in anchors]
    # the paper's staple: two anchors co-owning every other node
    if len(anchors) == 2 and others:
        a, b = anchors
        shared = [
            i
            for i in others
            if metagraph.has_edge(a, i) and metagraph.has_edge(b, i)
        ]
        if len(shared) == len(others) and not metagraph.has_edge(a, b):
            names = [metagraph.node_type(i) for i in shared]
            listing = " and ".join(
                f"{'an' if n[0] in 'aeiou' else 'a'} {n}" for n in sorted(names)
            )
            return f"two {anchor_type}s sharing {listing}"
        if len(shared) == len(others) and metagraph.has_edge(a, b):
            names = sorted(metagraph.node_type(i) for i in shared)
            listing = " and ".join(names)
            return f"two connected {anchor_type}s sharing {listing}"
    if metagraph.is_path:
        chain = "-".join(metagraph.types[i] for i in _path_order(metagraph))
        return f"path {chain}"
    return (
        f"{_fmt_types(list(metagraph.types))} with edges "
        f"{sorted(metagraph.edges)}"
    )


def _path_order(metagraph: Metagraph) -> list[int]:
    """Node order along a metapath (endpoints have degree 1)."""
    if metagraph.size == 1:
        return [0]
    start = next(i for i in metagraph.nodes() if metagraph.degree(i) == 1)
    order = [start]
    previous = None
    current = start
    while len(order) < metagraph.size:
        nxt = next(i for i in metagraph.neighbors(current) if i != previous)
        order.append(nxt)
        previous, current = current, nxt
    return order


def describe_weights(
    catalog: MetagraphCatalog,
    weights: np.ndarray,
    anchor_type: str = "user",
    k: int = 5,
    min_weight: float = 0.05,
) -> list[str]:
    """The top-k learned metagraphs as readable lines (for reports)."""
    import numpy as np

    order = np.argsort(-np.asarray(weights), kind="stable")[:k]
    lines = []
    for mg_id in order:
        weight = float(weights[mg_id])
        if weight < min_weight:
            break
        metagraph = catalog[int(mg_id)]
        symmetric = bool(anchor_symmetric_pairs(metagraph, anchor_type))
        marker = "" if symmetric else " [no symmetric anchor pair]"
        lines.append(
            f"w={weight:.2f}  {metagraph.name}: "
            f"{describe(metagraph, anchor_type)}{marker}"
        )
    return lines
