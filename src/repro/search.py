"""SemanticProximitySearch: the one-object facade over the whole pipeline.

Wraps Fig. 3's offline and online phases behind the API a downstream
application wants:

>>> engine = SemanticProximitySearch(graph)                 # doctest: +SKIP
>>> engine.prepare()                        # mine + match + index (offline)
>>> engine.fit("classmate", labelled_queries)        # learn one class
>>> engine.query("classmate", "Kate", k=10)          # online ranking
>>> engine.query_many("classmate", ["Kate", "Bob"])  # batched serving
>>> engine.explain("classmate", "Kate", "Jay")       # why they are close

Classes are independent models over the shared metagraph vectors, so
adding a class never recomputes matching.  ``fit`` accepts either
labelled queries (positives per query) or raw pairwise triplets.

Serving is compiled by default: ``prepare()`` freezes the counts into
the CSR backend (:meth:`MetagraphVectors.compile`), every fitted model
scores against it, and the sorted anchor universe is computed once and
reused by ``query``/``query_many`` instead of being re-sorted per call.
With ``shards=K`` the compiled universe is partitioned into K
node-range shards and batches fan out over ``serving_workers`` router
workers (:mod:`repro.serving`) — rankings stay bit-identical to the
single-process path.  Queries are validated before scoring: a node
that is absent from the graph, or not of the anchor type, raises
:class:`~repro.exceptions.QueryError` instead of silently ranking as
all zeros.

The offline phase is restartable: ``prepare(cache_dir=...)`` reuses a
valid on-disk snapshot (and persists a fresh build), ``save_index()``
snapshots the prepared index plus fitted classes, and ``from_index()``
cold-starts an engine from a snapshot without mining or matching at
all.  Builds parallelise over a process pool via
:class:`~repro.index.parallel.IndexBuildConfig`.

The graph may keep evolving after ``prepare()``:
``apply_updates(delta)`` applies a batch of
:class:`~repro.index.delta.GraphEdit` mutations and incrementally
patches the Eq. 1–2 counts instead of rebuilding (bit-identical to a
rebuild; see :mod:`repro.index.delta`).  Mutating the graph *directly*
is detected via the graph's mutation counter: the anchor universe
re-sorts itself, and serving raises
:class:`~repro.exceptions.StaleIndexError` instead of silently
answering from desynchronised counts.
"""

from __future__ import annotations

import tempfile
import threading
import warnings
from collections.abc import Iterable, Mapping, Sequence
from pathlib import Path

from repro.exceptions import LearningError, SnapshotError, StaleIndexError
from repro.graph.typed_graph import NodeId, TypedGraph
from repro.serving.backend import (
    InProcessBackend,
    ShardBackend,
    SubprocessBackend,
)
from repro.serving.router import QueryRouter, ShardedVectors
from repro.serving.validation import validate_query_node
from repro.index.delta import DeltaStats, GraphDelta, GraphEdit, apply_delta
from repro.index.instance_index import InstanceIndex
from repro.index.parallel import IndexBuildConfig, build_index
from repro.index.persist import (
    MANIFEST_FILE,
    LoadedIndex,
    catalog_fingerprint,
    load_index,
    read_manifest,
    save_index,
    snapshot_digest,
)
from repro.index.transform import TRANSFORMS, Transform, identity
from repro.index.vectors import MetagraphVectors, build_vectors
from repro.learning.examples import generate_triplets
from repro.learning.model import ProximityModel, SortedUniverse, require_valid_k
from repro.learning.objective import Triplet
from repro.learning.trainer import Trainer, TrainerConfig
from repro.metagraph.catalog import MetagraphCatalog
from repro.metagraph.metagraph import Metagraph
from repro.mining import MinerConfig, mine_catalog


class SemanticProximitySearch:
    """Semantic proximity search over one heterogeneous graph.

    Parameters
    ----------
    graph:
        The typed object graph.
    anchor_type:
        The node type whose proximity is measured (``"user"`` default).
    miner_config:
        Mining knobs (pattern size, support threshold).
    trainer_config:
        Gradient-ascent knobs shared by all classes.
    transform:
        Count transform applied to the metagraph vectors.
    compile_serving:
        Compile the online phase after ``prepare()`` (default).  Turn
        off to serve through the scalar reference path, e.g. when
        memory for the CSR snapshot is tighter than latency.
    shards:
        Partition the compiled universe into this many node-range
        shards (:mod:`repro.serving`) and serve ``query``/``query_many``
        through the shard router.  ``1`` (default) keeps the
        single-process compiled path; any value produces bit-identical
        rankings.  Requires ``compile_serving``.
    serving_workers:
        Worker threads the shard router fans a query batch out over
        (only meaningful with ``shards > 1``).
    serving_backend:
        Where shard scoring runs: ``"thread"`` (default) keeps every
        shard in this process; ``"process"`` supervises standalone
        shard-worker processes that mmap their slice from a format-v2
        snapshot and answer over the serving wire protocol — rankings
        stay bit-identical.  Requires ``compile_serving``.
    replicas:
        Worker processes per shard with ``serving_backend="process"``
        (default: ``REPRO_SERVING_REPLICAS`` or 1); a shard request
        fails over to the next replica when a worker dies.
    """

    def __init__(
        self,
        graph: TypedGraph,
        anchor_type: str = "user",
        miner_config: MinerConfig | None = None,
        trainer_config: TrainerConfig | None = None,
        transform: Transform = identity,
        compile_serving: bool = True,
        shards: int = 1,
        serving_workers: int = 1,
        serving_backend: str = "thread",
        replicas: int | None = None,
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if serving_workers < 1:
            raise ValueError(
                f"serving_workers must be >= 1, got {serving_workers}"
            )
        if serving_backend not in ("thread", "process"):
            raise ValueError(
                f"serving_backend must be 'thread' or 'process', got "
                f"{serving_backend!r}"
            )
        if shards > 1 and not compile_serving:
            raise ValueError(
                "sharded serving slices the compiled CSR snapshot; it "
                "requires compile_serving=True"
            )
        if serving_backend == "process" and not compile_serving:
            raise ValueError(
                "process workers mmap the compiled CSR snapshot; "
                "serving_backend='process' requires compile_serving=True"
            )
        self.graph = graph
        self.anchor_type = anchor_type
        self.miner_config = miner_config or MinerConfig()
        self.trainer_config = trainer_config or TrainerConfig()
        self.transform = transform
        self.compile_serving = compile_serving
        self.shards = shards
        self.serving_workers = serving_workers
        self.serving_backend = serving_backend
        self.replicas = replicas
        # double-checked locking: writes only under the serving lock;
        # the unlocked fast-path reads see either the old or the new
        # router, both of which serve correctly
        self._router: QueryRouter | None = None  # guarded-by: _serving_lock (writes)
        # serialises serving-tier (re)builds: concurrent queries racing
        # a snapshot change must produce ONE swap, not one per thread.
        # Reentrant so refresh_serving() works both standalone and from
        # under _serving_router()/reload_index()
        self._serving_lock = threading.RLock()
        # the compiled snapshot the router's backend was built over —
        # a change triggers a zero-downtime swap on the next query
        self._router_compiled = None  # guarded-by: _serving_lock (writes)
        # latest on-disk snapshot of the current compiled counts (the
        # process backend's workers mmap it); _snapshot_compiled pins
        # which CompiledVectors the path corresponds to
        self._snapshot_path: Path | None = None
        self._snapshot_compiled = None
        self._snapshots_tmp: tempfile.TemporaryDirectory | None = None
        self._snapshot_seq = 0
        # (path, compiled, digest) memo for serving_digest(): read the
        # manifest once while the snapshot is on disk, not per query
        self._serving_digest_memo: tuple | None = None
        self.catalog: MetagraphCatalog | None = None
        self.vectors: MetagraphVectors | None = None
        self.index: InstanceIndex | None = None
        self._models: dict[str, ProximityModel] = {}
        self._universe: SortedUniverse | None = None
        self._universe_version: int | None = None
        # graph.version the counts describe; None until prepared.  A
        # direct graph mutation bumps graph.version past this, which
        # serving detects instead of answering from stale counts.
        self._index_graph_version: int | None = None
        # GraphEdit JSON records applied via apply_updates() since the
        # original build (persisted so snapshots stay reconstructible)
        self._update_log: list[dict] = []
        # True when this engine's catalog came from its own miner_config
        # (snapshots then record the knobs so staleness is detectable)
        self._catalog_from_mining = False

    # ------------------------------------------------------------------
    # offline phase
    # ------------------------------------------------------------------
    def prepare(
        self,
        catalog: MetagraphCatalog | None = None,
        cache_dir: str | Path | None = None,
        build_config: IndexBuildConfig | None = None,
    ) -> "SemanticProximitySearch":
        """Run the offline phase: mine (unless given a catalog), match, index.

        Re-preparing replaces the vector store, so previously fitted
        models (trained against the old counts) are dropped — refit
        each class afterwards (snapshot-restored classes excepted, see
        below).

        ``cache_dir`` makes the phase restartable: a valid snapshot for
        *this* graph (matching fingerprint, format version and
        transform) is loaded instead of mining and matching — restoring
        any classes it carries — and a fresh build is persisted there
        for the next cold start.  A stale or corrupt snapshot is
        rebuilt, never trusted.  ``build_config`` shards the matching
        work across a process pool (:class:`IndexBuildConfig`); the
        result is identical for any worker count.
        """
        if cache_dir is not None:
            try:
                loaded = load_index(
                    cache_dir, graph=self.graph, transform=self.transform
                )
                self._check_snapshot_compatible(loaded)
                if catalog is not None:
                    if catalog_fingerprint(catalog) != loaded.manifest.get(
                        "catalog_sha256"
                    ):
                        raise SnapshotError(
                            "snapshot catalog differs from the provided catalog"
                        )
                else:
                    recorded_knobs = loaded.manifest.get("extra", {}).get(
                        "miner_config"
                    )
                    if (
                        recorded_knobs is not None
                        and recorded_knobs != self.miner_config.to_json_dict()
                    ):
                        raise SnapshotError(
                            f"snapshot was mined with {recorded_knobs}, this "
                            f"engine mines with {self.miner_config.to_json_dict()}"
                        )
            except SnapshotError as exc:
                # absent, stale, corrupt, or built under another engine
                # configuration: rebuild below (and overwrite — a cache
                # dir belongs to one engine configuration).  Anything
                # beyond a plain missing snapshot is worth a warning so
                # two engines ping-ponging one cache dir is diagnosable.
                if (Path(cache_dir) / MANIFEST_FILE).exists():
                    warnings.warn(
                        f"rebuilding index cache at {cache_dir}: {exc}",
                        stacklevel=2,
                    )
            else:
                self._install_loaded(loaded)
                return self
        if catalog is not None:
            self.catalog = catalog
            self._catalog_from_mining = False
        else:
            self.catalog = mine_catalog(
                self.graph, self.miner_config, anchor_type=self.anchor_type
            )
            self._catalog_from_mining = True
        self.vectors, self.index = build_index(
            self.graph, self.catalog, config=build_config, transform=self.transform
        )
        if self.compile_serving:
            self.vectors.compile()
        # the old router serves the replaced snapshot: close it (and any
        # worker processes it supervises) before it can leak
        self._close_router()
        self._universe = None
        self._models.clear()
        self._index_graph_version = self.graph.version
        self._update_log = []
        if cache_dir is not None:
            self.save_index(cache_dir)
        return self

    def _check_snapshot_compatible(self, loaded: LoadedIndex) -> None:
        """Reject a snapshot this engine cannot serve from as stale."""
        if loaded.vectors.anchor_type != self.anchor_type:
            raise SnapshotError(
                f"snapshot anchors {loaded.vectors.anchor_type!r}, engine "
                f"anchors {self.anchor_type!r}"
            )
        recorded = loaded.manifest.get("transform")
        current = next(
            (name for name, fn in TRANSFORMS.items() if fn is self.transform),
            None,
        )
        if recorded != current:
            raise SnapshotError(
                f"snapshot counts use transform {recorded!r}, engine uses "
                f"{current!r}"
            )

    def _install_loaded(
        self, loaded: LoadedIndex, close_router: bool = True
    ) -> None:
        """Adopt a loaded snapshot as this engine's offline artefacts.

        ``close_router=False`` keeps the live serving tier up while the
        artefacts change underneath it — the :meth:`reload_index` hot
        path, which swaps the router onto the new snapshot afterwards
        instead of tearing it down.
        """
        if close_router:
            self._close_router()
        self.catalog = loaded.catalog
        self.vectors = loaded.vectors
        self._catalog_from_mining = (
            loaded.manifest.get("extra", {}).get("miner_config") is not None
        )
        # a snapshot saved without per-metagraph |I(M)| totals cannot
        # back an InstanceIndex: reconstruction would start every total
        # at 0, so delta updates would drive them negative (or persist
        # wrong totals as authoritative) — serve without one instead
        self.index = loaded.instance_index() if loaded.instance_totals else None
        self._universe = None
        self._index_graph_version = self.graph.version
        self._update_log = list(loaded.manifest.get("update_log", []))
        if self.compile_serving:
            if loaded.compiled is not None:
                # format-v2 sidecar: the snapshot arrives mmap-loaded,
                # so serving starts without re-freezing the counts
                self.vectors.adopt_compiled(loaded.compiled)
            else:
                self.vectors.compile()
        models: dict[str, ProximityModel] = {}
        for name, weights in loaded.models.items():
            model = ProximityModel(weights, self.vectors, name=name)
            if self.compile_serving:
                model.compile()
            models[name] = model
        # one reference swap, not clear-then-refill: a concurrent query
        # during a hot reload sees the full old set or the full new set,
        # never a half-populated dict
        self._models = models

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save_index(self, path: str | Path) -> Path:
        """Snapshot the offline artefacts (and fitted classes) to disk.

        The snapshot carries the catalog, the count store, per-metagraph
        instance totals, the graph fingerprint, and one weight vector
        per fitted class; :meth:`from_index` restores all of it.  When
        the catalog was mined (rather than supplied), the mining knobs
        are recorded too, so ``prepare(cache_dir=...)`` can detect a
        snapshot mined under different knobs and rebuild.

        A stale engine (graph mutated outside :meth:`apply_updates`)
        refuses to save: the snapshot would stamp the mutated graph's
        fingerprint onto pre-mutation counts, laundering the staleness
        past :meth:`from_index`'s fingerprint check.
        """
        catalog, vectors = self._require_fresh()
        extra = (
            {"miner_config": self.miner_config.to_json_dict()}
            if self._catalog_from_mining
            else None
        )
        target = save_index(
            path,
            vectors,
            catalog,
            graph=self.graph,
            index=self.index,
            models={name: model.weights for name, model in self._models.items()},
            extra=extra,
            update_log=self._update_log,
        )
        # the freshest on-disk copy of the current counts: process
        # shard workers mmap their slice from here
        self._snapshot_path = target
        self._snapshot_compiled = vectors._compiled
        return target

    @classmethod
    def from_index(
        cls,
        path: str | Path,
        graph: TypedGraph,
        trainer_config: TrainerConfig | None = None,
        transform: Transform | None = None,
        compile_serving: bool = True,
        shards: int = 1,
        serving_workers: int = 1,
        serving_backend: str = "thread",
        replicas: int | None = None,
        mmap: bool = True,
    ) -> "SemanticProximitySearch":
        """Cold-start an engine from a snapshot: no mining, no matching.

        ``graph`` must be the graph the snapshot was built on (checked
        by fingerprint).  Restored classes serve immediately;
        ``transform`` is only needed when the snapshot was built with a
        custom (unnamed) count transform.

        With ``mmap=True`` (default) a format-v2 snapshot's compiled
        sidecar is memory-mapped and adopted as the serving backend —
        near-zero copy, shared between worker processes on one host —
        instead of re-freezing the counts.  ``shards``/
        ``serving_workers``/``serving_backend``/``replicas`` configure
        the sharded serving tier exactly as in the constructor; with
        ``serving_backend="process"`` the shard workers mmap this very
        snapshot, no re-save needed.
        """
        loaded = load_index(path, graph=graph, transform=transform, mmap=mmap)
        engine = cls(
            graph,
            anchor_type=loaded.vectors.anchor_type,
            trainer_config=trainer_config,
            transform=loaded.vectors.transform,
            compile_serving=compile_serving,
            shards=shards,
            serving_workers=serving_workers,
            serving_backend=serving_backend,
            replicas=replicas,
        )
        engine._install_loaded(loaded)
        if loaded.compiled is not None and compile_serving:
            # process workers can mmap the very snapshot we loaded from
            engine._snapshot_path = Path(path)
            engine._snapshot_compiled = engine.vectors._compiled
        return engine

    def universe(self) -> SortedUniverse:
        """The anchor universe sorted by repr, computed once and cached.

        Invalidated automatically whenever the graph mutates (tracked by
        :attr:`TypedGraph.version`), so added or removed anchor nodes
        are always reflected — no ``prepare()`` required.
        """
        if (
            self._universe is None
            or self._universe_version != self.graph.version
        ):
            self._universe = SortedUniverse(
                self.graph.nodes_of_type(self.anchor_type)
            )
            self._universe_version = self.graph.version
        return self._universe

    def _require_prepared(self) -> tuple[MetagraphCatalog, MetagraphVectors]:
        if self.catalog is None or self.vectors is None:
            raise LearningError(
                "offline phase not run: call prepare() before fit()/query()"
            )
        return self.catalog, self.vectors

    def _require_fresh(self) -> tuple[MetagraphCatalog, MetagraphVectors]:
        """Like :meth:`_require_prepared`, but also reject stale counts.

        The graph mutating outside :meth:`apply_updates` leaves the
        Eq. 1–2 counts describing an older graph; serving from them
        would silently return wrong rankings.
        """
        catalog, vectors = self._require_prepared()
        if self._index_graph_version != self.graph.version:
            raise StaleIndexError(
                f"graph mutated since the index was built (version "
                f"{self.graph.version} vs indexed "
                f"{self._index_graph_version}); route mutations through "
                "apply_updates(), or call prepare() to rebuild"
            )
        return catalog, vectors

    # ------------------------------------------------------------------
    # dynamic updates
    # ------------------------------------------------------------------
    def apply_updates(
        self, delta: GraphDelta | Iterable[GraphEdit]
    ) -> DeltaStats:
        """Apply graph edits and incrementally maintain the index.

        Mutates the graph and patches the Eq. 1–2 counts, the instance
        index, the compiled CSR snapshot and every fitted model's dot
        products in place of a full ``prepare()`` rebuild; the result is
        bit-identical to rebuilding on the mutated graph.  Fitted models
        keep their trained weights (retrain when the semantics of a
        class should track the new structure).
        """
        catalog, vectors = self._require_fresh()
        if not isinstance(delta, GraphDelta):
            delta = GraphDelta(delta)

        def record(edit: GraphEdit) -> None:
            # per-effective-edit checkpoint: a failing edit mid-batch
            # leaves everything before it applied, versioned and logged
            # — nothing after it touched, and no-ops never bloat the log
            self._index_graph_version = self.graph.version
            self._update_log.append(edit.to_json_dict())

        try:
            stats = apply_delta(
                self.graph, catalog, vectors, delta,
                index=self.index, on_edit=record,
            )
        finally:
            if self.compile_serving:
                # cached no-op when no edit touched the counts; models
                # re-derive their dot products only against a new snapshot
                compiled = vectors.compile()
                for model in self._models.values():
                    if model.compiled is not compiled:
                        model.compile(compiled)
        return stats

    # ------------------------------------------------------------------
    # learning
    # ------------------------------------------------------------------
    def fit(
        self,
        class_name: str,
        labels: Mapping[NodeId, frozenset[NodeId]] | None = None,
        queries: Sequence[NodeId] | None = None,
        triplets: Sequence[Triplet] | None = None,
        num_examples: int = 500,
        seed: int = 0,
    ) -> ProximityModel:
        """Learn one semantic class; returns (and stores) its model.

        Supply either raw ``triplets``, or ``labels`` (positives per
        query) with optional ``queries`` (defaults to every labelled
        query) from which triplets are sampled.
        """
        _catalog, vectors = self._require_fresh()
        if triplets is None:
            if labels is None:
                raise LearningError("fit() needs labels or triplets")
            if queries is None:
                queries = sorted(
                    (q for q, members in labels.items() if members), key=repr
                )
            triplets = generate_triplets(
                queries,
                labels,
                self.universe(),
                num_examples=num_examples,
                seed=seed,
            )
        trainer = Trainer(self.trainer_config)
        weights = trainer.train(triplets, vectors)
        model = ProximityModel(weights, vectors, name=class_name)
        if self.compile_serving:
            model.compile()
        self._models[class_name] = model
        return model

    @property
    def classes(self) -> tuple[str, ...]:
        """The fitted class names."""
        return tuple(sorted(self._models))

    def model(self, class_name: str) -> ProximityModel:
        """The fitted model of a class; raises for unknown classes."""
        try:
            return self._models[class_name]
        except KeyError:
            raise LearningError(
                f"class {class_name!r} not fitted; available: {list(self.classes)}"
            ) from None

    # ------------------------------------------------------------------
    # online phase
    # ------------------------------------------------------------------
    def _validate_query_node(self, node: NodeId, role: str = "query") -> None:
        """Reject nodes the online phase cannot rank (QueryError)."""
        validate_query_node(self.graph, node, self.anchor_type, role=role)

    @property
    def _routed(self) -> bool:
        """Whether ``query``/``query_many`` go through the shard router."""
        return self.compile_serving and (
            self.shards > 1 or self.serving_backend == "process"
        )

    def _close_router(self) -> None:
        """Tear the serving tier down (thread pools, worker processes)."""
        with self._serving_lock:
            router, self._router = self._router, None
            self._router_compiled = None
        if router is not None:
            router.close()

    def close(self) -> None:
        """Release serving resources: router, workers, owned snapshots.

        Idempotent; the engine stays usable (the serving tier rebuilds
        lazily on the next query).  Also available as a context
        manager: ``with SemanticProximitySearch(...) as engine: ...``.
        """
        self._close_router()
        if self._snapshots_tmp is not None:
            tmp, self._snapshots_tmp = self._snapshots_tmp, None
            self._snapshot_seq = 0
            if self._snapshot_path is not None and self._snapshot_path.is_relative_to(
                Path(tmp.name)
            ):
                self._snapshot_path = None
                self._snapshot_compiled = None
            tmp.cleanup()

    def __enter__(self) -> "SemanticProximitySearch":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _process_snapshot(self, compiled) -> Path:
        """An on-disk format-v2 snapshot of ``compiled``, saving if needed.

        Process shard workers mmap their slice from disk, so serving a
        snapshot that only exists in memory (fresh ``prepare()``, or
        counts patched by :meth:`apply_updates`) first persists it into
        an engine-owned temporary directory, one versioned subdirectory
        per snapshot generation.  A user-supplied snapshot
        (:meth:`from_index` / :meth:`save_index`) is mmapped where it
        lies and never rewritten.
        """
        if (
            self._snapshot_path is not None
            and self._snapshot_compiled is compiled
        ):
            return self._snapshot_path
        if self._snapshots_tmp is None:
            self._snapshots_tmp = tempfile.TemporaryDirectory(
                prefix="repro-engine-snapshots-"
            )
        self._snapshot_seq += 1
        path = Path(self._snapshots_tmp.name) / f"v{self._snapshot_seq}"
        self.save_index(path)
        return path

    def _build_backend(self, compiled) -> ShardBackend:
        """A fresh, not-yet-started backend over one compiled snapshot."""
        if self.serving_backend == "process":
            return SubprocessBackend(
                self._process_snapshot(compiled),
                self.shards,
                replicas=self.replicas,
            )
        return InProcessBackend(ShardedVectors.partition(compiled, self.shards))

    def refresh_serving(self) -> None:
        """Rebuild the serving tier over the current snapshot, zero-downtime.

        The explicit swap hook: a new backend (fresh shard partitions;
        with ``serving_backend="process"``, a fresh worker fleet) warms
        while the old one keeps serving, new batches move over
        atomically, and the old backend drains its in-flight batches
        before closing.  ``query``/``query_many`` trigger the same swap
        lazily whenever the compiled snapshot changed; call this to
        force one — e.g. to re-point workers at a just-saved snapshot
        or pick up new ``REPRO_SERVING_*`` knobs.
        """
        if not self._routed:
            return
        _catalog, vectors = self._require_fresh()
        with self._serving_lock:
            compiled = vectors.compile()
            for model in self._models.values():
                if model.compiled is not compiled:
                    model.compile(compiled)
            backend = self._build_backend(compiled)
            if self._router is None:
                self._router = QueryRouter(
                    backend, workers=self.serving_workers
                )
            else:
                self._router.swap(backend)
            self._router_compiled = compiled

    def serving_digest(self) -> str:
        """Content digest of the snapshot serving answers right now.

        The front-end's cache-key component: two engines (or one engine
        across a hot reload) report the same digest exactly when every
        ranking they serve is bit-identical.  An engine pinned to an
        on-disk snapshot reports that snapshot's manifest self-digest
        (so a frontend and a snapshot-directory watcher agree on
        identity); an engine whose counts only live in memory digests
        the compiled CSR arrays directly.
        """
        _catalog, vectors = self._require_fresh()
        compiled = vectors.compile()
        if (
            self._snapshot_path is not None
            and self._snapshot_compiled is compiled
        ):
            memo = self._serving_digest_memo
            if (
                memo is not None
                and memo[0] == self._snapshot_path
                and memo[1] is compiled
            ):
                return memo[2]
            digest = snapshot_digest(self._snapshot_path)
            self._serving_digest_memo = (
                self._snapshot_path, compiled, digest,
            )
            return digest
        return compiled.content_digest()

    def reload_index(self, path: str | Path, mmap: bool = True) -> str:
        """Hot-swap this engine onto an on-disk snapshot, zero-downtime.

        The serving-tier counterpart of :meth:`from_index`: the
        snapshot is validated and loaded *while the current router
        keeps answering*, the artefacts (counts, compiled sidecar,
        fitted classes) are adopted, and the router swaps onto the new
        snapshot via :meth:`QueryRouter.swap` — in-flight batches drain
        on the old backend, new batches take the new one, and nothing
        returns an error in between.  In-flight queries may resolve
        against either snapshot during the swap window.

        A snapshot whose recorded update log strictly *extends* this
        engine's (the publisher kept applying :meth:`apply_updates`
        after our last common point) first replays the missing suffix
        onto the live graph, so the fingerprint check still holds and
        the universe picks up added/removed anchors.  Returns the new
        :meth:`serving_digest`.
        """
        source = Path(path)
        manifest = read_manifest(source)
        recorded_log = list(manifest.get("update_log", []))
        if (
            len(recorded_log) > len(self._update_log)
            and recorded_log[: len(self._update_log)] == self._update_log
        ):
            suffix = recorded_log[len(self._update_log) :]
            GraphDelta(
                GraphEdit.from_json_dict(doc) for doc in suffix
            ).apply_to(self.graph)
        loaded = load_index(
            source, graph=self.graph, transform=self.transform, mmap=mmap
        )
        self._check_snapshot_compatible(loaded)
        self._install_loaded(loaded, close_router=False)
        self._snapshot_path = source
        self._snapshot_compiled = self.vectors._compiled
        with self._serving_lock:
            if self._router is not None:
                if self._routed:
                    self.refresh_serving()
                else:
                    self._close_router()
        return self.serving_digest()

    def frontend(self, config=None, cache=None):
        """A :class:`~repro.serving.frontend.QueryFrontend` over this engine.

        The batching/caching serving face: validates and coalesces
        concurrent single queries into dynamic ``query_many`` batches
        and memoises rankings under :meth:`serving_digest`-scoped keys.
        The frontend borrows the engine (closing the frontend leaves
        the engine open).
        """
        # lazy import: repro.serving.frontend imports this module's
        # collaborators; the facade stays importable without it
        from repro.serving.frontend import QueryFrontend

        return QueryFrontend(self, config=config, cache=cache)

    def serve_forever(
        self,
        listen: str = "127.0.0.1:8766",
        config=None,
        watch: str | Path | None = None,
    ) -> None:
        """Serve this engine over HTTP until interrupted (blocking).

        Binds ``HOST:PORT`` from ``listen`` and answers ``/query``,
        ``/reload``, ``/stats`` and ``/health``
        (:class:`~repro.serving.frontend.FrontendServer`).  ``watch``
        points at a snapshot directory to poll for hot reloads.
        """
        from repro.serving.frontend import (
            FrontendServer,
            QueryFrontend,
            parse_listen,
        )

        host, port = parse_listen(listen)
        front = QueryFrontend(self, config=config)
        try:
            if watch is not None:
                front.watch(watch)
            server = FrontendServer(front, host=host, port=port)
            try:
                server.serve_forever()
            finally:
                server.shutdown()
        finally:
            front.close()

    def _serving_router(self, model: ProximityModel) -> QueryRouter:
        """The shard router over the *current* compiled snapshot.

        Re-builds the backend lazily whenever the snapshot changed (new
        counts folded in, :meth:`apply_updates`, re-``prepare()``) —
        via :meth:`QueryRouter.swap`, so in-flight batches finish on
        the old snapshot while new ones take the new — and keeps the
        model's dot products in lock-step, mirroring
        :meth:`ProximityModel.rank`'s transparent recompile.
        """
        compiled = self.vectors.compile()
        if model.compiled is not compiled:
            model.compile(compiled)
        if self._router is None or self._router_compiled is not compiled:
            # double-checked under the serving lock: many query threads
            # may race one snapshot change, exactly one swaps
            with self._serving_lock:
                if (
                    self._router is None
                    or self._router_compiled is not compiled
                ):
                    self.refresh_serving()
        return self._router

    def query(
        self, class_name: str, query: NodeId, k: int | None = 10
    ) -> list[tuple[NodeId, float]]:
        """Rank anchor nodes by proximity to ``query`` for one class.

        Raises :class:`~repro.exceptions.StaleIndexError` when the graph
        mutated without a matching :meth:`apply_updates` — the counts no
        longer describe the graph, so serving would be silently wrong.
        Raises :class:`~repro.exceptions.QueryError` when ``query`` is
        not an anchor-typed node of the graph (the paper's online phase
        is undefined there, and an all-zero ranking would be served as a
        confidently wrong answer), and :class:`ValueError` for a
        negative ``k``.
        """
        self._require_fresh()
        model = self.model(class_name)
        require_valid_k(k)
        self._validate_query_node(query)
        if self._routed:
            return self._serving_router(model).rank(
                model, query, universe=self.universe(), k=k
            )
        return model.rank(query, universe=self.universe(), k=k)

    def query_many(
        self,
        class_name: str,
        queries: Sequence[NodeId],
        k: int | None = 10,
    ) -> list[list[tuple[NodeId, float]]]:
        """Rank a batch of queries for one class (one ranking each).

        Batched serving amortises everything shared across queries —
        the compiled CSR snapshot, the precomputed dot products and the
        sorted anchor universe — so each extra query costs only its own
        candidate slice.  With ``shards > 1`` the batch fans out across
        the shard router's workers and merges bit-identically to the
        single-process path.  The whole batch is validated before any
        ranking: one unknown or off-anchor query fails the batch with
        :class:`~repro.exceptions.QueryError`.
        """
        self._require_fresh()
        model = self.model(class_name)
        require_valid_k(k)
        queries = list(queries)  # validation + ranking both traverse it
        for query in queries:
            self._validate_query_node(query)
        universe = self.universe()
        if self._routed:
            return self._serving_router(model).rank_many(
                model, queries, universe=universe, k=k
            )
        return [model.rank(q, universe=universe, k=k) for q in queries]

    def proximity(self, class_name: str, x: NodeId, y: NodeId) -> float:
        """pi(x, y) under one class's learned weights.

        Both nodes must be anchor-typed nodes of the graph
        (:class:`~repro.exceptions.QueryError` otherwise — a silent 0.0
        for a typo'd node is indistinguishable from a true zero).
        """
        self._require_fresh()
        model = self.model(class_name)
        self._validate_query_node(x, role="pair")
        self._validate_query_node(y, role="pair")
        return model.proximity(x, y)

    def explain(
        self, class_name: str, x: NodeId, y: NodeId, k: int = 5
    ) -> list[tuple[Metagraph, float]]:
        """Top contributing metagraphs for a pair, as (metagraph, share).

        Like :meth:`proximity`, raises
        :class:`~repro.exceptions.QueryError` for unknown or
        off-anchor nodes instead of returning an empty explanation.
        """
        catalog, _vectors = self._require_fresh()
        model = self.model(class_name)
        self._validate_query_node(x, role="pair")
        self._validate_query_node(y, role="pair")
        return [
            (catalog[mg_id], contribution)
            for mg_id, contribution in model.explain(x, y, k=k)
        ]

    def __repr__(self) -> str:
        prepared = self.catalog is not None
        return (
            f"<SemanticProximitySearch: {self.graph!r}, prepared={prepared}, "
            f"classes={list(self.classes)}>"
        )
