"""End-to-end evaluation harness (Sect. V-A "Training and testing").

A *ranker* is any callable ``rank(query) -> ordered list of nodes``
(most proximate first, query excluded).  The harness compares rankings
against the labelled class membership and reports mean NDCG@10 and
MAP@10 over the test queries.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass

from repro.graph.typed_graph import NodeId
from repro.eval.metrics import average_precision_at_k, mean, ndcg_at_k

Ranker = Callable[[NodeId], Sequence[NodeId]]
Labels = Mapping[NodeId, frozenset[NodeId]]


@dataclass(frozen=True)
class EvalResult:
    """Mean ranking quality over a set of test queries."""

    ndcg: float
    map: float
    num_queries: int

    def __add__(self, other: "EvalResult") -> "EvalResult":
        """Pool two results, weighting by query counts."""
        total = self.num_queries + other.num_queries
        if total == 0:
            return EvalResult(0.0, 0.0, 0)
        return EvalResult(
            ndcg=(self.ndcg * self.num_queries + other.ndcg * other.num_queries) / total,
            map=(self.map * self.num_queries + other.map * other.num_queries) / total,
            num_queries=total,
        )


def evaluate_ranker(
    ranker: Ranker,
    test_queries: Sequence[NodeId],
    labels: Labels,
    k: int = 10,
) -> EvalResult:
    """Mean NDCG@k / MAP@k of a ranker over the test queries.

    Queries with no labelled positives are skipped — they have no ideal
    ranking to compare against (the paper only uses queries with at
    least one same-class node).
    """
    ndcgs: list[float] = []
    aps: list[float] = []
    evaluated = 0
    for q in test_queries:
        relevant = labels.get(q, frozenset()) - {q}
        if not relevant:
            continue
        ranked = list(ranker(q))
        ndcgs.append(ndcg_at_k(ranked, relevant, k))
        aps.append(average_precision_at_k(ranked, relevant, k))
        evaluated += 1
    return EvalResult(ndcg=mean(ndcgs), map=mean(aps), num_queries=evaluated)


def average_results(results: Sequence[EvalResult]) -> EvalResult:
    """Unweighted mean over splits (the paper averages over 10 splits)."""
    if not results:
        return EvalResult(0.0, 0.0, 0)
    return EvalResult(
        ndcg=mean([r.ndcg for r in results]),
        map=mean([r.map for r in results]),
        num_queries=sum(r.num_queries for r in results),
    )


def model_ranker(model, universe: Sequence[NodeId]) -> Ranker:
    """Adapt a ProximityModel (or anything with .rank) to the harness."""

    def rank(query: NodeId) -> list[NodeId]:
        return [node for node, _score in model.rank(query, universe=universe)]

    return rank
