"""Query splits: 20% train / 80% test, repeated 10 times (Sect. V-A).

"We randomly split the queries into two subsets: 20% for training and
the rest for testing.  We repeated such splitting for 10 times, and
averaged the performance over these 10 splits."
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass

from repro.exceptions import DatasetError
from repro.graph.typed_graph import NodeId


@dataclass(frozen=True)
class QuerySplit:
    """One train/test partition of the query nodes."""

    train: tuple[NodeId, ...]
    test: tuple[NodeId, ...]


def split_queries(
    queries: Sequence[NodeId],
    train_fraction: float = 0.2,
    num_splits: int = 10,
    seed: int = 0,
) -> list[QuerySplit]:
    """Seeded repeated train/test splits of the query nodes.

    Every split keeps at least one query on each side (the paper's
    protocol needs both training examples and test rankings).
    """
    if not queries:
        raise DatasetError("cannot split an empty query set")
    if not 0.0 < train_fraction < 1.0:
        raise DatasetError(f"train_fraction must be in (0, 1), got {train_fraction}")
    if num_splits <= 0:
        raise DatasetError("num_splits must be positive")
    pool = sorted(queries, key=repr)
    n_train = max(1, round(len(pool) * train_fraction))
    n_train = min(n_train, len(pool) - 1) if len(pool) > 1 else 1
    rng = random.Random(seed)
    splits = []
    for _ in range(num_splits):
        shuffled = pool[:]
        rng.shuffle(shuffled)
        splits.append(
            QuerySplit(
                train=tuple(shuffled[:n_train]),
                test=tuple(shuffled[n_train:]) or tuple(shuffled[:n_train]),
            )
        )
    return splits
