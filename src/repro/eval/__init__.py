"""Evaluation protocol: metrics, splits, and the ranking harness."""

from repro.eval.harness import (
    EvalResult,
    Ranker,
    average_results,
    evaluate_ranker,
    model_ranker,
)
from repro.eval.metrics import (
    average_precision_at_k,
    dcg_at_k,
    ideal_dcg_at_k,
    mean,
    ndcg_at_k,
    precision_at_k,
    reciprocal_rank,
)
from repro.eval.splits import QuerySplit, split_queries

__all__ = [
    "EvalResult",
    "QuerySplit",
    "Ranker",
    "average_precision_at_k",
    "average_results",
    "dcg_at_k",
    "evaluate_ranker",
    "ideal_dcg_at_k",
    "mean",
    "model_ranker",
    "ndcg_at_k",
    "precision_at_k",
    "reciprocal_rank",
    "split_queries",
]
