"""Ranking quality metrics: NDCG@k and MAP@k (Sect. V-A, "adopted NDCG
and MAP to evaluate the quality of the algorithmic rankings at top 10").

Relevance is binary: a ranked node is relevant iff it belongs to the
desired class w.r.t. the query.  The ideal ranking places all relevant
nodes first, so

    NDCG@k = DCG@k / IDCG@k,   DCG@k = sum_i rel_i / log2(i + 1)
    AP@k   = (1/min(R, k)) * sum_i rel_i * precision@i

with positions ``i`` starting at 1 and ``R`` the number of relevant
nodes.  Queries with no relevant nodes are excluded by the harness
(Sect. V-A only uses queries with at least one same-class user).
"""

from __future__ import annotations

import math
from collections.abc import Sequence, Set

from repro.graph.typed_graph import NodeId


def dcg_at_k(ranked: Sequence[NodeId], relevant: Set, k: int) -> float:
    """Discounted cumulative gain of the top-k prefix (binary relevance)."""
    if k <= 0:  # guard: a negative k would slice from the wrong end
        return 0.0
    total = 0.0
    for i, node in enumerate(ranked[:k], start=1):
        if node in relevant:
            total += 1.0 / math.log2(i + 1)
    return total


def ideal_dcg_at_k(num_relevant: int, k: int) -> float:
    """DCG of the ideal ranking: all relevant nodes first."""
    return sum(
        1.0 / math.log2(i + 1) for i in range(1, min(num_relevant, k) + 1)
    )


def ndcg_at_k(ranked: Sequence[NodeId], relevant: Set, k: int = 10) -> float:
    """NDCG@k in [0, 1]; 0 when there are no relevant nodes."""
    ideal = ideal_dcg_at_k(len(relevant), k)
    if ideal == 0.0:
        return 0.0
    return dcg_at_k(ranked, relevant, k) / ideal


def average_precision_at_k(
    ranked: Sequence[NodeId], relevant: Set, k: int = 10
) -> float:
    """AP@k in [0, 1]; 0 when there are no relevant nodes or k <= 0."""
    if not relevant or k <= 0:
        return 0.0
    hits = 0
    total = 0.0
    for i, node in enumerate(ranked[:k], start=1):
        if node in relevant:
            hits += 1
            total += hits / i
    return total / min(len(relevant), k)


def precision_at_k(ranked: Sequence[NodeId], relevant: Set, k: int = 10) -> float:
    """Fraction of the top-k that is relevant."""
    if k <= 0:
        return 0.0
    hits = sum(1 for node in ranked[:k] if node in relevant)
    return hits / k


def reciprocal_rank(ranked: Sequence[NodeId], relevant: Set) -> float:
    """1 / rank of the first relevant node (0 if none appears)."""
    for i, node in enumerate(ranked, start=1):
        if node in relevant:
            return 1.0 / i
    return 0.0


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0 for an empty sequence (no queries evaluated)."""
    return sum(values) / len(values) if values else 0.0
