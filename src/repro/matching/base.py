"""Shared matching machinery: instance semantics (Def. 2) and engine protocol.

An *embedding* is an injective, type-preserving map ``phi`` from pattern
nodes to graph nodes with ``(u, v) in E_M  <=>  (phi(u), phi(v)) in E``
(induced semantics, per Def. 2 and the "subgraph induced by D" wording
of Sect. IV-A).  An *instance* is the node set of an embedding — the
subgraph it induces.  Several embeddings (one per automorphism of the
pattern) map onto the same instance; :func:`deduplicate_instances`
collapses them.

Every engine in this package implements :class:`MatcherProtocol`:
``find_embeddings`` yields raw embeddings, and the module-level helper
:func:`find_instances` provides the instance view used by the index.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from typing import Protocol

from repro.graph.typed_graph import NodeId, TypedGraph
from repro.metagraph.metagraph import Metagraph

Embedding = dict[int, NodeId]


@dataclass(frozen=True, slots=True)
class Instance:
    """One instance of a metagraph on a graph.

    ``nodes`` identifies the instance (induced semantics: a node set
    induces at most one subgraph); ``embedding`` is one witnessing map,
    stored as a tuple indexed by pattern node.  Slots matter here:
    instance streams reach millions of objects on serving-scale builds,
    and the per-instance ``__dict__`` dominated their footprint.
    """

    nodes: frozenset[NodeId]
    embedding: tuple[NodeId, ...]


class MatcherProtocol(Protocol):
    """Interface implemented by all matching engines."""

    name: str

    def find_embeddings(
        self, graph: TypedGraph, metagraph: Metagraph
    ) -> Iterator[Embedding]:
        """Yield every (remaining) embedding of the metagraph on the graph.

        Engines may skip embeddings that are automorphic images of ones
        already yielded (SymISO does), but must cover every *instance*.
        """
        ...


def is_valid_embedding(
    graph: TypedGraph, metagraph: Metagraph, embedding: Embedding
) -> bool:
    """Check an embedding against Def. 2 (used by tests and debugging)."""
    if len(embedding) != metagraph.size:
        return False
    images = list(embedding.values())
    if len(set(images)) != len(images):
        return False
    for u, v in embedding.items():
        if v not in graph or graph.node_type(v) != metagraph.node_type(u):
            return False
    kinds_active = metagraph.has_kinds or graph.has_kinds
    for u in metagraph.nodes():
        for w in range(u + 1, metagraph.size):
            pattern_edge = metagraph.has_edge(u, w)
            graph_edge = graph.has_edge(embedding[u], embedding[w])
            if pattern_edge != graph_edge:
                return False
            if (
                pattern_edge
                and kinds_active
                and metagraph.edge_signature(u, w)
                != graph.edge_signature(embedding[u], embedding[w])
            ):
                return False
    return True


def deduplicate_instances(embeddings: Iterable[Embedding]) -> Iterator[Instance]:
    """Collapse embeddings into instances, yielding each node set once.

    The seen-set keys on a *sorted node-id tuple* rather than a
    frozenset: tuples are smaller and cheaper to hash, and the frozenset
    is only materialised for the instances actually yielded — duplicate
    embeddings (one per pattern automorphism, the common case) allocate
    nothing but their key.  Mixed non-comparable id types fall back to
    ``repr`` ordering, like :func:`repro.graph.typed_graph.edge_key`.
    """
    seen: set[tuple[NodeId, ...]] = set()
    for embedding in embeddings:
        images = embedding.values()
        try:
            key = tuple(sorted(images))
        except TypeError:
            key = tuple(sorted(images, key=repr))
        if key in seen:
            continue
        seen.add(key)
        witness = tuple(embedding[u] for u in sorted(embedding))
        yield Instance(nodes=frozenset(images), embedding=witness)


def find_instances(
    matcher: MatcherProtocol, graph: TypedGraph, metagraph: Metagraph
) -> list[Instance]:
    """All instances I(M) of ``metagraph`` on ``graph`` via ``matcher``."""
    return list(deduplicate_instances(matcher.find_embeddings(graph, metagraph)))


def count_instances(
    matcher: MatcherProtocol, graph: TypedGraph, metagraph: Metagraph
) -> int:
    """|I(M)| without retaining the instances."""
    return sum(1 for _ in deduplicate_instances(matcher.find_embeddings(graph, metagraph)))
