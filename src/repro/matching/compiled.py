"""Compiled matching kernel over the integer-CSR graph view.

The pure-Python engines walk dict-of-set adjacency one candidate at a
time; profiling the offline build shows nearly all wall-clock inside
that inner loop.  :class:`CompiledMatcher` runs the same search over
:class:`~repro.graph.csr.CSRGraph` arrays instead:

- **candidate regions** come from one vectorised comparison of the
  neighbourhood-profile matrix against the pattern node's profile
  (replacing the per-node Python loop of
  :func:`repro.matching.turboiso.candidate_regions`);
- **candidate generation** intersects the sorted typed-adjacency slices
  of the matched pattern neighbours by binary search on whole arrays
  (seeded from the smallest slice, as the Python skeleton does);
- **induced semantics** (Def. 2) masks out candidates adjacent to any
  matched non-neighbour with the same binary-search membership test;
- the backtracking itself is **iterative** (an explicit stack of
  candidate arrays), so deep patterns never touch Python's recursion
  machinery;
- **symmetry breaking** reuses SymISO's idea at array level: for a
  symmetric pattern, one twin pair ``(r, sigma(r))`` of the witness
  involution is ordered (``image[r] < image[sigma(r)]``) by slicing the
  sorted candidate array once — half the embeddings never get
  enumerated, and the skipped ones are automorphic images of kept ones,
  so every *instance* is still produced (the contract of
  :class:`~repro.matching.base.MatcherProtocol`).

The engine is instance-set-identical to ``SymISO`` (the cross-matcher
parity suite pins this), which makes the Eq. 1–2
:class:`~repro.index.instance_index.MetagraphCounts` bit-identical.

:func:`compiled_pinned_embeddings` is the localized-re-matching
counterpart of :func:`repro.matching.partition.pinned_embeddings`:
pins become singleton candidate arrays and the affected region becomes
per-type candidate masks.  :func:`compiled_shard_embeddings` is the
root-partitioned stream the parallel builder's workers consume straight
from shipped CSR arrays.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence, Set

import numpy as np

from repro.exceptions import MatchingError
from repro.graph.csr import CSRGraph, csr_view
from repro.graph.typed_graph import NodeId, TypedGraph
from repro.matching.backtracking import _prefix_structure
from repro.matching.base import Embedding
from repro.matching.ordering import estimated_cost_order
from repro.metagraph.decomposition import decompose
from repro.metagraph.metagraph import Metagraph


def _contains_sorted(haystack: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Boolean mask: which ``values`` occur in the sorted ``haystack``.

    Clamping out-of-range insertion points to the last element is safe:
    a value past the end is strictly greater than every element, so the
    equality test below is False for it anyway.
    """
    if haystack.size == 0:
        return np.zeros(values.size, dtype=bool)
    pos = haystack.searchsorted(values)
    np.minimum(pos, haystack.size - 1, out=pos)
    return haystack[pos] == values


def compiled_order(csr: CSRGraph, metagraph: Metagraph) -> list[int]:
    """The paper's estimated-cost matching order, answered from CSR stats.

    Same heuristic as SymISO's, but the type cardinalities come from the
    totals accumulated during the CSR layout pass instead of an O(|E|)
    rescan per pattern.
    """
    return estimated_cost_order(None, metagraph, csr.cardinalities())


def _symmetry_cut(
    metagraph: Metagraph, order: Sequence[int]
) -> tuple[int, int, bool] | None:
    """One twin pair's ordering constraint, as (cut_pos, partner_pos, keep_greater).

    For a symmetric pattern the witness involution ``sigma`` swaps the
    first twin family's representative node ``r`` with ``sigma(r)``;
    requiring ``image[r] < image[sigma(r)]`` keeps exactly one of each
    pair ``{phi, phi . sigma}`` — same node set, so no instance is lost.
    Only one family is constrained: a second simultaneous constraint
    under the *same* involution could exclude both members of a pair.
    """
    decomp = decompose(metagraph)
    if not decomp.families:
        return None
    family = decomp.families[0]
    r = decomp.components[family.representative][0]
    s = decomp.sigma[r]
    position = {u: i for i, u in enumerate(order)}
    pr, ps = position[r], position[s]
    if pr < ps:
        return ps, pr, True  # at s's turn keep candidates > image[r]
    return pr, ps, False  # at r's turn keep candidates < image[s]


def _base_candidates(
    csr: CSRGraph,
    metagraph: Metagraph,
    tcodes: Sequence[int],
    pool: Mapping[int, np.ndarray] | None,
    kinds_active: bool = False,
) -> tuple[list[np.ndarray], list[bool]] | None:
    """Per-pattern-node global candidate arrays (profile filter ∩ pool).

    Returns the arrays plus a per-node "is the whole type class" flag —
    a full base filters nothing, so the search skips intersecting
    against it.  Returns None when some pattern node has no candidates
    at all — the vectorised equivalent of ``candidate_regions``
    returning None.  With ``kinds_active`` the filter compares the
    per-(type, signature) profile matrix instead, so a node lacking the
    right labeled/directed neighbour edges is pruned up front.
    """
    num_types = csr.num_types
    num_sigs = csr.num_sigs
    base: list[np.ndarray] = []
    full: list[bool] = []
    for u in metagraph.nodes():
        if kinds_active:
            assert csr.sig_profiles is not None
            profile = np.zeros(num_types * num_sigs, dtype=csr.profiles.dtype)
            for v in metagraph.neighbors(u):
                code_v = csr.type_id(metagraph.node_type(v))
                if code_v is None:  # neighbour type absent: no match
                    return None
                sig = csr.sig_id(*metagraph.edge_signature(u, v))
                if sig is None:  # signature never occurs in the graph
                    return None
                profile[code_v * num_sigs + sig] += 1
            lo, hi = csr.type_range(tcodes[u])
            mask = (csr.sig_profiles[lo:hi] >= profile).all(axis=1)
        else:
            profile = np.zeros(num_types, dtype=csr.profiles.dtype)
            for v in metagraph.neighbors(u):
                code_v = csr.type_id(metagraph.node_type(v))
                if code_v is None:  # neighbour type absent: nothing can match
                    return None
                profile[code_v] += 1
            lo, hi = csr.type_range(tcodes[u])
            mask = (csr.profiles[lo:hi] >= profile).all(axis=1)
        cand = lo + np.nonzero(mask)[0]
        if pool is not None and u in pool:
            restricted = pool[u]
            cand = restricted[_contains_sorted(cand, restricted)]
        if cand.size == 0:
            return None
        base.append(cand)
        full.append(cand.size == hi - lo and (pool is None or u not in pool))
    return base, full


def _assignment_batches(
    csr: CSRGraph,
    metagraph: Metagraph,
    order: Sequence[int],
    pool: Mapping[int, np.ndarray] | None = None,
    break_symmetry: bool = True,
) -> Iterator[tuple[tuple[int, ...], np.ndarray]]:
    """Iterative backtracking over the CSR arrays (see module docstring).

    Yields ``(prefix, tail)`` batches in *order-position* space: every
    embedding of the batch binds ``order[j] -> prefix[j]`` for the first
    ``n - 1`` positions and ``order[n - 1]`` to one element of the
    ``tail`` array (injectivity already enforced).  Batching the whole
    terminal level lets consumers count embeddings without touching them
    one Python object at a time.

    ``pool`` maps pattern nodes to sorted dense-id candidate arrays
    (pins, regions, shards).  ``break_symmetry`` must be off whenever a
    pool restricts nodes asymmetrically — a pin could then exclude an
    embedding whose kept automorphic partner the pool rejects.
    """
    n = metagraph.size
    if metagraph.has_kinds and not csr.has_kinds:
        # a kinded pattern edge can never match a plain graph
        return
    kinds_active = metagraph.has_kinds or csr.has_kinds
    tcodes: list[int] = []
    for u in metagraph.nodes():
        code = csr.type_id(metagraph.node_type(u))
        if code is None:
            return
        tcodes.append(code)
    built = _base_candidates(csr, metagraph, tcodes, pool, kinds_active)
    if built is None:
        return
    base, base_full = built
    if n == 1:
        yield (), base[0]
        return
    neighbors_at, nonneighbors_at = _prefix_structure(metagraph, order)
    cut = _symmetry_cut(metagraph, order) if break_symmetry else None
    # per position: the signature code each matched-neighbour slice must
    # carry, aligned with neighbors_at[i] (kinded graphs only)
    sig_code_at: list[list[int | None]] = []
    if kinds_active:
        for i, u in enumerate(order):
            sig_code_at.append(
                [
                    csr.sig_id(*metagraph.edge_signature(order[j], u))
                    for j in neighbors_at[i]
                ]
            )

    assignment = [0] * n  # dense graph ids, indexed by order position
    used: set[int] = set()
    rows: list[np.ndarray] = [base[order[0]]] + [None] * (n - 1)  # type: ignore[list-item]
    pos = [0] * n
    last = n - 1
    # injectivity at the terminal level: only earlier positions of the
    # terminal node's *type* can collide with its (typed) candidates
    clash_positions = [
        j for j in range(last) if tcodes[order[j]] == tcodes[order[last]]
    ]

    empty = np.empty(0, dtype=csr.indices.dtype)

    def candidates(i: int) -> np.ndarray:
        code = tcodes[order[i]]
        nbr_positions = neighbors_at[i]
        if nbr_positions:
            if kinds_active:
                slices = []
                for k, j in enumerate(nbr_positions):
                    sig = sig_code_at[i][k]
                    if sig is None:
                        return empty
                    slices.append(
                        csr.typed_neighbors_sig(assignment[j], code, sig)
                    )
            else:
                slices = [
                    csr.typed_neighbors(assignment[j], code)
                    for j in nbr_positions
                ]
            if len(slices) == 1:
                cand = slices[0]
            else:
                k_min = min(range(len(slices)), key=lambda k: slices[k].size)
                cand = slices[k_min]
                for k, other in enumerate(slices):
                    if k == k_min or cand.size == 0:
                        continue
                    cand = cand[_contains_sorted(other, cand)]
            if cand.size and not base_full[order[i]]:
                cand = cand[_contains_sorted(base[order[i]], cand)]
        else:
            cand = base[order[i]]
        for j in nonneighbors_at[i]:
            if cand.size == 0:
                break
            adjacent = csr.typed_neighbors(assignment[j], code)
            if adjacent.size:
                cand = cand[~_contains_sorted(adjacent, cand)]
        if cut is not None and i == cut[0] and cand.size:
            bound = assignment[cut[1]]
            if cut[2]:
                cand = cand[cand.searchsorted(bound, side="right") :]
            else:
                cand = cand[: cand.searchsorted(bound, side="left")]
        return cand

    depth = 0
    while depth >= 0:
        row = rows[depth]
        k = pos[depth]
        if k >= row.size:
            depth -= 1
            if depth >= 0:
                used.discard(assignment[depth])
            continue
        pos[depth] = k + 1
        v = int(row[k])
        if v in used:
            continue
        assignment[depth] = v
        used.add(v)
        if depth == last - 1:
            tail = candidates(last)
            if tail.size:
                hits = []
                for j in clash_positions:
                    p = assignment[j]
                    at = tail.searchsorted(p)
                    if at < tail.size and tail[at] == p:
                        hits.append(at)
                if hits:
                    tail = np.delete(tail, hits)
                if tail.size:
                    yield tuple(assignment[:last]), tail
            used.discard(v)
            continue
        depth += 1
        rows[depth] = candidates(depth)
        pos[depth] = 0


def _embeddings_from_csr(
    csr: CSRGraph,
    metagraph: Metagraph,
    order: Sequence[int],
    pool: Mapping[int, np.ndarray] | None = None,
    break_symmetry: bool = True,
) -> Iterator[Embedding]:
    """Per-embedding dict view of :func:`_assignment_batches` (protocol API)."""
    n = metagraph.size
    node_ids = csr.node_ids
    for prefix, tail in _assignment_batches(
        csr, metagraph, order, pool=pool, break_symmetry=break_symmetry
    ):
        bound = {order[j]: node_ids[prefix[j]] for j in range(n - 1)}
        terminal = order[n - 1]
        for v in tail.tolist():
            embedding = dict(bound)
            embedding[terminal] = node_ids[v]
            yield embedding


def compiled_embedding_matrix(
    csr: CSRGraph,
    metagraph: Metagraph,
    order: Sequence[int] | None = None,
    pool: Mapping[int, np.ndarray] | None = None,
    break_symmetry: bool = True,
) -> np.ndarray:
    """Every (remaining) embedding as one ``(N, n)`` dense-id matrix.

    Column ``u`` holds the image of pattern node ``u``.  This is the
    array-level entry point of the offline counting fast path
    (:func:`repro.index.instance_index.compiled_match_and_count`):
    instance deduplication and Eq. 1–2 counting become ``np.unique``
    calls over integer rows instead of per-embedding Python objects.
    The matrix is materialised in full — at 8 bytes per cell a million
    4-node embeddings cost ~32 MB, far below the per-object cost of the
    equivalent ``Instance`` stream.
    """
    if order is None:
        order = compiled_order(csr, metagraph)
    n = metagraph.size
    blocks: list[np.ndarray] = []
    for prefix, tail in _assignment_batches(
        csr, metagraph, order, pool=pool, break_symmetry=break_symmetry
    ):
        block = np.empty((tail.size, n), dtype=np.int64)
        for j in range(n - 1):
            block[:, j] = prefix[j]
        block[:, n - 1] = tail
        blocks.append(block)
    if not blocks:
        return np.empty((0, n), dtype=np.int64)
    stacked = np.concatenate(blocks)
    inverse = np.empty(n, dtype=np.int64)
    for position, u in enumerate(order):
        inverse[u] = position
    return stacked[:, inverse]


class CompiledMatcher:
    """The compiled integer-CSR matching engine.

    Parameters
    ----------
    csr:
        Optional prebuilt :class:`CSRGraph` to match against — the
        parallel builder's workers receive the compact arrays instead of
        a re-pickled :class:`TypedGraph` and bind them here.  When
        unset, ``find_embeddings`` derives (and caches) the view from
        the graph it is handed via :func:`~repro.graph.csr.csr_view`.
    """

    name = "Compiled"

    def __init__(self, csr: CSRGraph | None = None):
        self._csr = csr

    def csr_for(self, graph: TypedGraph | None) -> CSRGraph:
        """The CSR view this matcher matches ``graph`` against."""
        return self._csr if self._csr is not None else csr_view(graph)

    def find_embeddings(
        self, graph: TypedGraph | None, metagraph: Metagraph
    ) -> Iterator[Embedding]:
        """Yield embeddings covering every instance of the metagraph.

        Automorphic images under the broken twin pair are skipped by
        construction; remaining duplicates fall to the shared
        instance-level deduplication, exactly like SymISO.
        """
        csr = self.csr_for(graph)
        order = compiled_order(csr, metagraph)
        yield from _embeddings_from_csr(csr, metagraph, order)


def compiled_pinned_embeddings(
    graph: TypedGraph,
    metagraph: Metagraph,
    pins: Mapping[int, NodeId],
    region: Mapping[str, Set] | None = None,
) -> Iterator[Embedding]:
    """Compiled drop-in for :func:`repro.matching.partition.pinned_embeddings`.

    Pins become singleton candidate arrays and the affected region
    becomes per-type dense-id masks for every unpinned pattern node
    (types missing from the mapping admit no candidates).  Symmetry
    breaking is disabled: pins restrict pattern nodes asymmetrically, so
    dropping an embedding in favour of its automorphic partner could
    drop it out of the pinned stream entirely.
    """
    if not pins:
        # raised eagerly (this is not the generator) so the error points
        # at the caller that built the empty pins, not at first iteration
        raise MatchingError("compiled_pinned_embeddings needs at least one pin")
    return _compiled_pinned(graph, metagraph, pins, region)


def _compiled_pinned(
    graph: TypedGraph,
    metagraph: Metagraph,
    pins: Mapping[int, NodeId],
    region: Mapping[str, Set] | None,
) -> Iterator[Embedding]:
    from repro.matching.partition import rooted_order

    csr = csr_view(graph)
    pool: dict[int, np.ndarray] = {}
    for pattern_node, graph_node in pins.items():
        dense = csr.id_of.get(graph_node)
        if (
            dense is None
            or graph.node_type(graph_node) != metagraph.node_type(pattern_node)
        ):
            return
        pool[pattern_node] = np.asarray([dense], dtype=csr.indices.dtype)
    if region is not None:
        encoded: dict[str, np.ndarray] = {}
        for u in metagraph.nodes():
            if u in pool:
                continue
            node_type = metagraph.node_type(u)
            cached = encoded.get(node_type)
            if cached is None:
                cached = csr.encode(region.get(node_type, ()))
                encoded[node_type] = cached
            pool[u] = cached
    order = rooted_order(graph, metagraph, next(iter(pins)))
    yield from _embeddings_from_csr(
        csr, metagraph, order, pool=pool, break_symmetry=False
    )


def _shard_root_pool(
    csr: CSRGraph,
    metagraph: Metagraph,
    order: Sequence[int],
    shard: int,
    num_shards: int,
) -> Mapping[int, np.ndarray] | None:
    """Round-robin slice of the root's type class, or None when the root
    type is absent from the graph (no embeddings at all)."""
    if num_shards < 1 or not 0 <= shard < num_shards:
        raise MatchingError(
            f"shard {shard} outside valid range for {num_shards} shards"
        )
    root = order[0]
    code = csr.type_id(metagraph.node_type(root))
    if code is None:
        return None
    lo, hi = csr.type_range(code)
    return {root: np.arange(lo, hi, dtype=csr.indices.dtype)[shard::num_shards]}


def compiled_shard_embeddings(
    csr: CSRGraph,
    metagraph: Metagraph,
    shard: int,
    num_shards: int,
) -> Iterator[Embedding]:
    """Root-partitioned compiled embedding stream (one graph shard).

    The root's whole type class is sliced round-robin over the dense id
    order (deterministic — ids are repr-sorted within a type), so every
    embedding lands in exactly one shard.  Symmetry breaking stays on:
    a dropped embedding's automorphic partner may surface in a *different*
    shard, but the parallel builder merges shards with instance-level
    deduplication, so union coverage is all that is required.
    """
    order = compiled_order(csr, metagraph)
    pool = _shard_root_pool(csr, metagraph, order, shard, num_shards)
    if pool is None:
        return
    yield from _embeddings_from_csr(csr, metagraph, order, pool=pool)


def compiled_shard_matrix(
    csr: CSRGraph,
    metagraph: Metagraph,
    shard: int,
    num_shards: int,
) -> np.ndarray:
    """One shard's embeddings as a dense-id matrix (pattern-node columns).

    The matrix form of :func:`compiled_shard_embeddings`, so the
    parallel builder's shard workers can deduplicate instances with
    ``np.unique`` instead of one Python dict per embedding — the
    heaviest patterns are exactly the ones that get sharded.
    """
    order = compiled_order(csr, metagraph)
    pool = _shard_root_pool(csr, metagraph, order, shard, num_shards)
    if pool is None:
        return np.empty((0, metagraph.size), dtype=np.int64)
    return compiled_embedding_matrix(csr, metagraph, order=order, pool=pool)
