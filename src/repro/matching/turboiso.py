"""TurboISO-style matcher: candidate regions + selectivity-driven ordering.

TurboISO [21] explores candidate regions around a judiciously chosen
start node and orders the rest of the pattern by estimated selectivity.
Our reimplementation keeps those two ingredients:

1. a *candidate region* per pattern node — graph nodes of the right type
   whose degree and per-type neighbour counts dominate the pattern
   node's (a neighbourhood-profile filter);
2. the estimated-instance-count order of Sect. IV-C.

It still enumerates every embedding individually; like the original it
does not exploit pattern symmetry, which is SymISO's advantage.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterator

from repro.graph.typed_graph import NodeId, TypedGraph
from repro.matching.backtracking import backtrack_embeddings
from repro.matching.base import Embedding
from repro.matching.ordering import GraphCardinalities, estimated_cost_order
from repro.metagraph.metagraph import Metagraph


def candidate_regions(
    graph: TypedGraph, metagraph: Metagraph
) -> dict[int, set[NodeId]] | None:
    """Per-pattern-node candidate sets from neighbourhood profiles.

    A graph node qualifies for pattern node ``u`` when it has at least
    as many neighbours of each type as ``u`` does in the pattern.
    Returns None when some pattern node has no candidates (no match).
    """
    regions: dict[int, set[NodeId]] = {}
    for u in metagraph.nodes():
        profile = Counter(metagraph.node_type(v) for v in metagraph.neighbors(u))
        region: set[NodeId] = set()
        for node in graph.nodes_of_type(metagraph.node_type(u)):
            typed = graph.typed_adjacency(node)
            if all(len(typed.get(t, ())) >= need for t, need in profile.items()):
                region.add(node)
        if not region:
            return None
        regions[u] = region
    return regions


class TurboISOMatcher:
    """Backtracking restricted to precomputed candidate regions."""

    name = "TurboISO"

    def find_embeddings(
        self, graph: TypedGraph, metagraph: Metagraph
    ) -> Iterator[Embedding]:
        """Yield all embeddings of ``metagraph`` on ``graph``."""
        regions = candidate_regions(graph, metagraph)
        if regions is None:
            return
        order = estimated_cost_order(graph, metagraph, GraphCardinalities(graph))
        yield from backtrack_embeddings(
            graph, metagraph, order, candidate_pool=regions
        )
