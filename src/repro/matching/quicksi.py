"""QuickSI-style matcher: static infrequent-first ordering, plain backtracking.

QuickSI [19] tames verification cost with a spanning-entry ordering that
binds infrequent pattern features first.  Our reimplementation captures
that idea with the rarest-type-first static order over the shared
backtracking skeleton, with no candidate regions and no reuse — the
baseline the other engines improve on.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.graph.typed_graph import TypedGraph
from repro.matching.backtracking import backtrack_embeddings
from repro.matching.base import Embedding
from repro.matching.ordering import rarest_type_order
from repro.metagraph.metagraph import Metagraph


class QuickSIMatcher:
    """Plain backtracking with a rarest-type-first static node order."""

    name = "QuickSI"

    def find_embeddings(
        self, graph: TypedGraph, metagraph: Metagraph
    ) -> Iterator[Embedding]:
        """Yield all embeddings of ``metagraph`` on ``graph``."""
        order = rarest_type_order(graph, metagraph)
        yield from backtrack_embeddings(graph, metagraph, order)
