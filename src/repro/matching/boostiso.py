"""BoostISO-style matcher: candidate regions plus candidate-list reuse.

BoostISO [22] speeds up backtracking by exploiting relationships between
graph vertices to share computation across search branches.  Our
reimplementation layers its reuse idea on top of the TurboISO-style
engine: candidate lists are memoised on the assignment of the matched
pattern neighbours, so sibling subtrees that agree on those assignments
skip candidate recomputation entirely.

Like the original, it does not exploit *pattern* symmetry — redundant
exploration of symmetric halves remains, which SymISO removes.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.graph.typed_graph import TypedGraph
from repro.matching.backtracking import backtrack_embeddings
from repro.matching.base import Embedding
from repro.matching.ordering import GraphCardinalities, estimated_cost_order
from repro.matching.turboiso import candidate_regions
from repro.metagraph.metagraph import Metagraph


class BoostISOMatcher:
    """Candidate regions + memoised candidate computation."""

    name = "BoostISO"

    def find_embeddings(
        self, graph: TypedGraph, metagraph: Metagraph
    ) -> Iterator[Embedding]:
        """Yield all embeddings of ``metagraph`` on ``graph``."""
        regions = candidate_regions(graph, metagraph)
        if regions is None:
            return
        order = estimated_cost_order(graph, metagraph, GraphCardinalities(graph))
        yield from backtrack_embeddings(
            graph, metagraph, order, candidate_pool=regions, memoize=True
        )
