"""Sharding one pattern's matching across graph partitions.

Embedding enumeration is embarrassingly parallel in the image of the
search root: every embedding maps the root pattern node to exactly one
graph node, so slicing the root's type class into ``num_shards``
round-robin blocks partitions the *embedding* stream exactly — each
embedding is produced by exactly one shard, and the union over shards
is the full stream.

Instances are NOT partitioned the same way: two automorphic witnesses
of one instance can map the root to nodes in different shards, so the
same instance may surface in several shards.  Shard consumers must
therefore deduplicate at the *instance* level when merging (see
:mod:`repro.index.parallel`, which merges per-instance records keyed by
node set).
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.exceptions import MatchingError
from repro.graph.typed_graph import TypedGraph
from repro.matching.backtracking import backtrack_embeddings
from repro.matching.base import Embedding
from repro.matching.ordering import rarest_type_order
from repro.metagraph.metagraph import Metagraph


def shard_embeddings(
    graph: TypedGraph,
    metagraph: Metagraph,
    shard: int,
    num_shards: int,
    order: Sequence[int] | None = None,
) -> Iterator[Embedding]:
    """Yield the embeddings whose root image falls in one graph partition.

    Parameters
    ----------
    shard, num_shards:
        Which round-robin block of the root's candidate type class this
        shard enumerates.  Candidates are sorted by ``repr`` before
        slicing so the partition is deterministic under hash
        randomisation.
    order:
        Connected pattern-node order (default: rarest-type-first).  All
        shards of one pattern must use the same order — the root (first
        node of the order) defines the partition.
    """
    if num_shards < 1 or not 0 <= shard < num_shards:
        raise MatchingError(
            f"shard {shard} outside valid range for {num_shards} shards"
        )
    if order is None:
        order = rarest_type_order(graph, metagraph)
    root = order[0]
    candidates = sorted(
        graph.nodes_of_type(metagraph.node_type(root)), key=repr
    )
    pool = {root: set(candidates[shard::num_shards])}
    yield from backtrack_embeddings(graph, metagraph, order, candidate_pool=pool)
