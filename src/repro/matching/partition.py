"""Root-restricted matching: sharding and localized (pinned) enumeration.

Embedding enumeration is embarrassingly parallel in the image of the
search root: every embedding maps the root pattern node to exactly one
graph node, so slicing the root's type class into ``num_shards``
round-robin blocks partitions the *embedding* stream exactly — each
embedding is produced by exactly one shard, and the union over shards
is the full stream.

Instances are NOT partitioned the same way: two automorphic witnesses
of one instance can map the root to nodes in different shards, so the
same instance may surface in several shards.  Shard consumers must
therefore deduplicate at the *instance* level when merging (see
:mod:`repro.index.parallel`, which merges per-instance records keyed by
node set).

The same root-restriction idea powers *localized* re-matching for
incremental index maintenance (:mod:`repro.index.delta`):
:func:`pinned_embeddings` fixes one or two pattern nodes to concrete
graph nodes (the endpoints of a mutation) and optionally confines every
other pattern node to an affected region, so only the embeddings a
mutation could possibly touch are enumerated.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence, Set

from repro.exceptions import MatchingError
from repro.graph.typed_graph import NodeId, TypedGraph
from repro.matching.backtracking import backtrack_embeddings
from repro.matching.base import Embedding
from repro.matching.ordering import connected_order_from, rarest_type_order
from repro.metagraph.metagraph import Metagraph


def shard_embeddings(
    graph: TypedGraph,
    metagraph: Metagraph,
    shard: int,
    num_shards: int,
    order: Sequence[int] | None = None,
) -> Iterator[Embedding]:
    """Yield the embeddings whose root image falls in one graph partition.

    Parameters
    ----------
    shard, num_shards:
        Which round-robin block of the root's candidate type class this
        shard enumerates.  Candidates are sorted by ``repr`` before
        slicing so the partition is deterministic under hash
        randomisation.
    order:
        Connected pattern-node order (default: rarest-type-first).  All
        shards of one pattern must use the same order — the root (first
        node of the order) defines the partition.
    """
    if num_shards < 1 or not 0 <= shard < num_shards:
        raise MatchingError(
            f"shard {shard} outside valid range for {num_shards} shards"
        )
    if order is None:
        order = rarest_type_order(graph, metagraph)
    root = order[0]
    candidates = sorted(
        graph.nodes_of_type(metagraph.node_type(root)), key=repr
    )
    pool = {root: set(candidates[shard::num_shards])}
    yield from backtrack_embeddings(graph, metagraph, order, candidate_pool=pool)


def rooted_order(
    graph: TypedGraph, metagraph: Metagraph, root: int
) -> list[int]:
    """A connected pattern-node order starting at ``root``.

    Like :func:`~repro.matching.ordering.rarest_type_order` but with a
    caller-chosen start node, so a pinned root is bound first and the
    whole search is anchored on its (singleton) candidate set.
    """
    if not 0 <= root < metagraph.size:
        raise MatchingError(f"root {root} outside pattern 0..{metagraph.size - 1}")
    return connected_order_from(graph, metagraph, root)


def pinned_embeddings(
    graph: TypedGraph,
    metagraph: Metagraph,
    pins: Mapping[int, NodeId],
    region: Mapping[str, Set] | None = None,
) -> Iterator[Embedding]:
    """Embeddings mapping each pinned pattern node to its pinned graph node.

    Parameters
    ----------
    pins:
        ``{pattern_node: graph_node}`` — non-empty; the search is rooted
        at the first pin, so its singleton candidate set anchors the
        whole backtracking.  A pin whose graph node is absent or of the
        wrong type yields no embeddings.
    region:
        Optional per-type restriction for every *unpinned* pattern node
        (typically the nodes within pattern radius of a mutation).
        Types missing from the mapping admit no candidates.
    """
    if not pins:
        # raised eagerly (this is not the generator) so the error points
        # at the caller that built the empty pins, not at first iteration
        raise MatchingError("pinned_embeddings needs at least one pin")
    return _pinned_embeddings(graph, metagraph, pins, region)


def _pinned_embeddings(
    graph: TypedGraph,
    metagraph: Metagraph,
    pins: Mapping[int, NodeId],
    region: Mapping[str, Set] | None,
) -> Iterator[Embedding]:
    for pattern_node, graph_node in pins.items():
        if (
            graph_node not in graph
            or graph.node_type(graph_node) != metagraph.node_type(pattern_node)
        ):
            return
    pool: dict[int, set[NodeId]] = {
        pattern_node: {graph_node} for pattern_node, graph_node in pins.items()
    }
    if region is not None:
        for u in metagraph.nodes():
            if u not in pool:
                pool[u] = set(region.get(metagraph.node_type(u), ()))
    order = rooted_order(graph, metagraph, next(iter(pins)))
    yield from backtrack_embeddings(graph, metagraph, order, candidate_pool=pool)
