"""Subgraph matching engines for metagraphs (Sect. IV)."""

from repro.matching.backtracking import backtrack_embeddings
from repro.matching.base import (
    Embedding,
    Instance,
    MatcherProtocol,
    count_instances,
    deduplicate_instances,
    find_instances,
    is_valid_embedding,
)
from repro.matching.boostiso import BoostISOMatcher
from repro.matching.ordering import (
    GraphCardinalities,
    estimated_cost_order,
    random_connected_order,
    rarest_type_order,
)
from repro.matching.partition import shard_embeddings
from repro.matching.quicksi import QuickSIMatcher
from repro.matching.symiso import SymISOMatcher
from repro.matching.turboiso import TurboISOMatcher, candidate_regions

ALL_ENGINES = {
    "SymISO": lambda: SymISOMatcher(),
    "SymISO-R": lambda: SymISOMatcher(random_order=True, seed=7),
    "BoostISO": BoostISOMatcher,
    "TurboISO": TurboISOMatcher,
    "QuickSI": QuickSIMatcher,
}
"""Factory registry used by Fig. 11 and the engine-agreement tests."""

__all__ = [
    "ALL_ENGINES",
    "BoostISOMatcher",
    "Embedding",
    "GraphCardinalities",
    "Instance",
    "MatcherProtocol",
    "QuickSIMatcher",
    "SymISOMatcher",
    "TurboISOMatcher",
    "backtrack_embeddings",
    "candidate_regions",
    "count_instances",
    "deduplicate_instances",
    "estimated_cost_order",
    "find_instances",
    "is_valid_embedding",
    "random_connected_order",
    "rarest_type_order",
    "shard_embeddings",
]
