"""Subgraph matching engines for metagraphs (Sect. IV)."""

from repro.exceptions import MatchingError
from repro.matching.backtracking import backtrack_embeddings
from repro.matching.base import (
    Embedding,
    Instance,
    MatcherProtocol,
    count_instances,
    deduplicate_instances,
    find_instances,
    is_valid_embedding,
)
from repro.matching.boostiso import BoostISOMatcher
from repro.matching.compiled import (
    CompiledMatcher,
    compiled_pinned_embeddings,
    compiled_shard_embeddings,
)
from repro.matching.ordering import (
    GraphCardinalities,
    estimated_cost_order,
    random_connected_order,
    rarest_type_order,
)
from repro.matching.partition import shard_embeddings
from repro.matching.quicksi import QuickSIMatcher
from repro.matching.symiso import SymISOMatcher
from repro.matching.turboiso import TurboISOMatcher, candidate_regions

ALL_ENGINES = {
    "SymISO": lambda: SymISOMatcher(),
    "SymISO-R": lambda: SymISOMatcher(random_order=True, seed=7),
    "BoostISO": BoostISOMatcher,
    "TurboISO": TurboISOMatcher,
    "QuickSI": QuickSIMatcher,
    "Compiled": CompiledMatcher,
}
"""Factory registry used by Fig. 11 and the engine-agreement tests."""

MATCHERS = {
    "compiled": CompiledMatcher,
    "symiso": lambda: SymISOMatcher(),
    "symiso-r": lambda: SymISOMatcher(random_order=True, seed=7),
    "boostiso": BoostISOMatcher,
    "turboiso": TurboISOMatcher,
    "quicksi": QuickSIMatcher,
}
"""Config/CLI matcher names (``--matcher``) to engine factories."""


def make_matcher(name: str) -> MatcherProtocol:
    """Instantiate a matching engine from its config/CLI name."""
    try:
        factory = MATCHERS[name.lower()]
    except KeyError:
        raise MatchingError(
            f"unknown matcher {name!r}; expected one of {sorted(MATCHERS)}"
        ) from None
    return factory()


__all__ = [
    "ALL_ENGINES",
    "BoostISOMatcher",
    "CompiledMatcher",
    "Embedding",
    "GraphCardinalities",
    "Instance",
    "MATCHERS",
    "MatcherProtocol",
    "QuickSIMatcher",
    "SymISOMatcher",
    "TurboISOMatcher",
    "backtrack_embeddings",
    "candidate_regions",
    "compiled_pinned_embeddings",
    "compiled_shard_embeddings",
    "count_instances",
    "deduplicate_instances",
    "estimated_cost_order",
    "find_instances",
    "is_valid_embedding",
    "make_matcher",
    "random_connected_order",
    "rarest_type_order",
    "shard_embeddings",
]
