"""The shared backtracking skeleton for subgraph matching (Sect. IV-A).

Given a node order ``u_1 .. u_n`` whose every prefix induces a connected
sub-pattern, the engine maintains a partial assignment ``D_k`` and, for
the next pattern node, computes the candidate set ``C(u_{k+1} | D_k)``:

- type must match;
- must be adjacent to the image of every matched pattern neighbour;
- must be non-adjacent to the image of every matched pattern
  non-neighbour (induced semantics, Def. 2);
- when the pattern or graph carries edge kinds, the (label, direction)
  signature of every matched pattern edge must equal the corresponding
  graph edge's signature;
- must not already be used (injectivity).

Candidates are generated from the *smallest* typed adjacency list among
matched neighbours, which is the main source of pruning.  The optional
memoisation reproduces BoostISO's reuse idea: candidate lists are cached
on the assignment of the matched pattern neighbours, so sibling branches
that agree on those assignments skip recomputation.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.exceptions import MatchingError
from repro.graph.typed_graph import NodeId, TypedGraph
from repro.matching.base import Embedding
from repro.metagraph.metagraph import Metagraph

_EMPTY: frozenset = frozenset()


def _prefix_structure(
    metagraph: Metagraph, order: Sequence[int]
) -> tuple[list[list[int]], list[list[int]]]:
    """Per position: earlier order-positions that are pattern (non)neighbours."""
    position = {node: i for i, node in enumerate(order)}
    if len(position) != metagraph.size:
        raise MatchingError(f"order {order!r} is not a permutation of pattern nodes")
    neighbors: list[list[int]] = []
    nonneighbors: list[list[int]] = []
    for i, u in enumerate(order):
        nbr = [position[w] for w in metagraph.neighbors(u) if position[w] < i]
        nbr_set = set(nbr)  # hoisted: the comprehension is O(i) either way,
        non = [j for j in range(i) if j not in nbr_set]  # not O(i * deg)
        neighbors.append(sorted(nbr))
        nonneighbors.append(non)
    return neighbors, nonneighbors


def backtrack_embeddings(
    graph: TypedGraph,
    metagraph: Metagraph,
    order: Sequence[int],
    candidate_pool: dict[int, set[NodeId]] | None = None,
    memoize: bool = False,
    induced: bool = True,
) -> Iterator[Embedding]:
    """Yield every embedding of ``metagraph`` on ``graph``.

    Parameters
    ----------
    order:
        Pattern-node order; every prefix must induce a connected
        sub-pattern (except position 0).
    candidate_pool:
        Optional per-pattern-node global candidate restriction
        (TurboISO-style candidate regions).  The mapping may be partial:
        pattern nodes without an entry are unrestricted, which is how
        the graph-partition sharder restricts only the search root.
    memoize:
        Cache candidate lists keyed on matched-neighbour assignments
        (BoostISO-style reuse).
    induced:
        Def. 2 induced semantics (default).  ``False`` switches to
        standard (non-induced) subgraph isomorphism, used by the miner
        for GRAMI-style MNI support computation.
    """
    n = metagraph.size
    neighbors_at, nonneighbors_at = _prefix_structure(metagraph, order)
    types_at = [metagraph.node_type(u) for u in order]
    # edge-kind constraints are checked only when either side carries
    # kinds, so plain graphs/patterns run the exact legacy code path
    kinds_active = metagraph.has_kinds or graph.has_kinds
    sigs_at: list[dict[int, tuple[str, int]]] = []
    if kinds_active:
        for i, u in enumerate(order):
            sigs_at.append(
                {
                    j: metagraph.edge_signature(order[j], u)
                    for j in neighbors_at[i]
                }
            )
    assignment: list[NodeId | None] = [None] * n  # indexed by order position
    used: set[NodeId] = set()
    cache: dict[tuple, tuple[NodeId, ...]] = {}

    def candidates(i: int) -> Iterator[NodeId]:
        node_type = types_at[i]
        nbr_positions = neighbors_at[i]
        if not nbr_positions:
            pool = (
                candidate_pool.get(order[i])
                if candidate_pool is not None
                else None
            )
            yield from pool if pool is not None else graph.nodes_of_type(node_type)
            return
        if memoize:
            key = (i, tuple(assignment[j] for j in nbr_positions))
            hit = cache.get(key)
            if hit is not None:
                yield from hit
                return
            computed = tuple(_raw_candidates(i, node_type, nbr_positions))
            cache[key] = computed
            yield from computed
            return
        yield from _raw_candidates(i, node_type, nbr_positions)

    def _raw_candidates(
        i: int, node_type: str, nbr_positions: list[int]
    ) -> Iterator[NodeId]:
        # seed from the smallest typed adjacency among matched neighbours
        best_pos = min(
            nbr_positions,
            key=lambda j: len(
                graph.typed_adjacency(assignment[j]).get(node_type, _EMPTY)
            ),
        )
        seed = graph.typed_adjacency(assignment[best_pos]).get(node_type, _EMPTY)
        others = [j for j in nbr_positions if j != best_pos]
        pool = candidate_pool.get(order[i]) if candidate_pool is not None else None
        for v in seed:
            if pool is not None and v not in pool:
                continue
            ok = True
            for j in others:
                if v not in graph.adjacency(assignment[j]):
                    ok = False
                    break
            if ok and kinds_active:
                for j, expected in sigs_at[i].items():
                    if graph.edge_signature(assignment[j], v) != expected:
                        ok = False
                        break
            if ok:
                yield v

    def extend(i: int) -> Iterator[Embedding]:
        if i == n:
            yield {order[j]: assignment[j] for j in range(n)}
            return
        non_positions = nonneighbors_at[i] if induced else ()
        for v in candidates(i):
            if v in used:
                continue
            induced_ok = True
            for j in non_positions:
                if v in graph.adjacency(assignment[j]):
                    induced_ok = False
                    break
            if not induced_ok:
                continue
            assignment[i] = v
            used.add(v)
            yield from extend(i + 1)
            used.discard(v)
            assignment[i] = None

    yield from extend(0)
