"""SymISO: symmetry-based metagraph matching (Sect. IV-C, Alg. 2–3).

The engine matches one *symmetric component* at a time instead of one
node at a time:

1. Decompose the metagraph with :func:`repro.metagraph.decomposition.decompose`
   into fixed components and twin families (pairs of components swapped
   by the witness involution ``sigma``).
2. Order the components by the estimated-instance-count node order
   (``SymISO``) or a seeded random order (``SymISO-R``).
3. Match fixed components by plain component backtracking.  For a twin
   family, compute the representative's matchings ``C(S|D)`` once; when
   every already-assigned pattern node is fixed by ``sigma`` the same
   matchings are *reused* for the twin, enumerating unordered pairs
   ``i < j`` of distinct matchings and verifying inter-component
   connectivity (Alg. 3's "choose |B| distinct matchings").  Because the
   swap of the two roles is realised by the automorphism ``sigma``, the
   ``i < j`` restriction drops only automorphic duplicates — every
   instance is still produced.
4. When reuse is unsafe (some assigned node is moved by ``sigma`` — this
   happens for the second twin family onward), the twin's matchings are
   computed directly and ordered pairs are enumerated; correctness is
   preserved, only the saving is smaller.

Compared with the node-at-a-time engines, SymISO both avoids
recomputing candidates for symmetric halves and halves the enumeration
per reused family, which is the speedup Fig. 11 measures.
"""

from __future__ import annotations

import random
from collections.abc import Iterator, Sequence

from repro.graph.typed_graph import NodeId, TypedGraph
from repro.matching.backtracking import backtrack_embeddings
from repro.matching.base import Embedding
from repro.matching.ordering import (
    GraphCardinalities,
    component_order_from_node_order,
    estimated_cost_order,
    random_connected_order,
)
from repro.metagraph.decomposition import Decomposition, TwinFamily, decompose
from repro.metagraph.metagraph import Metagraph

_EMPTY: frozenset = frozenset()


class SymISOMatcher:
    """Symmetry-based component matcher.

    Parameters
    ----------
    random_order:
        Use a seeded random connected node order instead of the
        estimated-cost order — this is the paper's SymISO-R ablation.
    seed:
        Seed for the random order (ignored unless ``random_order``).
    """

    def __init__(self, random_order: bool = False, seed: int = 0):
        self.random_order = random_order
        self.seed = seed
        self.name = "SymISO-R" if random_order else "SymISO"

    # ------------------------------------------------------------------
    def find_embeddings(
        self, graph: TypedGraph, metagraph: Metagraph
    ) -> Iterator[Embedding]:
        """Yield embeddings covering every instance of the metagraph.

        Automorphic duplicates within reused twin families are skipped
        by construction; remaining duplicates (larger automorphism
        groups) are removed by the instance-level deduplication that all
        engines share.
        """
        decomp = decompose(metagraph)
        if self.random_order:
            rng = random.Random(self.seed)
            node_order = random_connected_order(metagraph, rng)
        else:
            node_order = estimated_cost_order(
                graph, metagraph, GraphCardinalities(graph)
            )
        comp_order = component_order_from_node_order(node_order, decomp.components)
        # SymISO-R ablates the order policy entirely: raw first-appearance
        # component order from the random node order, no anchor-first
        # reordering.  (Connected node orders still guarantee that every
        # non-initial group has an assigned pattern neighbour.)
        groups = _plan_groups(decomp, comp_order, reorder=not self.random_order)
        if groups and groups[0][0] == "family":
            # No fixed component can anchor the first family (every node
            # is moved by sigma, e.g. a double square): component-at-a-
            # time matching would start from unanchored whole-type-class
            # candidate sets.  Plain node-at-a-time backtracking with the
            # same order is strictly better here (Sect. IV-B's fallback).
            yield from backtrack_embeddings(graph, metagraph, node_order)
            return
        yield from _match_groups(graph, metagraph, decomp, groups)


def _plan_groups(
    decomp: Decomposition, comp_order: list[int], reorder: bool = True
) -> list[tuple[str, object]]:
    """Turn a component order into match steps: singles and twin families.

    A family is scheduled at the earlier of its two components'
    positions (Alg. 3 matches the set ``B`` together), then the steps
    are greedily reordered so that

    - each step is pattern-adjacent to the already-scheduled nodes
      (connected prefixes keep candidate sets anchored), and
    - fixed singles go before twin families whenever both are eligible —
      a family matched with no bound anchor would enumerate whole type
      classes, exactly the blow-up the matching order exists to avoid.
    """
    rep_family: dict[int, TwinFamily] = {
        f.representative: f for f in decomp.families
    }
    twin_family: dict[int, TwinFamily] = {f.twin: f for f in decomp.families}
    base: list[tuple[str, object]] = []
    done: set[int] = set()
    for comp_idx in comp_order:
        if comp_idx in done:
            continue
        family = rep_family.get(comp_idx) or twin_family.get(comp_idx)
        if family is not None:
            base.append(("family", family))
            done.add(family.representative)
            done.add(family.twin)
        else:
            base.append(("single", comp_idx))
            done.add(comp_idx)
    if not reorder:
        return base

    def nodes_of(group: tuple[str, object]) -> tuple[int, ...]:
        if group[0] == "single":
            return decomp.components[group[1]]  # type: ignore[index]
        family: TwinFamily = group[1]  # type: ignore[assignment]
        return (
            decomp.components[family.representative]
            + decomp.components[family.twin]
        )

    metagraph = decomp.metagraph
    ordered: list[tuple[str, object]] = []
    scheduled: set[int] = set()
    pending = list(base)
    while pending:
        pick = None
        fallback = None
        for group in pending:
            nodes = nodes_of(group)
            connected = not scheduled or any(
                metagraph.neighbors(n) & scheduled for n in nodes
            )
            if not connected:
                continue
            if group[0] == "single":
                pick = group
                break
            if fallback is None:
                fallback = group
        if pick is None:
            pick = fallback if fallback is not None else pending[0]
        ordered.append(pick)
        pending.remove(pick)
        scheduled.update(nodes_of(pick))
    return ordered


def _component_assignments(
    graph: TypedGraph,
    metagraph: Metagraph,
    comp_nodes: Sequence[int],
    assignment: dict[int, NodeId],
    used: set[NodeId],
) -> list[tuple[NodeId, ...]]:
    """All matchings C(S|D) of a component given the partial assignment.

    Each returned tuple is aligned with ``comp_nodes``.  A matching
    satisfies type constraints, injectivity against ``used`` and within
    itself, and induced edge/non-edge constraints against both the
    global assignment and earlier nodes of the component.
    """
    # order component nodes: those with an already-assigned pattern
    # neighbour first (their candidates are cheap), then keep the
    # component prefix connected where possible
    nodes = list(comp_nodes)
    nodes.sort(
        key=lambda u: (
            -sum(1 for w in metagraph.neighbors(u) if w in assignment),
            u,
        )
    )
    results: list[tuple[NodeId, ...]] = []
    local: dict[int, NodeId] = {}
    local_used: set[NodeId] = set()

    def candidates(u: int) -> Iterator[NodeId]:
        node_type = metagraph.node_type(u)
        anchor_images = []
        for w in metagraph.neighbors(u):
            if w in assignment:
                anchor_images.append(assignment[w])
            elif w in local:
                anchor_images.append(local[w])
        if anchor_images:
            best = min(
                anchor_images,
                key=lambda img: len(graph.typed_adjacency(img).get(node_type, _EMPTY)),
            )
            seed = graph.typed_adjacency(best).get(node_type, _EMPTY)
            rest = [img for img in anchor_images if img is not best]
            for v in seed:
                if all(v in graph.adjacency(img) for img in rest):
                    yield v
        else:
            yield from graph.nodes_of_type(node_type)

    kinds_active = metagraph.has_kinds or graph.has_kinds

    def induced_ok(u: int, v: NodeId) -> bool:
        adj_v = graph.adjacency(v)
        for w, img in assignment.items():
            if metagraph.has_edge(u, w):
                if img not in adj_v:
                    return False
                if kinds_active and graph.edge_signature(
                    v, img
                ) != metagraph.edge_signature(u, w):
                    return False
            elif img in adj_v:
                return False
        for w, img in local.items():
            if metagraph.has_edge(u, w):
                if img not in adj_v:
                    return False
                if kinds_active and graph.edge_signature(
                    v, img
                ) != metagraph.edge_signature(u, w):
                    return False
            elif img in adj_v:
                return False
        return True

    def extend(k: int) -> None:
        if k == len(nodes):
            results.append(tuple(local[u] for u in comp_nodes))
            return
        u = nodes[k]
        for v in candidates(u):
            if v in used or v in local_used:
                continue
            if not induced_ok(u, v):
                continue
            local[u] = v
            local_used.add(v)
            extend(k + 1)
            local_used.discard(v)
            del local[u]

    extend(0)
    return results


def _cross_structure(
    metagraph: Metagraph,
    rep_nodes: Sequence[int],
    twin_nodes: Sequence[int],
    kinds_active: bool = False,
) -> list[list[tuple[int, bool, tuple[str, int] | None]]]:
    """Per rep position: (twin position, must-be-adjacent, signature).

    The signature entry is ``None`` unless ``kinds_active`` and the
    pattern edge exists, keeping the plain path allocation-identical.
    """
    structure: list[list[tuple[int, bool, tuple[str, int] | None]]] = []
    for u in rep_nodes:
        constraints = []
        for j, w in enumerate(twin_nodes):
            must_connect = metagraph.has_edge(u, w)
            sig = (
                metagraph.edge_signature(u, w)
                if kinds_active and must_connect
                else None
            )
            constraints.append((j, must_connect, sig))
        structure.append(constraints)
    return structure


def _cross_ok(
    graph: TypedGraph,
    structure: list[list[tuple[int, bool, tuple[str, int] | None]]],
    rep_tuple: tuple[NodeId, ...],
    twin_tuple: tuple[NodeId, ...],
) -> bool:
    """Induced edge/non-edge checks between the two components of a family."""
    for i, constraints in enumerate(structure):
        adj_u = graph.adjacency(rep_tuple[i])
        for j, must_connect, sig in constraints:
            if (twin_tuple[j] in adj_u) != must_connect:
                return False
            if sig is not None and graph.edge_signature(
                rep_tuple[i], twin_tuple[j]
            ) != sig:
                return False
    return True


def _match_groups(
    graph: TypedGraph,
    metagraph: Metagraph,
    decomp: Decomposition,
    groups: list[tuple[str, object]],
) -> Iterator[Embedding]:
    assignment: dict[int, NodeId] = {}
    used: set[NodeId] = set()
    sigma = decomp.sigma
    kinds_active = metagraph.has_kinds or graph.has_kinds

    def extend(g: int) -> Iterator[Embedding]:
        if g == len(groups):
            yield dict(assignment)
            return
        kind, payload = groups[g]
        if kind == "single":
            comp_nodes = decomp.components[payload]  # type: ignore[index]
            for chosen in _component_assignments(
                graph, metagraph, comp_nodes, assignment, used
            ):
                _bind(comp_nodes, chosen)
                yield from extend(g + 1)
                _unbind(comp_nodes, chosen)
            return

        family: TwinFamily = payload  # type: ignore[assignment]
        rep_nodes = decomp.components[family.representative]
        twin_nodes = decomp.components[family.twin]
        # twin node order corresponding to rep_nodes under sigma
        twin_aligned = tuple(sigma[u] for u in rep_nodes)
        rep_matchings = _component_assignments(
            graph, metagraph, rep_nodes, assignment, used
        )
        if not rep_matchings:
            return
        safe = all(sigma[w] == w for w in assignment)
        if safe and len(rep_nodes) == 1:
            # singleton twins (the common case: the two anchor users):
            # scalar candidates, a single cross constraint, i < j pairs
            u = rep_nodes[0]
            v = twin_aligned[0]
            must_connect = metagraph.has_edge(u, v)
            pair_sig = (
                metagraph.edge_signature(u, v)
                if kinds_active and must_connect
                else None
            )
            scalars = [t[0] for t in rep_matchings]
            for i, a in enumerate(scalars):
                adj_a = graph.adjacency(a)
                assignment[u] = a
                used.add(a)
                for b in scalars[i + 1 :]:
                    if (b in adj_a) != must_connect:
                        continue
                    if pair_sig is not None and graph.edge_signature(
                        a, b
                    ) != pair_sig:
                        continue
                    assignment[v] = b
                    used.add(b)
                    yield from extend(g + 1)
                    used.discard(b)
                    del assignment[v]
                used.discard(a)
                del assignment[u]
        elif safe:
            # Reuse C(S|D) for the twin; i < j keeps one of each
            # sigma-swapped duplicate pair.
            structure = _cross_structure(
                metagraph, rep_nodes, twin_aligned, kinds_active
            )
            match_sets = [set(t) for t in rep_matchings]
            for i in range(len(rep_matchings)):
                rep_tuple = rep_matchings[i]
                rep_set = match_sets[i]
                for j in range(i + 1, len(rep_matchings)):
                    if rep_set & match_sets[j]:
                        continue
                    twin_tuple = rep_matchings[j]
                    if not _cross_ok(graph, structure, rep_tuple, twin_tuple):
                        continue
                    _bind(rep_nodes, rep_tuple)
                    _bind(twin_aligned, twin_tuple)
                    yield from extend(g + 1)
                    _unbind(twin_aligned, twin_tuple)
                    _unbind(rep_nodes, rep_tuple)
        else:
            # Assigned context is not sigma-invariant: compute the twin's
            # matchings directly per representative choice.
            for rep_tuple in rep_matchings:
                _bind(rep_nodes, rep_tuple)
                twin_matchings = _component_assignments(
                    graph, metagraph, twin_aligned, assignment, used
                )
                for twin_tuple in twin_matchings:
                    _bind(twin_aligned, twin_tuple)
                    yield from extend(g + 1)
                    _unbind(twin_aligned, twin_tuple)
                _unbind(rep_nodes, rep_tuple)

    def _bind(nodes: Sequence[int], images: tuple[NodeId, ...]) -> None:
        for u, v in zip(nodes, images):
            assignment[u] = v
            used.add(v)

    def _unbind(nodes: Sequence[int], images: tuple[NodeId, ...]) -> None:
        for u, v in zip(nodes, images):
            del assignment[u]
            used.discard(v)

    yield from extend(0)
