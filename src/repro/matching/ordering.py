"""Matching orders: which pattern node to bind next.

The search-space size of backtracking matching depends heavily on the
node order (Sect. IV-C "Matching order").  This module implements the
paper's estimated-instance-count ordering:

    f(M^(i+1)) = f(M^(i)) * |I(<u, u'>)| / |I(u)|

where ``|I(<u, u'>)|`` is the number of graph edges whose endpoint types
match the pattern edge and ``|I(u)|`` the number of graph nodes of
``u``'s type.  At each step the edge minimising the estimate is added;
node order is the order of first appearance.

A rarest-type-first static order (QuickSI-flavoured) and a seeded random
order (for SymISO-R) are also provided.
"""

from __future__ import annotations

import random
from collections import Counter
from collections.abc import Callable

from repro.graph.typed_graph import TypedGraph
from repro.metagraph.metagraph import Metagraph


def edge_type_pair_counts(graph: TypedGraph) -> dict[tuple[str, str], int]:
    """Number of graph edges per sorted endpoint-type pair."""
    counts: Counter[tuple[str, str]] = Counter()
    for u, v in graph.edges():
        counts[graph.edge_type_pair(u, v)] += 1
    return dict(counts)


class GraphCardinalities:
    """Cached |I(t)| and |I(<t1, t2>)| statistics for one graph."""

    def __init__(self, graph: TypedGraph):
        self.node_counts = {t: graph.count_type(t) for t in graph.types}
        self.edge_counts = edge_type_pair_counts(graph)

    def nodes_of(self, node_type: str) -> int:
        """|I(t)|: number of graph nodes of the given type."""
        return self.node_counts.get(node_type, 0)

    def edges_of(self, type_a: str, type_b: str) -> int:
        """|I(<t1,t2>)|: graph edges whose endpoint types match."""
        pair = (type_a, type_b) if type_a <= type_b else (type_b, type_a)
        return self.edge_counts.get(pair, 0)


def estimated_cost_order(
    graph: TypedGraph,
    metagraph: Metagraph,
    cardinalities: GraphCardinalities | None = None,
) -> list[int]:
    """The paper's f(M)-minimising node order (Sect. IV-C).

    Greedy: start from the pattern edge with the fewest matching graph
    edges; repeatedly extend by the frontier edge whose selectivity
    ``|I(<u,u'>)| / |I(u)|`` is smallest.  Every prefix of the returned
    order induces a connected sub-pattern.
    """
    stats = cardinalities or GraphCardinalities(graph)
    n = metagraph.size
    if n == 1:
        return [0]

    def edge_cost(u: int, v: int) -> float:
        return stats.edges_of(metagraph.node_type(u), metagraph.node_type(v))

    first_edge = min(metagraph.edges, key=lambda e: (edge_cost(*e), e))
    # orient the first edge: bind the rarer-type endpoint first
    u0, v0 = first_edge
    if stats.nodes_of(metagraph.node_type(v0)) < stats.nodes_of(metagraph.node_type(u0)):
        u0, v0 = v0, u0
    order = [u0, v0]
    in_order = {u0, v0}
    while len(order) < n:
        best: tuple[float, int, int] | None = None
        for u in order:
            for v in metagraph.neighbors(u):
                if v in in_order:
                    continue
                denom = max(1, stats.nodes_of(metagraph.node_type(u)))
                selectivity = edge_cost(u, v) / denom
                key = (selectivity, v, u)
                if best is None or key < best:
                    best = key
        assert best is not None  # metagraphs are connected
        order.append(best[1])
        in_order.add(best[1])
    return order


def _rarity_key(
    graph: TypedGraph, metagraph: Metagraph
) -> Callable[[int], tuple[int, int, int]]:
    """Preference for the next pattern node: rarest type, then higher
    pattern degree (more constraints earlier), then node id."""

    def rarity(u: int) -> tuple[int, int, int]:
        return (graph.count_type(metagraph.node_type(u)), -metagraph.degree(u), u)

    return rarity


def connected_order_from(
    graph: TypedGraph, metagraph: Metagraph, start: int
) -> list[int]:
    """Grow a connected order from ``start``, rarest-type-first.

    The shared skeleton of :func:`rarest_type_order` (which picks the
    globally rarest start) and the pinned-root orders of
    :func:`repro.matching.partition.rooted_order` (where the caller
    dictates the start).
    """
    rarity = _rarity_key(graph, metagraph)
    order = [start]
    in_order = {start}
    while len(order) < metagraph.size:
        frontier = {
            v
            for u in order
            for v in metagraph.neighbors(u)
            if v not in in_order
        }
        nxt = min(frontier, key=rarity)
        order.append(nxt)
        in_order.add(nxt)
    return order


def rarest_type_order(graph: TypedGraph, metagraph: Metagraph) -> list[int]:
    """Static connected order starting from the rarest-type node.

    QuickSI-flavoured: the start node has the fewest candidate graph
    nodes; ties and subsequent choices prefer rarer types, then higher
    pattern degree (more constraints earlier).
    """
    start = min(range(metagraph.size), key=_rarity_key(graph, metagraph))
    return connected_order_from(graph, metagraph, start)


def random_connected_order(
    metagraph: Metagraph, rng: random.Random
) -> list[int]:
    """A random order whose every prefix is connected (for SymISO-R)."""
    n = metagraph.size
    start = rng.randrange(n)
    order = [start]
    in_order = {start}
    while len(order) < n:
        frontier = sorted(
            v
            for u in order
            for v in metagraph.neighbors(u)
            if v not in in_order
        )
        nxt = rng.choice(frontier)
        order.append(nxt)
        in_order.add(nxt)
    return order


def component_order_from_node_order(
    node_order: list[int], components: tuple[tuple[int, ...], ...]
) -> list[int]:
    """Order component indexes by the first appearance of any member node.

    Implements "when a node of a component S is chosen, we select S as
    the next component to match" (Sect. IV-C).
    """
    position = {node: i for i, node in enumerate(node_order)}
    first_seen = [min(position[n] for n in comp) for comp in components]
    return sorted(range(len(components)), key=lambda c: first_seen[c])
