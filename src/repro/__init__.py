"""repro — reproduction of *Semantic Proximity Search on Graphs with
Metagraph-based Learning* (Fang et al., ICDE 2016).

Top-level convenience re-exports cover the objects most users need:
build or load a :class:`TypedGraph`, mine a :class:`MetagraphCatalog`,
index instances into metagraph vectors, train a proximity model, and
rank nodes by semantic proximity.  See README.md for a quickstart.
"""

from repro.graph import GraphBuilder, GraphSchema, TypedGraph
from repro.index import GraphDelta, GraphEdit
from repro.metagraph import Metagraph, MetagraphCatalog, metapath
from repro.search import SemanticProximitySearch

__version__ = "1.0.0"

__all__ = [
    "GraphBuilder",
    "GraphDelta",
    "GraphEdit",
    "GraphSchema",
    "Metagraph",
    "MetagraphCatalog",
    "SemanticProximitySearch",
    "TypedGraph",
    "__version__",
    "metapath",
]
