"""Instance indexing, metagraph vectors (Eq. 1–2), and persistence."""

from repro.index.compiled import CompiledVectors
from repro.index.delta import (
    DeltaStats,
    GraphDelta,
    GraphEdit,
    affected_region,
    apply_delta,
    catalog_radius,
)
from repro.index.instance_index import (
    InstanceIndex,
    MetagraphCounts,
    match_and_count,
)
from repro.index.parallel import IndexBuildConfig, build_index
from repro.index.persist import (
    FORMAT_VERSION,
    LoadedIndex,
    catalog_fingerprint,
    graph_fingerprint,
    load_compiled,
    load_index,
    read_manifest,
    save_index,
    snapshot_digest,
)
from repro.index.rewrite import RewriteRule, RuleBook
from repro.index.transform import (
    TRANSFORMS,
    Transform,
    get_transform,
    identity,
    log1p,
    sqrt,
)
from repro.index.vectors import (
    MetagraphVectors,
    build_vectors,
    decode_node_id,
    encode_node_id,
)

__all__ = [
    "CompiledVectors",
    "DeltaStats",
    "FORMAT_VERSION",
    "GraphDelta",
    "GraphEdit",
    "IndexBuildConfig",
    "InstanceIndex",
    "LoadedIndex",
    "MetagraphCounts",
    "MetagraphVectors",
    "RewriteRule",
    "RuleBook",
    "TRANSFORMS",
    "Transform",
    "affected_region",
    "apply_delta",
    "build_index",
    "build_vectors",
    "catalog_fingerprint",
    "catalog_radius",
    "decode_node_id",
    "encode_node_id",
    "get_transform",
    "graph_fingerprint",
    "identity",
    "load_compiled",
    "load_index",
    "log1p",
    "match_and_count",
    "read_manifest",
    "save_index",
    "snapshot_digest",
    "sqrt",
]
