"""Instance indexing and metagraph vectors (Eq. 1–2)."""

from repro.index.compiled import CompiledVectors
from repro.index.instance_index import (
    InstanceIndex,
    MetagraphCounts,
    match_and_count,
)
from repro.index.transform import (
    TRANSFORMS,
    Transform,
    get_transform,
    identity,
    log1p,
    sqrt,
)
from repro.index.vectors import MetagraphVectors, build_vectors

__all__ = [
    "TRANSFORMS",
    "CompiledVectors",
    "InstanceIndex",
    "MetagraphCounts",
    "MetagraphVectors",
    "Transform",
    "build_vectors",
    "get_transform",
    "identity",
    "log1p",
    "match_and_count",
    "sqrt",
]
