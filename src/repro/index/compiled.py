"""Compiled CSR form of the Eq. 1–2 counts: the online serving backend.

:class:`MetagraphVectors` keeps the counts as nested dicts, which is the
right shape for incremental construction (dual-stage training extends it
in place) but the wrong shape for serving: scoring one candidate via
``mgp()`` materialises two dense length-|M| vectors and runs three dense
dot products per pair.  :class:`CompiledVectors` freezes the same counts
into flat CSR-style numpy arrays (``indptr``/``indices``/``data`` — no
scipy dependency):

- a node matrix of m_x rows over the *anchor universe* (every node with
  a non-zero count, sorted by ``repr`` so positions are deterministic);
- one m_xy row per distinct anchor pair, plus a per-node adjacency that
  maps each node to its partner positions and their pair rows.

With a fixed weight vector ``w`` the whole store collapses to two dot
arrays — ``node_dot_products(w)`` and ``pair_dot_products(w)``, each one
O(nnz) pass — after which ranking a query is a slice plus a handful of
vectorised operations: *a lookup, not a traversal* (Sect. II-B).

The compiled arrays are read-only snapshots; :meth:`MetagraphVectors.compile`
invalidates its cache whenever new counts are folded in.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Mapping, Set

import numpy as np

from repro.exceptions import CatalogMismatchError
from repro.graph.typed_graph import NodeId
from repro.index.instance_index import _pair_key
from repro.index.transform import Transform, identity


def csr_row_index(indptr: np.ndarray) -> np.ndarray:
    """Row id of every stored nonzero, from a CSR ``indptr``.

    Precomputing this collapses a CSR @ w to one multiply plus one
    bincount (:func:`csr_dot_products`) with no per-row python loop.
    """
    return np.repeat(
        np.arange(len(indptr) - 1, dtype=np.int64), np.diff(indptr)
    )


def csr_dot_products(
    row_index: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    weights: np.ndarray,
    num_rows: int,
) -> np.ndarray:
    """Per-row ``row . w`` over a CSR matrix, one O(nnz) pass.

    Sums each row's nonzeros in storage order, so any slice that copies
    rows intact (e.g. a serving shard) reproduces the exact float bits
    of the unsliced computation.
    """
    weights = np.asarray(weights, dtype=np.float64)
    return np.bincount(
        row_index, weights=data * weights[indices], minlength=num_rows
    )


def _csr_from_rows(
    rows: list[dict[int, int]], transform: Transform
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Stack sparse {mg_id: count} rows into (indptr, indices, data)."""
    indptr = np.zeros(len(rows) + 1, dtype=np.int64)
    indices: list[int] = []
    data: list[float] = []
    for r, row in enumerate(rows):
        for mg_id in sorted(row):
            indices.append(mg_id)
            data.append(transform(row[mg_id]))
        indptr[r + 1] = len(indices)
    return (
        indptr,
        np.asarray(indices, dtype=np.int64),
        np.asarray(data, dtype=np.float64),
    )


class CompiledVectors:
    """Read-only CSR snapshot of a :class:`MetagraphVectors` store."""

    def __init__(
        self,
        nodes: tuple[NodeId, ...],
        node_csr: tuple[np.ndarray, np.ndarray, np.ndarray],
        pair_csr: tuple[np.ndarray, np.ndarray, np.ndarray],
        pair_ptr: np.ndarray,
        partner_pos: np.ndarray,
        entry_pair: np.ndarray,
        catalog_size: int,
    ):
        self.nodes = nodes
        self.node_indptr, self.node_indices, self.node_data = node_csr
        self.pair_indptr, self.pair_indices, self.pair_data = pair_csr
        self.pair_ptr = pair_ptr
        self.partner_pos = partner_pos
        self.entry_pair = entry_pair
        self.catalog_size = catalog_size
        self._pos = {node: i for i, node in enumerate(nodes)}
        self._node_rows = csr_row_index(self.node_indptr)
        self._pair_rows = csr_row_index(self.pair_indptr)
        for array in (
            self.node_indptr, self.node_indices, self.node_data,
            self.pair_indptr, self.pair_indices, self.pair_data,
            self.pair_ptr, self.partner_pos, self.entry_pair,
        ):
            array.setflags(write=False)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        node_counts: Mapping[NodeId, Mapping[int, int]],
        pair_counts: Mapping[tuple[NodeId, NodeId], Mapping[int, int]],
        partners: Mapping[NodeId, Set],
        catalog_size: int,
        transform: Transform = identity,
    ) -> "CompiledVectors":
        """Freeze the sparse dict store into CSR arrays."""
        nodes = tuple(sorted(node_counts, key=repr))
        pos = {node: i for i, node in enumerate(nodes)}
        node_csr = _csr_from_rows([dict(node_counts[n]) for n in nodes], transform)

        def canonical(key: tuple[NodeId, NodeId]) -> tuple[int, int]:
            a, b = pos[key[0]], pos[key[1]]
            return (a, b) if a <= b else (b, a)

        try:
            pair_keys = sorted(pair_counts, key=canonical)
        except KeyError as exc:  # a pair member without an m_x row
            raise CatalogMismatchError(
                f"pair count references node {exc.args[0]!r} with no node count"
            ) from None
        pair_row = {key: r for r, key in enumerate(pair_keys)}
        pair_csr = _csr_from_rows([dict(pair_counts[k]) for k in pair_keys], transform)

        pair_ptr = np.zeros(len(nodes) + 1, dtype=np.int64)
        partner_pos: list[int] = []
        entry_pair: list[int] = []
        for i, node in enumerate(nodes):
            for p in sorted(pos[partner] for partner in partners.get(node, ())):
                partner_pos.append(p)
                entry_pair.append(pair_row[_pair_key(node, nodes[p])])
            pair_ptr[i + 1] = len(partner_pos)
        return cls(
            nodes,
            node_csr,
            pair_csr,
            pair_ptr,
            np.asarray(partner_pos, dtype=np.int64),
            np.asarray(entry_pair, dtype=np.int64),
            catalog_size,
        )

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_pairs(self) -> int:
        return len(self.pair_indptr) - 1

    @property
    def nnz(self) -> int:
        """Stored nonzeros across the node and pair matrices."""
        return len(self.node_data) + len(self.pair_data)

    def content_digest(self) -> str:
        """Content hash of this snapshot (arrays + node table), cached.

        The serving tier's cache key for engines whose snapshot only
        exists in memory: two compiled snapshots digest equal exactly
        when every served ranking would be bit-identical.  Safe to
        cache on the instance because every array is frozen read-only
        in the constructor.
        """
        cached = getattr(self, "_content_digest", None)
        if cached is None:
            # lazy import: repro.index.vectors imports this module
            from repro.index.vectors import encode_node_id

            digest = hashlib.sha256()
            digest.update(
                json.dumps(
                    [encode_node_id(node) for node in self.nodes],
                    separators=(",", ":"),
                ).encode("utf-8")
            )
            digest.update(str(self.catalog_size).encode("utf-8"))
            for array in (
                self.node_indptr, self.node_indices, self.node_data,
                self.pair_indptr, self.pair_indices, self.pair_data,
                self.pair_ptr, self.partner_pos, self.entry_pair,
            ):
                digest.update(np.ascontiguousarray(array).tobytes())
            cached = digest.hexdigest()
            self._content_digest = cached
        return cached

    def position(self, node: NodeId) -> int | None:
        """Row of a node in the anchor universe (None if absent)."""
        return self._pos.get(node)

    def candidates_of(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """(partner positions, pair-row ids) of the node at row ``i``."""
        lo, hi = self.pair_ptr[i], self.pair_ptr[i + 1]
        return self.partner_pos[lo:hi], self.entry_pair[lo:hi]

    # ------------------------------------------------------------------
    # the two O(nnz) passes that make serving a lookup
    # ------------------------------------------------------------------
    def node_dot_products(self, weights: np.ndarray) -> np.ndarray:
        """m_x . w for every anchor node, one pass over the nonzeros."""
        return csr_dot_products(
            self._node_rows, self.node_indices, self.node_data,
            weights, self.num_nodes,
        )

    def pair_dot_products(self, weights: np.ndarray) -> np.ndarray:
        """m_xy . w for every distinct anchor pair, one pass."""
        return csr_dot_products(
            self._pair_rows, self.pair_indices, self.pair_data,
            weights, self.num_pairs,
        )

    # ------------------------------------------------------------------
    # dense reconstruction (tests / debugging only)
    # ------------------------------------------------------------------
    def node_vector_dense(self, i: int) -> np.ndarray:
        """The m_x row at position ``i`` as a dense length-|M| vector."""
        vec = np.zeros(self.catalog_size, dtype=np.float64)
        lo, hi = self.node_indptr[i], self.node_indptr[i + 1]
        vec[self.node_indices[lo:hi]] = self.node_data[lo:hi]
        return vec

    def pair_vector_dense(self, row: int) -> np.ndarray:
        """An m_xy row as a dense length-|M| vector."""
        vec = np.zeros(self.catalog_size, dtype=np.float64)
        lo, hi = self.pair_indptr[row], self.pair_indptr[row + 1]
        vec[self.pair_indices[lo:hi]] = self.pair_data[lo:hi]
        return vec

    def __repr__(self) -> str:
        return (
            f"<CompiledVectors: {self.num_nodes} nodes, {self.num_pairs} pairs, "
            f"{self.nnz} nonzeros over {self.catalog_size} metagraphs>"
        )
