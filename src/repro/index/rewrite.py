"""Reusable rewrite-rule vocabulary for incremental graph updates.

Raw :class:`~repro.index.delta.GraphEdit` lists describe *one* concrete
mutation.  Real update streams repeat the same structural move over and
over — "retract a catalysed reaction", "splice an intermediate product
into a conversion" — so this module names those moves once and replays
them anywhere they apply:

- :class:`RewriteRule` — a named LHS -> RHS rewrite.  The LHS is an
  ordinary :class:`~repro.metagraph.metagraph.Metagraph` (types, edges,
  edge kinds); the RHS is expressed as a difference against it: edges
  and nodes to remove, fresh nodes to add, and edges to add between LHS
  positions and/or fresh nodes, each with an
  :class:`~repro.graph.typed_graph.EdgeKind`.
- A *binding* maps LHS positions to concrete graph nodes — any
  embedding of the LHS (see :meth:`RewriteRule.bindings`) is one.
- :meth:`RewriteRule.compile` lowers (rule, binding) to a plain
  :class:`~repro.index.delta.GraphDelta`, so application goes through
  :func:`~repro.index.delta.apply_delta` /
  ``SemanticProximitySearch.apply_updates`` and inherits their
  bit-identical-to-rebuild guarantee unchanged.
- :class:`RuleBook` — a named collection with a deterministic JSON
  codec, so a deployment's rewrite vocabulary ships next to its
  snapshots.

Structural problems (unknown LHS position, edge added twice, binding of
the wrong shape) raise :class:`~repro.exceptions.RewriteError` at rule
construction or compile time — before any graph or count is touched.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass

from repro.exceptions import RewriteError
from repro.graph.typed_graph import PLAIN, EdgeKind, NodeId, TypedGraph
from repro.index.delta import GraphDelta
from repro.matching.backtracking import backtrack_embeddings
from repro.matching.ordering import rarest_type_order
from repro.metagraph.metagraph import Metagraph

# an endpoint of an added edge: an LHS position or a fresh-node variable
NodeRef = int | str

RULEBOOK_FORMAT = 1


@dataclass(frozen=True)
class RewriteRule:
    """One named LHS -> RHS rewrite over typed, kinded graphs.

    Parameters
    ----------
    name:
        Non-empty identifier, unique within a :class:`RuleBook`.
    lhs:
        The pattern a binding must embed (Def. 2 induced semantics when
        bindings come from :meth:`bindings`).
    removed_edges:
        LHS position pairs whose bound edge is removed.
    removed_nodes:
        LHS positions whose bound node is removed (incident edges go
        with it, per :class:`~repro.graph.typed_graph.TypedGraph`).
    added_nodes:
        ``(variable, node_type)`` fresh nodes; concrete ids are chosen
        per application via :meth:`compile`'s ``new_nodes``.
    added_edges:
        ``(ref, ref, kind)`` edges to create; a directed kind orients
        the edge first-ref -> second-ref.
    """

    name: str
    lhs: Metagraph
    removed_edges: tuple[tuple[int, int], ...] = ()
    removed_nodes: tuple[int, ...] = ()
    added_nodes: tuple[tuple[str, str], ...] = ()
    added_edges: tuple[tuple[NodeRef, NodeRef, EdgeKind], ...] = ()

    def __post_init__(self):
        if not self.name or not isinstance(self.name, str):
            raise RewriteError(f"rule name must be a non-empty string: {self.name!r}")
        n = self.lhs.size
        removed_pairs = set()
        for u, v in self.removed_edges:
            if not (0 <= u < n and 0 <= v < n) or not self.lhs.has_edge(u, v):
                raise RewriteError(
                    f"rule {self.name!r} removes ({u}, {v}), not an LHS edge"
                )
            removed_pairs.add((u, v) if u < v else (v, u))
        if len(removed_pairs) != len(self.removed_edges):
            raise RewriteError(f"rule {self.name!r} removes an edge twice")
        removed = set(self.removed_nodes)
        if len(removed) != len(self.removed_nodes):
            raise RewriteError(f"rule {self.name!r} removes a node twice")
        for u in sorted(removed):
            if not 0 <= u < n:
                raise RewriteError(
                    f"rule {self.name!r} removes node {u}, outside LHS 0..{n - 1}"
                )
        variables = [var for var, _ in self.added_nodes]
        if len(set(variables)) != len(variables):
            raise RewriteError(f"rule {self.name!r} declares a variable twice")
        for var, node_type in self.added_nodes:
            if not var or not isinstance(var, str):
                raise RewriteError(
                    f"rule {self.name!r}: variable must be a non-empty "
                    f"string, got {var!r}"
                )
            if not node_type or not isinstance(node_type, str):
                raise RewriteError(
                    f"rule {self.name!r}: node type must be a non-empty "
                    f"string, got {node_type!r}"
                )
        var_set = set(variables)
        added_pairs = set()
        for a, b, kind in self.added_edges:
            if not isinstance(kind, EdgeKind):
                raise RewriteError(
                    f"rule {self.name!r}: added edge kind must be an "
                    f"EdgeKind, got {kind!r}"
                )
            for ref in (a, b):
                if isinstance(ref, int):
                    if not 0 <= ref < n:
                        raise RewriteError(
                            f"rule {self.name!r} adds an edge at LHS "
                            f"position {ref}, outside 0..{n - 1}"
                        )
                    if ref in removed:
                        raise RewriteError(
                            f"rule {self.name!r} adds an edge at removed "
                            f"node {ref}"
                        )
                elif ref not in var_set:
                    raise RewriteError(
                        f"rule {self.name!r} adds an edge at undeclared "
                        f"variable {ref!r}"
                    )
            if a == b:
                raise RewriteError(f"rule {self.name!r} adds a self-loop")
            pair = (a, b) if repr(a) <= repr(b) else (b, a)
            if pair in added_pairs:
                raise RewriteError(
                    f"rule {self.name!r} adds an edge between {a!r} and "
                    f"{b!r} twice"
                )
            added_pairs.add(pair)
            if (
                isinstance(a, int)
                and isinstance(b, int)
                and self.lhs.has_edge(a, b)
                and ((a, b) if a < b else (b, a)) not in removed_pairs
            ):
                raise RewriteError(
                    f"rule {self.name!r} adds ({a}, {b}) over an LHS edge "
                    "it does not remove"
                )

    @property
    def variables(self) -> tuple[str, ...]:
        """The fresh-node variables, in declaration order."""
        return tuple(var for var, _ in self.added_nodes)

    def bindings(
        self, graph: TypedGraph
    ) -> Iterator[dict[int, NodeId]]:
        """All bindings of the LHS on ``graph`` (induced embeddings).

        Deterministic order (the shared backtracking engine over the
        rarest-type-first node order), so replaying a rule over a graph
        is reproducible.
        """
        order = rarest_type_order(graph, self.lhs)
        return backtrack_embeddings(graph, self.lhs, order)

    def compile(
        self,
        binding: Mapping[int, NodeId],
        new_nodes: Mapping[str, NodeId] | None = None,
    ) -> GraphDelta:
        """Lower this rule at one binding to a :class:`GraphDelta`.

        ``binding`` must cover every LHS position injectively;
        ``new_nodes`` must assign a concrete id to every declared
        variable, distinct from each other and from the bound nodes.
        The delta orders removals before additions (edges before nodes
        on the way out, nodes before edges on the way in), so it replays
        cleanly via ``apply_delta`` — whose localized re-matching keeps
        the index bit-identical to a cold rebuild on the result.
        """
        n = self.lhs.size
        if sorted(binding) != list(range(n)):
            raise RewriteError(
                f"rule {self.name!r}: binding must cover LHS positions "
                f"0..{n - 1}, got {sorted(binding)!r}"
            )
        images = list(binding.values())
        if len(set(images)) != len(images):
            raise RewriteError(f"rule {self.name!r}: binding is not injective")
        fresh = dict(new_nodes or {})
        if sorted(fresh) != sorted(self.variables):
            raise RewriteError(
                f"rule {self.name!r}: new_nodes must assign exactly "
                f"{sorted(self.variables)!r}, got {sorted(fresh)!r}"
            )
        fresh_ids = list(fresh.values())
        if len(set(fresh_ids)) != len(fresh_ids) or set(fresh_ids) & set(images):
            raise RewriteError(
                f"rule {self.name!r}: new node ids must be distinct from "
                "each other and from the bound nodes"
            )

        def resolve(ref: NodeRef) -> NodeId:
            return binding[ref] if isinstance(ref, int) else fresh[ref]

        delta = GraphDelta()
        for u, v in self.removed_edges:
            delta.remove_edge(binding[u], binding[v])
        for u in self.removed_nodes:
            delta.remove_node(binding[u])
        for var, node_type in self.added_nodes:
            delta.add_node(fresh[var], node_type)
        for a, b, kind in self.added_edges:
            delta.add_edge(resolve(a), resolve(b), kind)
        return delta

    # ------------------------------------------------------------------
    # codec
    # ------------------------------------------------------------------
    def to_json_dict(self) -> dict:
        """JSON-safe form; inverse of :meth:`from_json_dict`."""
        lhs_edges = []
        for u, v, kind in self.lhs.edges_with_kinds():
            if kind == PLAIN:
                lhs_edges.append([u, v])
            else:
                lhs_edges.append([u, v, kind.label, 1 if kind.directed else 0])
        return {
            "name": self.name,
            "lhs": {"types": list(self.lhs.types), "edges": lhs_edges},
            "removed_edges": [list(pair) for pair in self.removed_edges],
            "removed_nodes": list(self.removed_nodes),
            "added_nodes": [list(entry) for entry in self.added_nodes],
            "added_edges": [
                [a, b, kind.label, 1 if kind.directed else 0]
                for a, b, kind in self.added_edges
            ],
        }

    @classmethod
    def from_json_dict(cls, doc: dict) -> "RewriteRule":
        """Decode one rule document."""
        try:
            name = doc["name"]
            lhs_doc = doc["lhs"]
            types = list(lhs_doc["types"])
            entries = []
            for entry in lhs_doc["edges"]:
                if len(entry) == 2:
                    entries.append((entry[0], entry[1]))
                elif len(entry) == 4:
                    u, v, label, directed = entry
                    if not isinstance(label, str) or directed not in (0, 1):
                        raise RewriteError(
                            f"malformed LHS edge entry {entry!r}"
                        )
                    entries.append((u, v, EdgeKind(label, bool(directed))))
                else:
                    raise RewriteError(f"malformed LHS edge entry {entry!r}")
            added_edges = []
            for entry in doc.get("added_edges", ()):
                a, b, label, directed = entry
                if not isinstance(label, str) or directed not in (0, 1):
                    raise RewriteError(f"malformed added edge entry {entry!r}")
                added_edges.append((a, b, EdgeKind(label, bool(directed))))
            return cls(
                name=name,
                lhs=Metagraph(types, entries),
                removed_edges=tuple(
                    (int(u), int(v)) for u, v in doc.get("removed_edges", ())
                ),
                removed_nodes=tuple(
                    int(u) for u in doc.get("removed_nodes", ())
                ),
                added_nodes=tuple(
                    (str(var), str(node_type))
                    for var, node_type in doc.get("added_nodes", ())
                ),
                added_edges=tuple(added_edges),
            )
        except RewriteError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise RewriteError(f"malformed rewrite rule document: {exc}") from exc


class RuleBook:
    """A named, JSON-serialisable collection of rewrite rules.

    >>> book = RuleBook([rule])           # doctest: +SKIP
    >>> book["retract-catalysis"]         # doctest: +SKIP
    """

    def __init__(self, rules: Iterable[RewriteRule] = ()):
        self._rules: dict[str, RewriteRule] = {}
        for rule in rules:
            self.add(rule)

    def add(self, rule: RewriteRule) -> None:
        """Add a rule; duplicate names raise."""
        if rule.name in self._rules:
            raise RewriteError(f"rulebook already has a rule named {rule.name!r}")
        self._rules[rule.name] = rule

    def __getitem__(self, name: str) -> RewriteRule:
        try:
            return self._rules[name]
        except KeyError:
            raise RewriteError(f"no rule named {name!r} in the rulebook") from None

    def __contains__(self, name: str) -> bool:
        return name in self._rules

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[RewriteRule]:
        return iter(self._rules.values())

    def names(self) -> tuple[str, ...]:
        """Rule names in insertion order."""
        return tuple(self._rules)

    def compile(
        self,
        name: str,
        binding: Mapping[int, NodeId],
        new_nodes: Mapping[str, NodeId] | None = None,
    ) -> GraphDelta:
        """Shorthand for ``book[name].compile(binding, new_nodes)``."""
        return self[name].compile(binding, new_nodes)

    def to_json(self) -> str:
        """Deterministic JSON (rules sorted by name)."""
        doc = {
            "format": RULEBOOK_FORMAT,
            "rules": [
                self._rules[name].to_json_dict()
                for name in sorted(self._rules)
            ],
        }
        return json.dumps(doc, sort_keys=True, indent=1)

    @classmethod
    def from_json(cls, text: str) -> "RuleBook":
        """Inverse of :meth:`to_json`."""
        try:
            doc = json.loads(text)
        except ValueError as exc:
            raise RewriteError(f"unreadable rulebook JSON: {exc}") from exc
        if not isinstance(doc, dict) or doc.get("format") != RULEBOOK_FORMAT:
            raise RewriteError(
                f"unsupported rulebook format {doc.get('format') if isinstance(doc, dict) else doc!r}"
            )
        return cls(
            RewriteRule.from_json_dict(rule_doc)
            for rule_doc in doc.get("rules", ())
        )

    def __repr__(self) -> str:
        return f"<RuleBook: {len(self._rules)} rules>"
