"""Versioned on-disk snapshots of the offline index.

The offline phase (mine → match → Eq. 1–2 counting) is by far the most
expensive part of the pipeline, yet its product — the sparse counts —
is tiny.  A snapshot freezes everything a cold-starting service needs
into one directory:

- ``manifest.json`` — format version, catalog/graph fingerprints, the
  node-id table, array checksums, per-class model names;
- ``catalog.json`` — the metagraph catalog (its own JSON format);
- ``arrays.npz`` — CSR-style count arrays and model weight vectors,
  compressed;
- ``compiled/`` (format v2) — the serving-tier sidecar: each
  :class:`~repro.index.compiled.CompiledVectors` array as a raw,
  64-byte-aligned ``.npy`` member that :func:`load_compiled` opens with
  ``mmap_mode="r"``, so a cold serving worker maps the snapshot pages
  instead of decompressing ``arrays.npz`` and replaying the counts into
  dicts.  Several workers on one host share the mapped pages.

Loading validates before trusting: a wrong format version, a tampered
or truncated arrays file, a catalog that no longer hashes to the
manifest's digest, or a graph whose fingerprint differs from the one
the index was built on all raise :class:`~repro.exceptions.SnapshotError`
(staleness as the :class:`~repro.exceptions.StaleSnapshotError`
subclass) instead of silently serving wrong rankings.

Snapshots are byte-deterministic: every JSON key and array row is
written in sorted order and the zip members carry a fixed timestamp, so
two builds of the same counts — sequential or parallel, any
``PYTHONHASHSEED`` — produce identical files.  The determinism suite
relies on this to prove the parallel builder exact.
"""

from __future__ import annotations

import hashlib
import io
import json
import shutil
import warnings
import zipfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.exceptions import (
    CatalogMismatchError,
    SchemaError,
    SnapshotError,
    StaleSnapshotError,
)
from repro.graph.typed_graph import TypedGraph
from repro.index.compiled import CompiledVectors
from repro.index.instance_index import InstanceIndex, MetagraphCounts
from repro.index.transform import TRANSFORMS, Transform
from repro.index.vectors import MetagraphVectors, decode_node_id, encode_node_id
from repro.metagraph.catalog import MetagraphCatalog

FORMAT_VERSION = 2
# snapshots of edge-kinded graphs bump to format 3 and carry a "schema"
# manifest block; plain graphs keep writing format 2 so their snapshot
# bytes are unchanged by the schema feature existing
KINDED_FORMAT_VERSION = 3
# format 1 snapshots (no compiled sidecar) still load; the sidecar fast
# path is simply unavailable for them
SUPPORTED_FORMAT_VERSIONS = frozenset({1, FORMAT_VERSION, KINDED_FORMAT_VERSION})
MANIFEST_FILE = "manifest.json"
CATALOG_FILE = "catalog.json"
ARRAYS_FILE = "arrays.npz"
COMPILED_DIR = "compiled"

# the CompiledVectors constructor arrays, in sidecar member order
_COMPILED_MEMBERS = (
    "node_indptr", "node_indices", "node_data",
    "pair_indptr", "pair_indices", "pair_data",
    "pair_ptr", "partner_pos", "entry_pair",
)

# fixed member timestamp (the zip epoch) so snapshot bytes never depend
# on the wall clock
_ZIP_EPOCH = (1980, 1, 1, 0, 0, 0)


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------
def graph_fingerprint(graph: TypedGraph) -> str:
    """Content hash of a typed graph (nodes, types, edges; order-free).

    Node ids go through the snapshot codec, so the fingerprint is
    deterministic under hash randomisation and stable across processes.
    """
    nodes = sorted(
        ([encode_node_id(node), graph.node_type(node)] for node in graph.nodes()),
        key=repr,
    )
    # plain edges keep their historical 2-entry shape so plain-graph
    # fingerprints (and every snapshot keyed on them) are unchanged;
    # kinded edges extend to [u, v, label, directed], oriented u -> v
    edges = sorted(
        (
            [encode_node_id(u), encode_node_id(v)]
            if kind.label == "" and not kind.directed
            else [
                encode_node_id(u),
                encode_node_id(v),
                kind.label,
                1 if kind.directed else 0,
            ]
            for u, v, kind in graph.edges_with_kinds()
        ),
        key=repr,
    )
    doc = json.dumps([nodes, edges], separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(doc.encode("utf-8")).hexdigest()


def catalog_fingerprint(catalog: MetagraphCatalog) -> str:
    """Content hash of a metagraph catalog (via its canonical JSON)."""
    return hashlib.sha256(catalog.to_json().encode("utf-8")).hexdigest()


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _manifest_digest(manifest: dict) -> str:
    """Digest of every manifest field except the digest itself.

    The manifest is the snapshot's root of trust (node-id table, model
    list, recorded hashes), so it needs its own integrity check: JSON
    that parses fine after a bit flip inside a node id would otherwise
    attach every count row to the wrong node.
    """
    core = {k: v for k, v in manifest.items() if k != "manifest_sha256"}
    return _sha256(
        json.dumps(core, sort_keys=True, separators=(",", ":")).encode("utf-8")
    )


# ----------------------------------------------------------------------
# deterministic npz
# ----------------------------------------------------------------------
def _deterministic_npz_bytes(arrays: dict[str, np.ndarray]) -> bytes:
    """``np.savez_compressed`` without its wall-clock zip timestamps."""
    buffer = io.BytesIO()
    with zipfile.ZipFile(buffer, "w", compression=zipfile.ZIP_DEFLATED) as archive:
        for name in sorted(arrays):
            payload = io.BytesIO()
            np.lib.format.write_array(
                payload, np.ascontiguousarray(arrays[name]), allow_pickle=False
            )
            info = zipfile.ZipInfo(f"{name}.npy", date_time=_ZIP_EPOCH)
            info.compress_type = zipfile.ZIP_DEFLATED
            info.external_attr = 0o644 << 16
            archive.writestr(info, payload.getvalue())
    return buffer.getvalue()


# ----------------------------------------------------------------------
# save
# ----------------------------------------------------------------------
def _transform_name(transform: Transform) -> str | None:
    for name, known in TRANSFORMS.items():
        if transform is known:
            return name
    return None


def save_index(
    path: str | Path,
    vectors: MetagraphVectors,
    catalog: MetagraphCatalog,
    graph: TypedGraph | None = None,
    index: InstanceIndex | None = None,
    models: dict[str, np.ndarray] | None = None,
    extra: dict | None = None,
    update_log: list[dict] | None = None,
) -> Path:
    """Write a versioned snapshot directory; returns its path.

    ``graph`` pins the snapshot to one graph via its fingerprint —
    always pass it when available, it is what makes staleness
    detectable.  ``index`` contributes the per-metagraph ``|I(M)|``
    totals, ``models`` the fitted per-class weight vectors, and
    ``extra`` is free-form JSON provenance (dataset name, mining knobs,
    worker count) surfaced by ``repro index info``.  ``update_log``
    records the :class:`~repro.index.delta.GraphEdit` JSON documents
    applied since the original build; together with the base graph it
    reconstructs the (fingerprinted) graph this snapshot describes —
    see ``repro index update``.
    """
    vectors.verify_catalog(catalog)
    target = Path(path)
    target.mkdir(parents=True, exist_ok=True)

    node_counts = vectors._node
    pair_counts = vectors._pair
    nodes = sorted(
        set(node_counts) | {n for pair in pair_counts for n in pair}, key=repr
    )
    position = {node: i for i, node in enumerate(nodes)}

    arrays: dict[str, np.ndarray] = {}
    arrays["matched_ids"] = np.asarray(sorted(vectors.matched_ids), dtype=np.int64)

    node_indptr = np.zeros(len(nodes) + 1, dtype=np.int64)
    node_mg: list[int] = []
    node_count: list[int] = []
    for i, node in enumerate(nodes):
        for mg_id, count in sorted(node_counts.get(node, {}).items()):
            node_mg.append(mg_id)
            node_count.append(count)
        node_indptr[i + 1] = len(node_mg)
    arrays["node_indptr"] = node_indptr
    arrays["node_mg"] = np.asarray(node_mg, dtype=np.int64)
    arrays["node_count"] = np.asarray(node_count, dtype=np.int64)

    pair_keys = sorted(
        pair_counts, key=lambda pair: (position[pair[0]], position[pair[1]])
    )
    pair_indptr = np.zeros(len(pair_keys) + 1, dtype=np.int64)
    pair_mg: list[int] = []
    pair_count: list[int] = []
    for r, key in enumerate(pair_keys):
        for mg_id, count in sorted(pair_counts[key].items()):
            pair_mg.append(mg_id)
            pair_count.append(count)
        pair_indptr[r + 1] = len(pair_mg)
    arrays["pair_indptr"] = pair_indptr
    arrays["pair_mg"] = np.asarray(pair_mg, dtype=np.int64)
    arrays["pair_count"] = np.asarray(pair_count, dtype=np.int64)
    arrays["pair_left"] = np.asarray(
        [position[x] for x, _ in pair_keys], dtype=np.int64
    )
    arrays["pair_right"] = np.asarray(
        [position[y] for _, y in pair_keys], dtype=np.int64
    )

    if index is not None:
        arrays["instance_totals"] = np.asarray(
            [index.num_instances(mg_id) for mg_id in sorted(index.matched_ids())],
            dtype=np.int64,
        )
        arrays["instance_total_ids"] = np.asarray(
            sorted(index.matched_ids()), dtype=np.int64
        )

    model_names = sorted(models) if models else []
    for slot, name in enumerate(model_names):
        weights = np.asarray(models[name], dtype=np.float64)
        if weights.ndim != 1 or len(weights) != vectors.catalog_size:
            raise SnapshotError(
                f"model {name!r} weights of shape {weights.shape} do not "
                f"match catalog size {vectors.catalog_size}"
            )
        arrays[f"model_{slot}"] = weights

    catalog_json = catalog.to_json()
    npz_bytes = _deterministic_npz_bytes(arrays)
    compiled_members, compiled_staging = _stage_compiled_sidecar(
        target, vectors, nodes
    )
    # kinded graphs bump the format and record their schema (types and
    # observed edge rules) so `repro index info` can print it and loads
    # against a schema-mismatched graph fail fast; plain graphs write
    # neither, keeping their snapshot bytes identical to format 2
    kinded = graph is not None and graph.has_kinds
    manifest = {
        "format_version": KINDED_FORMAT_VERSION if kinded else FORMAT_VERSION,
        "compiled_arrays": compiled_members,
        "catalog_size": vectors.catalog_size,
        "anchor_type": vectors.anchor_type,
        "transform": _transform_name(vectors.transform),
        "catalog_sha256": _sha256(catalog_json.encode("utf-8")),
        "arrays_sha256": _sha256(npz_bytes),
        "graph_fingerprint": graph_fingerprint(graph) if graph is not None else None,
        "nodes": [encode_node_id(node) for node in nodes],
        "models": model_names,
        "extra": extra or {},
        "update_log": list(update_log or []),
        "stats": {
            "num_nodes": len(nodes),
            "num_pairs": len(pair_keys),
            "node_nnz": len(node_mg),
            "pair_nnz": len(pair_mg),
            "matched": len(vectors.matched_ids),
        },
    }
    if kinded:
        manifest["schema"] = {
            "edge_kinds": True,
            "types": sorted(graph.types),
            "edge_rules": sorted(
                [a, b, kind.label, 1 if kind.directed else 0]
                for a, b, kind in graph.observed_edge_rules()
            ),
        }
    manifest["manifest_sha256"] = _manifest_digest(manifest)
    (target / CATALOG_FILE).write_text(catalog_json, encoding="utf-8")
    (target / ARRAYS_FILE).write_bytes(npz_bytes)
    (target / MANIFEST_FILE).write_text(
        json.dumps(manifest, sort_keys=True, indent=1), encoding="utf-8"
    )
    _install_compiled_sidecar(target, compiled_staging)
    return target


def _member_filename(name: str, sha256: str) -> str:
    """Sidecar member filename, suffixed with its content digest.

    The digest in the *name* is what makes a stale sidecar detectable
    without hashing on the mmap fast path: after an interrupted re-save
    (manifest and ``compiled/`` from different builds, possibly with
    identical byte sizes) the manifest's recorded digest resolves to a
    filename that does not exist, and loading falls back to compiling
    from the fully-verified counts instead of silently serving the
    wrong build's arrays.
    """
    return f"{name}-{sha256[:12]}.npy"


def _stage_compiled_sidecar(
    target: Path, vectors: MetagraphVectors, nodes: list
) -> tuple[dict, Path]:
    """Write the format-v2 mmap sidecar into a staging directory.

    Each :class:`CompiledVectors` array becomes one raw ``.npy`` file
    (``np.save``'s layout pads the header to a 64-byte boundary, so the
    data region is alignment-friendly for mmap) named by
    :func:`_member_filename`.  The returned manifest record carries
    per-member byte sizes (checked cheaply on every mmap load) and
    sha256 digests (part of the filename; hashed in full on verifying
    loads).  Members are staged next to the final ``compiled/``
    directory and swapped in by :func:`_install_compiled_sidecar` only
    after the manifest is on disk, so a crash mid-save never leaves a
    half-written sidecar as the directory's only copy.
    """
    had_snapshot = vectors._compiled is not None
    compiled = vectors.compile()
    if list(compiled.nodes) != nodes:
        # cannot happen for a consistent store (a pair member without a
        # node row fails compile() first), but never let a divergent
        # sidecar attach count rows to the wrong node ids
        raise SnapshotError(
            "compiled snapshot universe does not match the count arrays"
        )
    staging = target / (COMPILED_DIR + ".staging")
    shutil.rmtree(staging, ignore_errors=True)
    staging.mkdir()
    members: dict[str, dict] = {}
    for name in _COMPILED_MEMBERS:
        buffer = io.BytesIO()
        np.lib.format.write_array(
            buffer,
            np.ascontiguousarray(getattr(compiled, name)),
            allow_pickle=False,
        )
        payload = buffer.getvalue()
        digest = _sha256(payload)
        (staging / _member_filename(name, digest)).write_bytes(payload)
        members[name] = {"bytes": len(payload), "sha256": digest}
    if not had_snapshot:
        # the store was serving scalar (compile_serving=False): don't
        # let writing a snapshot pin the CSR arrays in memory for the
        # engine's lifetime
        vectors._compiled = None
    return members, staging


def _install_compiled_sidecar(target: Path, staging: Path) -> None:
    """Swap the staged sidecar into place as ``compiled/``."""
    final = target / COMPILED_DIR
    shutil.rmtree(final, ignore_errors=True)
    staging.rename(final)


# ----------------------------------------------------------------------
# load
# ----------------------------------------------------------------------
@dataclass
class LoadedIndex:
    """Everything a snapshot restores, ready for the online phase."""

    catalog: MetagraphCatalog
    vectors: MetagraphVectors
    models: dict[str, np.ndarray]
    manifest: dict
    instance_totals: dict[int, int]
    # the mmap-loaded serving snapshot when the snapshot carries a
    # format-v2 sidecar (None for v1 snapshots or mmap=False loads)
    compiled: CompiledVectors | None = None

    def instance_index(self) -> InstanceIndex:
        """Reconstruct the per-metagraph :class:`InstanceIndex`.

        The vector store keeps counts per metagraph id, so the per-id
        counters invert exactly; ``|I(M)|`` totals come from the
        snapshot when it carried them (0 otherwise — totals are not
        derivable from anchor counts alone).
        """
        index = InstanceIndex(
            self.vectors.catalog_size, anchor_type=self.vectors.anchor_type
        )
        per_mg: dict[int, MetagraphCounts] = {
            mg_id: MetagraphCounts() for mg_id in self.vectors.matched_ids
        }
        for node, counts in self.vectors._node.items():
            for mg_id, count in counts.items():
                per_mg[mg_id].node_counts[node] = count
        for pair, counts in self.vectors._pair.items():
            for mg_id, count in counts.items():
                per_mg[mg_id].pair_counts[pair] = count
        for mg_id, counts in per_mg.items():
            counts.num_instances = self.instance_totals.get(mg_id, 0)
            index.add(mg_id, counts)
        return index


def snapshot_digest(path_or_manifest: str | Path | dict) -> str:
    """One content id for a whole snapshot: its manifest's self-digest.

    The manifest digests every artefact it describes (arrays, catalog,
    sidecar members, node table, models, update log), so this single
    hash changes whenever anything served from the snapshot could — the
    serving tier keys its result cache on it.  Accepts a snapshot
    directory or an already-read manifest.
    """
    manifest = (
        path_or_manifest
        if isinstance(path_or_manifest, dict)
        else read_manifest(path_or_manifest)
    )
    digest = manifest.get("manifest_sha256")
    if not digest:
        raise SnapshotError("snapshot manifest carries no digest")
    return digest


def read_manifest(path: str | Path) -> dict:
    """Parse and version-check a snapshot manifest."""
    manifest_path = Path(path) / MANIFEST_FILE
    if not manifest_path.is_file():
        raise SnapshotError(f"no index snapshot at {Path(path)!s} (missing manifest)")
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise SnapshotError(f"unreadable snapshot manifest: {exc}") from exc
    version = manifest.get("format_version")
    if version not in SUPPORTED_FORMAT_VERSIONS:
        raise SnapshotError(
            f"snapshot format version {version!r} is not supported "
            f"(this build reads versions "
            f"{sorted(SUPPORTED_FORMAT_VERSIONS)})"
        )
    if manifest.get("manifest_sha256") != _manifest_digest(manifest):
        raise SnapshotError(
            "snapshot manifest does not match its own digest "
            "(corrupt or tampered snapshot)"
        )
    return manifest


def load_compiled(
    path: str | Path,
    manifest: dict | None = None,
    mmap: bool = True,
) -> CompiledVectors:
    """Open a snapshot's format-v2 sidecar as a serving-ready backend.

    This is the cold-start fast path: with ``mmap=True`` (default) the
    CSR arrays are memory-mapped read-only — no decompression, no dict
    replay, near-zero copy — and only per-member file sizes are checked
    (mapped pages cannot be hashed without reading them all, which
    would defeat the point).  ``mmap=False`` reads the members into
    memory and verifies their sha256 digests against the manifest; use
    it when integrity matters more than start-up latency.

    The returned snapshot carries the transform the snapshot was saved
    with, already applied.  Raises :class:`SnapshotError` for v1
    snapshots (no sidecar) and for missing, resized, or (verifying
    loads) corrupted members.
    """
    source = Path(path)
    if manifest is None:
        manifest = read_manifest(source)
    members = manifest.get("compiled_arrays")
    if not members:
        raise SnapshotError(
            f"snapshot at {source!s} has no compiled sidecar (format "
            f"version {manifest.get('format_version')!r}); re-save it to "
            "enable mmap serving"
        )
    arrays: dict[str, np.ndarray] = {}
    for name in _COMPILED_MEMBERS:
        recorded = members.get(name)
        if recorded is None:
            raise SnapshotError(f"snapshot sidecar is missing member {name}")
        filename = _member_filename(name, recorded["sha256"])
        member_path = source / COMPILED_DIR / filename
        if not member_path.is_file():
            # also the interrupted-re-save signature: a manifest and a
            # sidecar from different builds never agree on the
            # digest-suffixed filenames
            raise SnapshotError(f"snapshot sidecar is missing {filename}")
        size = member_path.stat().st_size
        if size != recorded["bytes"]:
            raise SnapshotError(
                f"snapshot sidecar member {filename} is {size} bytes, "
                f"manifest records {recorded['bytes']} (corrupt or "
                "tampered snapshot)"
            )
        if not mmap:
            payload = member_path.read_bytes()
            if _sha256(payload) != recorded["sha256"]:
                raise SnapshotError(
                    f"snapshot sidecar member {filename} does not match "
                    "the manifest digest (corrupt or tampered snapshot)"
                )
        try:
            arrays[name] = np.load(
                member_path,
                mmap_mode="r" if mmap else None,
                allow_pickle=False,
            )
        except (ValueError, OSError) as exc:
            raise SnapshotError(
                f"unreadable snapshot sidecar member {filename}: {exc}"
            ) from exc
    nodes = tuple(decode_node_id(doc) for doc in manifest["nodes"])
    try:
        return CompiledVectors(
            nodes,
            (arrays["node_indptr"], arrays["node_indices"], arrays["node_data"]),
            (arrays["pair_indptr"], arrays["pair_indices"], arrays["pair_data"]),
            arrays["pair_ptr"],
            arrays["partner_pos"],
            arrays["entry_pair"],
            catalog_size=manifest["catalog_size"],
        )
    except (ValueError, IndexError, CatalogMismatchError) as exc:
        raise SnapshotError(
            f"snapshot sidecar arrays are inconsistent: {exc}"
        ) from exc


def load_compiled_shard(
    path: str | Path,
    shard_id: int,
    num_shards: int,
    manifest: dict | None = None,
    mmap: bool = True,
):
    """Open one node-range shard of a snapshot's format-v2 sidecar.

    The standalone shard worker's cold-start path: the sidecar arrays
    are opened ``mmap_mode="r"`` (validated exactly like
    :func:`load_compiled`) and only shard ``shard_id``'s row range —
    plus the halo of partner rows its candidate lists reference — is
    gathered out of the mapping, so a worker's resident memory scales
    with its slice, not the universe.  The returned
    :class:`~repro.serving.shards.CompiledShard` is array-identical to
    the corresponding element of
    :func:`~repro.serving.shards.partition_compiled` over the same
    snapshot, which is what keeps process-sharded rankings bit-identical
    to the in-process router.
    """
    # lazy import: repro.serving imports this module for its own
    # cold-start path
    from repro.serving.shards import extract_shard

    compiled = load_compiled(path, manifest=manifest, mmap=mmap)
    return extract_shard(compiled, shard_id, num_shards)


def load_index(
    path: str | Path,
    graph: TypedGraph | None = None,
    transform: Transform | None = None,
    mmap: bool = True,
) -> LoadedIndex:
    """Validate and restore a snapshot written by :func:`save_index`.

    ``graph``, when given, must fingerprint to the graph the snapshot
    was built on (:class:`StaleSnapshotError` otherwise).  ``transform``
    overrides the manifest's named transform; it is required when the
    snapshot was built with a custom (unnamed) one.

    With ``mmap=True`` (default) a format-v2 compiled sidecar is opened
    memory-mapped and returned as :attr:`LoadedIndex.compiled`, letting
    serving adopt it instead of re-freezing the counts.  The sidecar is
    only trusted when the manifest names the transform being used — a
    custom ``transform=`` override falls back to compiling from the raw
    counts.
    """
    source = Path(path)
    manifest = read_manifest(source)

    if graph is not None:
        schema = manifest.get("schema") or {}
        recorded_kinds = bool(schema.get("edge_kinds", False))
        if (
            manifest.get("graph_fingerprint") is not None
            and graph.has_kinds != recorded_kinds
        ):
            # a schema-flag mismatch is a structural error, not mere
            # staleness: the graph and the snapshot disagree on whether
            # edges carry kinds at all
            raise SchemaError(
                "snapshot schema mismatch: snapshot "
                f"{'has' if recorded_kinds else 'has no'} edge kinds but "
                f"the graph {'has' if graph.has_kinds else 'has no'} "
                "edge kinds"
            )
        recorded = manifest.get("graph_fingerprint")
        current = graph_fingerprint(graph)
        if recorded != current:
            raise StaleSnapshotError(
                "snapshot was built on a different graph "
                f"(recorded fingerprint {str(recorded)[:12]}…, current "
                f"{current[:12]}…); rebuild the index"
            )

    catalog_path = source / CATALOG_FILE
    arrays_path = source / ARRAYS_FILE
    for required in (catalog_path, arrays_path):
        if not required.is_file():
            raise SnapshotError(f"snapshot is missing {required.name}")
    catalog_json = catalog_path.read_text(encoding="utf-8")
    if _sha256(catalog_json.encode("utf-8")) != manifest.get("catalog_sha256"):
        raise SnapshotError(
            "snapshot catalog.json does not match the manifest digest "
            "(corrupt or tampered snapshot)"
        )
    npz_bytes = arrays_path.read_bytes()
    if _sha256(npz_bytes) != manifest.get("arrays_sha256"):
        raise SnapshotError(
            "snapshot arrays.npz does not match the manifest digest "
            "(corrupt or tampered snapshot)"
        )

    if transform is None:
        name = manifest.get("transform")
        if name is None:
            raise SnapshotError(
                "snapshot was built with a custom transform; pass the same "
                "transform= to load it"
            )
        transform = TRANSFORMS[name]

    catalog = MetagraphCatalog.from_json(catalog_json)
    try:
        with np.load(io.BytesIO(npz_bytes), allow_pickle=False) as archive:
            arrays = {name: archive[name] for name in archive.files}
    except (ValueError, OSError, zipfile.BadZipFile) as exc:
        raise SnapshotError(f"unreadable snapshot arrays: {exc}") from exc

    nodes = [decode_node_id(doc) for doc in manifest["nodes"]]
    store = MetagraphVectors(
        manifest["catalog_size"],
        anchor_type=manifest["anchor_type"],
        transform=transform,
    )
    store.verify_catalog(catalog)
    store._matched = set(int(i) for i in arrays["matched_ids"])

    # cold-start latency is the point of a snapshot, so the row loops
    # run over plain python lists — per-element numpy indexing is an
    # order of magnitude slower at this shape
    node_indptr = arrays["node_indptr"].tolist()
    node_mg = arrays["node_mg"].tolist()
    node_count = arrays["node_count"].tolist()
    if len(node_indptr) != len(nodes) + 1:
        raise SnapshotError("node table and node arrays disagree in length")
    for i, node in enumerate(nodes):
        lo, hi = node_indptr[i], node_indptr[i + 1]
        if lo < hi:
            store._node[node] = dict(zip(node_mg[lo:hi], node_count[lo:hi]))

    pair_indptr = arrays["pair_indptr"].tolist()
    pair_mg = arrays["pair_mg"].tolist()
    pair_count = arrays["pair_count"].tolist()
    pair_left = arrays["pair_left"].tolist()
    pair_right = arrays["pair_right"].tolist()
    partners = store._partners
    for r in range(len(pair_indptr) - 1):
        x, y = nodes[pair_left[r]], nodes[pair_right[r]]
        lo, hi = pair_indptr[r], pair_indptr[r + 1]
        store._pair[(x, y)] = dict(zip(pair_mg[lo:hi], pair_count[lo:hi]))
        partners.setdefault(x, set()).add(y)
        partners.setdefault(y, set()).add(x)

    instance_totals: dict[int, int] = {}
    if "instance_total_ids" in arrays:
        instance_totals = {
            int(mg_id): int(total)
            for mg_id, total in zip(
                arrays["instance_total_ids"], arrays["instance_totals"]
            )
        }

    models: dict[str, np.ndarray] = {}
    for slot, name in enumerate(manifest.get("models", [])):
        if f"model_{slot}" not in arrays:
            raise SnapshotError(
                f"snapshot lists model {name!r} but carries no weights for it"
            )
        weights = np.asarray(arrays[f"model_{slot}"], dtype=np.float64)
        if len(weights) != store.catalog_size:
            raise SnapshotError(
                f"model {name!r} weights do not match the catalog size"
            )
        models[name] = weights

    compiled = None
    named = manifest.get("transform")
    if (
        mmap
        and manifest.get("compiled_arrays")
        and named is not None
        and transform is TRANSFORMS.get(named)
    ):
        try:
            compiled = load_compiled(source, manifest=manifest, mmap=True)
        except SnapshotError as exc:
            # the sidecar is derived data — the verified counts above
            # remain the source of truth, so a missing or damaged
            # sidecar (interrupted re-save, manual deletion) costs the
            # fast path, not the snapshot
            warnings.warn(
                f"ignoring unusable compiled sidecar at {source!s} "
                f"(serving will re-compile from the counts): {exc}",
                stacklevel=2,
            )

    return LoadedIndex(
        catalog=catalog,
        vectors=store,
        models=models,
        manifest=manifest,
        instance_totals=instance_totals,
        compiled=compiled,
    )
