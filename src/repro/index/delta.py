"""Incremental index maintenance for dynamic graphs.

The offline phase (mine → match → count, Fig. 3) assumes a static
graph, but :class:`~repro.graph.typed_graph.TypedGraph` supports
mutation.  This module keeps the Eq. 1–2 counts exact under edits
*without* a full rebuild:

1. **Affected region** — under induced semantics (Def. 2) an instance's
   membership can only change when the edit touches edges *inside* its
   node set, so every affected instance contains the edited endpoints.
   All its nodes therefore lie within pattern-radius graph distance of
   those endpoints; :func:`affected_region` computes that ball once per
   edit.
2. **Localized re-matching** — instead of re-running matching over the
   whole graph,
   :func:`repro.matching.compiled.compiled_pinned_embeddings` (the
   compiled kernel with pins as singleton candidate arrays and the
   affected region as per-type candidate masks) enumerates only
   embeddings that pin the edited endpoints onto compatible pattern
   nodes, restricted to the affected region.  For an edge edit the two
   endpoints must map onto *adjacent* pattern nodes when the edge is
   present and non-adjacent ones when it is absent, which cuts the pin
   pairs to a handful per pattern.  The compiled kernel's CSR view is
   relaid once per graph version, so one edit pays at most one O(V+E)
   layout pass amortised over the whole catalog's pre- *and* the next
   edit's post-enumeration — cheap next to matching, but on graphs
   where a relayout would dominate the localized search, patching the
   CSR arrays incrementally is the obvious next step.
3. **Count patching** — retired instances are enumerated on the
   pre-edit graph and subtracted, new ones on the post-edit graph and
   folded in (:meth:`MetagraphVectors.patch_counts`,
   :meth:`InstanceIndex.patch`).  The result is bit-identical to a
   from-scratch rebuild on the mutated graph — the property suite in
   ``tests/index/test_delta.py`` asserts exactly that over randomized
   edit sequences.

Edits are described by :class:`GraphEdit` values collected in a
:class:`GraphDelta`; :func:`apply_delta` applies them to the graph and
the index together, in order, and returns :class:`DeltaStats`.
"""

from __future__ import annotations

import time
from collections import deque
from collections.abc import Callable, Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from itertools import chain

from repro.exceptions import DeltaError, EdgeError
from repro.graph.typed_graph import PLAIN, EdgeKind, NodeId, TypedGraph
from repro.index.instance_index import (
    InstanceIndex,
    MetagraphCounts,
    count_instances_into,
)
from repro.index.vectors import (
    MetagraphVectors,
    decode_node_id,
    encode_node_id,
)
from repro.matching.base import Instance, deduplicate_instances
from repro.matching.compiled import compiled_pinned_embeddings as pinned_embeddings
from repro.metagraph.catalog import MetagraphCatalog
from repro.metagraph.metagraph import Metagraph
from repro.metagraph.symmetry import anchor_symmetric_pairs

_OPS = ("add_node", "remove_node", "add_edge", "remove_edge")


@dataclass(frozen=True)
class GraphEdit:
    """One graph mutation, in the vocabulary of :class:`TypedGraph`.

    ``u`` is the primary node (the node itself for node edits, one
    endpoint for edge edits); ``v`` is the other endpoint of an edge
    edit and ``node_type`` the type of an added node.  ``kind`` is the
    edge kind of an ``add_edge`` edit; for a directed kind the edge is
    oriented ``u -> v``.
    """

    op: str
    u: NodeId
    v: NodeId | None = None
    node_type: str | None = None
    kind: EdgeKind = PLAIN

    def __post_init__(self):
        if self.op not in _OPS:
            raise DeltaError(f"unknown edit op {self.op!r}; expected one of {_OPS}")
        if self.op.endswith("_edge") and self.v is None:
            raise DeltaError(f"{self.op} edit needs both endpoints")
        if self.op == "add_node" and self.node_type is None:
            raise DeltaError("add_node edit needs a node_type")
        if not isinstance(self.kind, EdgeKind):
            raise DeltaError(f"edit kind must be an EdgeKind, got {self.kind!r}")
        if self.kind != PLAIN and self.op != "add_edge":
            raise DeltaError(f"{self.op} edit does not take an edge kind")

    @classmethod
    def add_node(cls, node: NodeId, node_type: str) -> "GraphEdit":
        return cls("add_node", node, node_type=node_type)

    @classmethod
    def remove_node(cls, node: NodeId) -> "GraphEdit":
        return cls("remove_node", node)

    @classmethod
    def add_edge(cls, u: NodeId, v: NodeId, kind: EdgeKind = PLAIN) -> "GraphEdit":
        return cls("add_edge", u, v, kind=kind)

    @classmethod
    def remove_edge(cls, u: NodeId, v: NodeId) -> "GraphEdit":
        return cls("remove_edge", u, v)

    def to_json_dict(self) -> dict:
        """JSON-safe form (node ids via the snapshot codec)."""
        doc: dict = {"op": self.op, "u": encode_node_id(self.u)}
        if self.v is not None:
            doc["v"] = encode_node_id(self.v)
        if self.node_type is not None:
            doc["node_type"] = self.node_type
        if self.kind != PLAIN:
            # emitted only for kinded edges, so plain update logs keep
            # their exact historical byte layout
            doc["label"] = self.kind.label
            doc["directed"] = 1 if self.kind.directed else 0
        return doc

    @classmethod
    def from_json_dict(cls, doc: dict) -> "GraphEdit":
        """Inverse of :meth:`to_json_dict`."""
        try:
            op = doc["op"]
            u = decode_node_id(doc["u"])
        except (KeyError, TypeError) as exc:
            raise DeltaError(f"malformed edit record {doc!r}") from exc
        v = decode_node_id(doc["v"]) if "v" in doc else None
        kind = PLAIN
        if "label" in doc or "directed" in doc:
            label = doc.get("label", "")
            directed = doc.get("directed", 0)
            if not isinstance(label, str) or directed not in (0, 1):
                raise DeltaError(f"malformed edit kind in record {doc!r}")
            kind = EdgeKind(label, bool(directed))
        return cls(op, u, v=v, node_type=doc.get("node_type"), kind=kind)


class GraphDelta:
    """An ordered batch of graph edits, with a chaining builder API.

    >>> delta = GraphDelta().add_node("Kate", "user").add_edge("Kate", "MIT")
    >>> len(delta)
    2
    """

    def __init__(self, edits: Iterable[GraphEdit] = ()):
        self._edits: list[GraphEdit] = list(edits)

    def add_node(self, node: NodeId, node_type: str) -> "GraphDelta":
        self._edits.append(GraphEdit.add_node(node, node_type))
        return self

    def remove_node(self, node: NodeId) -> "GraphDelta":
        self._edits.append(GraphEdit.remove_node(node))
        return self

    def add_edge(
        self, u: NodeId, v: NodeId, kind: EdgeKind = PLAIN
    ) -> "GraphDelta":
        self._edits.append(GraphEdit.add_edge(u, v, kind))
        return self

    def remove_edge(self, u: NodeId, v: NodeId) -> "GraphDelta":
        self._edits.append(GraphEdit.remove_edge(u, v))
        return self

    def __len__(self) -> int:
        return len(self._edits)

    def __iter__(self) -> Iterator[GraphEdit]:
        return iter(self._edits)

    def __bool__(self) -> bool:
        return bool(self._edits)

    def to_json_list(self) -> list[dict]:
        """The whole batch as JSON-safe records (snapshot update log)."""
        return [edit.to_json_dict() for edit in self._edits]

    @classmethod
    def from_json_list(cls, docs: Iterable[dict]) -> "GraphDelta":
        return cls(GraphEdit.from_json_dict(doc) for doc in docs)

    def apply_to(self, graph: TypedGraph) -> None:
        """Replay the edits onto a graph (mutations only, no index math).

        Used to reconstruct a snapshot's graph from a base graph plus
        the snapshot's recorded update log.
        """
        for edit in self._edits:
            if edit.op == "add_node":
                graph.add_node(edit.u, edit.node_type)
            elif edit.op == "remove_node":
                graph.remove_node(edit.u)
            elif edit.op == "add_edge":
                graph.add_edge(edit.u, edit.v, edit.kind)
            else:
                graph.remove_edge(edit.u, edit.v)

    def __repr__(self) -> str:
        return f"<GraphDelta: {len(self._edits)} edits>"


@dataclass
class DeltaStats:
    """What one :func:`apply_delta` call did, for logs and reports."""

    edits_applied: int = 0
    edits_noop: int = 0
    instances_retired: int = 0
    instances_added: int = 0
    metagraphs_touched: set[int] = field(default_factory=set)
    seconds: float = 0.0

    def __repr__(self) -> str:
        return (
            f"<DeltaStats: {self.edits_applied} edits "
            f"({self.edits_noop} no-ops), -{self.instances_retired}"
            f"/+{self.instances_added} instances, "
            f"{len(self.metagraphs_touched)} metagraphs, "
            f"{self.seconds * 1e3:.1f} ms>"
        )


# ----------------------------------------------------------------------
# affected-region computation
# ----------------------------------------------------------------------
def pattern_diameter(metagraph: Metagraph) -> int:
    """Longest shortest path between two pattern nodes (0 for one node)."""
    best = 0
    for start in metagraph.nodes():
        depth = {start: 0}
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v in metagraph.neighbors(u):
                if v not in depth:
                    depth[v] = depth[u] + 1
                    queue.append(v)
        best = max(best, max(depth.values()))
    return best


def catalog_radius(catalog: MetagraphCatalog) -> int:
    """Max pattern diameter over the catalog — the BFS depth that makes
    an affected region sound for every member."""
    return max((pattern_diameter(m) for m in catalog), default=0)


def affected_region(
    graph: TypedGraph, seeds: Iterable[NodeId], radius: int
) -> dict[str, set[NodeId]]:
    """Nodes within ``radius`` hops of any seed, grouped by type.

    Every instance affected by an edit contains an edited endpoint, and
    its remaining nodes are reachable from it along instance edges in at
    most pattern-diameter hops; restricting candidate pools to this ball
    is therefore lossless.
    """
    depth: dict[NodeId, int] = {}
    queue: deque[NodeId] = deque()
    for seed in seeds:
        if seed in graph and seed not in depth:
            depth[seed] = 0
            queue.append(seed)
    while queue:
        u = queue.popleft()
        if depth[u] == radius:
            continue
        for v in graph.adjacency(u):
            if v not in depth:
                depth[v] = depth[u] + 1
                queue.append(v)
    region: dict[str, set[NodeId]] = {}
    for node in depth:
        region.setdefault(graph.node_type(node), set()).add(node)
    return region


# ----------------------------------------------------------------------
# localized instance enumeration
# ----------------------------------------------------------------------
def _instances_containing_node(
    graph: TypedGraph,
    metagraph: Metagraph,
    node: NodeId,
    region: dict[str, set[NodeId]],
) -> list[Instance]:
    """All current instances of ``metagraph`` whose node set has ``node``."""
    node_type = graph.node_type(node)
    streams = (
        pinned_embeddings(graph, metagraph, {p: node}, region=region)
        for p in metagraph.nodes_of_type(node_type)
    )
    return list(deduplicate_instances(chain.from_iterable(streams)))


def _instances_containing_edge(
    graph: TypedGraph,
    metagraph: Metagraph,
    u: NodeId,
    v: NodeId,
    adjacent: bool,
    region: dict[str, set[NodeId]],
) -> list[Instance]:
    """Instances containing both ``u`` and ``v``.

    Under induced semantics the pattern nodes they map onto are adjacent
    exactly when ``(u, v)`` is a graph edge, so ``adjacent`` selects the
    admissible pin pairs: pattern edges when the edge is present,
    non-edges when absent.
    """
    type_u, type_v = graph.node_type(u), graph.node_type(v)
    streams = (
        pinned_embeddings(graph, metagraph, {p_u: u, p_v: v}, region=region)
        for p_u in metagraph.nodes_of_type(type_u)
        for p_v in metagraph.nodes_of_type(type_v)
        if p_u != p_v and metagraph.has_edge(p_u, p_v) == adjacent
    )
    return list(deduplicate_instances(chain.from_iterable(streams)))


def _enumerate_for_node(
    graph: TypedGraph,
    catalog: MetagraphCatalog,
    mg_ids: Sequence[int],
    node: NodeId,
    radius: int,
) -> dict[int, list[Instance]]:
    region = affected_region(graph, [node], radius)
    found: dict[int, list[Instance]] = {}
    for mg_id in mg_ids:
        instances = _instances_containing_node(graph, catalog[mg_id], node, region)
        if instances:
            found[mg_id] = instances
    return found


def _enumerate_for_edge(
    graph: TypedGraph,
    catalog: MetagraphCatalog,
    mg_ids: Sequence[int],
    u: NodeId,
    v: NodeId,
    adjacent: bool,
    radius: int,
) -> dict[int, list[Instance]]:
    region = affected_region(graph, [u, v], radius)
    found: dict[int, list[Instance]] = {}
    for mg_id in mg_ids:
        instances = _instances_containing_edge(
            graph, catalog[mg_id], u, v, adjacent, region
        )
        if instances:
            found[mg_id] = instances
    return found


# ----------------------------------------------------------------------
# the update driver
# ----------------------------------------------------------------------
def _validate(graph: TypedGraph, edit: GraphEdit) -> bool:
    """Pre-flight an edit against the current graph, mutating nothing.

    Returns ``False`` for a no-op (re-adding an existing node/edge);
    raises the same graph exceptions the direct mutation would, *before*
    any count is touched, so a failed edit never half-patches the index.
    """
    if edit.op == "add_node":
        existing = graph.node_type(edit.u) if edit.u in graph else None
        if existing is not None and existing == edit.node_type:
            return False
        # type conflicts and invalid types surface via the graph call
        return True
    if edit.op == "remove_node":
        graph.node_type(edit.u)  # raises NodeNotFoundError if absent
        return True
    # edge edits
    graph.node_type(edit.u)
    graph.node_type(edit.v)
    if edit.op == "add_edge":
        if edit.u == edit.v:
            raise EdgeError(f"self-loops are not allowed (node {edit.u!r})")
        if not graph.has_edge(edit.u, edit.v):
            return True
        # re-adding with the same kind is a no-op; a conflicting kind is
        # the same error the direct mutation raises
        expected = (edit.kind.label, 1 if edit.kind.directed else 0)
        if graph.edge_signature(edit.u, edit.v) != expected:
            raise EdgeError(
                f"edge ({edit.u!r}, {edit.v!r}) already exists with a "
                "different kind"
            )
        return False
    if not graph.has_edge(edit.u, edit.v):
        raise EdgeError(f"edge ({edit.u!r}, {edit.v!r}) is not in the graph")
    return True


def apply_delta(
    graph: TypedGraph,
    catalog: MetagraphCatalog,
    vectors: MetagraphVectors,
    delta: GraphDelta | Iterable[GraphEdit],
    index: InstanceIndex | None = None,
    on_edit: Callable[[GraphEdit], None] | None = None,
) -> DeltaStats:
    """Apply graph edits and incrementally maintain the index.

    Mutates ``graph``, ``vectors`` and (when given) ``index`` together,
    edit by edit, so the counts always describe the graph exactly —
    bit-identical to ``build_vectors`` on the resulting graph.  The
    compiled CSR snapshot of ``vectors`` is invalidated; recompile (or
    let :meth:`ProximityModel.rank` do it lazily) after the batch.

    ``on_edit`` is invoked after each *effective* edit commits (graph
    mutated, counts patched; no-ops are skipped) — the checkpoint
    callers use to version and log per-edit, so an edit failing
    mid-batch leaves everything before it recorded and nothing after it
    touched, and update logs never accumulate edits that changed
    nothing.

    Only metagraphs already matched into ``vectors`` are maintained;
    ids never matched (e.g. dual-stage leftovers) stay unmatched.
    """
    start = time.perf_counter()
    vectors.verify_catalog(catalog)
    edits = list(delta)
    mg_ids = sorted(vectors.matched_ids)
    # symmetric anchor pairs are only needed for metagraphs an edit
    # actually touches; computing them lazily keeps small batches from
    # paying an O(|catalog|) setup per call
    sym_pairs: dict[int, frozenset[tuple[int, int]]] = {}

    def sym_pairs_of(mg_id: int) -> frozenset[tuple[int, int]]:
        pairs = sym_pairs.get(mg_id)
        if pairs is None:
            pairs = anchor_symmetric_pairs(catalog[mg_id], catalog.anchor_type)
            sym_pairs[mg_id] = pairs
        return pairs

    radius = catalog_radius(catalog)
    stats = DeltaStats()
    for edit in edits:
        if not _validate(graph, edit):
            stats.edits_noop += 1
            continue
        pre: dict[int, list[Instance]] = {}
        post: dict[int, list[Instance]] = {}
        if edit.op == "add_node":
            graph.add_node(edit.u, edit.node_type)
            post = _enumerate_for_node(graph, catalog, mg_ids, edit.u, radius)
        elif edit.op == "remove_node":
            # removal cannot create instances: induced subgraphs of the
            # surviving node sets are untouched
            pre = _enumerate_for_node(graph, catalog, mg_ids, edit.u, radius)
            graph.remove_node(edit.u)
        elif edit.op == "add_edge":
            pre = _enumerate_for_edge(
                graph, catalog, mg_ids, edit.u, edit.v, False, radius
            )
            graph.add_edge(edit.u, edit.v, edit.kind)
            post = _enumerate_for_edge(
                graph, catalog, mg_ids, edit.u, edit.v, True, radius
            )
        else:  # remove_edge
            pre = _enumerate_for_edge(
                graph, catalog, mg_ids, edit.u, edit.v, True, radius
            )
            graph.remove_edge(edit.u, edit.v)
            post = _enumerate_for_edge(
                graph, catalog, mg_ids, edit.u, edit.v, False, radius
            )
        stats.edits_applied += 1
        for mg_id in sorted(set(pre) | set(post)):
            pairs = sym_pairs_of(mg_id)
            retired = MetagraphCounts()
            count_instances_into(retired, pre.get(mg_id, ()), pairs)
            added = MetagraphCounts()
            count_instances_into(added, post.get(mg_id, ()), pairs)
            vectors.patch_counts(mg_id, retired, added)
            if index is not None:
                index.patch(mg_id, retired, added)
            stats.instances_retired += retired.num_instances
            stats.instances_added += added.num_instances
            stats.metagraphs_touched.add(mg_id)
        if on_edit is not None:
            on_edit(edit)
    stats.seconds = time.perf_counter() - start
    return stats
