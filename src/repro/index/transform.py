"""Count transforms for metagraph vectors.

Sect. II-A: "More generally, we can further transform these vectors,
such as applying logarithm to the counts."  Transforms are applied when
sparse counts are materialised into dense vectors; they must be
monotone, map 0 to 0 (sparsity-preserving) and be non-negative.
"""

from __future__ import annotations

import math
from collections.abc import Callable

Transform = Callable[[float], float]


def identity(count: float) -> float:
    """Raw counts."""
    return float(count)


def log1p(count: float) -> float:
    """log(1 + count): damps heavy-tailed instance counts."""
    return math.log1p(count)


def sqrt(count: float) -> float:
    """Square root: a milder damping than log1p."""
    return math.sqrt(count)


TRANSFORMS: dict[str, Transform] = {
    "identity": identity,
    "log1p": log1p,
    "sqrt": sqrt,
}


def get_transform(name: str) -> Transform:
    """Look up a transform by name (KeyError lists the options)."""
    try:
        return TRANSFORMS[name]
    except KeyError:
        raise KeyError(
            f"unknown transform {name!r}; available: {sorted(TRANSFORMS)}"
        ) from None
