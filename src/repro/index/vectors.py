"""Metagraph vectors m_x and m_xy (Eq. 1–2): the proximity feature store.

:class:`MetagraphVectors` holds the sparse Eq. 1–2 counts for every
anchor node and anchor pair, materialises them into dense numpy vectors
on demand (with an optional count transform), and answers the two
queries the learning and online phases need:

- ``pair_vector(x, y)`` / ``node_vector(x)`` — the m_xy / m_x columns;
- ``partners(x)`` — all nodes sharing at least one metagraph instance
  with ``x``, which is exactly the candidate set with non-zero MGP
  numerator for query ``x``.

For serving, :meth:`MetagraphVectors.compile` freezes the sparse counts
into a :class:`~repro.index.compiled.CompiledVectors` CSR snapshot that
scores whole candidate sets in a few vectorised operations.
"""

from __future__ import annotations

import json
import time
from collections.abc import Callable, Iterable
from pathlib import Path

import numpy as np

from repro.exceptions import CatalogMismatchError, DeltaError, SnapshotError
from repro.graph.typed_graph import NodeId, TypedGraph
from repro.index.compiled import CompiledVectors
from repro.index.instance_index import (
    InstanceIndex,
    MetagraphCounts,
    _pair_key,
    match_and_count,
)
from repro.index.transform import Transform, identity
from repro.matching.base import MatcherProtocol
from repro.metagraph.catalog import MetagraphCatalog


def encode_node_id(node: NodeId) -> object:
    """JSON-safe, losslessly reversible encoding of a node id.

    Scalars (str/int/float/bool/None) pass through; tuples become JSON
    arrays *recursively* — lists are unhashable and therefore can never
    be node ids, so the array form is unambiguous at every nesting
    level.  Adversarial string ids (separators, brackets, JSON-looking
    text) need no escaping because they stay ordinary JSON strings.
    Anything else cannot round-trip and is rejected up front rather
    than corrupting the artefact.
    """
    if isinstance(node, tuple):
        return [encode_node_id(part) for part in node]
    if node is None or isinstance(node, (str, int, float, bool)):
        return node
    raise SnapshotError(
        f"node id {node!r} of type {type(node).__name__} cannot be "
        "persisted; use str/int/float/bool/None or (nested) tuples of those"
    )


def decode_node_id(doc: object) -> NodeId:
    """Inverse of :func:`encode_node_id` (arrays back to tuples, deep)."""
    if isinstance(doc, list):
        return tuple(decode_node_id(part) for part in doc)
    return doc


class MetagraphVectors:
    """Sparse m_x / m_xy store over a fixed metagraph catalog."""

    def __init__(
        self,
        catalog_size: int,
        anchor_type: str = "user",
        transform: Transform = identity,
    ):
        self.catalog_size = catalog_size
        self.anchor_type = anchor_type
        self.transform = transform
        self._node: dict[NodeId, dict[int, int]] = {}
        self._pair: dict[tuple[NodeId, NodeId], dict[int, int]] = {}
        self._partners: dict[NodeId, set[NodeId]] = {}
        self._matched: set[int] = set()
        self._node_cache: dict[NodeId, np.ndarray] = {}
        self._pair_cache: dict[tuple[NodeId, NodeId], np.ndarray] = {}
        self._compiled: CompiledVectors | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_counts(self, mg_id: int, counts: MetagraphCounts) -> None:
        """Fold one metagraph's Eq. 1–2 counts into the store."""
        if not 0 <= mg_id < self.catalog_size:
            raise CatalogMismatchError(
                f"metagraph id {mg_id} outside catalog of size {self.catalog_size}"
            )
        if mg_id in self._matched:
            raise CatalogMismatchError(f"metagraph id {mg_id} already added")
        self._matched.add(mg_id)
        for node, count in counts.node_counts.items():
            self._node.setdefault(node, {})[mg_id] = count
        for (x, y), count in counts.pair_counts.items():
            self._pair.setdefault((x, y), {})[mg_id] = count
            self._partners.setdefault(x, set()).add(y)
            self._partners.setdefault(y, set()).add(x)
        self._node_cache.clear()
        self._pair_cache.clear()
        self._compiled = None

    @property
    def matched_ids(self) -> frozenset[int]:
        """Metagraph ids whose counts are present."""
        return frozenset(self._matched)

    def patch_counts(
        self, mg_id: int, retired: MetagraphCounts, added: MetagraphCounts
    ) -> None:
        """Apply an incremental delta to one metagraph's Eq. 1–2 counts.

        The inverse-and-forward of :meth:`add_counts` for dynamic graphs
        (:mod:`repro.index.delta`): ``retired`` contributions are
        subtracted, ``added`` ones folded in, and the sparse store is
        left bit-identical to a from-scratch rebuild on the mutated
        graph — emptied rows/pairs disappear, partner links are kept
        exact, and the dense caches plus the compiled CSR snapshot are
        invalidated.
        """
        if mg_id not in self._matched:
            raise CatalogMismatchError(
                f"metagraph id {mg_id} has no counts to patch"
            )
        for node, count in added.node_counts.items():
            row = self._node.setdefault(node, {})
            row[mg_id] = row.get(mg_id, 0) + count
        for node, count in retired.node_counts.items():
            row = self._node.get(node)
            remaining = (row or {}).get(mg_id, 0) - count
            if remaining < 0:
                raise DeltaError(
                    f"metagraph {mg_id}: node count for {node!r} went negative"
                )
            if remaining:
                row[mg_id] = remaining
            else:
                row.pop(mg_id, None)
                if not row:
                    del self._node[node]
        for (x, y), count in added.pair_counts.items():
            row = self._pair.setdefault((x, y), {})
            row[mg_id] = row.get(mg_id, 0) + count
            self._partners.setdefault(x, set()).add(y)
            self._partners.setdefault(y, set()).add(x)
        for (x, y), count in retired.pair_counts.items():
            row = self._pair.get((x, y))
            remaining = (row or {}).get(mg_id, 0) - count
            if remaining < 0:
                raise DeltaError(
                    f"metagraph {mg_id}: pair count for {(x, y)!r} went negative"
                )
            if remaining:
                row[mg_id] = remaining
            else:
                row.pop(mg_id, None)
                if not row:
                    del self._pair[(x, y)]
                    self._drop_partner(x, y)
                    self._drop_partner(y, x)
        self._node_cache.clear()
        self._pair_cache.clear()
        self._compiled = None

    def _drop_partner(self, x: NodeId, y: NodeId) -> None:
        links = self._partners.get(x)
        if links is None:
            return
        links.discard(y)
        if not links:
            del self._partners[x]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def node_vector(self, x: NodeId) -> np.ndarray:
        """m_x as a dense float vector of length |M| (Eq. 2)."""
        cached = self._node_cache.get(x)
        if cached is not None:
            return cached
        vec = np.zeros(self.catalog_size, dtype=float)
        for mg_id, count in self._node.get(x, {}).items():
            vec[mg_id] = self.transform(count)
        vec.setflags(write=False)
        self._node_cache[x] = vec
        return vec

    def pair_vector(self, x: NodeId, y: NodeId) -> np.ndarray:
        """m_xy as a dense float vector of length |M| (Eq. 1)."""
        key = _pair_key(x, y)
        cached = self._pair_cache.get(key)
        if cached is not None:
            return cached
        vec = np.zeros(self.catalog_size, dtype=float)
        for mg_id, count in self._pair.get(key, {}).items():
            vec[mg_id] = self.transform(count)
        vec.setflags(write=False)
        self._pair_cache[key] = vec
        return vec

    def partners(self, x: NodeId) -> frozenset[NodeId]:
        """Nodes co-occurring with ``x`` in at least one instance."""
        return frozenset(self._partners.get(x, ()))

    def nodes_with_counts(self) -> frozenset[NodeId]:
        """All anchor nodes with a non-zero m_x."""
        return frozenset(self._node)

    def raw_pair_counts(self, x: NodeId, y: NodeId) -> dict[int, int]:
        """Untransformed sparse counts for a pair (testing/debugging)."""
        return dict(self._pair.get(_pair_key(x, y), {}))

    def verify_catalog(self, catalog: MetagraphCatalog) -> None:
        """Raise unless the store matches the catalog's id space."""
        catalog.verify_compatible(self.catalog_size)

    # ------------------------------------------------------------------
    # serving backend
    # ------------------------------------------------------------------
    def compile(self) -> CompiledVectors:
        """Freeze the counts into the CSR serving backend (cached).

        The snapshot is shared by every model over this store and is
        invalidated automatically when :meth:`add_counts` folds in new
        metagraphs.
        """
        if self._compiled is None:
            self._compiled = CompiledVectors.build(
                self._node,
                self._pair,
                self._partners,
                catalog_size=self.catalog_size,
                transform=self.transform,
            )
        return self._compiled

    def adopt_compiled(self, compiled: CompiledVectors) -> CompiledVectors:
        """Install a pre-built snapshot (e.g. mmap-loaded) as current.

        The cold-start counterpart of :meth:`compile`: a snapshot
        restored straight from a format-v2 sidecar
        (:func:`~repro.index.persist.load_compiled`) serves without the
        CSR rebuild.  The caller vouches that the snapshot describes
        this store's counts — snapshot loading does so via the manifest
        digests.  Subsequent mutations invalidate it as usual.
        """
        if compiled.catalog_size != self.catalog_size:
            raise CatalogMismatchError(
                f"compiled snapshot over {compiled.catalog_size} metagraphs "
                f"does not match catalog size {self.catalog_size}"
            )
        self._compiled = compiled
        return compiled

    def is_current_snapshot(self, compiled: CompiledVectors) -> bool:
        """True iff ``compiled`` is this store's up-to-date snapshot.

        Checks identity against the cache without forcing a rebuild: a
        snapshot taken before the last mutation (the cache was cleared)
        or belonging to another store is simply not current.
        """
        return compiled is self._compiled

    # ------------------------------------------------------------------
    # persistence: the offline phase is expensive, the artefact small
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Persist raw counts to JSON (transform is re-applied on load).

        Node ids are encoded with :func:`encode_node_id`, so strings
        (however adversarial), numbers and arbitrarily nested tuples all
        round-trip; unsupported id types raise
        :class:`~repro.exceptions.SnapshotError` instead of writing an
        unreadable file.  The transform itself is not serialised — pass
        the same one to :meth:`load`.
        """
        doc = {
            "catalog_size": self.catalog_size,
            "anchor_type": self.anchor_type,
            "matched": sorted(self._matched),
            "node": [
                [encode_node_id(node), sorted(counts.items())]
                for node, counts in sorted(self._node.items(), key=lambda kv: repr(kv[0]))
            ],
            "pair": [
                [[encode_node_id(pair[0]), encode_node_id(pair[1])], sorted(counts.items())]
                for pair, counts in sorted(self._pair.items(), key=lambda kv: repr(kv[0]))
            ],
        }
        Path(path).write_text(json.dumps(doc), encoding="utf-8")

    @classmethod
    def load(
        cls,
        path: str | Path,
        transform: Transform = identity,
    ) -> "MetagraphVectors":
        """Restore a store saved by :meth:`save`."""
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
        store = cls(
            doc["catalog_size"],
            anchor_type=doc["anchor_type"],
            transform=transform,
        )
        store._matched = set(doc["matched"])
        for node, counts in doc["node"]:
            node = decode_node_id(node)
            store._node[node] = {int(k): v for k, v in counts}
        for (x, y), counts in doc["pair"]:
            x, y = decode_node_id(x), decode_node_id(y)
            store._pair[(x, y)] = {int(k): v for k, v in counts}
            store._partners.setdefault(x, set()).add(y)
            store._partners.setdefault(y, set()).add(x)
        return store


def build_vectors(
    graph: TypedGraph,
    catalog: MetagraphCatalog,
    mg_ids: Iterable[int] | None = None,
    matcher: MatcherProtocol | None = None,
    transform: Transform = identity,
    index: InstanceIndex | None = None,
    vectors: MetagraphVectors | None = None,
    on_metagraph: Callable[[int, float], None] | None = None,
) -> tuple[MetagraphVectors, InstanceIndex]:
    """Match metagraphs and build/extend the vector store.

    Parameters
    ----------
    mg_ids:
        Which catalog ids to match (default: all).  Dual-stage training
        calls this twice — first with the seed ids, later with the
        selected candidates — passing the same ``vectors``/``index`` to
        extend them in place.
    matcher:
        Matching engine (default: the compiled integer-CSR kernel,
        counted through its array fast path).  Every engine yields
        bit-identical counts; the choice is purely about speed.
    on_metagraph:
        Optional callback ``(mg_id, seconds)`` invoked after each
        metagraph is matched; the experiment harness uses it to record
        per-metagraph matching cost (Table III, Fig. 8, Fig. 11).
    """
    store = vectors if vectors is not None else MetagraphVectors(
        len(catalog), anchor_type=catalog.anchor_type, transform=transform
    )
    store.verify_catalog(catalog)
    idx = index if index is not None else InstanceIndex(
        len(catalog), anchor_type=catalog.anchor_type
    )
    ids = list(mg_ids) if mg_ids is not None else list(catalog.ids())
    for mg_id in ids:
        if idx.is_matched(mg_id):
            continue
        start = time.perf_counter()
        counts = match_and_count(
            graph, catalog[mg_id], anchor_type=catalog.anchor_type, matcher=matcher
        )
        elapsed = time.perf_counter() - start
        idx.add(mg_id, counts)
        store.add_counts(mg_id, counts)
        if on_metagraph is not None:
            on_metagraph(mg_id, elapsed)
    return store, idx
