"""Instance counting for metagraph vectors (offline subproblem 2).

For each metagraph we need, per Eq. 1–2:

- ``pair_counts[(x, y)]`` — the number of instances containing both
  ``x`` and ``y`` at symmetric anchor positions (unordered pair, each
  instance counted once per distinct pair it realises);
- ``node_counts[x]`` — the number of instances containing ``x`` at a
  symmetric anchor position (each instance counted once per distinct
  node).

The symmetric-position pairs of an instance are derived from one witness
embedding; they are independent of which embedding is used because the
set of symmetric pattern-node pairs is invariant under automorphisms
(conjugating the witness involution by an automorphism gives another
involutive automorphism).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.graph.typed_graph import NodeId, TypedGraph
from repro.matching.base import MatcherProtocol, deduplicate_instances
from repro.matching.symiso import SymISOMatcher
from repro.metagraph.metagraph import Metagraph
from repro.metagraph.symmetry import anchor_symmetric_pairs

Pair = tuple[NodeId, NodeId]


def _pair_key(x: NodeId, y: NodeId) -> Pair:
    try:
        return (x, y) if x <= y else (y, x)  # type: ignore[operator]
    except TypeError:
        return (x, y) if repr(x) <= repr(y) else (y, x)


@dataclass
class MetagraphCounts:
    """Eq. 1–2 counts for one metagraph."""

    num_instances: int = 0
    node_counts: Counter = field(default_factory=Counter)
    pair_counts: Counter = field(default_factory=Counter)


def match_and_count(
    graph: TypedGraph,
    metagraph: Metagraph,
    anchor_type: str = "user",
    matcher: MatcherProtocol | None = None,
) -> MetagraphCounts:
    """Match a metagraph and accumulate its Eq. 1–2 counts.

    Instances are streamed (deduplicated embeddings) and only the counts
    are retained, so peak memory is the per-metagraph instance set.
    """
    engine = matcher if matcher is not None else SymISOMatcher()
    sym_pairs = anchor_symmetric_pairs(metagraph, anchor_type)
    counts = MetagraphCounts()
    if not sym_pairs:
        # The metagraph has no symmetric anchor pair: it cannot
        # contribute to anchor-anchor proximity (Eq. 1 is empty).
        for _ in deduplicate_instances(engine.find_embeddings(graph, metagraph)):
            counts.num_instances += 1
        return counts
    ordered = sorted(metagraph.nodes())
    position = {u: i for i, u in enumerate(ordered)}
    for instance in deduplicate_instances(engine.find_embeddings(graph, metagraph)):
        counts.num_instances += 1
        emb = instance.embedding  # indexed by sorted pattern node
        pairs_here = {
            _pair_key(emb[position[u]], emb[position[v]]) for u, v in sym_pairs
        }
        nodes_here = {n for pair in pairs_here for n in pair}
        for pair in pairs_here:
            counts.pair_counts[pair] += 1
        for node in nodes_here:
            counts.node_counts[node] += 1
    return counts


class InstanceIndex:
    """Per-metagraph counts for a catalog, filled incrementally.

    Dual-stage training matches only a subset of the catalog; the index
    records which metagraph ids have been matched so downstream code can
    distinguish "zero count" from "never matched".
    """

    def __init__(self, catalog_size: int, anchor_type: str = "user"):
        self.catalog_size = catalog_size
        self.anchor_type = anchor_type
        self._counts: dict[int, MetagraphCounts] = {}

    def add(self, mg_id: int, counts: MetagraphCounts) -> None:
        """Record counts for a metagraph id."""
        if not 0 <= mg_id < self.catalog_size:
            raise IndexError(f"metagraph id {mg_id} outside catalog of size {self.catalog_size}")
        self._counts[mg_id] = counts

    def matched_ids(self) -> frozenset[int]:
        """Ids whose instances have been computed."""
        return frozenset(self._counts)

    def is_matched(self, mg_id: int) -> bool:
        """True iff the metagraph has been matched."""
        return mg_id in self._counts

    def counts_for(self, mg_id: int) -> MetagraphCounts:
        """Counts for a matched metagraph id (KeyError if unmatched)."""
        return self._counts[mg_id]

    def num_instances(self, mg_id: int) -> int:
        """|I(M)| for a matched metagraph id."""
        return self._counts[mg_id].num_instances

    def __len__(self) -> int:
        return len(self._counts)
